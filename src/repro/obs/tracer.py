"""The structured-event tracer: ring-buffered collector + zero-cost no-op.

Design constraints (ISSUE: observability layer):

* **Zero cost when disabled.**  The default tracer everywhere is
  :data:`NULL_TRACER`, whose ``enabled`` is False; every emit site in
  protocol code is guarded by ``if tracer.enabled:`` so the per-event
  overhead of a disabled tracer is a single attribute load + branch, and
  no payload dict is ever built.
* **Bounded memory when enabled.**  :class:`Tracer` keeps events in a ring
  buffer (``collections.deque(maxlen=...)``); long runs evict the oldest
  events rather than growing without bound.  ``dropped`` reports how many
  were evicted.
* **No behavioural footprint.**  Emitting never touches the simulation
  RNG, clock or event queue, so runs are bit-identical with tracing on or
  off (pinned by ``tests/obs/test_parity.py``).

Events carry ``(time, party, protocol, round, kind, payload)``; ``kind``
must be registered in :mod:`repro.obs.registry`, which is the documented
schema.
"""

from __future__ import annotations

import warnings
from collections import deque
from dataclasses import dataclass, field
from typing import Iterable, Mapping, Protocol, runtime_checkable

from .registry import EVENT_KINDS

#: Default ring-buffer capacity (events).
DEFAULT_CAPACITY = 1 << 20


def short_id(data: bytes) -> str:
    """Short hex identity for a block hash / digest (16 hex chars)."""
    return data.hex()[:16]


@dataclass(frozen=True)
class TraceEvent:
    """One structured trace event.

    ``party`` is a 1-based party index, or 0 for infrastructure events
    (simulator, network bookkeeping).  ``protocol`` names the emitting
    layer: a protocol name (``ICC0``, ``HotStuff``, ...) or a substrate
    label (``sim``, ``net``, ``gossip``).  ``round`` is the protocol round
    / height when one applies, else None.  ``payload`` holds the
    kind-specific fields declared in the registry; values are JSON-safe.
    """

    time: float
    party: int
    protocol: str
    round: int | None
    kind: str
    payload: Mapping = field(default_factory=dict)

    def to_dict(self) -> dict:
        """Plain-dict form used by the JSONL exporter."""
        return {
            "time": self.time,
            "party": self.party,
            "protocol": self.protocol,
            "round": self.round,
            "kind": self.kind,
            "payload": dict(self.payload),
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "TraceEvent":
        return cls(
            time=float(data["time"]),
            party=int(data["party"]),
            protocol=str(data["protocol"]),
            round=None if data.get("round") is None else int(data["round"]),
            kind=str(data["kind"]),
            payload=dict(data.get("payload", {})),
        )


class UnknownEventKind(KeyError):
    """An emit used a kind that is not in the registry (a schema bug)."""


@runtime_checkable
class TracerLike(Protocol):
    """What a tracer must provide to be installed on a Simulation or
    passed as ``ClusterConfig.tracer``: an ``enabled`` flag that emit
    sites guard on, and the keyword-only ``emit``.  :class:`Tracer`,
    :class:`NullTracer` and :class:`NamespacedTracer` all satisfy it."""

    def emit(
        self,
        *,
        time: float,
        party: int,
        protocol: str,
        round: int | None,
        kind: str,
        payload: Mapping | None = None,
    ) -> None: ...


class Tracer:
    """Ring-buffered in-memory trace collector."""

    enabled = True

    def __init__(self, capacity: int | None = DEFAULT_CAPACITY) -> None:
        self._buffer: deque[TraceEvent] = deque(maxlen=capacity)
        self.capacity = capacity
        self.emitted = 0
        self._drop_warned = False

    def emit(
        self,
        *,
        time: float,
        party: int,
        protocol: str,
        round: int | None,
        kind: str,
        payload: Mapping | None = None,
    ) -> None:
        """Record one event.  ``kind`` must be registered."""
        if kind not in EVENT_KINDS:
            raise UnknownEventKind(
                f"trace event kind {kind!r} is not registered in repro.obs.registry"
            )
        self._buffer.append(
            TraceEvent(
                time=time,
                party=party,
                protocol=protocol,
                round=round,
                kind=kind,
                payload=payload if payload is not None else {},
            )
        )
        self.emitted += 1
        # First eviction: say so once, loudly — a silently truncated trace
        # reads as a complete one to every downstream analysis.
        if (
            not self._drop_warned
            and self.capacity is not None
            and self.emitted > self.capacity
        ):
            self._drop_warned = True
            warnings.warn(
                f"trace ring buffer full (capacity {self.capacity}); oldest "
                "events are being dropped — raise Tracer(capacity=...) or "
                "export more often (exports carry a trace.dropped summary)",
                RuntimeWarning,
                stacklevel=2,
            )

    # -- queries ---------------------------------------------------------------

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """A snapshot of buffered events, optionally filtered by kind."""
        if kind is None:
            return list(self._buffer)
        return [e for e in self._buffer if e.kind == kind]

    def __len__(self) -> int:
        return len(self._buffer)

    def __iter__(self) -> Iterable[TraceEvent]:
        return iter(list(self._buffer))

    @property
    def dropped(self) -> int:
        """Events evicted by the ring buffer."""
        return self.emitted - len(self._buffer)

    def export_events(self) -> list[TraceEvent]:
        """Events for export: the buffer, plus a trailing ``trace.dropped``
        summary event when the ring evicted anything — so a truncated
        JSONL export is distinguishable from a complete one after reload
        (``repro trace --input`` and the critical-path analysis surface
        it)."""
        events = list(self._buffer)
        if self.dropped:
            last_time = events[-1].time if events else 0.0
            events.append(
                TraceEvent(
                    time=last_time,
                    party=0,
                    protocol="trace",
                    round=None,
                    kind="trace.dropped",
                    payload={
                        "dropped": self.dropped,
                        "emitted": self.emitted,
                        "capacity": self.capacity,
                    },
                )
            )
        return events

    def clear(self) -> None:
        self._buffer.clear()
        self.emitted = 0
        self._drop_warned = False


class NullTracer:
    """The zero-cost disabled tracer: emits nothing, stores nothing.

    ``enabled`` is False, so guarded call sites never build payloads; a
    stray unguarded ``emit`` is still a harmless no-op.
    """

    enabled = False
    capacity = 0
    emitted = 0
    dropped = 0

    def emit(self, **kwargs) -> None:  # noqa: D102 - intentional no-op
        pass

    def events(self, kind: str | None = None) -> list[TraceEvent]:  # noqa: D102
        return []

    def export_events(self) -> list[TraceEvent]:  # noqa: D102
        return []

    def __len__(self) -> int:
        return 0

    def __iter__(self):
        return iter(())

    def clear(self) -> None:  # noqa: D102
        pass


class NamespacedTracer:
    """A namespaced view onto a shared tracer sink.

    Embedded clusters (``repro.core.cluster.embed_cluster``) each get one of
    these over the coordinating Simulation's tracer: every event they emit
    has its ``protocol`` label rewritten to ``"<namespace>/<protocol>"``, so
    K clusters sharing one ring buffer produce distinguishable, filterable
    streams while every ``kind`` stays registry-valid.  Reads
    (:meth:`events`, ``len``) are filtered down to this namespace.
    """

    def __init__(self, sink: TracerLike, namespace: str) -> None:
        if "/" in namespace or not namespace:
            raise ValueError(f"tracer namespace must be non-empty and '/'-free: {namespace!r}")
        self.sink = sink
        self.namespace = namespace
        self._prefix = namespace + "/"

    @property
    def enabled(self) -> bool:
        return bool(getattr(self.sink, "enabled", False))

    def emit(
        self,
        *,
        time: float,
        party: int,
        protocol: str,
        round: int | None,
        kind: str,
        payload: Mapping | None = None,
    ) -> None:
        self.sink.emit(
            time=time,
            party=party,
            protocol=self._prefix + protocol,
            round=round,
            kind=kind,
            payload=payload,
        )

    def _mine(self, event: TraceEvent) -> bool:
        return event.protocol.startswith(self._prefix)

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """This namespace's slice of the sink's buffer."""
        return [e for e in self.sink.events(kind) if self._mine(e)]

    def __len__(self) -> int:
        return len(self.events())

    def __iter__(self) -> Iterable[TraceEvent]:
        return iter(self.events())


def namespaced_tracer(sink: TracerLike, namespace: str) -> TracerLike:
    """A namespaced view of ``sink`` — or ``sink`` itself when it is
    disabled (no point wrapping a no-op; keeps the zero-cost guarantee)."""
    if not getattr(sink, "enabled", False):
        return sink
    return NamespacedTracer(sink, namespace)


#: The shared default tracer; everything points here unless a run installs
#: a real :class:`Tracer` (e.g. via ``ClusterConfig(tracer=...)``).
NULL_TRACER = NullTracer()
