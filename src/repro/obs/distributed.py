"""Distributed trace collection and clock alignment for live clusters.

A live cluster run (:mod:`repro.net.live`) produces one trace JSONL, one
meter JSON and one result JSON *per process*, each stamped on that
process's private monotonic clock (``WallClock.now`` counts seconds from
the process's own epoch).  This module turns those n private timelines
into one:

1. **Self-identification** — every per-process export starts with a
   header line (:func:`trace_header`) carrying the schema version, the
   run id, the party index and the cluster id, so a trace file is
   attributable without trusting its filename.

2. **Offset estimation** — the transport piggybacks an NTP-style
   four-timestamp exchange on its HELLO/ACK frames (recorded as
   ``live.clock.sample`` events) and emits paired ``net.wire.send`` /
   ``net.wire.recv`` events keyed by ``(src, dst, seq)``.  Both reduce
   to the same primitive: *one-way deltas* ``t_recv^B - t_send^A`` whose
   true value is ``delay + theta`` (forward) or ``delay - theta``
   (backward), ``theta`` being clock B minus clock A.  Minimum-filtering
   each direction gives the classic bounded estimate::

       theta_hat   = (min_fwd - min_back) / 2
       uncertainty = (min_fwd + min_back) / 2

   which satisfies ``|theta_hat - theta| <= uncertainty`` whenever
   network delays are non-negative — asymmetric link delay *widens the
   bound* instead of silently mis-aligning.  A pairwise least-squares
   pass over matched forward/backward samples additionally fits a linear
   drift term (accepted only when it beats the residual noise, so jitter
   cannot masquerade as drift).

3. **Graph solve** — with more than two parties the pairwise estimates
   over-determine the per-party offsets; a weighted least-squares solve
   over the pair graph (reference party pinned to zero) reconciles them,
   and each party's uncertainty is the cheapest pair-uncertainty path
   from the reference (Dijkstra).

4. **Collection** — :func:`collect_run` reads every per-process file in
   a run directory, refuses mixed ``run_id``s, aligns all events onto
   the reference party's timeline and writes ``merged-trace.jsonl``,
   ``merged-meter.json`` and ``alignment.json``.  The merged trace is a
   normal trace: every existing analysis (critical paths, trace queries,
   reports) runs on it unchanged, with :class:`ClockAlignment` supplying
   the uncertainty annotation.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field

from .export import read_jsonl_with_header, write_jsonl
from .metrics import Meter, merge_meters
from .tracer import TraceEvent

#: Version of the per-process JSONL layout (header line + event lines).
SCHEMA_VERSION = 1

#: Minimum matched samples before a drift (clock-rate) term is fitted.
MIN_DRIFT_SAMPLES = 8

#: Cap on matched theta samples per pair fed to the least-squares fit
#: (long runs produce one sample per message; a stride keeps this cheap).
MAX_FIT_SAMPLES = 4096


class CollectError(RuntimeError):
    """A run directory cannot be collected (missing/mixed/unversioned)."""


def trace_header(
    *,
    run_id: str,
    party: int,
    cluster_id: str = "",
    schema: int = SCHEMA_VERSION,
    **extra: object,
) -> dict:
    """The self-identifying first line of a per-process trace export."""
    header = {
        "schema": schema,
        "run_id": run_id,
        "party": party,
        "cluster_id": cluster_id,
    }
    header.update(extra)
    return header


# ---------------------------------------------------------------- pair math


@dataclass(frozen=True)
class PairOffset:
    """Estimated clock relation between two parties.

    ``offset`` is clock ``b`` minus clock ``a`` at local time zero,
    ``drift`` its rate of change (s/s), so the offset at time ``t`` is
    ``offset + drift * t``.  ``uncertainty`` bounds the offset error
    (it already includes the fit residual when a drift was fitted).
    """

    a: int
    b: int
    offset: float
    drift: float
    uncertainty: float
    samples: int

    def at(self, t: float) -> float:
        return self.offset + self.drift * t


@dataclass(frozen=True)
class PartyOffset:
    """One party's clock relative to the run's reference party."""

    party: int
    offset: float
    drift: float
    uncertainty: float

    def at(self, t: float) -> float:
        return self.offset + self.drift * t


@dataclass
class ClockAlignment:
    """The solved per-party clock model for one run."""

    reference: int
    offsets: dict[int, PartyOffset] = field(default_factory=dict)
    pairs: list[PairOffset] = field(default_factory=list)

    def shift(self, party: int, t: float) -> float:
        """Map party-local time ``t`` onto the reference timeline."""
        model = self.offsets.get(party)
        if model is None:
            return t
        return t - model.at(t)

    @property
    def max_uncertainty(self) -> float:
        """The worst per-party bound — the run's clock uncertainty."""
        if not self.offsets:
            return 0.0
        return max(m.uncertainty for m in self.offsets.values())

    def to_dict(self) -> dict:
        return {
            "reference": self.reference,
            "max_uncertainty_s": self.max_uncertainty,
            "offsets": {
                str(p): {
                    "offset_s": m.offset,
                    "drift": m.drift,
                    "uncertainty_s": m.uncertainty,
                }
                for p, m in sorted(self.offsets.items())
            },
            "pairs": [
                {
                    "a": pair.a,
                    "b": pair.b,
                    "offset_s": pair.offset,
                    "drift": pair.drift,
                    "uncertainty_s": pair.uncertainty,
                    "samples": pair.samples,
                }
                for pair in self.pairs
            ],
        }

    @classmethod
    def from_dict(cls, data: dict) -> "ClockAlignment":
        alignment = cls(reference=int(data["reference"]))
        for party, model in data.get("offsets", {}).items():
            alignment.offsets[int(party)] = PartyOffset(
                party=int(party),
                offset=float(model["offset_s"]),
                drift=float(model.get("drift", 0.0)),
                uncertainty=float(model["uncertainty_s"]),
            )
        for pair in data.get("pairs", []):
            alignment.pairs.append(
                PairOffset(
                    a=int(pair["a"]),
                    b=int(pair["b"]),
                    offset=float(pair["offset_s"]),
                    drift=float(pair.get("drift", 0.0)),
                    uncertainty=float(pair["uncertainty_s"]),
                    samples=int(pair.get("samples", 0)),
                )
            )
        return alignment


def pair_deltas(
    events_by_party: dict[int, list[TraceEvent]],
) -> dict[tuple[int, int], tuple[list[tuple[float, float]], list[tuple[float, float]]]]:
    """Extract one-way delay-plus-offset samples per party pair.

    Returns ``{(a, b): (fwd, back)}`` with ``a < b``; ``fwd`` holds
    ``(t_sample, delta)`` samples in the a→b direction (``delta = delay +
    theta_ab``) and ``back`` the b→a direction (``delta = delay -
    theta_ab``).  Two sources feed it:

    * matched ``net.wire.send`` / ``net.wire.recv`` pairs — the receive
      time minus the send time *is* a one-way delta;
    * ``live.clock.sample`` events — ``theta`` and ``rtt`` decompose
      exactly back into the exchange's forward delta ``theta + rtt/2``
      and backward delta ``rtt/2 - theta``.
    """
    sends: dict[tuple[int, int, int], float] = {}
    recvs: dict[tuple[int, int, int], float] = {}
    out: dict[tuple[int, int], tuple[list, list]] = {}

    def bucket(a: int, b: int) -> tuple[list, list]:
        key = (min(a, b), max(a, b))
        if key not in out:
            out[key] = ([], [])
        return out[key]

    def add_delta(src: int, dst: int, t: float, delta: float) -> None:
        fwd, back = bucket(src, dst)
        (fwd if src < dst else back).append((t, delta))

    for party, events in events_by_party.items():
        for event in events:
            if event.kind == "net.wire.send":
                sends[(party, int(event.payload["dst"]), int(event.payload["seq"]))] = (
                    event.time
                )
            elif event.kind == "net.wire.recv":
                recvs[(int(event.payload["src"]), party, int(event.payload["seq"]))] = (
                    event.time
                )
            elif event.kind == "live.clock.sample":
                peer = int(event.payload["peer"])
                theta = float(event.payload["theta"])
                rtt = float(event.payload["rtt"])
                # party measured theta = clock_peer - clock_party; the
                # exchange's forward leg ran party -> peer.
                add_delta(party, peer, event.time, theta + rtt / 2.0)
                add_delta(peer, party, event.time, rtt / 2.0 - theta)
    for key, t_send in sends.items():
        t_recv = recvs.get(key)
        if t_recv is not None:
            add_delta(key[0], key[1], t_send, t_recv - t_send)
    return out


def estimate_pair(
    a: int,
    b: int,
    fwd: list[tuple[float, float]],
    back: list[tuple[float, float]],
) -> PairOffset | None:
    """Estimate ``clock_b - clock_a`` from one-way delta samples.

    Needs at least one sample in each direction.  Fits a drift term only
    when there are enough samples *and* the fitted slope explains more
    than the residual noise would (guarding against delay jitter
    masquerading as drift); the reported uncertainty is the min-filter
    bound plus the RMS residual of the matched samples around the fit.
    """
    if not fwd or not back:
        return None
    fwd = sorted(fwd)
    back = sorted(back)
    # Instantaneous theta samples: each forward delta paired with the
    # nearest-in-time backward delta, theta = (f - b) / 2.
    theta_samples: list[tuple[float, float]] = []
    j = 0
    for t, f in fwd:
        while j + 1 < len(back) and abs(back[j + 1][0] - t) <= abs(back[j][0] - t):
            j += 1
        tb, bd = back[j]
        theta_samples.append(((t + tb) / 2.0, (f - bd) / 2.0))
    if len(theta_samples) > MAX_FIT_SAMPLES:
        stride = len(theta_samples) // MAX_FIT_SAMPLES + 1
        theta_samples = theta_samples[::stride]

    drift = 0.0
    span = theta_samples[-1][0] - theta_samples[0][0] if theta_samples else 0.0
    if len(theta_samples) >= MIN_DRIFT_SAMPLES and span > 1e-9:
        n = len(theta_samples)
        mean_t = sum(t for t, _ in theta_samples) / n
        mean_th = sum(th for _, th in theta_samples) / n
        var_t = sum((t - mean_t) ** 2 for t, _ in theta_samples)
        if var_t > 0:
            cov = sum(
                (t - mean_t) * (th - mean_th) for t, th in theta_samples
            )
            slope = cov / var_t
            intercept = mean_th - slope * mean_t
            rms_fit = (
                sum(
                    (th - (intercept + slope * t)) ** 2
                    for t, th in theta_samples
                )
                / n
            ) ** 0.5
            # Accept the drift only when its total excursion over the
            # window clearly exceeds the residual noise around the fit.
            if abs(slope) * span > 4.0 * rms_fit:
                drift = slope

    # De-trend and min-filter: with drift removed the deltas are
    # delay + theta0 (fwd) and delay - theta0 (back), delays >= 0.
    min_f = min(f - drift * t for t, f in fwd)
    min_b = min(bd + drift * t for t, bd in back)
    offset = (min_f - min_b) / 2.0
    uncertainty = max((min_f + min_b) / 2.0, 0.0)
    rms = (
        sum(
            (th - (offset + drift * t)) ** 2 for t, th in theta_samples
        )
        / len(theta_samples)
    ) ** 0.5
    return PairOffset(
        a=a,
        b=b,
        offset=offset,
        drift=drift,
        uncertainty=uncertainty + rms,
        samples=len(fwd) + len(back),
    )


def _solve_weighted(
    parties: list[int],
    reference: int,
    pairs: list[PairOffset],
    value: str,
) -> dict[int, float]:
    """Weighted least squares for per-party offsets (or drifts).

    Minimises ``sum w_ab (x_b - x_a - v_ab)^2`` with ``x_ref = 0``;
    ``v_ab`` is the pair's ``offset`` or ``drift`` and ``w`` the inverse
    squared uncertainty.  Solved by Gaussian elimination on the normal
    equations (committee sizes are tiny).
    """
    unknowns = [p for p in parties if p != reference]
    if not unknowns:
        return {reference: 0.0}
    idx = {p: k for k, p in enumerate(unknowns)}
    m = len(unknowns)
    mat = [[0.0] * m for _ in range(m)]
    rhs = [0.0] * m
    for pair in pairs:
        w = 1.0 / max(pair.uncertainty, 1e-9) ** 2
        v = getattr(pair, value)
        ia = idx.get(pair.a)
        ib = idx.get(pair.b)
        if ib is not None:
            mat[ib][ib] += w
            rhs[ib] += w * v
            if ia is not None:
                mat[ib][ia] -= w
        if ia is not None:
            mat[ia][ia] += w
            rhs[ia] -= w * v
            if ib is not None:
                mat[ia][ib] -= w
    # Gaussian elimination with partial pivoting.
    for col in range(m):
        pivot = max(range(col, m), key=lambda r: abs(mat[r][col]))
        if abs(mat[pivot][col]) < 1e-30:
            continue  # disconnected party: left at 0
        mat[col], mat[pivot] = mat[pivot], mat[col]
        rhs[col], rhs[pivot] = rhs[pivot], rhs[col]
        for row in range(m):
            if row == col:
                continue
            factor = mat[row][col] / mat[col][col]
            if factor:
                for k in range(col, m):
                    mat[row][k] -= factor * mat[col][k]
                rhs[row] -= factor * rhs[col]
    solution = {reference: 0.0}
    for p, k in idx.items():
        solution[p] = rhs[k] / mat[k][k] if abs(mat[k][k]) > 1e-30 else 0.0
    return solution


def _uncertainty_paths(
    parties: list[int], reference: int, pairs: list[PairOffset]
) -> dict[int, float]:
    """Per-party uncertainty: cheapest pair-uncertainty path from the
    reference (Dijkstra; uncertainties compose additively along a path)."""
    adjacency: dict[int, list[tuple[int, float]]] = {p: [] for p in parties}
    for pair in pairs:
        adjacency[pair.a].append((pair.b, pair.uncertainty))
        adjacency[pair.b].append((pair.a, pair.uncertainty))
    dist = {p: float("inf") for p in parties}
    dist[reference] = 0.0
    todo = set(parties)
    while todo:
        current = min(todo, key=lambda p: dist[p])
        todo.discard(current)
        if dist[current] == float("inf"):
            break
        for neighbour, cost in adjacency[current]:
            if dist[current] + cost < dist[neighbour]:
                dist[neighbour] = dist[current] + cost
    return dist


def estimate_alignment(
    events_by_party: dict[int, list[TraceEvent]],
    reference: int | None = None,
) -> ClockAlignment:
    """Solve the per-party clock models from each party's raw events.

    ``events_by_party`` maps *process/party index* to that process's own
    (unaligned) events; the reference defaults to the lowest index.
    Parties with no usable path to the reference keep offset 0 with
    infinite uncertainty (the collector reports them).
    """
    parties = sorted(events_by_party)
    if not parties:
        raise CollectError("no parties to align")
    if reference is None:
        reference = parties[0]
    pairs = [
        estimate
        for (a, b), (fwd, back) in sorted(pair_deltas(events_by_party).items())
        if (estimate := estimate_pair(a, b, fwd, back)) is not None
    ]
    offsets = _solve_weighted(parties, reference, pairs, "offset")
    drifts = _solve_weighted(parties, reference, pairs, "drift")
    bounds = _uncertainty_paths(parties, reference, pairs)
    alignment = ClockAlignment(reference=reference, pairs=pairs)
    for party in parties:
        alignment.offsets[party] = PartyOffset(
            party=party,
            offset=offsets.get(party, 0.0),
            drift=drifts.get(party, 0.0),
            uncertainty=bounds.get(party, float("inf")),
        )
    return alignment


def align_events(
    events_by_party: dict[int, list[TraceEvent]], alignment: ClockAlignment
) -> list[TraceEvent]:
    """Shift every party's events onto the reference timeline and merge,
    sorted by aligned time."""
    merged: list[TraceEvent] = []
    for party, events in events_by_party.items():
        for event in events:
            merged.append(
                TraceEvent(
                    time=alignment.shift(party, event.time),
                    party=event.party,
                    protocol=event.protocol,
                    round=event.round,
                    kind=event.kind,
                    payload=event.payload,
                )
            )
    merged.sort(key=lambda e: e.time)
    return merged


# ---------------------------------------------------------------- collection


@dataclass
class CollectedRun:
    """Everything :func:`collect_run` produced for one run directory."""

    run_id: str
    cluster_id: str
    parties: list[int]
    alignment: ClockAlignment
    events: list[TraceEvent]
    meter: Meter
    results: dict[int, dict]
    merged_trace_path: str = ""
    merged_meter_path: str = ""
    alignment_path: str = ""


def collect_run(run_dir: str | pathlib.Path, *, write: bool = True) -> CollectedRun:
    """Merge one run directory's per-process traces and meters.

    Expects ``trace-<i>.jsonl`` files (with headers) plus optional
    ``meter-<i>.json`` and ``result-<i>.json``; refuses headerless
    traces, mixed ``run_id``s and unsupported schema versions.  When
    ``write`` is true the aligned artefacts (``merged-trace.jsonl``,
    ``merged-meter.json``, ``alignment.json``) are written back into the
    directory.
    """
    run_dir = pathlib.Path(run_dir)
    trace_files = sorted(run_dir.glob("trace-*.jsonl"))
    if not trace_files:
        raise CollectError(f"no trace-*.jsonl files in {run_dir}")
    events_by_party: dict[int, list[TraceEvent]] = {}
    run_ids: set[str] = set()
    cluster_ids: set[str] = set()
    for path in trace_files:
        header, events = read_jsonl_with_header(str(path))
        if header is None:
            raise CollectError(
                f"{path.name}: no trace header (re-run with a current "
                "`repro serve --trace`; headerless traces are not "
                "attributable to a run/party)"
            )
        schema = int(header.get("schema", 0))
        if schema > SCHEMA_VERSION or schema < 1:
            raise CollectError(
                f"{path.name}: unsupported trace schema {schema} "
                f"(this collector understands <= {SCHEMA_VERSION})"
            )
        party = int(header["party"])
        if party in events_by_party:
            raise CollectError(f"{path.name}: duplicate trace for party {party}")
        run_ids.add(str(header.get("run_id", "")))
        cluster_ids.add(str(header.get("cluster_id", "")))
        events_by_party[party] = events
    if len(run_ids) > 1:
        raise CollectError(
            f"mixed run_ids in {run_dir}: {sorted(run_ids)} — these traces "
            "are from different runs and must not be merged"
        )
    run_id = next(iter(run_ids))

    results: dict[int, dict] = {}
    for path in sorted(run_dir.glob("result-*.json")):
        data = json.loads(path.read_text(encoding="utf-8"))
        result_run = str(data.get("run_id", run_id))
        if result_run != run_id:
            raise CollectError(
                f"{path.name}: run_id {result_run!r} does not match the "
                f"traces' {run_id!r}"
            )
        results[int(data.get("index", -1))] = data

    meters = [
        Meter.read_json(str(path)) for path in sorted(run_dir.glob("meter-*.json"))
    ]
    meter = merge_meters(meters) if meters else Meter()

    alignment = estimate_alignment(events_by_party)
    events = align_events(events_by_party, alignment)

    collected = CollectedRun(
        run_id=run_id,
        cluster_id=next(iter(cluster_ids)) if cluster_ids else "",
        parties=sorted(events_by_party),
        alignment=alignment,
        events=events,
        meter=meter,
        results=results,
    )
    if write:
        merged_trace = run_dir / "merged-trace.jsonl"
        write_jsonl(
            events,
            str(merged_trace),
            header=trace_header(
                run_id=run_id,
                party=alignment.reference,
                cluster_id=collected.cluster_id,
                merged=True,
                parties=collected.parties,
                max_uncertainty_s=alignment.max_uncertainty,
            ),
        )
        merged_meter = run_dir / "merged-meter.json"
        meter.write_json(str(merged_meter))
        alignment_path = run_dir / "alignment.json"
        alignment_path.write_text(
            json.dumps(alignment.to_dict(), indent=2, sort_keys=True) + "\n",
            encoding="utf-8",
        )
        collected.merged_trace_path = str(merged_trace)
        collected.merged_meter_path = str(merged_meter)
        collected.alignment_path = str(alignment_path)
    return collected
