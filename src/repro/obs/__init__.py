"""repro.obs — structured tracing & observability for the simulator stack.

The paper's evaluation is reproduced from three aggregate metric streams
(:mod:`repro.sim.metrics`); this package records *why* a run produced its
numbers: per-round proposer elections, notarization/finalization timing,
gossip fan-out and adversary activations, as a stream of structured
events.  See ``docs/OBSERVABILITY.md`` for the full event schema and
worked examples, and :mod:`repro.analysis.trace` for reconstruction
queries (per-round latency breakdowns, message histograms, adversary
timelines).

Usage::

    from repro.obs import Tracer
    config = ClusterConfig(n=7, ..., tracer=Tracer())
    cluster = build_cluster(config)
    ...
    from repro.obs import write_jsonl
    write_jsonl(config.tracer.events(), "run.jsonl")

Tracing is off by default (:data:`NULL_TRACER` everywhere) and costs a
single branch per potential event when disabled.
"""

from .distributed import (
    SCHEMA_VERSION,
    ClockAlignment,
    CollectError,
    CollectedRun,
    PairOffset,
    PartyOffset,
    align_events,
    collect_run,
    estimate_alignment,
    estimate_pair,
    pair_deltas,
    trace_header,
)
from .export import read_jsonl, read_jsonl_with_header, write_jsonl
from .metrics import (
    METRICS,
    NULL_METER,
    Histogram,
    Meter,
    MeterLike,
    MetricSpec,
    NamespacedMeter,
    NullMeter,
    UnknownMetric,
    format_meter,
    merge_meters,
    namespaced_meter,
    register_metric,
)
from .registry import EVENT_KINDS, EventKind, register
from .tracer import (
    DEFAULT_CAPACITY,
    NULL_TRACER,
    NamespacedTracer,
    NullTracer,
    TraceEvent,
    Tracer,
    TracerLike,
    UnknownEventKind,
    namespaced_tracer,
    short_id,
)

__all__ = [
    "ClockAlignment",
    "CollectError",
    "CollectedRun",
    "DEFAULT_CAPACITY",
    "EVENT_KINDS",
    "EventKind",
    "Histogram",
    "METRICS",
    "Meter",
    "MeterLike",
    "MetricSpec",
    "NULL_METER",
    "NULL_TRACER",
    "NamespacedMeter",
    "NamespacedTracer",
    "NullMeter",
    "NullTracer",
    "PairOffset",
    "PartyOffset",
    "SCHEMA_VERSION",
    "TraceEvent",
    "Tracer",
    "TracerLike",
    "UnknownEventKind",
    "UnknownMetric",
    "align_events",
    "collect_run",
    "estimate_alignment",
    "estimate_pair",
    "format_meter",
    "merge_meters",
    "namespaced_meter",
    "namespaced_tracer",
    "pair_deltas",
    "read_jsonl",
    "read_jsonl_with_header",
    "register",
    "register_metric",
    "short_id",
    "trace_header",
    "write_jsonl",
]
