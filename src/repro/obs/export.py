"""JSONL import/export for traces.

One JSON object per line, in emit order, with the exact field layout of
:meth:`repro.obs.TraceEvent.to_dict`:

    {"time": 0.15, "party": 3, "protocol": "ICC0", "round": 1,
     "kind": "icc.block.proposed", "payload": {"block": "9f3a...", ...}}

Round-trips losslessly (``tests/obs`` pins this).  Payload values that are
raw ``bytes`` are converted to hex defensively; emit sites should already
pass JSON-safe values.

Live runs prepend a **header line**: a JSON object carrying
``{"trace_header": {"schema": 1, "run_id": ..., "party": ...,
"cluster_id": ...}}`` that makes a per-process export self-identifying
(see :mod:`repro.obs.distributed`).  :func:`read_jsonl` skips header
lines transparently; :func:`read_jsonl_with_header` returns them.
"""

from __future__ import annotations

import json
from typing import IO, Iterable, Mapping

from .tracer import TraceEvent

#: Key that marks a JSONL line as a trace header rather than an event.
HEADER_KEY = "trace_header"


def _json_safe(value: object) -> object:
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return value


def write_jsonl(
    events: Iterable[TraceEvent],
    path_or_file: str | IO[str],
    *,
    header: Mapping | None = None,
) -> int:
    """Write events as JSONL; returns the number written.

    When ``header`` is given it is written first as
    ``{"trace_header": {...}}`` — one extra line, not counted in the
    return value.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            return write_jsonl(events, handle, header=header)
    if header is not None:
        path_or_file.write(
            json.dumps({HEADER_KEY: _json_safe(dict(header))}, sort_keys=True) + "\n"
        )
    count = 0
    for event in events:
        record = event.to_dict()
        record["payload"] = _json_safe(record["payload"])
        path_or_file.write(json.dumps(record, sort_keys=True) + "\n")
        count += 1
    return count


def read_jsonl(path_or_file: str | IO[str]) -> list[TraceEvent]:
    """Read a JSONL trace back into :class:`TraceEvent` objects.

    Header lines (``{"trace_header": ...}``) are skipped, so traces with
    and without headers both load.
    """
    return read_jsonl_with_header(path_or_file)[1]


def read_jsonl_with_header(
    path_or_file: str | IO[str],
) -> tuple[dict | None, list[TraceEvent]]:
    """Read a JSONL trace, returning ``(header, events)``.

    ``header`` is the dict under the ``trace_header`` key of the first
    header line, or None for headerless (simulator-era) traces.
    """
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            return read_jsonl_with_header(handle)
    header: dict | None = None
    events: list[TraceEvent] = []
    for line in path_or_file:
        line = line.strip()
        if not line:
            continue
        record = json.loads(line)
        if HEADER_KEY in record:
            if header is None:
                header = dict(record[HEADER_KEY])
            continue
        events.append(TraceEvent.from_dict(record))
    return header, events
