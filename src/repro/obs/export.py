"""JSONL import/export for traces.

One JSON object per line, in emit order, with the exact field layout of
:meth:`repro.obs.TraceEvent.to_dict`:

    {"time": 0.15, "party": 3, "protocol": "ICC0", "round": 1,
     "kind": "icc.block.proposed", "payload": {"block": "9f3a...", ...}}

Round-trips losslessly (``tests/obs`` pins this).  Payload values that are
raw ``bytes`` are converted to hex defensively; emit sites should already
pass JSON-safe values.
"""

from __future__ import annotations

import json
from typing import IO, Iterable

from .tracer import TraceEvent


def _json_safe(value: object) -> object:
    if isinstance(value, (bytes, bytearray)):
        return bytes(value).hex()
    if isinstance(value, (list, tuple)):
        return [_json_safe(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _json_safe(v) for k, v in value.items()}
    return value


def write_jsonl(events: Iterable[TraceEvent], path_or_file: str | IO[str]) -> int:
    """Write events as JSONL; returns the number written."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "w", encoding="utf-8") as handle:
            return write_jsonl(events, handle)
    count = 0
    for event in events:
        record = event.to_dict()
        record["payload"] = _json_safe(record["payload"])
        path_or_file.write(json.dumps(record, sort_keys=True) + "\n")
        count += 1
    return count


def read_jsonl(path_or_file: str | IO[str]) -> list[TraceEvent]:
    """Read a JSONL trace back into :class:`TraceEvent` objects."""
    if isinstance(path_or_file, str):
        with open(path_or_file, "r", encoding="utf-8") as handle:
            return read_jsonl(handle)
    events: list[TraceEvent] = []
    for line in path_or_file:
        line = line.strip()
        if not line:
            continue
        events.append(TraceEvent.from_dict(json.loads(line)))
    return events
