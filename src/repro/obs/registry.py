"""The trace event-kind registry: every kind the tracing layer may emit.

Each :class:`EventKind` names the emitting module, describes the event and
declares its payload fields.  :meth:`repro.obs.Tracer.emit` rejects kinds
that are not registered here, so the registry is the single source of truth
for the schema — ``docs/OBSERVABILITY.md`` documents exactly this set and a
test (``tests/obs/test_schema_docs.py``) cross-checks the two.

Field values must be JSON-safe (str/int/float/bool/None or lists thereof);
block and artifact identities are short hex prefixes (see
:func:`repro.obs.short_id`).
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True)
class EventKind:
    """Schema entry for one trace event kind."""

    name: str
    module: str  # dotted module that emits it
    description: str
    fields: tuple[str, ...] = ()


#: name -> spec, populated below via :func:`register`.
EVENT_KINDS: dict[str, EventKind] = {}


def register(name: str, module: str, description: str, fields: tuple[str, ...] = ()) -> EventKind:
    """Register an event kind (at import time; duplicate names are bugs)."""
    if name in EVENT_KINDS:
        raise ValueError(f"duplicate trace event kind {name!r}")
    spec = EventKind(name=name, module=module, description=description, fields=fields)
    EVENT_KINDS[name] = spec
    return spec


# -- tracer self-reporting ----------------------------------------------------

register(
    "trace.dropped", "repro.obs.tracer",
    "Synthetic summary event appended by Tracer.export_events() when the "
    "ring buffer evicted events: `dropped` of `emitted` events are missing "
    "from this export (`capacity` is the ring size).  Always the last "
    "event of a truncated export.",
    ("dropped", "emitted", "capacity"),
)

# -- simulator ----------------------------------------------------------------

register(
    "sim.run", "repro.sim.simulator",
    "One Simulation.run() drain finished (per run_for / run_until call).",
    ("events_processed", "until"),
)

# -- network ------------------------------------------------------------------

register(
    "net.broadcast", "repro.sim.network",
    "A party broadcast one message to all n parties (paper convention: "
    "counts as `copies` = n messages).",
    ("kind", "bytes", "copies"),
)
register(
    "net.send", "repro.sim.network",
    "Point-to-point send of one message (counts as 1 message).",
    ("kind", "bytes", "receiver"),
)
register(
    "net.multicast", "repro.sim.network",
    "Same message sent to a receiver subset (gossip overlay fan-out; "
    "counts as `receivers` messages).",
    ("kind", "bytes", "receivers"),
)
register(
    "net.crash", "repro.sim.network",
    "A party was silenced (crash failure or node going offline).",
    (),
)
register(
    "net.revive", "repro.sim.network",
    "A crashed/offline party rejoined.",
    (),
)
register(
    "net.partition", "repro.sim.network",
    "A partition was installed between `group` and the rest until `heal_time`.",
    ("group", "heal_time"),
)

# -- message pool -------------------------------------------------------------

register(
    "pool.invalid", "repro.core.pool",
    "A message failed cryptographic or structural verification and was dropped.",
    ("artifact",),
)
register(
    "pool.prune", "repro.core.pool",
    "Garbage collection discarded all artifacts below `before_round`.",
    ("before_round", "removed"),
)
register(
    "crypto.batch_verify", "repro.core.pool",
    "One deferred share-verification batch was flushed through the "
    "keyring's batch API (scheme = notary/final/beacon from the message "
    "pool, vote from baseline replicas).",
    ("scheme", "count", "invalid", "cache_hits", "cache_misses", "bisections"),
)

# -- random beacon ------------------------------------------------------------

register(
    "beacon.permutation", "repro.core.beacon",
    "A party derived the round's rank permutation from the beacon value "
    "(the proposer election: `leader` is the rank-0 party, `rank` is the "
    "tracing party's own rank).",
    ("leader", "rank"),
)

# -- ICC protocol core --------------------------------------------------------

register(
    "icc.beacon.computed", "repro.core.icc0",
    "A party combined t+1 shares into the round's beacon value R_k.",
    (),
)
register(
    "icc.round.enter", "repro.core.icc0",
    "A party entered a round (t0 of Figure 1; beacon value known).",
    ("rank",),
)
register(
    "icc.block.proposed", "repro.core.icc0",
    "Clause (b): a party proposed a block.",
    ("block", "parent", "payload_bytes", "rank"),
)
register(
    "icc.block.echoed", "repro.core.icc0",
    "Clause (c): a party relayed another proposer's block plus artifacts.",
    ("block", "rank"),
)
register(
    "icc.share.notarization", "repro.core.icc0",
    "A party broadcast its notarization share for a block.",
    ("block",),
)
register(
    "icc.share.finalization", "repro.core.icc0",
    "A party broadcast its finalization share for a block.",
    ("block",),
)
register(
    "icc.rank.disqualified", "repro.core.icc0",
    "Clause (c): a proposer rank was disqualified (two supported blocks).",
    ("rank",),
)
register(
    "icc.round.done", "repro.core.icc0",
    "Clause (a): a party saw (or combined) a notarization for the round "
    "and moved on; `combined` is True when this party aggregated the "
    "shares itself, `supported` is |N| (blocks it notarization-shared).",
    ("block", "combined", "supported"),
)
register(
    "icc.finalization", "repro.core.icc0",
    "Figure 2: a party saw (or combined, per `combined`) a finalization.",
    ("block", "combined"),
)
register(
    "icc.block.committed", "repro.core.icc0",
    "Figure 2: a party appended a finalized block to its output log.",
    ("block", "proposer", "payload_bytes"),
)
register(
    "icc.artifact.gossip", "repro.core.icc1",
    "ICC1: an artifact fully received via the gossip sub-layer entered the pool.",
    ("artifact",),
)
register(
    "rbc.disperse", "repro.core.icc2",
    "ICC2: a party dispersed a serialized block through reliable broadcast.",
    ("block", "bytes"),
)
register(
    "rbc.deliver", "repro.core.icc2",
    "ICC2: a reliable-broadcast instance delivered a reconstructed block.",
    ("dealer", "bytes"),
)
register(
    "rbc.undecodable", "repro.core.icc2",
    "ICC2: a completed RBC instance carried bytes that do not decode to a block.",
    ("dealer",),
)

# -- gossip sub-layer ---------------------------------------------------------

register(
    "gossip.publish", "repro.gossip.protocol",
    "A locally created artifact was injected into the overlay (`push` is "
    "True for small artifacts flooded directly, False for advertised ones).",
    ("id", "kind", "bytes", "push"),
)
register(
    "gossip.request", "repro.gossip.protocol",
    "A node requested an advertised artifact body from one advertiser.",
    ("id", "target", "cycle"),
)
register(
    "gossip.deliver", "repro.gossip.protocol",
    "A node obtained an artifact body from the overlay (`via` is "
    "'push' or 'request').",
    ("id", "kind", "bytes", "via"),
)
register(
    "gossip.giveup", "repro.gossip.protocol",
    "A node exhausted its request retry budget for an artifact "
    "(a fresh advert re-arms it).",
    ("id", "cycles"),
)

# -- baselines ----------------------------------------------------------------

register(
    "baseline.commit", "repro.baselines.common",
    "A baseline replica (PBFT/HotStuff/Tendermint) committed a batch.",
    ("batch", "proposer"),
)
register(
    "hotstuff.propose", "repro.baselines.hotstuff",
    "A HotStuff leader proposed a node for its view.",
    ("view", "batch"),
)
register(
    "hotstuff.timeout", "repro.baselines.hotstuff",
    "A HotStuff replica timed out and sent NewView (pacemaker fired).",
    ("view",),
)
register(
    "pbft.propose", "repro.baselines.pbft",
    "A PBFT primary pre-prepared a batch.",
    ("view", "batch"),
)
register(
    "pbft.viewchange", "repro.baselines.pbft",
    "A PBFT replica installed a new view after a quorum of view-change votes.",
    ("new_view",),
)
register(
    "tendermint.propose", "repro.baselines.tendermint",
    "A Tendermint proposer broadcast a proposal for (height, round).",
    ("tm_round", "batch"),
)
register(
    "tendermint.decide", "repro.baselines.tendermint",
    "A Tendermint validator decided a height (before timeout_commit).",
    ("batch",),
)

# -- fault injection ----------------------------------------------------------

register(
    "fault.inject", "repro.faults.inject",
    "A fault scenario was installed on the cluster (`events` is the "
    "schedule length, `seed` the scenario's own fault-decision seed).",
    ("scenario", "seed", "events"),
)
register(
    "fault.crash", "repro.faults.inject",
    "A scheduled CrashFault fired (the net.crash event follows).",
    (),
)
register(
    "fault.recover", "repro.faults.inject",
    "A scheduled RecoverFault fired (the net.revive event follows).",
    (),
)
register(
    "fault.partition", "repro.faults.inject",
    "A scheduled PartitionFault installed a partition between `group` "
    "and the rest until `heal_time`.",
    ("group", "heal_time"),
)
register(
    "fault.drop", "repro.faults.inject",
    "A LinkFault dropped one delivery of a `kind` message to `receiver`.",
    ("kind", "receiver"),
)
register(
    "fault.duplicate", "repro.faults.inject",
    "A LinkFault delivered a `kind` message to `receiver` twice.",
    ("kind", "receiver"),
)
register(
    "fault.corrupt", "repro.faults.inject",
    "A LinkFault tampered a `kind` message in flight to `receiver` "
    "(signature/hash checks at the receiver must reject it).",
    ("kind", "receiver"),
)
register(
    "fault.delay", "repro.faults.inject",
    "A LinkFault, ClockSkewFault or OutageFault held one delivery of a "
    "`kind` message to `receiver` for `extra` additional seconds.",
    ("kind", "receiver", "extra"),
)
register(
    "fault.outage.begin", "repro.faults.inject",
    "An OutageFault window opened: the whole network is asynchronous "
    "`until` the window closes.",
    ("until",),
)
register(
    "fault.outage.end", "repro.faults.inject",
    "An OutageFault window closed; held deliveries land one base delay "
    "later.",
    (),
)

# -- load pipeline ------------------------------------------------------------

register(
    "load.batch.sealed", "repro.workloads.batching",
    "The batching payload source packed `commands` load requests "
    "(`bytes` on the wire) into a proposed block, leaving `queued` "
    "requests in the shared ingress queue.",
    ("commands", "bytes", "queued"),
)
register(
    "load.batch.auth", "repro.workloads.batching",
    "One batch authentication pass (ingress admission or pool block "
    "admission) verified `count` client requests in a single RLC "
    "combination; `invalid` were forged, isolated by `bisections` "
    "bisection probes.",
    ("count", "invalid", "bisections"),
)
register(
    "load.admission.reject", "repro.workloads.batching",
    "Admission control shed `count` authenticated arrivals because the "
    "ingress queue was at capacity (`queued` requests pending).",
    ("count", "queued"),
)

# -- sharding / xnet streams ---------------------------------------------------

register(
    "shard.xnet.transfer", "repro.smr.xnet",
    "A cross-subnet envelope finalized on `source` was sealed into a "
    "certified stream message (per-stream sequence number `seq`) and "
    "handed to the transfer fabric for `destination`.",
    ("source", "destination", "seq", "bytes"),
)
register(
    "shard.xnet.deliver", "repro.smr.xnet",
    "A stream message passed ingress certification (certificate + "
    "sequence check) and was submitted to the destination subnet.",
    ("source", "destination", "seq", "bytes"),
)
register(
    "shard.xnet.reject", "repro.smr.xnet",
    "A stream message (or stream-carried block command) failed ingress "
    "checks and was dropped; `reason` is one of cert/seq/version/"
    "malformed/unknown-destination/block-cert.",
    ("source", "destination", "seq", "reason"),
)
register(
    "shard.run", "repro.smr.sharding",
    "One ShardedDeployment run finished: `shards` clusters, aggregate "
    "`committed` finalized requests, `transfers`/`rejected` stream "
    "messages across the fabric.",
    ("shards", "committed", "transfers", "rejected"),
)

# -- experiment runner --------------------------------------------------------

register(
    "runner.run_start", "repro.experiments.runner",
    "The experiment runner dispatched one RunSpec (`run` is the spec's "
    "index in suite order, `jobs` the pool width; `time` is wall-clock "
    "seconds since execute() started, not simulation time).",
    ("run", "kind", "label", "jobs"),
)
register(
    "runner.run_end", "repro.experiments.runner",
    "One RunSpec finished; `wall_ms` is the run's wall-clock duration in "
    "the executing process.",
    ("run", "kind", "label", "jobs", "wall_ms"),
)

# -- adversary behaviours -----------------------------------------------------

register(
    "adv.equivocate", "repro.adversary.behaviors",
    "An equivocating proposer showed two conflicting blocks to the two "
    "halves of the network.",
    ("blocks",),
)
register(
    "adv.withhold.finalization", "repro.adversary.behaviors",
    "A corrupt party withheld its finalization share for a block.",
    ("block",),
)
register(
    "adv.withhold.notarization", "repro.adversary.behaviors",
    "A corrupt party withheld its notarization share for a block.",
    ("block",),
)
register(
    "adv.lazy.payload", "repro.adversary.behaviors",
    "A lazy leader substituted an empty payload for its proposal.",
    (),
)
register(
    "adv.slow.propose", "repro.adversary.behaviors",
    "A slow proposer released its (deliberately delayed) proposal.",
    ("lag",),
)
register(
    "adv.aggressive.sign", "repro.adversary.behaviors",
    "An aggressive Byzantine party signed notarization + finalization "
    "shares for a block, ignoring rank priority and delays.",
    ("block",),
)

# -- live transport (repro.net) -----------------------------------------------

register(
    "live.peer.connect", "repro.net.transport",
    "A TCP connection to/from `peer` came up (`direction` is \"out\" for "
    "our dialled link, \"in\" for an accepted one; `reconnect` marks a "
    "link that had been up before).",
    ("peer", "direction", "reconnect"),
)
register(
    "live.peer.disconnect", "repro.net.transport",
    "A TCP connection to/from `peer` went down (the outbound side will "
    "redial with exponential backoff).",
    ("peer", "direction"),
)
register(
    "live.frame.rejected", "repro.net.transport",
    "An inbound connection delivered a malformed, oversized or "
    "undecodable frame (`reason`) and was closed; `peer` is None when it "
    "failed before a valid HELLO.",
    ("peer", "reason"),
)
register(
    "net.wire.send", "repro.net.transport",
    "A message left this process for peer `dst` over the wire with "
    "per-link sequence number `seq`; pairs with the receiver's "
    "`net.wire.recv` keyed by (src, dst, seq) to form a causal "
    "wire-transit span (`kind` is the message class, `bytes` the encoded "
    "frame size).",
    ("dst", "seq", "kind", "bytes"),
)
register(
    "net.wire.recv", "repro.net.transport",
    "A message from peer `src` with per-link sequence number `seq` was "
    "delivered for the first time; the matching `net.wire.send` on the "
    "sender closes the wire-transit span.",
    ("src", "seq", "kind", "bytes"),
)
register(
    "live.clock.sample", "repro.net.transport",
    "An NTP-style ping sample for `peer` completed over the HELLO/ACK "
    "exchange: `theta` is the instantaneous offset estimate "
    "(peer clock minus ours, seconds), `rtt` the round-trip time minus "
    "remote hold time; the distributed-trace collector feeds these into "
    "clock alignment.",
    ("peer", "theta", "rtt"),
)
register(
    "live.stat.request", "repro.net.transport",
    "This process answered a STAT frame with its current meter/state "
    "snapshot (the `repro top` polling endpoint).",
    (),
)
