"""Per-run metric aggregation: counters, gauges and fixed-bucket histograms.

The tracing layer (:mod:`repro.obs.tracer`) records *events* — what
happened and when.  This module records *aggregates*: how many, how big,
how long, in a form that is cheap to keep per run and cheap to **merge**
across the parallel runner's workers (every instrument type supports
``merge``; merging K per-run meters yields the suite-wide view).

Design mirrors the tracer exactly:

* **Zero cost when disabled.**  The default meter everywhere is
  :data:`NULL_METER`, whose ``enabled`` is False; every record site in
  protocol code is guarded by ``if meter.enabled:`` so a disabled run
  pays one attribute load and one branch per potential sample.
* **No behavioural footprint.**  Recording never touches the simulation
  RNG, clock or event queue, so runs are bit-identical with metrics on
  or off (pinned by ``tests/obs/test_meter_parity.py`` — the same
  standard as the tracer's parity test).
* **A closed schema.**  :meth:`Meter.count` / :meth:`Meter.gauge` /
  :meth:`Meter.observe` reject names not registered in :data:`METRICS`,
  so the registry below is the single source of truth;
  ``docs/OBSERVABILITY.md`` documents exactly this set and
  ``tools/check_docs.py`` cross-checks the two textually (same pattern
  as the CLI-subcommand check).

Instrument semantics:

* **counter** — monotonically increasing int; merge = sum.
* **gauge** — last-written value; merge = max (the conservative choice
  for the capacity-style gauges registered here, documented per metric).
* **histogram** — fixed bucket boundaries declared at registration time,
  so histograms from different runs always merge bucket-wise; tracks
  ``count``/``sum``/``min``/``max`` alongside the buckets.
"""

from __future__ import annotations

import json
from bisect import bisect_left
from dataclasses import dataclass, field
from typing import IO, Iterable, Mapping, Protocol, Sequence, runtime_checkable

#: Bucket sets shared by several histograms (seconds / bytes / sizes).
LATENCY_BUCKETS = (0.01, 0.025, 0.05, 0.1, 0.2, 0.4, 0.8, 1.6, 3.2, 10.0)
BYTES_BUCKETS = (64.0, 256.0, 1024.0, 4096.0, 16384.0, 65536.0, 262144.0, 1048576.0)
COUNT_BUCKETS = (1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0, 128.0, 256.0)


@dataclass(frozen=True)
class MetricSpec:
    """Schema entry for one registered metric."""

    name: str
    kind: str  # "counter" | "gauge" | "histogram"
    module: str  # dotted module that records it
    description: str
    unit: str = ""
    buckets: tuple[float, ...] = ()  # histograms only; ascending upper bounds

    def __post_init__(self) -> None:
        if self.kind not in ("counter", "gauge", "histogram"):
            raise ValueError(f"unknown metric kind {self.kind!r}")
        if self.kind == "histogram":
            if not self.buckets:
                raise ValueError(f"histogram {self.name!r} needs bucket bounds")
            if list(self.buckets) != sorted(self.buckets):
                raise ValueError(f"histogram {self.name!r} buckets not ascending")
        elif self.buckets:
            raise ValueError(f"{self.kind} {self.name!r} must not declare buckets")


#: name -> spec, populated below via :func:`register_metric`.
METRICS: dict[str, MetricSpec] = {}


def register_metric(
    name: str,
    kind: str,
    module: str,
    description: str,
    unit: str = "",
    buckets: tuple[float, ...] = (),
) -> MetricSpec:
    """Register a metric (at import time; duplicate names are bugs)."""
    if name in METRICS:
        raise ValueError(f"duplicate metric name {name!r}")
    spec = MetricSpec(
        name=name, kind=kind, module=module, description=description,
        unit=unit, buckets=buckets,
    )
    METRICS[name] = spec
    return spec


class UnknownMetric(KeyError):
    """A record call used a name that is not in the registry (a schema bug)."""


class MetricKindMismatch(TypeError):
    """A record call used the wrong instrument for a registered metric."""


@runtime_checkable
class MeterLike(Protocol):
    """What a meter must provide to be installed on a Simulation or passed
    as ``ClusterConfig.meter``: an ``enabled`` flag that record sites guard
    on, plus the three instruments.  :class:`Meter`, :class:`NullMeter` and
    :class:`NamespacedMeter` all satisfy it."""

    def count(self, name: str, inc: int = 1) -> None: ...

    def gauge(self, name: str, value: float) -> None: ...

    def observe(self, name: str, value: float) -> None: ...


# -- simulator ----------------------------------------------------------------

register_metric(
    "sim.events.processed", "counter", "repro.sim.simulator",
    "Discrete events drained by the simulation loop.",
)
register_metric(
    "sim.duration", "gauge", "repro.sim.simulator",
    "Final virtual clock of the run (merge = max across runs).", unit="s",
)

# -- network ------------------------------------------------------------------

register_metric(
    "net.messages", "counter", "repro.sim.network",
    "Point-to-point messages sent, paper convention (a broadcast counts n).",
)
register_metric(
    "net.bytes", "counter", "repro.sim.network",
    "Wire bytes sent (broadcast charges n-1 copies; self-delivery free).",
    unit="B",
)
register_metric(
    "net.message.bytes", "histogram", "repro.sim.network",
    "Wire size of each transmitted message (one sample per broadcast/send/"
    "multicast, before fan-out).",
    unit="B", buckets=BYTES_BUCKETS,
)

# -- message pool -------------------------------------------------------------

register_metric(
    "pool.invalid", "counter", "repro.core.pool",
    "Messages dropped by cryptographic or structural verification.",
)
register_metric(
    "crypto.batch.size", "histogram", "repro.core.pool",
    "Shares per deferred batch-verification flush (one sample per "
    "crypto.batch_verify trace event).",
    buckets=COUNT_BUCKETS,
)

# -- ICC protocol core --------------------------------------------------------

register_metric(
    "icc.rounds.finished", "counter", "repro.core.icc0",
    "Rounds finished (clause (a) fired) summed over parties.",
)
register_metric(
    "icc.blocks.proposed", "counter", "repro.core.icc0",
    "Blocks proposed (clause (b)) summed over parties.",
)
register_metric(
    "icc.blocks.committed", "counter", "repro.core.icc0",
    "Blocks appended to output logs, summed over observers.",
)
register_metric(
    "icc.round.duration", "histogram", "repro.core.icc0",
    "Per-party round duration: clause (a) time minus round entry time.",
    unit="s", buckets=LATENCY_BUCKETS,
)
register_metric(
    "icc.commit.latency", "histogram", "repro.core.icc0",
    "Propose-to-commit latency, one sample per commit with known propose "
    "time (same convention as Metrics.commit_latencies).",
    unit="s", buckets=LATENCY_BUCKETS,
)

# -- load pipeline ------------------------------------------------------------

register_metric(
    "load.submitted", "counter", "repro.workloads.batching",
    "Client requests accepted into the shared ingress queue (after batch "
    "authentication, deduplication and admission control).",
)
register_metric(
    "load.rejected", "counter", "repro.workloads.batching",
    "Client requests shed by admission control (ingress queue at "
    "queue_cap).",
)
register_metric(
    "load.auth.invalid", "counter", "repro.workloads.batching",
    "Client requests dropped at ingress because batch authentication "
    "flagged them forged (isolated by RLC bisection).",
)
register_metric(
    "load.committed", "counter", "repro.workloads.batching",
    "Client requests finalized by consensus (observed on the first honest "
    "party's commit stream).",
)
register_metric(
    "load.latency", "histogram", "repro.workloads.batching",
    "Per-request end-to-end latency: arrival at the ingress layer to "
    "finalization on the observer party.",
    unit="s", buckets=LATENCY_BUCKETS,
)
register_metric(
    "load.batch.commands", "histogram", "repro.workloads.batching",
    "Load requests packed per proposed block (one sample per getPayload "
    "call on the batching payload source).",
    buckets=COUNT_BUCKETS,
)

# -- gossip sub-layer ---------------------------------------------------------

register_metric(
    "gossip.delivered", "counter", "repro.gossip.protocol",
    "Artifact bodies obtained from the overlay (push or request).",
)

# -- baselines ----------------------------------------------------------------

register_metric(
    "baseline.commits", "counter", "repro.baselines.common",
    "Batches committed by baseline replicas (PBFT/HotStuff/Tendermint).",
)
register_metric(
    "baseline.commit.latency", "histogram", "repro.baselines.common",
    "Propose-to-commit latency of baseline batches with known propose time.",
    unit="s", buckets=LATENCY_BUCKETS,
)

# -- sharding / xnet streams ---------------------------------------------------

register_metric(
    "shard.xnet.transfers", "counter", "repro.smr.xnet",
    "Certified stream messages emitted onto the xnet fabric (one per "
    "cross-subnet envelope observed on a source commit stream).",
)
register_metric(
    "shard.xnet.delivered", "counter", "repro.smr.xnet",
    "Stream messages accepted at destination ingress (certificate and "
    "per-stream sequence checks passed).",
)
register_metric(
    "shard.xnet.rejected", "counter", "repro.smr.xnet",
    "Stream messages dropped at ingress: bad certificate, out-of-order "
    "sequence, unknown version or malformed wire bytes.",
)
register_metric(
    "shard.cross.committed", "counter", "repro.smr.sharding",
    "Cross-shard requests finalized on their destination shard (the end "
    "of the two-hop source-commit -> stream -> destination-commit path).",
)
register_metric(
    "shard.cross.latency", "histogram", "repro.smr.sharding",
    "End-to-end cross-shard latency: arrival at the origin shard's "
    "ingress to finalization on the destination shard.",
    unit="s", buckets=LATENCY_BUCKETS,
)

# -- live transport (repro.net) -----------------------------------------------

register_metric(
    "live.connects", "counter", "repro.net.transport",
    "TCP connections established (both directions; includes reconnects).",
)
register_metric(
    "live.reconnects", "counter", "repro.net.transport",
    "Connections re-established after a drop (outbound redials plus "
    "superseding inbound accepts).",
)
register_metric(
    "live.dup_connections", "counter", "repro.net.transport",
    "Duplicate inbound connections superseded (newest-wins policy).",
)
register_metric(
    "live.frames.rejected", "counter", "repro.net.transport",
    "Inbound frames rejected as malformed/oversized/undecodable (each "
    "closes its connection).",
)
register_metric(
    "live.clock.samples", "counter", "repro.net.transport",
    "NTP-style clock-offset samples recorded from timestamped ACK frames "
    "(inputs to distributed-trace clock alignment).",
)
register_metric(
    "live.stat.requests", "counter", "repro.net.transport",
    "STAT frames answered with a meter/state snapshot (`repro top` polls).",
)


# ---------------------------------------------------------------- instruments


@dataclass
class Histogram:
    """Fixed-bucket histogram; bucket ``i`` counts samples <= bounds[i],
    with one implicit overflow bucket for samples above the last bound."""

    bounds: tuple[float, ...]
    counts: list[int] = field(default_factory=list)
    count: int = 0
    total: float = 0.0
    min: float | None = None
    max: float | None = None

    def __post_init__(self) -> None:
        if not self.counts:
            self.counts = [0] * (len(self.bounds) + 1)
        elif len(self.counts) != len(self.bounds) + 1:
            raise ValueError("histogram counts do not match bucket bounds")

    def observe(self, value: float) -> None:
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        self.min = value if self.min is None else min(self.min, value)
        self.max = value if self.max is None else max(self.max, value)

    def merge(self, other: "Histogram") -> None:
        if other.bounds != self.bounds:
            raise ValueError("cannot merge histograms with different buckets")
        for i, c in enumerate(other.counts):
            self.counts[i] += c
        self.count += other.count
        self.total += other.total
        for attr, pick in (("min", min), ("max", max)):
            theirs = getattr(other, attr)
            if theirs is not None:
                mine = getattr(self, attr)
                setattr(self, attr, theirs if mine is None else pick(mine, theirs))

    @property
    def mean(self) -> float | None:
        return self.total / self.count if self.count else None

    def as_dict(self) -> dict:
        return {
            "bounds": list(self.bounds),
            "counts": list(self.counts),
            "count": self.count,
            "sum": self.total,
            "min": self.min,
            "max": self.max,
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Histogram":
        return cls(
            bounds=tuple(float(b) for b in data["bounds"]),
            counts=[int(c) for c in data["counts"]],
            count=int(data["count"]),
            total=float(data["sum"]),
            min=None if data.get("min") is None else float(data["min"]),
            max=None if data.get("max") is None else float(data["max"]),
        )


class Meter:
    """In-memory metric collector: the aggregating twin of :class:`Tracer`."""

    enabled = True

    def __init__(self) -> None:
        self._counters: dict[str, int] = {}
        self._gauges: dict[str, float] = {}
        self._histograms: dict[str, Histogram] = {}

    # -- recording ---------------------------------------------------------

    def _spec(self, name: str, kind: str) -> MetricSpec:
        spec = METRICS.get(name)
        if spec is None and "/" in name:
            # Namespaced record ("shard0/net.messages"): the schema entry
            # lives under the bare name.  Registry names never contain '/'
            # (they are dotted), so the split is unambiguous.
            spec = METRICS.get(name.rsplit("/", 1)[-1])
        if spec is None:
            raise UnknownMetric(
                f"metric {name!r} is not registered in repro.obs.metrics"
            )
        if spec.kind != kind:
            raise MetricKindMismatch(
                f"metric {name!r} is a {spec.kind}, recorded as a {kind}"
            )
        return spec

    def count(self, name: str, inc: int = 1) -> None:
        """Increment a registered counter."""
        self._spec(name, "counter")
        self._counters[name] = self._counters.get(name, 0) + inc

    def gauge(self, name: str, value: float) -> None:
        """Set a registered gauge to its latest value."""
        self._spec(name, "gauge")
        self._gauges[name] = value

    def observe(self, name: str, value: float) -> None:
        """Add one sample to a registered histogram."""
        spec = self._spec(name, "histogram")
        hist = self._histograms.get(name)
        if hist is None:
            hist = self._histograms[name] = Histogram(bounds=spec.buckets)
        hist.observe(value)

    # -- queries -----------------------------------------------------------

    def counter_value(self, name: str) -> int:
        return self._counters.get(name, 0)

    def gauge_value(self, name: str) -> float | None:
        return self._gauges.get(name)

    def histogram(self, name: str) -> Histogram | None:
        return self._histograms.get(name)

    def names(self) -> list[str]:
        """Sorted names of every metric this meter has recorded."""
        return sorted(
            set(self._counters) | set(self._gauges) | set(self._histograms)
        )

    def __bool__(self) -> bool:
        return bool(self._counters or self._gauges or self._histograms)

    # -- merge / export ----------------------------------------------------

    def merge(self, other: "Meter") -> "Meter":
        """Fold another meter into this one (counter sum, gauge max,
        histogram bucket-wise sum); returns self for chaining."""
        for name, value in other._counters.items():
            self._counters[name] = self._counters.get(name, 0) + value
        for name, value in other._gauges.items():
            mine = self._gauges.get(name)
            self._gauges[name] = value if mine is None else max(mine, value)
        for name, hist in other._histograms.items():
            mine_h = self._histograms.get(name)
            if mine_h is None:
                self._histograms[name] = Histogram(
                    bounds=hist.bounds, counts=list(hist.counts),
                    count=hist.count, total=hist.total,
                    min=hist.min, max=hist.max,
                )
            else:
                mine_h.merge(hist)
        return self

    def to_dict(self) -> dict:
        """Plain-dict snapshot (JSON-safe, merge-compatible via from_dict)."""
        return {
            "counters": dict(sorted(self._counters.items())),
            "gauges": dict(sorted(self._gauges.items())),
            "histograms": {
                name: self._histograms[name].as_dict()
                for name in sorted(self._histograms)
            },
        }

    @classmethod
    def from_dict(cls, data: Mapping) -> "Meter":
        meter = cls()
        meter._counters = {str(k): int(v) for k, v in data.get("counters", {}).items()}
        meter._gauges = {str(k): float(v) for k, v in data.get("gauges", {}).items()}
        meter._histograms = {
            str(k): Histogram.from_dict(v)
            for k, v in data.get("histograms", {}).items()
        }
        return meter

    def write_json(self, path_or_file: str | IO[str]) -> None:
        if isinstance(path_or_file, str):
            with open(path_or_file, "w", encoding="utf-8") as handle:
                self.write_json(handle)
            return
        json.dump(self.to_dict(), path_or_file, indent=2, sort_keys=True)
        path_or_file.write("\n")

    @classmethod
    def read_json(cls, path_or_file: str | IO[str]) -> "Meter":
        if isinstance(path_or_file, str):
            with open(path_or_file, "r", encoding="utf-8") as handle:
                return cls.read_json(handle)
        return cls.from_dict(json.load(path_or_file))


def merge_meters(meters: Iterable[Meter]) -> Meter:
    """Fold any number of meters (e.g. one per parallel run) into one."""
    merged = Meter()
    for meter in meters:
        merged.merge(meter)
    return merged


class NullMeter:
    """The zero-cost disabled meter: records nothing, stores nothing.

    ``enabled`` is False, so guarded record sites never compute sample
    values; a stray unguarded call is still a harmless no-op.
    """

    enabled = False

    def count(self, name: str, inc: int = 1) -> None:  # noqa: D102 - no-op
        pass

    def gauge(self, name: str, value: float) -> None:  # noqa: D102 - no-op
        pass

    def observe(self, name: str, value: float) -> None:  # noqa: D102 - no-op
        pass

    def counter_value(self, name: str) -> int:  # noqa: D102
        return 0

    def gauge_value(self, name: str) -> None:  # noqa: D102
        return None

    def histogram(self, name: str) -> None:  # noqa: D102
        return None

    def names(self) -> list[str]:  # noqa: D102
        return []

    def __bool__(self) -> bool:
        return False

    def to_dict(self) -> dict:  # noqa: D102
        return {"counters": {}, "gauges": {}, "histograms": {}}


class NamespacedMeter:
    """A namespaced view onto a shared meter sink.

    The aggregating twin of ``NamespacedTracer``: embedded clusters record
    through one of these, and every sample lands in the sink under
    ``"<namespace>/<name>"`` — so K clusters sharing one meter keep
    separable counters while :meth:`Meter._spec` still validates against
    the bare registry name.  Reads resolve the namespaced slice.
    """

    def __init__(self, sink: MeterLike, namespace: str) -> None:
        if "/" in namespace or not namespace:
            raise ValueError(f"meter namespace must be non-empty and '/'-free: {namespace!r}")
        self.sink = sink
        self.namespace = namespace
        self._prefix = namespace + "/"

    @property
    def enabled(self) -> bool:
        return bool(getattr(self.sink, "enabled", False))

    def count(self, name: str, inc: int = 1) -> None:
        self.sink.count(self._prefix + name, inc)

    def gauge(self, name: str, value: float) -> None:
        self.sink.gauge(self._prefix + name, value)

    def observe(self, name: str, value: float) -> None:
        self.sink.observe(self._prefix + name, value)

    # -- queries (resolve this namespace's slice of the sink) --------------

    def counter_value(self, name: str) -> int:
        return self.sink.counter_value(self._prefix + name)

    def gauge_value(self, name: str) -> float | None:
        return self.sink.gauge_value(self._prefix + name)

    def histogram(self, name: str) -> Histogram | None:
        return self.sink.histogram(self._prefix + name)

    def names(self) -> list[str]:
        """Bare metric names recorded under this namespace."""
        return sorted(
            n[len(self._prefix):]
            for n in self.sink.names()
            if n.startswith(self._prefix)
        )

    def __bool__(self) -> bool:
        return bool(self.names())


def namespaced_meter(sink: MeterLike, namespace: str) -> MeterLike:
    """A namespaced view of ``sink`` — or ``sink`` itself when it is
    disabled (no point wrapping a no-op; keeps the zero-cost guarantee)."""
    if not getattr(sink, "enabled", False):
        return sink
    return NamespacedMeter(sink, namespace)


#: The shared default meter; everything points here unless a run installs
#: a real :class:`Meter` (e.g. via ``ClusterConfig(meter=...)``).
NULL_METER = NullMeter()


def format_meter(meter: Meter, specs: Mapping[str, MetricSpec] = METRICS) -> str:
    """Human-readable multi-line rendering (the CLI's metrics block)."""
    lines: list[str] = []
    recorded = meter.names()
    counters = [n for n in recorded if n in meter._counters]
    gauges = [n for n in recorded if n in meter._gauges]
    hists = [n for n in recorded if n in meter._histograms]
    if counters:
        lines.append("counters:")
        for name in counters:
            lines.append(f"  {name:28s} {meter.counter_value(name)}")
    if gauges:
        lines.append("gauges:")
        for name in gauges:
            unit = specs[name].unit if name in specs else ""
            lines.append(f"  {name:28s} {meter.gauge_value(name):g} {unit}".rstrip())
    for name in hists:
        hist = meter.histogram(name)
        lines.append(
            f"histogram {name}: count={hist.count} mean={hist.mean:.6g} "
            f"min={hist.min:.6g} max={hist.max:.6g}"
        )
        edges = ["<=%g" % b for b in hist.bounds] + [">%g" % hist.bounds[-1]]
        for edge, count in zip(edges, hist.counts):
            if count:
                lines.append(f"  {edge:>12s}  {count}")
    return "\n".join(lines) if lines else "(no metrics recorded)"
