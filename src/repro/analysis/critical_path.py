"""Causal critical-path reconstruction from trace events.

Given a trace (a list of :class:`repro.obs.TraceEvent`, live or loaded
via :func:`repro.obs.read_jsonl`), rebuild the causal chain that gates
each finalized height and attribute its latency to protocol stages:

* ``propose_wait``          — round entered -> winning block proposed
* ``gossip_transit``        — proposal -> quorum-th notarization share cast
* ``notarization_quorum``   — quorum-th share cast -> first notarization
                              assembled (``icc.round.done``)
* ``finalization_quorum``   — notarization -> first finalization combined

Stage boundaries are taken from the earliest matching event and clamped
to be monotone, so the per-height stage durations *telescope*: their sum
is exactly the finalization latency ``first(icc.finalization) -
first(icc.round.enter)`` for that height.  Reports lean on this identity
(it is also asserted in the test-suite).

Baseline protocols (PBFT / HotStuff / Tendermint) commit batches rather
than notarize blocks; :func:`baseline_paths` reconstructs their simpler
two-stage path (``propose_wait`` then ``commit_quorum``) under the same
telescoping rule.

Everything here is pure post-processing: it never touches a live
simulation and works identically on in-memory events and JSONL files.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass

#: Stage names of an ICC critical path, in causal order.
ICC_STAGES = (
    "propose_wait",
    "gossip_transit",
    "notarization_quorum",
    "finalization_quorum",
)

#: Stage names of a baseline (PBFT/HotStuff/Tendermint) critical path.
BASELINE_STAGES = ("propose_wait", "commit_quorum")

_BASELINE_PROPOSE_KINDS = {
    "pbft.propose",
    "hotstuff.propose",
    "tendermint.propose",
}


@dataclass(frozen=True)
class Span:
    """One stage of a critical path: a named, half-open time interval."""

    stage: str
    start: float
    end: float

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclass(frozen=True)
class CriticalPath:
    """The causal chain gating one finalized height."""

    protocol: str
    round: int
    block: str | None
    spans: tuple[Span, ...]

    @property
    def entered(self) -> float:
        return self.spans[0].start

    @property
    def finalized(self) -> float:
        return self.spans[-1].end

    @property
    def total(self) -> float:
        """Sum of stage durations == finalized - entered (telescoping)."""
        return sum(span.duration for span in self.spans)

    def stage(self, name: str) -> Span:
        for span in self.spans:
            if span.stage == name:
                return span
        raise KeyError(name)


def _spans_from_boundaries(names, boundaries) -> tuple[Span, ...]:
    """Clamp boundaries monotone and pair them into telescoping spans."""
    clamped = []
    previous = boundaries[0]
    for value in boundaries:
        previous = max(previous, value)
        clamped.append(previous)
    return tuple(
        Span(stage=name, start=clamped[i], end=clamped[i + 1])
        for i, name in enumerate(names)
    )


def critical_paths(
    events,
    quorum: int | None = None,
    stages: tuple[str, str, str, str] = ICC_STAGES,
) -> list[CriticalPath]:
    """Reconstruct the critical path of every finalized ICC height.

    ``quorum`` is the notarization quorum ``n - t``; when None it is
    inferred as the number of distinct parties that entered rounds (the
    fault-free ``n``, i.e. ``t = 0`` is assumed).  Rounds that never
    finalized within the trace are skipped.  ``stages`` renames the four
    spans (the live mode labels the second stage ``wire_transit``, since
    over real sockets that interval is wire transmission rather than
    simulated gossip).
    """
    if len(stages) != len(ICC_STAGES):
        raise ValueError(f"expected {len(ICC_STAGES)} stage names, got {stages!r}")
    entered: dict[int, float] = {}
    finalized: dict[int, tuple[float, str | None]] = {}
    notarized: dict[int, float] = {}
    proposed: dict[tuple[int, str], float] = {}
    shares: dict[tuple[int, str], list[float]] = defaultdict(list)
    parties: set[int] = set()
    protocols: dict[int, str] = {}

    for event in events:
        kind = event.kind
        if not kind.startswith("icc."):
            continue
        rnd = event.round
        if rnd is None:
            continue
        if kind == "icc.round.enter":
            parties.add(event.party)
            protocols.setdefault(rnd, event.protocol)
            if rnd not in entered or event.time < entered[rnd]:
                entered[rnd] = event.time
        elif kind == "icc.block.proposed" or kind == "icc.block.echoed":
            block = event.payload.get("block")
            key = (rnd, block)
            if key not in proposed or event.time < proposed[key]:
                proposed[key] = event.time
        elif kind == "icc.share.notarization":
            shares[(rnd, event.payload.get("block"))].append(event.time)
        elif kind == "icc.round.done":
            if rnd not in notarized or event.time < notarized[rnd]:
                notarized[rnd] = event.time
        elif kind == "icc.finalization":
            if rnd not in finalized or event.time < finalized[rnd][0]:
                finalized[rnd] = (event.time, event.payload.get("block"))

    if quorum is None:
        quorum = max(len(parties), 1)

    paths: list[CriticalPath] = []
    for rnd in sorted(finalized):
        if rnd not in entered:
            continue  # truncated trace: the round's start fell off the ring
        t_enter = entered[rnd]
        t_final, block = finalized[rnd]
        t_notarized = notarized.get(rnd, t_final)
        t_propose = proposed.get((rnd, block), t_enter)
        cast_times = sorted(shares.get((rnd, block), ()))
        if cast_times:
            # The quorum-completing share was necessarily cast before the
            # notarization it enabled was assembled.
            t_quorum = min(
                cast_times[min(quorum, len(cast_times)) - 1], t_notarized
            )
        else:
            t_quorum = t_notarized
        spans = _spans_from_boundaries(
            stages,
            (t_enter, t_propose, t_quorum, t_notarized, t_final),
        )
        paths.append(
            CriticalPath(
                protocol=protocols.get(rnd, "icc"),
                round=rnd,
                block=block,
                spans=spans,
            )
        )
    return paths


def baseline_paths(events) -> list[CriticalPath]:
    """Critical paths of baseline commits (PBFT/HotStuff/Tendermint).

    Two stages per height: ``propose_wait`` (previous height's first
    commit — or the first observed propose — to this height's proposal)
    and ``commit_quorum`` (proposal to first commit).
    """
    proposed: dict[int, float] = {}
    committed: dict[int, tuple[float, str | None]] = {}
    protocols: dict[int, str] = {}

    for event in events:
        rnd = event.round
        if rnd is None:
            continue
        if event.kind in _BASELINE_PROPOSE_KINDS:
            protocols.setdefault(rnd, event.protocol)
            if rnd not in proposed or event.time < proposed[rnd]:
                proposed[rnd] = event.time
        elif event.kind == "baseline.commit":
            protocols.setdefault(rnd, event.protocol)
            block = event.payload.get("batch")
            if rnd not in committed or event.time < committed[rnd][0]:
                committed[rnd] = (event.time, block)

    paths: list[CriticalPath] = []
    previous_commit: float | None = None
    for rnd in sorted(committed):
        t_commit, block = committed[rnd]
        t_propose = proposed.get(rnd, t_commit)
        t_start = previous_commit if previous_commit is not None else t_propose
        spans = _spans_from_boundaries(
            BASELINE_STAGES, (t_start, t_propose, t_commit)
        )
        paths.append(
            CriticalPath(
                protocol=protocols.get(rnd, "baseline"),
                round=rnd,
                block=block,
                spans=spans,
            )
        )
        previous_commit = t_commit
    return paths


def stage_totals(paths) -> dict[str, float]:
    """Total time attributed to each stage across all paths."""
    totals: dict[str, float] = {}
    for path in paths:
        for span in path.spans:
            totals[span.stage] = totals.get(span.stage, 0.0) + span.duration
    return totals


def stage_means(paths) -> dict[str, float]:
    """Mean per-height duration of each stage (empty dict for no paths)."""
    if not paths:
        return {}
    count = len(paths)
    return {name: total / count for name, total in stage_totals(paths).items()}


def format_paths(paths) -> str:
    """Render paths as an aligned text table (one row per height)."""
    if not paths:
        return "no finalized heights in trace"
    stages = [span.stage for span in paths[0].spans]
    header = ["round", "block", *stages, "total"]
    rows = [header]
    for path in paths:
        rows.append(
            [
                str(path.round),
                (path.block or "-")[:8],
                *(f"{span.duration:.4f}" for span in path.spans),
                f"{path.total:.4f}",
            ]
        )
    widths = [max(len(row[i]) for row in rows) for i in range(len(header))]
    lines = []
    for i, row in enumerate(rows):
        lines.append("  ".join(cell.rjust(widths[j]) for j, cell in enumerate(row)))
        if i == 0:
            lines.append("  ".join("-" * w for w in widths))
    return "\n".join(lines)
