"""Reconstruct protocol behaviour from a trace event stream.

The functions here are the consumers of :mod:`repro.obs`: given the list
of :class:`~repro.obs.TraceEvent` records a run produced (from a live
``Tracer`` or re-loaded from a JSONL export), they rebuild the quantities
the paper's experiments report — per-round latency breakdowns
(propose → notarize → finalize → commit), message complexity per round,
and adversary-activation timelines.

Everything operates on plain event lists, so analyses compose: filter a
list first (by party, by protocol, by round window) and feed the slice to
any function below.  Each function documents which event kinds it reads;
all kinds are defined in :mod:`repro.obs.registry` and documented in
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

from collections import Counter
from dataclasses import dataclass
from typing import Iterable, Mapping, Sequence

from ..obs.tracer import TraceEvent

#: Event kinds counted as network transmissions, with the payload field
#: giving the number of point-to-point messages each event represents.
_MESSAGE_KINDS = {
    "net.broadcast": "copies",
    "net.multicast": "receivers",
    "net.send": None,  # always exactly one message
}

#: Event kinds emitted only by adversarial (Byzantine) behaviours.
ADVERSARY_KINDS = frozenset(
    {
        "adv.equivocate",
        "adv.withhold.finalization",
        "adv.withhold.notarization",
        "adv.lazy.payload",
        "adv.slow.propose",
        "adv.aggressive.sign",
    }
)


def _first_by_key(
    events: Iterable[TraceEvent], kind: str, key_field: str
) -> dict[object, TraceEvent]:
    """Earliest event of ``kind`` per distinct ``payload[key_field]``."""
    out: dict[object, TraceEvent] = {}
    for event in events:
        if event.kind != kind:
            continue
        key = event.payload.get(key_field)
        if key is None:
            continue
        if key not in out or event.time < out[key].time:
            out[key] = event
    return out


def commit_latencies(events: Sequence[TraceEvent]) -> dict[str, float]:
    """Per-block commit latency: first commit time minus propose time.

    Reads ``icc.block.proposed`` / ``icc.block.committed`` for the ICC
    family and ``hotstuff.propose`` / ``pbft.propose`` /
    ``tendermint.propose`` / ``baseline.commit`` for the baselines.
    Returns ``{block_id: latency}`` keyed by the 16-hex-char short id;
    blocks that were proposed but never committed (or whose proposal was
    never traced, e.g. an equivocating proposer's) are omitted — the same
    convention :class:`repro.sim.metrics.Metrics` uses when
    ``proposed_at`` is missing.
    """
    proposed: dict[object, TraceEvent] = {}
    for kind, key_field in (
        ("icc.block.proposed", "block"),
        ("hotstuff.propose", "batch"),
        ("pbft.propose", "batch"),
        ("tendermint.propose", "batch"),
    ):
        proposed.update(_first_by_key(events, kind, key_field))
    committed: dict[object, TraceEvent] = {}
    for kind, key_field in (
        ("icc.block.committed", "block"),
        ("baseline.commit", "batch"),
    ):
        committed.update(_first_by_key(events, kind, key_field))
    return {
        block: committed[block].time - proposed[block].time
        for block in committed
        if block in proposed
    }


def message_counts(events: Sequence[TraceEvent]) -> dict[int | None, int]:
    """Point-to-point messages per round, from network-layer events.

    Reads ``net.broadcast`` (counted as ``copies`` = n messages, the
    paper's Section 1 convention — self-delivery included), ``net.send``
    (1 message) and ``net.multicast`` (``receivers`` messages).  Returns
    ``{round: count}``; events without round context accumulate under
    ``None``.  Summed over all rounds this equals
    ``Metrics.messages_sent``.
    """
    counts: Counter = Counter()
    for event in events:
        if event.kind not in _MESSAGE_KINDS:
            continue
        count_field = _MESSAGE_KINDS[event.kind]
        counts[event.round] += 1 if count_field is None else int(
            event.payload.get(count_field, 1)
        )
    return dict(counts)


def bytes_sent(events: Sequence[TraceEvent]) -> int:
    """Total wire bytes, matching the ``Metrics`` byte convention.

    Broadcast charges ``(copies - 1) * bytes`` (no wire cost for
    self-delivery), multicast ``receivers * bytes``, send ``bytes``.
    """
    total = 0
    for event in events:
        if event.kind == "net.broadcast":
            total += (int(event.payload["copies"]) - 1) * int(event.payload["bytes"])
        elif event.kind == "net.multicast":
            total += int(event.payload["receivers"]) * int(event.payload["bytes"])
        elif event.kind == "net.send":
            total += int(event.payload["bytes"])
    return total


@dataclass
class RoundBreakdown:
    """Phase timeline of one ICC round, aggregated over parties.

    Each field is the earliest trace timestamp at which *any* party
    reached that phase (``None`` when the phase never happened — e.g. no
    finalization in a round whose winning rank was disqualified).
    """

    round: int
    entered: float | None = None  #: first icc.round.enter
    proposed: float | None = None  #: first icc.block.proposed
    notarized: float | None = None  #: first icc.round.done (notarization seen)
    finalized: float | None = None  #: first icc.finalization
    committed: float | None = None  #: first icc.block.committed
    messages: int = 0  #: point-to-point messages attributed to the round

    def phase_durations(self) -> dict[str, float | None]:
        """Deltas between consecutive phases that both occurred."""

        def gap(a: float | None, b: float | None) -> float | None:
            return None if a is None or b is None else b - a

        return {
            "enter->propose": gap(self.entered, self.proposed),
            "propose->notarize": gap(self.proposed, self.notarized),
            "notarize->finalize": gap(self.notarized, self.finalized),
            "finalize->commit": gap(self.finalized, self.committed),
            "propose->commit": gap(self.proposed, self.committed),
        }


_PHASE_KINDS = {
    "icc.round.enter": "entered",
    "icc.block.proposed": "proposed",
    "icc.round.done": "notarized",
    "icc.finalization": "finalized",
    "icc.block.committed": "committed",
}


def round_breakdown(events: Sequence[TraceEvent]) -> dict[int, RoundBreakdown]:
    """Per-round phase timelines for an ICC-family run.

    Reads the ``icc.*`` phase events plus the ``net.*`` message events;
    returns ``{round: RoundBreakdown}`` sorted by round number.
    """
    rounds: dict[int, RoundBreakdown] = {}

    def slot(round: int) -> RoundBreakdown:
        if round not in rounds:
            rounds[round] = RoundBreakdown(round=round)
        return rounds[round]

    for event in events:
        attr = _PHASE_KINDS.get(event.kind)
        if attr is not None and event.round is not None:
            entry = slot(event.round)
            current = getattr(entry, attr)
            if current is None or event.time < current:
                setattr(entry, attr, event.time)
    for round, count in message_counts(events).items():
        if round is not None:
            slot(round).messages = count
    return dict(sorted(rounds.items()))


@dataclass(frozen=True)
class AdversaryActivation:
    """One adversarial action: when, who, what."""

    time: float
    party: int
    kind: str
    round: int | None
    payload: Mapping


def adversary_timeline(events: Sequence[TraceEvent]) -> list[AdversaryActivation]:
    """Chronological list of all ``adv.*`` events in the trace."""
    timeline = [
        AdversaryActivation(
            time=event.time,
            party=event.party,
            kind=event.kind,
            round=event.round,
            payload=event.payload,
        )
        for event in events
        if event.kind in ADVERSARY_KINDS
    ]
    timeline.sort(key=lambda a: (a.time, a.party, a.kind))
    return timeline


@dataclass
class TraceSummary:
    """Headline numbers for a trace, for the CLI and quick looks."""

    events: int
    kinds: dict[str, int]
    parties: int
    protocols: list[str]
    duration: float
    rounds_entered: int
    blocks_committed: int
    commit_latency_mean: float | None
    messages_total: int
    adversary_events: int
    #: Events the ring buffer discarded (from the trace.dropped summary
    #: record that Tracer.export_events appends on overflow).
    dropped: int = 0


def summarize(events: Sequence[TraceEvent]) -> TraceSummary:
    """Aggregate a trace into a :class:`TraceSummary`."""
    kinds = Counter(event.kind for event in events)
    parties = {event.party for event in events if event.party > 0}
    protocols = sorted({event.protocol for event in events})
    duration = max((event.time for event in events), default=0.0)
    committed_blocks = {
        event.payload.get("block") or event.payload.get("batch")
        for event in events
        if event.kind in ("icc.block.committed", "baseline.commit")
    }
    latencies = commit_latencies(events)
    rounds = {
        event.round for event in events if event.kind == "icc.round.enter"
    }
    return TraceSummary(
        events=len(events),
        kinds=dict(sorted(kinds.items())),
        parties=len(parties),
        protocols=protocols,
        duration=duration,
        rounds_entered=len(rounds),
        blocks_committed=len(committed_blocks - {None}),
        commit_latency_mean=(
            sum(latencies.values()) / len(latencies) if latencies else None
        ),
        messages_total=sum(message_counts(events).values()),
        adversary_events=sum(
            count for kind, count in kinds.items() if kind in ADVERSARY_KINDS
        ),
        dropped=sum(
            int(event.payload.get("dropped", 0))
            for event in events
            if event.kind == "trace.dropped"
        ),
    )


def format_summary(summary: TraceSummary) -> str:
    """Human-readable multi-line rendering of a :class:`TraceSummary`."""
    lines = [
        f"events          {summary.events}",
        f"parties         {summary.parties}",
        f"protocols       {', '.join(summary.protocols) or '-'}",
        f"sim duration    {summary.duration:.3f}s",
        f"rounds entered  {summary.rounds_entered}",
        f"blocks committed {summary.blocks_committed}",
    ]
    if summary.commit_latency_mean is not None:
        lines.append(f"commit latency  {summary.commit_latency_mean:.3f}s mean")
    lines.append(f"messages        {summary.messages_total}")
    if summary.dropped:
        lines.append(f"DROPPED events  {summary.dropped} (ring buffer wrapped)")
    if summary.adversary_events:
        lines.append(f"adversary events {summary.adversary_events}")
    lines.append("event kinds:")
    for kind, count in summary.kinds.items():
        lines.append(f"  {kind:28s} {count}")
    return "\n".join(lines)
