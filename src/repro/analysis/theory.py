"""Closed-form performance models from the paper's analysis.

These formulas are the quantitative side of Sections 1 and 3: leader
statistics under the random beacon, round/commit complexity, message
complexity, and round-duration models.  The test-suite checks the
simulator against them, which is the strongest form of reproduction this
side of the authors' testbed: measured behaviour matches the analysis the
paper argues from.
"""

from __future__ import annotations

import math


def corrupt_leader_probability(n: int, t: int) -> float:
    """P(round leader is corrupt) = t/n < 1/3 (Section 1)."""
    _check(n, t)
    return t / n


def first_honest_rank_distribution(n: int, t: int) -> list[float]:
    """P(lowest honest rank == r) for r = 0..t.

    Ranks are a uniform permutation, so the first r ranks are all corrupt
    with probability C(t, r)·r! ... equivalently the product below.
    """
    _check(n, t)
    probabilities = []
    all_corrupt_so_far = 1.0
    for r in range(t + 1):
        p_honest_here = (n - t) / (n - r)
        probabilities.append(all_corrupt_so_far * p_honest_here)
        all_corrupt_so_far *= (t - r) / (n - r)
    return probabilities


def expected_first_honest_rank(n: int, t: int) -> float:
    """E[rank of the best honest party] = t/(n-t+1) in closed form."""
    _check(n, t)
    return sum(r * p for r, p in enumerate(first_honest_rank_distribution(n, t)))


def expected_commit_gap(n: int, t: int) -> float:
    """Expected rounds between finalizations against an adversary that
    spoils every corrupt-leader round: geometric with success probability
    (n-t)/n, so the mean gap is n/(n-t) — the O(1) of Section 1."""
    _check(n, t)
    return n / (n - t)


def commit_gap_quantile(n: int, t: int, confidence: float = 0.999) -> int:
    """Smallest g with P(gap <= g) >= confidence — the O(log n) w.h.p. tail."""
    _check(n, t)
    if t == 0:
        return 1
    failure = t / n
    return max(1, math.ceil(math.log(1 - confidence) / math.log(failure)))


def synchronous_messages_per_round(n: int) -> int:
    """Messages per synchronous fault-free round (paper: O(n²)).

    Per party per round: a beacon share, a notarization share, the combined
    notarization, a finalization share, the combined finalization, and the
    echo of the leader's block (block + authenticator + parent
    notarization) — 8 broadcasts, each counting n messages.  The proposer's
    3 dissemination broadcasts replace its echo, so the total is exactly
    8·n² in steady state.
    """
    return 8 * n * n


def worst_case_messages_per_round(n: int) -> int:
    """Adversarial-schedule messages per round (paper: O(n³)).

    Decreasing-rank delivery makes each party support ~n successive best
    blocks; each support costs a notarization share plus (for non-own
    blocks) a 3-message echo — 2·n³ + Θ(n²) with this implementation's
    constants (see experiments.message_complexity).
    """
    return 2 * n**3 + 4 * n**2


def round_duration_synchronous(delta: float, epsilon: float) -> float:
    """Steady-state round time with an honest leader.

    The leader's block arrives after δ; parties notarization-share at
    max(δ, Δntry(0)=ε) — the governor only binds once ε exceeds δ — and
    the shares take another δ.  With ε ≈ 0 this is the paper's 2δ.
    """
    return max(delta, epsilon) + delta


def commit_latency_synchronous(delta: float) -> float:
    """Propose→commit: 3δ for ICC0/ICC1 (Section 1)."""
    return 3 * delta


def round_duration_with_silent_parties(
    delta: float, epsilon: float, delta_bound: float, n: int, t_silent: int
) -> float:
    """Expected round time when ``t_silent`` parties never propose.

    When the first r ranks are silent the round waits ~Δprop(r) = 2·Δbnd·r
    for the first live proposal, so the expectation adds
    2·Δbnd·E[first honest rank] — the model behind Table 1's third
    scenario.
    """
    extra = 2.0 * delta_bound * expected_first_honest_rank(n, t_silent)
    return round_duration_synchronous(delta, epsilon) + extra


def blocks_per_second(round_duration: float) -> float:
    return 1.0 / round_duration if round_duration > 0 else float("inf")


def dissemination_bottleneck(n: int, t: int, block_size: int, protocol: str, degree: int = 4) -> float:
    """Max per-node bytes per round spent on block bodies (experiment E7).

    ICC0: the proposer broadcasts the body, and every supporter echoes it
    once — (n-1)·S at each of them.  ICC1: bodies cross each overlay link
    at most once, ≈ degree·S/2 per node on average, bounded by degree·S.
    ICC2: every party relays n fragments of size S/(t+1).
    """
    protocol = protocol.upper()
    if protocol == "ICC0":
        return (n - 1) * block_size
    if protocol == "ICC1":
        return degree * block_size
    if protocol == "ICC2":
        return n / (t + 1) * block_size
    raise ValueError(f"unknown protocol {protocol!r}")


def icc0_bytes_per_party_per_round(n: int, payload_wire_bytes: int) -> int:
    """Exact per-party egress per steady-state ICC0 round (honest leader).

    Derived from the wire-size model in :mod:`repro.core.messages`: each
    party broadcasts one beacon share, one notarization share, the
    notarization, one finalization share, the finalization, and the leader
    block's dissemination triple (block + authenticator + parent
    notarization) — the proposer via clause (b), everyone else via the
    clause (c) echo.  Each broadcast costs (n-1) transmissions.

    Validated to the byte by
    ``tests/core/test_analysis.py::test_traffic_model_exact``.
    """
    from ..core import messages as m

    beacon_share = m.TAG_SIZE + m.ROUND_SIZE + m.INDEX_SIZE + m.SIG_SIZE
    share = m.TAG_SIZE + m.ROUND_SIZE + 2 * m.INDEX_SIZE + m.DIGEST_SIZE + m.SIG_SIZE
    aggregate = (
        m.TAG_SIZE + m.ROUND_SIZE + m.INDEX_SIZE + m.DIGEST_SIZE
        + m.SIG_SIZE + m.AGG_DESCRIPTOR_SIZE
    )
    authenticator = m.TAG_SIZE + m.ROUND_SIZE + m.INDEX_SIZE + m.DIGEST_SIZE + m.SIG_SIZE
    block = m.TAG_SIZE + m.ROUND_SIZE + m.INDEX_SIZE + m.DIGEST_SIZE + payload_wire_bytes
    per_broadcast = (
        beacon_share  # pipelined share for round k+1
        + share + aggregate  # notarization share + combined notarization
        + share + aggregate  # finalization share + combined finalization
        + block + authenticator + aggregate  # dissemination triple
    )
    return (n - 1) * per_broadcast


def _check(n: int, t: int) -> None:
    if n < 1 or t < 0 or (t > 0 and 3 * t >= n):
        raise ValueError(f"invalid (n={n}, t={t}): require t < n/3")
