"""Analytical models from the paper, for theory-vs-simulation validation."""

from .theory import (
    blocks_per_second,
    icc0_bytes_per_party_per_round,
    commit_gap_quantile,
    commit_latency_synchronous,
    corrupt_leader_probability,
    dissemination_bottleneck,
    expected_commit_gap,
    expected_first_honest_rank,
    first_honest_rank_distribution,
    round_duration_synchronous,
    round_duration_with_silent_parties,
    synchronous_messages_per_round,
    worst_case_messages_per_round,
)

__all__ = [
    "blocks_per_second",
    "icc0_bytes_per_party_per_round",
    "commit_gap_quantile",
    "commit_latency_synchronous",
    "corrupt_leader_probability",
    "dissemination_bottleneck",
    "expected_commit_gap",
    "expected_first_honest_rank",
    "first_honest_rank_distribution",
    "round_duration_synchronous",
    "round_duration_with_silent_parties",
    "synchronous_messages_per_round",
    "worst_case_messages_per_round",
]
