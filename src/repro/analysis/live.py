"""Live-cluster analysis: critical paths over collected distributed traces.

The simulator's critical-path analysis (:mod:`repro.analysis.critical_path`)
runs unchanged on a *collected* live run — :func:`repro.obs.collect_run`
has already merged the per-process traces onto one aligned timeline — but
the interpretation of one stage changes: between the winning proposal and
the quorum-th notarization share there is no simulated gossip, there are
real sockets.  The live stage names make that explicit:

* ``propose_wait``          — round entered -> winning block proposed
* ``wire_transit``          — proposal -> quorum-th notarization share cast
* ``notarization_quorum``   — quorum-th share cast -> first notarization
* ``finalization_quorum``   — notarization -> first finalization combined

Because stage boundaries come from *different processes' clocks*, every
number carries the run's clock-alignment uncertainty; the report and the
consistency line annotate it.  Spans still telescope exactly (clamping
guarantees it), so the identity "stage sums == finalization latency"
remains checkable — that check plus a reported uncertainty is the
``live_latency_breakdown`` correctness bit gated in ``BENCH_live.json``.
"""

from __future__ import annotations

import json
import pathlib

from ..obs.distributed import ClockAlignment, CollectedRun, collect_run
from .critical_path import CriticalPath, critical_paths, stage_means

#: Stage names of a live ICC critical path, in causal order.
LIVE_STAGES = (
    "propose_wait",
    "wire_transit",
    "notarization_quorum",
    "finalization_quorum",
)

#: Telescoping tolerance (seconds) — same one tick as the simulator report.
TICK = 1e-9


def live_critical_paths(events, quorum: int | None = None) -> list[CriticalPath]:
    """Critical paths of an aligned live trace, with live stage names."""
    return critical_paths(events, quorum, stages=LIVE_STAGES)


def wire_transit_stats(events) -> dict:
    """Matched ``net.wire.send``/``net.wire.recv`` span statistics.

    Expects *aligned* events (one timeline); returns count/mean/p50/p99
    of first-send to first-delivery transit in seconds.
    """
    sends: dict[tuple[int, int, int], float] = {}
    spans: list[float] = []
    for event in events:
        if event.kind == "net.wire.send":
            sends[
                (event.party, int(event.payload["dst"]), int(event.payload["seq"]))
            ] = event.time
    for event in events:
        if event.kind == "net.wire.recv":
            key = (int(event.payload["src"]), event.party, int(event.payload["seq"]))
            t_send = sends.get(key)
            if t_send is not None:
                spans.append(event.time - t_send)
    if not spans:
        return {"spans": 0}
    spans.sort()

    def pct(q: float) -> float:
        return spans[min(len(spans) - 1, int(q * len(spans)))]

    return {
        "spans": len(spans),
        "mean_s": sum(spans) / len(spans),
        "p50_s": pct(0.50),
        "p99_s": pct(0.99),
    }


def live_latency_breakdown(
    events,
    *,
    quorum: int | None = None,
    clock_uncertainty: float = 0.0,
    tick: float = TICK,
) -> dict:
    """The BENCH_live latency-breakdown block: per-stage means over the
    collected run plus the two correctness bits the bench gate checks —
    spans telescope to measured finalization latency (within ``tick``)
    and a finite clock-uncertainty bound is reported."""
    paths = live_critical_paths(events, quorum)
    residuals = [
        abs(path.total - (path.finalized - path.entered)) for path in paths
    ]
    worst = max(residuals, default=0.0)
    return {
        "heights": len(paths),
        "spans_telescope": bool(paths) and worst <= tick,
        "max_residual_s": worst,
        "clock_uncertainty_s": clock_uncertainty,
        "finalization_latency_mean_s": (
            sum(path.total for path in paths) / len(paths) if paths else 0.0
        ),
        "stage_means_s": stage_means(paths),
        "wire_transit": wire_transit_stats(events),
    }


def _run_quorum(run_dir: pathlib.Path) -> int | None:
    """The notarization quorum ``n - t`` from the run's saved config."""
    config = run_dir / "cluster.json"
    if not config.is_file():
        return None
    try:
        data = json.loads(config.read_text(encoding="utf-8"))
        return int(data["n"]) - int(data.get("t", 0))
    except (ValueError, KeyError, json.JSONDecodeError):
        return None


def load_collected(run_dir: str | pathlib.Path) -> CollectedRun:
    """Collect (or re-collect) a live run directory in memory + on disk."""
    return collect_run(run_dir, write=True)


def _md_table(headers: list[str], rows: list[list[str]]) -> str:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("| " + " | ".join("---" for _ in headers) + " |")
    for row in rows:
        lines.append("| " + " | ".join(row) + " |")
    return "\n".join(lines)


def consistency_line(breakdown: dict, tick: float = TICK) -> str:
    """The human-readable telescoping check, uncertainty-annotated."""
    status = "OK" if breakdown["spans_telescope"] else "VIOLATED"
    if not breakdown["heights"]:
        status = "VIOLATED (no finalized heights in trace)"
    return (
        "Consistency: stage sums match measured finalization latency within "
        f"{breakdown['max_residual_s']:.2e}s ({status}, tolerance 1 tick = "
        f"{tick:.0e}s); cross-process clock uncertainty "
        f"±{breakdown['clock_uncertainty_s']:.2e}s"
    )


def render_live_report(collected: CollectedRun, quorum: int | None = None) -> str:
    """Markdown report for one collected live run."""
    alignment: ClockAlignment = collected.alignment
    breakdown = live_latency_breakdown(
        collected.events,
        quorum=quorum,
        clock_uncertainty=alignment.max_uncertainty,
    )
    paths = live_critical_paths(collected.events, quorum)
    lines = [
        "# Live run report",
        "",
        f"Run `{collected.run_id}` (cluster `{collected.cluster_id}`): "
        f"{len(collected.parties)} parties, {len(collected.events)} aligned "
        "trace events.",
        "",
        "## Clock alignment",
        "",
        f"Reference party: {alignment.reference}; worst per-party bound "
        f"±{alignment.max_uncertainty:.2e}s.",
        "",
        _md_table(
            ["party", "offset (s)", "drift (s/s)", "uncertainty (s)"],
            [
                [
                    str(p),
                    f"{m.offset:.6e}",
                    f"{m.drift:.3e}",
                    f"{m.uncertainty:.2e}",
                ]
                for p, m in sorted(alignment.offsets.items())
            ],
        ),
        "",
        "## Critical path per finalized height",
        "",
    ]
    if paths:
        lines.append(
            _md_table(
                ["height", "block", *LIVE_STAGES, "total (s)"],
                [
                    [
                        str(path.round),
                        (path.block or "-")[:8],
                        *(f"{span.duration:.4f}" for span in path.spans),
                        f"{path.total:.4f}",
                    ]
                    for path in paths
                ],
            )
        )
    else:
        lines.append("No finalized heights in the trace.")
    lines += [
        "",
        consistency_line(breakdown),
        "",
        "## Stage means",
        "",
        _md_table(
            ["stage", "mean (s)"],
            [
                [stage, f"{breakdown['stage_means_s'].get(stage, 0.0):.4f}"]
                for stage in LIVE_STAGES
            ],
        ),
    ]
    wire = breakdown["wire_transit"]
    if wire.get("spans"):
        lines += [
            "",
            "## Wire transit",
            "",
            f"{wire['spans']} matched send/recv spans: mean "
            f"{wire['mean_s'] * 1e3:.2f} ms, p50 {wire['p50_s'] * 1e3:.2f} ms, "
            f"p99 {wire['p99_s'] * 1e3:.2f} ms (first-send to first-delivery; "
            "includes retransmit wait after reconnects).",
        ]
    lines.append("")
    return "\n".join(lines)


def collect_main(args) -> int:
    """``python -m repro collect`` — merge + align one run directory."""
    run_dir = pathlib.Path(args.run_dir)
    quorum = args.quorum if args.quorum else _run_quorum(run_dir)
    collected = load_collected(run_dir)
    breakdown = live_latency_breakdown(
        collected.events,
        quorum=quorum,
        clock_uncertainty=collected.alignment.max_uncertainty,
    )
    print(
        f"collected run {collected.run_id!r}: {len(collected.parties)} parties, "
        f"{len(collected.events)} events, {breakdown['heights']} finalized "
        "heights"
    )
    print(f"merged trace: {collected.merged_trace_path}")
    print(f"merged meter: {collected.merged_meter_path}")
    print(f"alignment:    {collected.alignment_path}")
    print(consistency_line(breakdown))
    if args.report:
        report = render_live_report(collected, quorum)
        pathlib.Path(args.report).write_text(report, encoding="utf-8")
        print(f"report:       {args.report}")
    if args.check and not (breakdown["heights"] and breakdown["spans_telescope"]):
        print("collect --check FAILED: spans do not telescope (or no heights)")
        return 1
    return 0
