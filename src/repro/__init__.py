"""repro — a full Python reproduction of "Internet Computer Consensus" (PODC 2022).

Public API highlights:

* :func:`repro.core.build_cluster` / :class:`repro.core.ClusterConfig` —
  assemble and run simulated ICC deployments;
* :class:`repro.core.ICC0Party`, plus the ICC1 (gossip) and ICC2
  (erasure-coded reliable broadcast) parties in :mod:`repro.core.icc1` and
  :mod:`repro.core.icc2`;
* :mod:`repro.baselines` — PBFT, chained HotStuff, Tendermint on the same
  substrate;
* :mod:`repro.experiments` — regenerates the paper's Table 1 and the
  analytical performance claims (see EXPERIMENTS.md).
"""

__version__ = "1.0.0"
