"""Erasure-coded reliable broadcast — the subprotocol behind ICC2.

The paper (Section 1.1): "Protocol ICC2 relies on a subprotocol for
reliable broadcast that uses erasure codes to reduce both the overall
communication complexity and the communication bottleneck at the leader
... We propose a new erasure-coded reliable broadcast subprotocol with
better latency than that in [11] (Cachin–Tessaro), and with stronger
properties that we exploit in its integration with Protocol ICC2."

The protocol implemented here:

1. **Disperse** — the dealer Reed–Solomon-encodes the message into n
   fragments (reconstruction threshold k = t+1), commits to them with a
   Merkle root, and sends fragment *i* (with its inclusion proof) to party
   *i*.
2. **Echo** — on first receiving its own fragment (from the dealer or a
   fill), a party broadcasts that fragment to everyone.
3. **Reconstruct** — any k proof-valid fragments reconstruct the message.
   The reconstructor *re-encodes* and recomputes the Merkle root; a
   mismatch proves the dealer encoded inconsistently, and the instance is
   abandoned (no honest party ever delivers an inconsistent dealer's
   message — consistency).
4. **Fill** — a party that reconstructs sends every party whose fragment
   it has not seen that party's fragment.  This gives *totality*: if one
   honest party delivers, every honest party eventually receives its own
   fragment, echoes, and reconstructs.

Good-case latency is 2δ (disperse + echo) — one δ better than
Cachin–Tessaro's 3-message-round AVID — which is where ICC2's 3δ
reciprocal throughput / 4δ latency come from.  Per-party traffic is
n·S/k + O(n·λ·log n) = O(S) for S = Ω(n·λ·log n), the bound claimed in
Section 1.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..crypto.hashing import DIGEST_SIZE
from ..erasure.merkle import MerkleProof, MerkleTree, verify_inclusion
from ..erasure.reed_solomon import CodecParams, DecodeError, decode, encode
from ..sim.network import Network


@dataclass(frozen=True)
class Fragment:
    """One coded shard plus its Merkle inclusion proof."""

    index: int  # 0-based shard index == party index - 1
    data: bytes
    proof: MerkleProof

    def wire_size(self) -> int:
        return 4 + len(self.data) + self.proof.wire_size()


@dataclass(frozen=True)
class RbcMessage:
    """A fragment in flight, in one of the three phases."""

    dealer: int
    root: bytes
    data_length: int
    phase: str  # "send" | "echo" | "fill"
    fragment: Fragment = field(compare=False)

    @property
    def kind(self) -> str:
        return f"rbc-{self.phase}"

    def wire_size(self) -> int:
        return 4 + DIGEST_SIZE + 8 + 1 + self.fragment.wire_size()


class _Instance:
    """Per-(dealer, root) reconstruction state."""

    __slots__ = (
        "data_length",
        "fragments",
        "echoed",
        "delivered",
        "bad",
        "recoded",
        "fill_pending",
    )

    def __init__(self, data_length: int) -> None:
        self.data_length = data_length
        self.fragments: dict[int, Fragment] = {}
        self.echoed = False
        self.delivered = False
        self.bad = False
        self.recoded: list[bytes] | None = None
        self.fill_pending = False


class RbcEndpoint:
    """One party's endpoint of the reliable broadcast subprotocol."""

    def __init__(
        self,
        index: int,
        n: int,
        t: int,
        network: Network,
        deliver: Callable[[int, bytes, bytes], None],
        fill_delay: float = 0.1,
    ) -> None:
        """``deliver(dealer, root, data)`` fires exactly once per instance.

        ``fill_delay`` is a grace period before the fill phase: echoes
        already in flight usually make fills unnecessary, so waiting a
        moment avoids redundant fragment transmissions (fills still happen,
        guaranteeing totality, whenever a party's fragment stays missing).
        """
        self.index = index
        self.n = n
        self.t = t
        self.k = t + 1
        self.network = network
        self.deliver = deliver
        self.fill_delay = fill_delay
        self.params = CodecParams(k=self.k, m=n)
        self._instances: dict[tuple[int, bytes], _Instance] = {}

    # -- dealer side -------------------------------------------------------------

    def disperse(self, data: bytes) -> bytes:
        """Disperse ``data`` as dealer; returns the Merkle root."""
        shards = encode(data, self.params)
        tree = MerkleTree(shards)
        root = tree.root
        fragments = [
            Fragment(index=i, data=shards[i], proof=tree.proof(i))
            for i in range(self.n)
        ]
        instance = self._instances.setdefault(
            (self.index, root), _Instance(len(data))
        )
        if instance.delivered:
            return root  # already dispersed this exact message
        for fragment in fragments:
            instance.fragments[fragment.index] = fragment
        # Send each party its fragment...
        for party in range(1, self.n + 1):
            if party == self.index:
                continue
            self.network.send(
                self.index,
                party,
                RbcMessage(
                    dealer=self.index,
                    root=root,
                    data_length=len(data),
                    phase="send",
                    fragment=fragments[party - 1],
                ),
            )
        # ...echo our own so n-1 honest echoes + ours cover reconstruction.
        instance.echoed = True
        self.network.broadcast(
            self.index,
            RbcMessage(
                dealer=self.index,
                root=root,
                data_length=len(data),
                phase="echo",
                fragment=fragments[self.index - 1],
            ),
        )
        instance.delivered = True  # the dealer trivially has the message
        self.deliver(self.index, root, data)
        return root

    # -- receiver side ---------------------------------------------------------------

    def on_message(self, message: object) -> bool:
        """Process an RBC wire message; returns False if not one."""
        if not isinstance(message, RbcMessage):
            return False
        fragment = message.fragment
        if not 0 <= fragment.index < self.n:
            return True
        if fragment.proof.leaf_index != fragment.index:
            return True
        if not verify_inclusion(message.root, fragment.data, fragment.proof):
            return True  # forged or corrupted fragment; drop
        key = (message.dealer, message.root)
        instance = self._instances.setdefault(key, _Instance(message.data_length))
        if instance.bad:
            return True
        if fragment.index not in instance.fragments:
            instance.fragments[fragment.index] = fragment
        # Echo rule: first sight of *our own* fragment.
        if fragment.index == self.index - 1 and not instance.echoed:
            instance.echoed = True
            self.network.broadcast(
                self.index,
                RbcMessage(
                    dealer=message.dealer,
                    root=message.root,
                    data_length=message.data_length,
                    phase="echo",
                    fragment=fragment,
                ),
            )
        self._try_reconstruct(message.dealer, message.root, instance)
        return True

    def _try_reconstruct(self, dealer: int, root: bytes, instance: _Instance) -> None:
        if instance.delivered or instance.bad:
            return
        if len(instance.fragments) < self.k:
            return
        shards = {f.index: f.data for f in instance.fragments.values()}
        try:
            data = decode(shards, self.params, instance.data_length)
        except DecodeError:
            instance.bad = True
            return
        # Consistency check: re-encode and confirm the commitment matches.
        recoded = encode(data, self.params)
        tree = MerkleTree(recoded)
        if tree.root != root:
            instance.bad = True  # dealer committed to an inconsistent encoding
            return
        # Totality: hand every lagging party its fragment (after a grace
        # period, since in-flight echoes usually make this unnecessary).
        instance.recoded = recoded
        if not instance.fill_pending:
            instance.fill_pending = True
            self.network.sim.schedule(
                self.fill_delay, lambda: self._do_fill(dealer, root, instance, tree)
            )
        if not instance.echoed:
            instance.echoed = True
            own = Fragment(
                index=self.index - 1,
                data=recoded[self.index - 1],
                proof=tree.proof(self.index - 1),
            )
            self.network.broadcast(
                self.index,
                RbcMessage(
                    dealer=dealer,
                    root=root,
                    data_length=instance.data_length,
                    phase="echo",
                    fragment=own,
                ),
            )
        instance.delivered = True
        self.deliver(dealer, root, data)

    def _do_fill(self, dealer: int, root: bytes, instance: _Instance, tree) -> None:
        """Deferred fill: serve fragments still unseen after the grace period."""
        if instance.bad or instance.recoded is None:
            return
        for party in range(1, self.n + 1):
            idx = party - 1
            if party == self.index or idx in instance.fragments:
                continue
            self.network.send(
                self.index,
                party,
                RbcMessage(
                    dealer=dealer,
                    root=root,
                    data_length=instance.data_length,
                    phase="fill",
                    fragment=Fragment(
                        index=idx, data=instance.recoded[idx], proof=tree.proof(idx)
                    ),
                ),
            )
