"""Erasure-coded reliable broadcast (the ICC2 dissemination subprotocol)."""

from .protocol import Fragment, RbcEndpoint, RbcMessage

__all__ = ["Fragment", "RbcEndpoint", "RbcMessage"]
