"""Workload generators for the evaluation scenarios of Section 5."""

from .generators import (
    MempoolWorkload,
    WorkloadSpec,
    fixed_size_source,
    management_only_source,
)

__all__ = [
    "MempoolWorkload",
    "WorkloadSpec",
    "fixed_size_source",
    "management_only_source",
]
