"""Workload generators for the evaluation scenarios of Section 5, plus the
Chop Chop-style batched load pipeline (see docs/LOAD.md)."""

from .batching import (
    BatchSpec,
    FastClientAuth,
    RealClientAuth,
    RequestBatcher,
    SignedRequest,
    client_auth,
    is_load_command,
    parse_request,
    strip_request_envelope,
)
from .generators import (
    MempoolWorkload,
    WorkloadSpec,
    fixed_size_source,
    management_only_source,
)
from .population import ClientPopulation, PopulationSpec, ZipfSampler
from .sharding import ShardLoadSpec, ShardPopulation

__all__ = [
    "BatchSpec",
    "ClientPopulation",
    "ShardLoadSpec",
    "ShardPopulation",
    "FastClientAuth",
    "MempoolWorkload",
    "PopulationSpec",
    "RealClientAuth",
    "RequestBatcher",
    "SignedRequest",
    "WorkloadSpec",
    "ZipfSampler",
    "client_auth",
    "fixed_size_source",
    "is_load_command",
    "management_only_source",
    "parse_request",
    "strip_request_envelope",
]
