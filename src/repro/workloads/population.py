"""Client population model: open/closed loops, Zipf keys, broker ticks.

Scales "a handful of scripted requests" up to "millions of clients" by
modelling the *population*, not individual sockets:

* **Open loop** — requests arrive at a configured aggregate rate
  (deterministic spacing or Poisson), independent of how fast the system
  responds.  This is the right model for saturation curves: offered load
  keeps coming whether or not consensus keeps up, so the curve shows the
  latency knee and the admission-control shed point.
* **Closed loop** — each of ``clients`` virtual clients keeps one request
  in flight: it submits, waits for finalization, thinks for
  ``think_time`` seconds, then submits again.  Throughput self-limits at
  ``clients / (latency + think_time)`` (Little's law), which is the right
  model for "how many users can the system carry at acceptable latency".
* **Zipf key popularity** — each request targets a state key drawn from a
  Zipf(s) distribution over ``key_space`` keys, the standard skewed-access
  model for user-facing stores.
* **Broker ticks** — arrivals are aggregated into ``tick``-second windows
  and admitted as one batch per window (one simulator event, one RLC
  authentication pass), modelling Chop Chop's brokers: clients never hit
  consensus directly, an untrusted aggregation layer does.  True arrival
  timestamps are preserved, so latency measurements include the time a
  request waits inside its tick window.

Determinism: the population draws every sample from its own
``Random(f"load/{seed}")`` stream and never touches ``sim.rng``, so a
run with load installed leaves the consensus schedule of the same run
without load bit-identical (see ``tests/workloads/test_population.py``).
"""

from __future__ import annotations

from bisect import bisect_left
from dataclasses import dataclass
from heapq import heappop, heappush
from random import Random

from .batching import RequestBatcher, SignedRequest


@dataclass(frozen=True)
class PopulationSpec:
    """Client population parameters (see docs/LOAD.md for the knobs)."""

    clients: int = 1000  # virtual client population size
    mode: str = "open"  # "open" (rate-driven) or "closed" (in-flight cap)
    rate_per_second: float = 100.0  # aggregate offered load (open loop)
    poisson: bool = False  # Poisson arrivals (default: deterministic)
    think_time: float = 0.0  # post-commit pause per client (closed loop)
    zipf_s: float = 1.1  # Zipf skew exponent (0 = uniform)
    key_space: int = 10_000  # distinct state keys
    payload_bytes: int = 256  # application payload per request
    tick: float = 0.02  # broker aggregation window (seconds)


class ZipfSampler:
    """Zipf(s) over ``{0..n-1}`` via precomputed cumulative weights.

    Exact inverse-CDF sampling (one ``random()`` draw + one bisect), fine
    for the key-space sizes the harness uses; rank r has weight
    ``1 / (r+1)**s``.
    """

    def __init__(self, n: int, s: float) -> None:
        total = 0.0
        cumulative: list[float] = []
        for rank in range(n):
            total += 1.0 / (rank + 1) ** s if s > 0 else 1.0
            cumulative.append(total)
        self._cumulative = cumulative
        self._total = total

    def sample(self, rng: Random) -> int:
        return bisect_left(self._cumulative, rng.random() * self._total)


class ClientPopulation:
    """Drives a :class:`~repro.workloads.batching.RequestBatcher` with a
    modelled client population.

    Usage::

        batcher = RequestBatcher(BatchSpec(), seed=7)
        population = ClientPopulation(PopulationSpec(), batcher, seed=7)
        config = ClusterConfig(..., payload_source=batcher.payload_source,
                               payload_verifier=batcher.verify_block)
        cluster = build_cluster(config)
        batcher.bind(cluster)
        population.install(cluster, duration=10.0)
        cluster.run_for(12.0)
    """

    def __init__(
        self, spec: PopulationSpec, batcher: RequestBatcher, seed: int = 0
    ) -> None:
        if spec.mode not in ("open", "closed"):
            raise ValueError(f"unknown population mode {spec.mode!r}")
        self.spec = spec
        self.batcher = batcher
        self.seed = seed
        # Isolated stream — never sim.rng, never forked from it (forking
        # consumes simulation randomness and perturbs delay sampling).
        self.rng = Random(f"load/{seed}")
        self._zipf = ZipfSampler(spec.key_space, spec.zipf_s)
        self._sequences: dict[int, int] = {}
        self.generated = 0

    # -- request construction ----------------------------------------------

    def _next_request(self, client: int) -> SignedRequest:
        spec = self.spec
        seq = self._sequences.get(client, 0)
        self._sequences[client] = seq + 1
        key = self._zipf.sample(self.rng)
        body = _kv_body(client, seq, key, spec.payload_bytes)
        auth = self.batcher.auth.sign(client, seq, key, body)
        self.generated += 1
        return SignedRequest(client=client, seq=seq, key=key, auth=auth, body=body)

    # -- open loop ----------------------------------------------------------

    def _open_arrivals(self, start: float, duration: float):
        """Yield (time, client) arrivals over ``[start, start+duration)``."""
        spec = self.spec
        rate = spec.rate_per_second
        if rate <= 0:
            return
        time = start
        while True:
            if spec.poisson:
                time += self.rng.expovariate(rate)
            else:
                time += 1.0 / rate
            if time >= start + duration:
                return
            yield time, self.rng.randrange(spec.clients)

    def install(self, cluster, duration: float, start: float = 0.0) -> None:
        """Schedule the population's arrivals on the cluster's simulator.

        All randomness is drawn *now*, from the population's own stream —
        installation schedules plain closures and leaves ``sim.rng``
        untouched.
        """
        sim = cluster.sim
        if self.spec.mode == "closed":
            self._install_closed(sim, duration, start)
            return
        # Open loop: pre-draw every arrival, group into broker ticks.
        ticks: dict[int, list[tuple[SignedRequest, float]]] = {}
        tick = self.spec.tick
        for time, client in self._open_arrivals(start, duration):
            ticks.setdefault(int(time / tick), []).append(
                (self._next_request(client), time)
            )
        for index, batch in sorted(ticks.items()):
            # The window's arrivals are admitted together at its close.
            sim.schedule_at(
                (index + 1) * tick, lambda b=batch: self.batcher.admit_batch(b)
            )

    # -- closed loop ---------------------------------------------------------

    def _install_closed(self, sim, duration: float, start: float) -> None:
        """Each client keeps one request in flight until ``start+duration``.

        Commit completions (via the batcher's hook) put the issuing client
        back in the ready heap after ``think_time``; a per-tick pump
        admits whoever is ready.  Request *contents* are pre-drawn in
        client order at install time where possible; late requests (after
        a commit) draw from the same isolated stream, so ``sim.rng`` stays
        untouched in every case.
        """
        spec = self.spec
        end = start + duration
        ready: list[tuple[float, int, int]] = []  # (when, tiebreak, client)
        tiebreak = 0
        for client in range(spec.clients):
            heappush(ready, (start, tiebreak, client))
            tiebreak += 1
        client_of_request: dict[bytes, int] = {}

        def on_complete(request_id: bytes, latency: float) -> None:
            nonlocal tiebreak
            client = client_of_request.pop(request_id, None)
            if client is None:
                return
            wake = sim.now + spec.think_time
            if wake < end:
                heappush(ready, (wake, tiebreak, client))
                tiebreak += 1

        self.batcher.on_complete(on_complete)

        def pump() -> None:
            now = sim.now
            batch: list[tuple[SignedRequest, float]] = []
            while ready and ready[0][0] <= now:
                when, _, client = heappop(ready)
                request = self._next_request(client)
                client_of_request[request.request_id] = client
                batch.append((request, max(when, now - spec.tick)))
            if batch:
                self.batcher.admit_batch(batch)
            if now + spec.tick < end:
                sim.schedule_at(now + spec.tick, pump)

        sim.schedule_at(start + spec.tick, pump)


def _kv_body(client: int, seq: int, key: int, payload_bytes: int) -> bytes:
    """A deterministic ``put`` for the KV state machine, padded to size.

    Padding lives inside the *value* (after a NUL), so the command stays a
    well-formed ``put`` and replicas apply it without special-casing.
    """
    from ..smr.machine import KVStateMachine

    value = f"c{client}s{seq}".encode()
    body = KVStateMachine.put(f"k{key}".encode(), value)
    pad = payload_bytes - len(body)
    if pad > 0:
        body = KVStateMachine.put(f"k{key}".encode(), value + b"\x00" + b"p" * (pad - 1))
    return body
