"""Workload generation: client request streams feeding party mempools.

Models the load scenarios of Section 5 (Table 1):

* *without load* — blocks carry only management information, modelled as a
  small constant per-block overhead;
* *with load* — clients issue R state-changing requests per second, each
  carrying P bytes of user payload (the paper uses R=100, P=1 KB).

Requests reach every party (the IC's ingress layer gossips client messages
to the whole subnet); a proposer packs all pending, not-yet-included
commands into its block, deduplicating against the chain it extends — the
"important feature for state machine replication" noted in Section 3.3.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random

from ..core.icc0 import ICC0Party
from ..core.messages import Block, Payload, ROOT_HASH


@dataclass(frozen=True)
class WorkloadSpec:
    """Request stream parameters."""

    rate_per_second: float  # request arrival rate
    payload_bytes: int  # user payload per request
    poisson: bool = False  # Poisson arrivals (default: evenly spaced)
    max_block_commands: int = 10_000  # proposer cap per block
    management_bytes: int = 256  # per-block management overhead (scenario 1)


class MempoolWorkload:
    """A request stream plus per-party mempools and a PayloadSource.

    Usage::

        workload = MempoolWorkload(spec, seed=1)
        config = ClusterConfig(..., payload_source=workload.payload_source)
        cluster = build_cluster(config)
        workload.install(cluster, duration=300.0)
    """

    def __init__(self, spec: WorkloadSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        self._pending: dict[int, dict[bytes, bytes]] = {}
        self._included_cache: dict[bytes, frozenset[bytes]] = {
            ROOT_HASH: frozenset()
        }
        self.submitted = 0
        self._metrics = None
        self._ingress_copies = 0.0

    # -- request injection ------------------------------------------------------

    def install(
        self, cluster, duration: float, start: float = 0.0, ingress_degree: int = 0
    ) -> None:
        """Schedule request arrivals over ``[start, start+duration)``.

        ``ingress_degree`` > 0 additionally *accounts* for the ingress
        dissemination traffic: each request must reach every party, and in
        an epidemic push over a d-regular overlay each request crosses each
        overlay edge about once, i.e. d/2 transmissions per node.  (The
        paper's Table 1 traffic includes this "messages exchanged with the
        clients" component.)  Delivery into mempools is immediate either
        way — ingress latency is far below round time.
        """
        sim = cluster.sim
        # Dedicated seeded stream, NOT forked from sim.rng: forking draws
        # 64 bits from the simulation RNG, which would shift every delay
        # sample that follows — enabling load must not perturb otherwise
        # bit-identical consensus runs.  Same isolation pattern as the
        # fault-decision RNG in repro.faults.inject.
        rng = Random(f"workload/{self.seed}")
        n = cluster.params.n
        self._metrics = cluster.metrics
        self._ingress_copies = ingress_degree / 2.0
        for index in range(1, n + 1):
            self._pending.setdefault(index, {})
        rate = self.spec.rate_per_second
        if rate <= 0:
            return
        time = start
        seq = 0
        while time < start + duration:
            if self.spec.poisson:
                time += rng.expovariate(rate)
            else:
                time += 1.0 / rate
            if time >= start + duration:
                break
            command = self._make_command(seq, rng)
            seq += 1
            sim.schedule_at(time, lambda c=command: self._arrive(c))

    def _make_command(self, seq: int, rng) -> bytes:
        header = b"req:" + seq.to_bytes(8, "big")
        padding = max(0, self.spec.payload_bytes - len(header))
        return header + bytes(rng.getrandbits(8) for _ in range(min(padding, 16))) + b"\x00" * max(0, padding - 16)

    def _arrive(self, command: bytes) -> None:
        """A client request reaches every party's mempool."""
        self.submitted += 1
        key = command[:12]
        copies = int(round(self._ingress_copies))
        for index, pending in self._pending.items():
            pending[key] = command
            if self._metrics is not None and copies > 0:
                for _ in range(copies):
                    self._metrics.on_send(index, len(command), "ingress")

    # -- payload construction ---------------------------------------------------------

    def _included_upto(self, chain: list[Block]) -> frozenset[bytes]:
        """Set of command keys already included along ``chain`` (cached)."""
        if not chain:
            return self._included_cache[ROOT_HASH]
        tip = chain[-1]
        cached = self._included_cache.get(tip.hash)
        if cached is not None:
            return cached
        parent_included = (
            self._included_upto(chain[:-1])
            if len(chain) > 1
            else self._included_cache[ROOT_HASH]
        )
        cached = parent_included | {c[:12] for c in tip.payload.commands}
        self._included_cache[tip.hash] = cached
        return cached

    def payload_source(self, party: ICC0Party, round: int, chain: list[Block]) -> Payload:
        """getPayload: pack pending commands not already in the chain."""
        pending = self._pending.setdefault(party.index, {})
        included = self._included_upto(chain)
        commands = []
        for key, command in pending.items():
            if key in included:
                continue
            commands.append(command)
            if len(commands) >= self.spec.max_block_commands:
                break
        return Payload(
            commands=tuple(commands), filler_bytes=self.spec.management_bytes
        )

    def attach_commit_pruning(self, cluster) -> None:
        """Drop committed commands from mempools (keeps memory bounded)."""
        for party in cluster.parties:
            pending = self._pending.setdefault(party.index, {})

            def prune(block: Block, pending=pending) -> None:
                for command in block.payload.commands:
                    pending.pop(command[:12], None)

            party.commit_listeners.append(prune)


def management_only_source(management_bytes: int = 256):
    """PayloadSource for the 'without load' scenario: management info only."""

    def source(party: ICC0Party, round: int, chain: list[Block]) -> Payload:
        return Payload(commands=(), filler_bytes=management_bytes)

    return source


def fixed_size_source(block_bytes: int):
    """PayloadSource producing constant-size blocks (dissemination benches)."""

    def source(party: ICC0Party, round: int, chain: list[Block]) -> Payload:
        return Payload(commands=(), filler_bytes=block_bytes)

    return source
