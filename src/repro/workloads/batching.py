"""Request batching and batch authentication: the Chop Chop-style ingress.

The load pipeline turns "many clients" into "saturated consensus" in three
amortization steps, following *Chop Chop: Byzantine Atomic Broadcast to the
Network Limit* (see PAPERS.md and docs/LOAD.md):

* **Aggregation** — client requests are collected per broker tick (see
  :mod:`repro.workloads.population`) and admitted to the shared ingress
  queue as one batch, so per-request overheads (authentication, admission,
  bookkeeping) are paid per *batch*.
* **Distillation** — duplicate submissions of the same request id are
  collapsed at admission, and :meth:`RequestBatcher.payload_source`
  deduplicates against the chain being extended (Section 3.3 of the ICC
  paper), so a request is finalized exactly once however many parties saw
  it.
* **Batch authentication** — every client request carries a signature.
  Rather than verifying one signature per request, the whole batch is
  checked in a single random-linear-combination (RLC) pass through the
  existing crypto fast path (:mod:`repro.crypto.fastpath` via
  :mod:`repro.crypto.api`), with bisection isolating exactly the forged
  requests on failure.  Verification happens twice per request, both times
  amortized: once at ingress admission (so forged requests never occupy
  queue space or block capacity) and once per proposed *block* at pool
  admission (so a Byzantine proposer cannot smuggle forged requests into a
  batch — see ``payload_verifier`` in :mod:`repro.core.pool`).

Two authenticator backends mirror the :mod:`repro.crypto.keyring` split:
:class:`FastClientAuth` is a hash MAC simulation for large-scale load runs,
:class:`RealClientAuth` signs with per-client Schnorr keys and batch-checks
through the RLC verifier (the configuration the forged-request tests and
``BENCH_load.json``'s amortization leg exercise).

Determinism: this module draws **no randomness at all** — signing nonces
are derived Fiat-Shamir style from the key and message — so installing the
load pipeline never perturbs ``sim.rng`` (the same isolation rule as the
fault-decision RNG in :mod:`repro.faults.inject`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..core.messages import Block, Payload, ROOT_HASH
from ..crypto import api, schnorr
from ..crypto.group import Group, group_for_profile
from ..crypto.hashing import tagged_hash
from ..obs import NULL_METER, NULL_TRACER

#: Wire layout of a signed request (the ``commands`` bytes in a payload):
#:
#: ====== ======= ===========================================
#: offset length  field
#: ====== ======= ===========================================
#: 0      2       magic ``b"ld"``
#: 2      4       client id (big endian)
#: 6      6       per-client sequence number (big endian)
#: 12     4       state key id (Zipf-popular; see population)
#: 16     2       authenticator length A
#: 18     A       authenticator bytes (backend-specific)
#: 18+A   ...     application body (a KV ``put`` command + padding)
#: ====== ======= ===========================================
#:
#: The first 12 bytes are the globally unique *request id* — the same
#: ``command[:12]`` dedup convention the mempool workload and the client
#: frontend already use.
LOAD_MAGIC = b"ld"
REQUEST_ID_LEN = 12
_HEADER_LEN = 18


@dataclass(frozen=True)
class SignedRequest:
    """One parsed client request (see the wire layout above)."""

    client: int
    seq: int
    key: int
    auth: bytes
    body: bytes

    @property
    def request_id(self) -> bytes:
        return (
            LOAD_MAGIC
            + self.client.to_bytes(4, "big")
            + self.seq.to_bytes(6, "big")
        )

    def wire(self) -> bytes:
        return (
            self.request_id
            + self.key.to_bytes(4, "big")
            + len(self.auth).to_bytes(2, "big")
            + self.auth
            + self.body
        )

    def signed_message(self) -> bytes:
        """The bytes the authenticator covers (everything but itself)."""
        return signed_message(self.client, self.seq, self.key, self.body)


def signed_message(client: int, seq: int, key: int, body: bytes) -> bytes:
    return tagged_hash(
        "ICC/load/request",
        client.to_bytes(4, "big"),
        seq.to_bytes(6, "big"),
        key.to_bytes(4, "big"),
        body,
    )


def is_load_command(command: bytes) -> bool:
    return command.startswith(LOAD_MAGIC) and len(command) >= _HEADER_LEN


def parse_request(command: bytes) -> SignedRequest | None:
    """Decode a wire command; None if it is not a well-formed request."""
    if not is_load_command(command):
        return None
    auth_len = int.from_bytes(command[16:18], "big")
    if len(command) < _HEADER_LEN + auth_len:
        return None
    return SignedRequest(
        client=int.from_bytes(command[2:6], "big"),
        seq=int.from_bytes(command[6:12], "big"),
        key=int.from_bytes(command[12:16], "big"),
        auth=command[18 : 18 + auth_len],
        body=command[18 + auth_len :],
    )


def strip_request_envelope(command: bytes) -> bytes:
    """Application body of a load request (state machines want the op)."""
    request = parse_request(command)
    return command if request is None else request.body


# ---------------------------------------------------------------------------
# Client authenticators
# ---------------------------------------------------------------------------


class FastClientAuth:
    """Hash-MAC simulation backend (cheap; not unforgeable, like FastKeyring).

    Preserves exactly what the load pipeline observes — per-client
    authenticators that batch-verify and reject tampered requests — at one
    ``tagged_hash`` per request, so million-request sweeps stay fast.
    """

    scheme = "fast"

    def __init__(self, seed: int = 0) -> None:
        self._master = tagged_hash("ICC/load/auth-master", seed.to_bytes(8, "big"))

    def sign(self, client: int, seq: int, key: int, body: bytes) -> bytes:
        return tagged_hash(
            "ICC/load/fast-auth", self._master, signed_message(client, seq, key, body)
        )

    def verify_batch(self, requests: list[SignedRequest]) -> api.BatchResult:
        results = [
            r.auth == self.sign(r.client, r.seq, r.key, r.body) for r in requests
        ]
        return api.BatchResult(
            results=results,
            stats=api.BatchStats(count=len(results), invalid=results.count(False)),
        )


class RealClientAuth:
    """Per-client Schnorr keys, batch-verified via the RLC fast path.

    Client key material is derived deterministically from a master seed, so
    every party (and every worker process) agrees on the key of client *i*
    without a registration protocol.  Signing nonces are derived from the
    secret and message (deterministic Schnorr), keeping the whole load
    pipeline free of RNG draws.  Verification runs through
    :meth:`repro.crypto.api.SchnorrVerifier.verify_batch_report`: one RLC
    combination per batch, bisection pinpointing forged requests exactly.
    """

    scheme = "real"

    def __init__(self, seed: int = 0, group_profile: str = "test") -> None:
        self.group: Group = group_for_profile(group_profile)
        self._suite = api.verifiers_for(self.group)
        self._master = tagged_hash("ICC/load/auth-master", seed.to_bytes(8, "big"))
        self._secrets: dict[int, int] = {}
        self._publics: dict[int, int] = {}
        self._sig_len = self.group.element_width + self.group.scalar_width

    def _secret(self, client: int) -> int:
        secret = self._secrets.get(client)
        if secret is None:
            digest = tagged_hash(
                "ICC/load/client-key", self._master, client.to_bytes(4, "big")
            )
            secret = 1 + int.from_bytes(digest, "big") % (self.group.q - 1)
            self._secrets[client] = secret
        return secret

    def public(self, client: int) -> int:
        public = self._publics.get(client)
        if public is None:
            public = self._suite.ctx.power_g(self._secret(client))
            self._publics[client] = public
        return public

    def warm(self, clients: int) -> None:
        """Pre-build fixed-base tables for the first ``clients`` keys (see
        :meth:`repro.crypto.fastpath.FastPath.warm_bases`)."""
        self._suite.ctx.warm_bases(self.public(c) for c in range(clients))

    def sign(self, client: int, seq: int, key: int, body: bytes) -> bytes:
        group = self.group
        secret = self._secret(client)
        message = signed_message(client, seq, key, body)
        # Deterministic nonce (RFC 6979 in spirit): no RNG draw, and two
        # different messages never share a nonce.
        nonce = 1 + int.from_bytes(
            tagged_hash(
                "ICC/load/nonce", secret.to_bytes(64, "big"), message
            ),
            "big",
        ) % (group.q - 1)
        commitment = self._suite.ctx.power_g(nonce)
        c = schnorr._challenge(group, self.public(client), commitment, message)
        sig = schnorr.SchnorrSignature(
            commitment=commitment, response=(nonce + c * secret) % group.q
        )
        return sig.to_bytes(group)

    def _decode(self, auth: bytes) -> schnorr.SchnorrSignature | None:
        group = self.group
        p_len = group.element_width
        if len(auth) != self._sig_len:
            return None
        try:
            commitment = group.element_from_bytes(auth[:p_len])
        except ValueError:
            return None
        response = int.from_bytes(auth[p_len:], "big")
        return schnorr.SchnorrSignature(commitment=commitment, response=response)

    def verify_batch(self, requests: list[SignedRequest]) -> api.BatchResult:
        items: list[tuple] = []
        live: list[int] = []
        results = [False] * len(requests)
        for i, r in enumerate(requests):
            sig = self._decode(r.auth)
            if sig is None:
                continue
            items.append((self.public(r.client), r.signed_message(), sig))
            live.append(i)
        if not items:
            return api.BatchResult(
                results=results,
                stats=api.BatchStats(count=len(requests), invalid=len(requests)),
            )
        report = self._suite.schnorr.verify_batch_report(items)
        for i, ok in zip(live, report.results):
            results[i] = ok
        stats = report.stats
        stats.count = len(requests)
        stats.invalid = results.count(False)
        return api.BatchResult(results=results, stats=stats)


def client_auth(scheme: str, seed: int = 0, group_profile: str = "test"):
    """Authenticator factory (``"fast"`` or ``"real"``)."""
    if scheme == "fast":
        return FastClientAuth(seed)
    if scheme == "real":
        return RealClientAuth(seed, group_profile)
    raise ValueError(f"unknown client auth scheme {scheme!r}")


# ---------------------------------------------------------------------------
# The batcher
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class BatchSpec:
    """Batching and admission-control knobs (see docs/LOAD.md)."""

    #: Proposer cap: load requests packed into one block.
    batch_max: int = 512
    #: Admission control: shared ingress queue bound.  Arrivals beyond the
    #: cap are shed (counted, traced) instead of growing latency without
    #: bound — the knob that turns an open-loop overload into load shedding.
    queue_cap: int = 100_000
    #: Client authenticator backend ("fast" or "real").
    auth: str = "fast"
    #: Group profile for the real backend.
    group_profile: str = "test"
    #: Per-block management overhead bytes (as in WorkloadSpec).
    management_bytes: int = 64


class RequestBatcher:
    """Shared ingress queue + batch authentication + block packing.

    One instance is shared by the whole cluster, modelling the IC's ingress
    layer gossiping client messages to every party (the same shared-world
    shortcut :class:`~repro.workloads.generators.MempoolWorkload` takes).

    Usage::

        batcher = RequestBatcher(BatchSpec(), seed=1)
        config = ClusterConfig(..., payload_source=batcher.payload_source,
                               payload_verifier=batcher.verify_block)
        cluster = build_cluster(config)
        batcher.bind(cluster)
    """

    def __init__(self, spec: BatchSpec, seed: int = 0) -> None:
        self.spec = spec
        self.auth = client_auth(spec.auth, seed, spec.group_profile)
        self._pending: dict[bytes, bytes] = {}  # request id -> wire bytes
        self._submitted_at: dict[bytes, float] = {}
        self._included_cache: dict[bytes, frozenset[bytes]] = {
            ROOT_HASH: frozenset()
        }
        self._block_auth_memo: dict[bytes, bool] = {}
        self._completion_hooks: list = []  # called with (request_id, latency)

        # Counters (all exposed through LoadReport / the load metrics).
        self.submitted = 0
        self.rejected = 0  # admission-control sheds
        self.auth_invalid = 0  # forged requests dropped at ingress
        self.duplicates = 0  # distilled duplicate submissions
        self.completed = 0
        self.auth_batches = 0
        self.auth_bisections = 0
        self.latencies: list[float] = []
        self.committed_ids: list[bytes] = []

        self._sim = None
        self._tracer = NULL_TRACER
        self._meter = NULL_METER

    # -- wiring ------------------------------------------------------------

    def bind(self, cluster, *, tracer=None, meter=None) -> None:
        """Attach to a built cluster: observe commits on the first honest
        party (completion, latency) and pick up the trace/metric sinks.

        ``tracer``/``meter`` override the simulation-level sinks — embedded
        clusters pass their :class:`~repro.core.cluster.ClusterHandle`
        views here so per-shard load metrics stay namespaced."""
        self._sim = cluster.sim
        self._tracer = tracer if tracer is not None else cluster.sim.tracer
        self._meter = meter if meter is not None else cluster.sim.meter
        observer = cluster.honest_parties[0]
        observer.commit_listeners.append(self._on_commit)

    def on_complete(self, hook) -> None:
        """Register a completion hook (the closed-loop population uses this
        to wake the client whose request just finalized)."""
        self._completion_hooks.append(hook)

    @property
    def queue_depth(self) -> int:
        return len(self._pending)

    # -- ingress admission -------------------------------------------------

    def admit_batch(self, batch: list[tuple[SignedRequest, float]]) -> int:
        """Admit one broker tick's arrivals; returns how many were accepted.

        ``batch`` holds (request, arrival_time) pairs.  The whole tick is
        authenticated in **one** RLC batch; forged requests are dropped
        (and isolated by bisection) without costing the honest ones their
        slot.  Survivors then pass admission control: duplicates of an
        already-pending or already-submitted id are distilled away, and
        arrivals beyond ``queue_cap`` are shed.
        """
        if not batch:
            return 0
        report = self.auth.verify_batch([r for r, _ in batch])
        self.auth_batches += 1
        self.auth_bisections += report.stats.bisections
        if report.stats.invalid:
            self.auth_invalid += report.stats.invalid
            if self._meter.enabled:
                self._meter.count("load.auth.invalid", report.stats.invalid)
        if self._tracer.enabled:
            self._emit(
                "load.batch.auth",
                count=report.stats.count,
                invalid=report.stats.invalid,
                bisections=report.stats.bisections,
            )
        accepted = 0
        shed = 0
        for (request, arrived), ok in zip(batch, report.results):
            if not ok:
                continue
            rid = request.request_id
            if rid in self._pending or rid in self._submitted_at:
                self.duplicates += 1
                continue
            if len(self._pending) >= self.spec.queue_cap:
                shed += 1
                continue
            self._pending[rid] = request.wire()
            self._submitted_at[rid] = arrived
            accepted += 1
        self.submitted += accepted
        if self._meter.enabled and accepted:
            self._meter.count("load.submitted", accepted)
        if shed:
            self.rejected += shed
            if self._meter.enabled:
                self._meter.count("load.rejected", shed)
            if self._tracer.enabled:
                self._emit(
                    "load.admission.reject", count=shed, queued=len(self._pending)
                )
        return accepted

    # -- block packing (getPayload) ---------------------------------------

    def _included_upto(self, chain: list[Block]) -> frozenset[bytes]:
        """Load-request ids already included along ``chain`` (cached)."""
        if not chain:
            return self._included_cache[ROOT_HASH]
        tip = chain[-1]
        cached = self._included_cache.get(tip.hash)
        if cached is not None:
            return cached
        parent = (
            self._included_upto(chain[:-1])
            if len(chain) > 1
            else self._included_cache[ROOT_HASH]
        )
        cached = parent | {
            c[:REQUEST_ID_LEN] for c in tip.payload.commands if is_load_command(c)
        }
        self._included_cache[tip.hash] = cached
        return cached

    def payload_source(self, party, round: int, chain: list[Block]) -> Payload:
        """getPayload: pack up to ``batch_max`` pending requests not already
        on the chain being extended (Section 3.3 dedup)."""
        included = self._included_upto(chain)
        commands: list[bytes] = []
        for rid, wire in self._pending.items():
            if rid in included:
                continue
            commands.append(wire)
            if len(commands) >= self.spec.batch_max:
                break
        payload = Payload(
            commands=tuple(commands), filler_bytes=self.spec.management_bytes
        )
        if self._meter.enabled:
            self._meter.observe("load.batch.commands", len(commands))
        if self._tracer.enabled and commands:
            self._emit(
                "load.batch.sealed",
                party=getattr(party, "index", 0),
                round=round,
                commands=len(commands),
                bytes=payload.wire_size(),
                queued=len(self._pending),
            )
        return payload

    # -- pool batch admission ----------------------------------------------

    def verify_block(self, block: Block) -> bool:
        """Batch-authenticate a proposed block's load requests (pool hook).

        Called by every party's :class:`~repro.core.pool.MessagePool` when
        a block arrives; the verdict is memoized per block hash, so the
        whole cluster pays one RLC batch check per distinct block — the
        per-request cost a Byzantine proposer could otherwise inflict is
        amortized to ~one multiplication.  A block carrying any forged or
        malformed load request is rejected wholesale (the honest proposers
        only pack ingress-verified requests, so honest blocks never fail).
        """
        verdict = self._block_auth_memo.get(block.hash)
        if verdict is not None:
            return verdict
        requests: list[SignedRequest] = []
        verdict = True
        for command in block.payload.commands:
            if not is_load_command(command):
                continue
            request = parse_request(command)
            if request is None:
                verdict = False
                break
            requests.append(request)
        if verdict and requests:
            report = self.auth.verify_batch(requests)
            self.auth_batches += 1
            self.auth_bisections += report.stats.bisections
            verdict = report.stats.invalid == 0
            if self._tracer.enabled:
                self._emit(
                    "load.batch.auth",
                    count=report.stats.count,
                    invalid=report.stats.invalid,
                    bisections=report.stats.bisections,
                )
        self._block_auth_memo[block.hash] = verdict
        return verdict

    # -- completion --------------------------------------------------------

    def _on_commit(self, block: Block) -> None:
        now = self._sim.now if self._sim is not None else 0.0
        for command in block.payload.commands:
            if not is_load_command(command):
                continue
            rid = command[:REQUEST_ID_LEN]
            submitted = self._submitted_at.get(rid)
            if submitted is None:
                continue
            latency = now - submitted
            self.completed += 1
            self.latencies.append(latency)
            self.committed_ids.append(rid)
            self._pending.pop(rid, None)
            del self._submitted_at[rid]
            if self._meter.enabled:
                self._meter.count("load.committed")
                self._meter.observe("load.latency", latency)
            for hook in self._completion_hooks:
                hook(rid, latency)

    def committed_digest(self) -> str:
        """Order-insensitive digest of the finalized request set."""
        h = hashlib.sha256()
        for rid in sorted(self.committed_ids):
            h.update(rid)
        return h.hexdigest()

    # -- tracing -----------------------------------------------------------

    def _emit(self, kind: str, party: int = 0, round: int | None = None, **payload) -> None:
        self._tracer.emit(
            time=self._sim.now if self._sim is not None else 0.0,
            party=party,
            protocol="load",
            round=round,
            kind=kind,
            payload=payload,
        )
