"""Cross-shard client population: per-shard open-loop load with remote
addressing.

The sharded deployment (:mod:`repro.smr.sharding`) needs a client model
where each shard carries its own request stream and a fraction ``xfrac``
of requests address a *remote* shard: those bodies are wrapped in an xnet
envelope, finalize on the origin shard (that commit is the certified
stream entry), cross the fabric, and finalize again on the destination.

Determinism mirrors :class:`~repro.workloads.population.ClientPopulation`:
every draw comes from per-shard ``Random(f"shard-load/{seed}/{name}")``
streams — never the simulation RNG — and arrivals are evenly spaced, so a
deployment run is bit-identical at any ``--jobs`` and with tracing on or
off.  The population also keeps the origin-side bookkeeping the
deployment's latency accounting needs: which request ids are cross-shard
hops, and when each cross-shard body first arrived at its origin ingress.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from random import Random
from typing import Callable, Sequence

from .batching import RequestBatcher, SignedRequest

__all__ = ["ShardLoadSpec", "ShardPopulation"]


@dataclass(frozen=True)
class ShardLoadSpec:
    """Per-shard open-loop load shape."""

    #: Offered load per shard, requests/second (evenly spaced arrivals).
    offered: float = 200.0
    #: Fraction of requests addressed to a uniformly-chosen remote shard.
    xfrac: float = 0.0
    #: Distinct clients per shard (round-robin request attribution).
    clients: int = 100
    #: Application body padding (bytes).
    payload_bytes: int = 64
    #: Key space for the KV-style bodies.
    key_space: int = 1000
    #: Broker tick: arrivals are batched per tick and admitted together.
    tick: float = 0.02

    def __post_init__(self) -> None:
        if self.offered <= 0:
            raise ValueError("offered load must be positive")
        if not 0.0 <= self.xfrac <= 1.0:
            raise ValueError("xfrac must be in [0, 1]")


class ShardPopulation:
    """Generates each shard's request stream and the cross-shard subset."""

    def __init__(self, spec: ShardLoadSpec, seed: int = 0) -> None:
        self.spec = spec
        self.seed = seed
        #: Per shard: request ids of locally-admitted *envelope* requests
        #: (the origin-side hop of a cross-shard request).
        self.cross_rids: dict[str, set[bytes]] = {}
        #: Cross-shard inner body -> (destination shard, origin arrival).
        self.origin: dict[bytes, tuple[str, float]] = {}
        self.generated: dict[str, int] = {}
        self.cross_generated = 0

    def install(
        self,
        sim,
        shards: Sequence[tuple[str, RequestBatcher]],
        duration: float,
        start: float = 0.0,
        envelope: Callable[[str, bytes], bytes] | None = None,
    ) -> None:
        """Pre-draw every arrival and schedule per-tick admissions.

        ``shards`` pairs each shard name with its ingress batcher;
        ``envelope`` wraps (destination, body) into a cross-shard command
        (defaults to :func:`repro.smr.xnet.make_envelope`).
        """
        if envelope is None:
            from ..smr.xnet import make_envelope

            envelope = make_envelope
        names = [name for name, _ in shards]
        for name, batcher in shards:
            self._install_shard(sim, name, batcher, names, duration, start, envelope)

    def _install_shard(
        self,
        sim,
        name: str,
        batcher: RequestBatcher,
        names: Sequence[str],
        duration: float,
        start: float,
        envelope: Callable[[str, bytes], bytes],
    ) -> None:
        spec = self.spec
        rng = Random(f"shard-load/{self.seed}/{name}")
        others = [n for n in names if n != name]
        cross_rids = self.cross_rids.setdefault(name, set())
        count = int(duration * spec.offered)
        self.generated[name] = count
        interval = 1.0 / spec.offered
        seqs: dict[int, int] = {}
        ticks: dict[int, list[tuple[SignedRequest, float]]] = {}
        for i in range(count):
            arrival = start + (i + 1) * interval
            client = i % spec.clients
            seq = seqs.get(client, 0)
            seqs[client] = seq + 1
            key = rng.randrange(spec.key_space)
            inner = self._body(name, client, seq, key)
            cross = bool(others) and rng.random() < spec.xfrac
            if cross:
                destination = others[rng.randrange(len(others))]
                body = envelope(destination, inner)
            else:
                body = inner
            auth = batcher.auth.sign(client, seq, key, body)
            request = SignedRequest(client=client, seq=seq, key=key, auth=auth, body=body)
            if cross:
                cross_rids.add(request.request_id)
                self.origin[inner] = (destination, arrival)
                self.cross_generated += 1
            ticks.setdefault(math.ceil(arrival / spec.tick), []).append((request, arrival))
        for tick_index, batch in sorted(ticks.items()):
            sim.schedule_at(
                tick_index * spec.tick,
                lambda b=batch: batcher.admit_batch(b),
            )

    def _body(self, name: str, client: int, seq: int, key: int) -> bytes:
        """A KV put whose value is globally unique (shard/client/seq), so
        cross-shard origin lookup by inner body is unambiguous."""
        body = f"put k{key} {name}:{client}:{seq}:".encode()
        pad = self.spec.payload_bytes - len(body)
        return body + b"x" * max(0, pad)
