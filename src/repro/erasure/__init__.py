"""Erasure-coding substrate: GF(256), Reed–Solomon, Merkle commitments."""

from . import gf256
from .merkle import MerkleProof, MerkleTree, verify_inclusion
from .reed_solomon import CodecParams, DecodeError, decode, encode, shard_length

__all__ = [
    "gf256",
    "MerkleProof",
    "MerkleTree",
    "verify_inclusion",
    "CodecParams",
    "DecodeError",
    "decode",
    "encode",
    "shard_length",
]
