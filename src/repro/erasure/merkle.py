"""Merkle trees with inclusion proofs.

The reliable broadcast subprotocol commits to the full vector of coded
fragments with a Merkle root; each fragment travels with its inclusion
proof, so receivers verify fragments individually before contributing them
to reconstruction (fragments and hashes are the λ-sized objects in the
paper's O(S + n·λ·log n) accounting).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import DIGEST_SIZE, tagged_hash

_LEAF_TAG = "ICC/merkle/leaf"
_NODE_TAG = "ICC/merkle/node"


def _leaf_hash(index: int, data: bytes) -> bytes:
    return tagged_hash(_LEAF_TAG, index.to_bytes(4, "big"), data)


def _node_hash(left: bytes, right: bytes) -> bytes:
    return tagged_hash(_NODE_TAG, left, right)


@dataclass(frozen=True)
class MerkleProof:
    """Sibling path from a leaf to the root."""

    leaf_index: int
    siblings: tuple[bytes, ...]

    def wire_size(self) -> int:
        return 4 + DIGEST_SIZE * len(self.siblings)


class MerkleTree:
    """Binary Merkle tree over a list of byte-string leaves.

    Odd levels duplicate the trailing node (Bitcoin-style), which keeps the
    construction simple; leaf hashes bind the index, so the duplication
    cannot be abused to prove a fragment at two positions.
    """

    def __init__(self, leaves: list[bytes]) -> None:
        if not leaves:
            raise ValueError("Merkle tree needs at least one leaf")
        self.leaf_count = len(leaves)
        level = [_leaf_hash(i, leaf) for i, leaf in enumerate(leaves)]
        self._levels = [level]
        while len(level) > 1:
            if len(level) % 2 == 1:
                level = level + [level[-1]]
            level = [
                _node_hash(level[i], level[i + 1]) for i in range(0, len(level), 2)
            ]
            self._levels.append(level)

    @property
    def root(self) -> bytes:
        return self._levels[-1][0]

    def proof(self, index: int) -> MerkleProof:
        if not 0 <= index < self.leaf_count:
            raise IndexError(f"leaf index {index} out of range")
        siblings: list[bytes] = []
        pos = index
        for level in self._levels[:-1]:
            padded = level + [level[-1]] if len(level) % 2 == 1 else level
            sibling = padded[pos ^ 1]
            siblings.append(sibling)
            pos //= 2
        return MerkleProof(leaf_index=index, siblings=tuple(siblings))


def verify_inclusion(root: bytes, data: bytes, proof: MerkleProof) -> bool:
    """Check that ``data`` is the leaf at ``proof.leaf_index`` under ``root``."""
    node = _leaf_hash(proof.leaf_index, data)
    pos = proof.leaf_index
    for sibling in proof.siblings:
        if pos % 2 == 0:
            node = _node_hash(node, sibling)
        else:
            node = _node_hash(sibling, node)
        pos //= 2
    return node == root
