"""GF(2^8) arithmetic, table-driven and numpy-vectorised.

The field underlying the Reed–Solomon erasure code used by ICC2's reliable
broadcast subprotocol.  We use the AES polynomial x^8 + x^4 + x^3 + x + 1
(0x11B) with generator 0x03; EXP/LOG tables make scalar multiplication a
lookup, and numpy fancy-indexing extends it to whole shards at once.
"""

from __future__ import annotations

import numpy as np

_POLY = 0x11B
_GENERATOR = 0x03

ORDER = 255  # multiplicative group order


def _tables() -> tuple[np.ndarray, np.ndarray]:
    exp = np.zeros(512, dtype=np.uint8)
    log = np.zeros(256, dtype=np.int64)
    x = 1
    for i in range(ORDER):
        exp[i] = x
        log[x] = i
        # multiply x by the generator 0x03 = x * 2 + x in GF(2^8)
        x2 = x << 1
        if x2 & 0x100:
            x2 ^= _POLY
        x = x2 ^ x
    exp[ORDER : 2 * ORDER] = exp[:ORDER]  # wraparound copies
    exp[2 * ORDER :] = exp[: 512 - 2 * ORDER]
    return exp, log


EXP, LOG = _tables()


def mul(a: int, b: int) -> int:
    """Scalar multiplication in GF(256)."""
    if a == 0 or b == 0:
        return 0
    return int(EXP[LOG[a] + LOG[b]])


def inv(a: int) -> int:
    """Multiplicative inverse; raises for 0."""
    if a == 0:
        raise ZeroDivisionError("0 has no inverse in GF(256)")
    return int(EXP[ORDER - LOG[a]])


def div(a: int, b: int) -> int:
    return mul(a, inv(b))


def add(a: int, b: int) -> int:
    """Addition == subtraction == XOR in characteristic 2."""
    return a ^ b


def pow_(a: int, e: int) -> int:
    if a == 0:
        return 0 if e else 1
    return int(EXP[(LOG[a] * (e % ORDER)) % ORDER])


def mul_scalar_vec(scalar: int, vec: np.ndarray) -> np.ndarray:
    """scalar * vec, element-wise over a uint8 numpy array."""
    if scalar == 0:
        return np.zeros_like(vec)
    if scalar == 1:
        return vec.copy()
    log_s = LOG[scalar]
    out = EXP[log_s + LOG[vec]]
    out[vec == 0] = 0
    return out.astype(np.uint8)


def xor_accumulate(target: np.ndarray, addend: np.ndarray) -> None:
    """target ^= addend, in place."""
    np.bitwise_xor(target, addend, out=target)
