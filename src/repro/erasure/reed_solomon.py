"""Systematic Reed–Solomon erasure coding over GF(256).

The code behind ICC2's reliable broadcast: a message is split into ``k``
data shards, extended to ``m`` total shards, and *any* k shards reconstruct
the message.  We use the polynomial-evaluation view: the k data shards are
the values of a degree-(k-1) polynomial (per byte position) at evaluation
points 0..k-1, and parity shard j is its value at point j (for j >= k).
Encoding and decoding are both Lagrange interpolation, vectorised with
numpy across byte positions.

GF(256) limits ``m`` to 256 shards, far above the subnet sizes the paper
deploys (13–40 nodes).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from . import gf256


class DecodeError(ValueError):
    """Raised when reconstruction is impossible or inputs are malformed."""


def _lagrange_coefficients(points: list[int], target: int) -> list[int]:
    """Coefficients c_i with f(target) = XOR_i c_i * f(points[i]) in GF(256)."""
    coeffs = []
    for i, xi in enumerate(points):
        num, den = 1, 1
        for j, xj in enumerate(points):
            if i == j:
                continue
            num = gf256.mul(num, target ^ xj)
            den = gf256.mul(den, xi ^ xj)
        coeffs.append(gf256.div(num, den))
    return coeffs


@dataclass(frozen=True)
class CodecParams:
    """(k, m): reconstruct from any k of m shards."""

    k: int
    m: int

    def __post_init__(self) -> None:
        if not 1 <= self.k <= self.m:
            raise ValueError("need 1 <= k <= m")
        if self.m > 256:
            raise ValueError("GF(256) supports at most 256 shards")


def shard_length(data_length: int, k: int) -> int:
    """Length of each shard for a message of ``data_length`` bytes."""
    return max(1, -(-data_length // k))


def encode(data: bytes, params: CodecParams) -> list[bytes]:
    """Encode ``data`` into ``params.m`` shards (first k are systematic)."""
    k, m = params.k, params.m
    length = shard_length(len(data), k)
    padded = np.frombuffer(data.ljust(k * length, b"\x00"), dtype=np.uint8)
    shards = [padded[i * length : (i + 1) * length] for i in range(k)]
    out = [bytes(s) for s in shards]
    points = list(range(k))
    for target in range(k, m):
        coeffs = _lagrange_coefficients(points, target)
        acc = np.zeros(length, dtype=np.uint8)
        for c, shard in zip(coeffs, shards):
            gf256.xor_accumulate(acc, gf256.mul_scalar_vec(c, shard))
        out.append(bytes(acc))
    return out


def decode(shards: dict[int, bytes], params: CodecParams, data_length: int) -> bytes:
    """Reconstruct the original message from any k shards.

    ``shards`` maps shard index -> shard bytes.  Extra shards beyond k are
    ignored (deterministically: lowest indices win).
    """
    k = params.k
    if len(shards) < k:
        raise DecodeError(f"need {k} shards, got {len(shards)}")
    chosen = sorted(shards)[:k]
    length = shard_length(data_length, k)
    arrays = {}
    for idx in chosen:
        if not 0 <= idx < params.m:
            raise DecodeError(f"shard index {idx} out of range")
        shard = shards[idx]
        if len(shard) != length:
            raise DecodeError(
                f"shard {idx} has length {len(shard)}, expected {length}"
            )
        arrays[idx] = np.frombuffer(shard, dtype=np.uint8)

    data_parts: list[np.ndarray] = []
    for target in range(k):
        if target in arrays:
            data_parts.append(arrays[target])
            continue
        coeffs = _lagrange_coefficients(chosen, target)
        acc = np.zeros(length, dtype=np.uint8)
        for c, idx in zip(coeffs, chosen):
            gf256.xor_accumulate(acc, gf256.mul_scalar_vec(c, arrays[idx]))
        data_parts.append(acc)
    return b"".join(bytes(p) for p in data_parts)[:data_length]
