"""Tendermint on the shared simulation substrate.

The gossip-era baseline of Section 1.1.  Faithful to the properties the
paper compares on:

* rotating proposer per height/round, propose → prevote → precommit with
  value locking (safety under asynchrony);
* **not optimistically responsive**: after deciding a height, replicas
  wait ``timeout_commit`` (a protocol parameter that must be set to a
  conservative network bound Δbnd) before starting the next height — so
  every height costs O(Δbnd) even when the actual delay δ is tiny.  This
  is the real `timeout_commit` mechanism of production Tendermint and is
  exactly the behaviour experiment E6 measures against ICC's 2δ rounds.
* round timeouts grow linearly with the round number, so liveness is
  recovered after asynchrony or faulty proposers.

Dissemination here uses plain broadcast (production Tendermint gossips;
ICC1's gossip sub-layer plays that role in our ICC comparison — using
broadcast for both keeps the latency comparison apples-to-apples).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..crypto.hashing import DIGEST_SIZE
from ..obs import short_id
from .common import Batch, BaselineParty, GENESIS_DIGEST, Vote

#: Digest placeholder for nil votes.
NIL = b"\x00" * DIGEST_SIZE


@dataclass(frozen=True)
class TMProposal:
    """Proposal for (height, round)."""

    height: int
    round: int
    batch: Batch

    kind = "tendermint-proposal"

    def wire_size(self) -> int:
        return 16 + self.batch.wire_size()


class TendermintParty(BaselineParty):
    """One Tendermint validator."""

    protocol_name = "Tendermint"

    def __init__(
        self,
        *,
        timeout_propose: float = 3.0,
        timeout_step: float = 3.0,
        timeout_commit: float = 1.0,  # the Δbnd-scale non-responsive wait
        max_heights: int | None = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.timeout_propose = timeout_propose
        self.timeout_step = timeout_step
        self.timeout_commit = timeout_commit
        self.max_heights = max_heights
        self.height = 1
        self.round = 1
        self.step = "new"  # "propose" | "prevote" | "precommit" | "done"
        self.locked_batch: Batch | None = None
        self.locked_round = 0
        self._batches: dict[bytes, Batch] = {}
        self._prevotes: dict[tuple[int, int, bytes], set[int]] = {}
        self._precommits: dict[tuple[int, int, bytes], set[int]] = {}
        self._prevoted: set[tuple[int, int]] = set()
        self._precommitted: set[tuple[int, int]] = set()
        self._decided_digest: dict[int, bytes] = {}

    # ------------------------------------------------------------------ identity

    def proposer_of(self, height: int, round: int) -> int:
        return ((height + round - 2) % self.n) + 1

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        self._enter_round(self.height, self.round)

    def _done(self) -> bool:
        return self.max_heights is not None and self.k_max >= self.max_heights

    def _enter_round(self, height: int, round: int) -> None:
        if self._done() or height != self.height:
            return
        self.round = round
        self.step = "propose"
        if self.proposer_of(height, round) == self.index:
            self._propose(height, round)
        self.sim.schedule(
            self.timeout_propose * round,
            lambda: self._on_timeout(height, round, "propose"),
        )
        self._recheck(height, round)

    def _propose(self, height: int, round: int) -> None:
        if self.locked_batch is not None:
            batch = self.locked_batch  # must re-propose the locked value
        else:
            parent = self.output_log[-1].digest if self.output_log else GENESIS_DIGEST
            payload = self.build_payload(height, self.output_log)
            batch = Batch(
                height=height, proposer=self.index, parent_digest=parent, payload=payload
            )
        self.metrics.proposed_at.setdefault(batch.digest, self.sim.now)
        self.metrics.count("tendermint-proposals")
        if self.tracer.enabled:
            self._trace(
                "tendermint.propose", round=height,
                tm_round=round, batch=short_id(batch.digest),
            )
        self._broadcast(TMProposal(height=height, round=round, batch=batch), round=height)

    # ------------------------------------------------------------------ messages

    def on_receive(self, message: object) -> None:
        if isinstance(message, TMProposal):
            self._on_proposal(message)
        elif isinstance(message, Vote) and message.protocol == "tendermint":
            self._on_vote(message)

    def _on_proposal(self, message: TMProposal) -> None:
        batch = message.batch
        if batch.proposer != self.proposer_of(message.height, message.round):
            return
        self._batches[batch.digest] = batch
        if message.height != self.height or message.round != self.round:
            self._try_decide(message.height)
            return
        if self.step != "propose":
            return
        slot = (message.height, message.round)
        if slot in self._prevoted:
            return
        self._prevoted.add(slot)
        self.step = "prevote"
        # Locking rule: prevote the proposal unless locked on something else.
        if self.locked_batch is not None and self.locked_batch.digest != batch.digest:
            digest = NIL
        else:
            digest = batch.digest
        vote = self.make_vote("tendermint", "prevote", message.round, message.height, digest)
        self._broadcast(vote, round=message.height)
        self.sim.schedule(
            self.timeout_step * message.round,
            lambda: self._on_timeout(message.height, message.round, "prevote"),
        )

    def _on_vote(self, vote: Vote) -> None:
        self.enqueue_vote(vote)

    def _accept_vote(self, vote: Vote) -> None:
        key = (vote.height, vote.view, vote.digest)
        table = self._prevotes if vote.phase == "prevote" else self._precommits
        table.setdefault(key, set()).add(vote.voter)
        self._recheck(vote.height, vote.view)

    def _recheck(self, height: int, round: int) -> None:
        if height != self.height:
            self._try_decide(height)
            return
        slot = (height, round)
        # Quorum of prevotes for a value -> lock + precommit it.
        if self.step in ("prevote", "propose") and slot not in self._precommitted:
            for (h, r, digest), voters in list(self._prevotes.items()):
                if (h, r) != slot or digest == NIL:
                    continue
                if len(voters) >= self.quorum and digest in self._batches:
                    self._precommitted.add(slot)
                    self._prevoted.add(slot)
                    self.locked_batch = self._batches[digest]
                    self.locked_round = round
                    self.step = "precommit"
                    vote = self.make_vote("tendermint", "precommit", round, height, digest)
                    self._broadcast(vote, round=height)
                    self.sim.schedule(
                        self.timeout_step * round,
                        lambda: self._on_timeout(height, round, "precommit"),
                    )
                    break
        # Quorum of nil prevotes -> precommit nil.
        nil_prevotes = self._prevotes.get((height, round, NIL), set())
        if (
            self.step == "prevote"
            and slot not in self._precommitted
            and len(nil_prevotes) >= self.quorum
        ):
            self._precommitted.add(slot)
            self.step = "precommit"
            vote = self.make_vote("tendermint", "precommit", round, height, NIL)
            self._broadcast(vote, round=height)
            self.sim.schedule(
                self.timeout_step * round,
                lambda: self._on_timeout(height, round, "precommit"),
            )
        # Quorum of precommits for a value -> decide.
        self._try_decide(height)
        # Quorum of nil precommits -> next round.
        nil_precommits = self._precommits.get((height, round, NIL), set())
        if self.step == "precommit" and len(nil_precommits) >= self.quorum:
            self._enter_round(height, round + 1)

    def _try_decide(self, height: int) -> None:
        if height != self.height:
            return
        for (h, r, digest), voters in list(self._precommits.items()):
            if h != height or digest == NIL:
                continue
            if len(voters) >= self.quorum and digest in self._batches:
                batch = self._batches[digest]
                self.commit_batch(batch)
                self.metrics.count("tendermint-decisions")
                if self.tracer.enabled:
                    self._trace(
                        "tendermint.decide", round=height, batch=short_id(digest)
                    )
                self.height += 1
                self.round = 1
                self.step = "new"
                self.locked_batch = None
                self.locked_round = 0
                next_height = self.height
                # timeout_commit: the non-responsive inter-height wait.
                self.sim.schedule(
                    self.timeout_commit, lambda: self._enter_round(next_height, 1)
                )
                return

    def _on_timeout(self, height: int, round: int, step: str) -> None:
        if self._done() or height != self.height or round != self.round:
            return
        slot = (height, round)
        if step == "propose" and self.step == "propose":
            # No (acceptable) proposal: prevote nil.
            self._prevoted.add(slot)
            self.step = "prevote"
            vote = self.make_vote("tendermint", "prevote", round, height, NIL)
            self._broadcast(vote, round=height)
            self.sim.schedule(
                self.timeout_step * round,
                lambda: self._on_timeout(height, round, "prevote"),
            )
        elif step == "prevote" and self.step == "prevote" and slot not in self._precommitted:
            self._precommitted.add(slot)
            self.step = "precommit"
            vote = self.make_vote("tendermint", "precommit", round, height, NIL)
            self._broadcast(vote, round=height)
            self.sim.schedule(
                self.timeout_step * round,
                lambda: self._on_timeout(height, round, "precommit"),
            )
        elif step == "precommit" and self.step == "precommit":
            self._enter_round(height, round + 1)
