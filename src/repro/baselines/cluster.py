"""Cluster assembly for the baseline protocols (mirrors repro.core.cluster)."""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from ..crypto.keyring import generate_keyrings
from ..sim.delays import DelayModel, FixedDelay
from ..sim.metrics import Metrics
from ..sim.network import Network
from ..sim.simulator import Simulation
from .common import BaselineParty


@dataclass
class BaselineClusterConfig:
    """Declarative description of one baseline run."""

    party_class: type[BaselineParty]
    n: int
    t: int = 0
    seed: int = 0
    delay_model: DelayModel | None = None
    payload_source: object = None
    crypto_backend: str = "fast"
    #: Same-instant RLC batch verification of arriving votes (see
    #: BaselineParty.enqueue_vote).  Off = eager per-vote verification;
    #: commits and metrics are identical either way.
    crypto_batch: bool = True
    #: index -> replacement class (None = crash failure)
    corrupt: dict[int, type | None] = dc_field(default_factory=dict)
    party_kwargs: dict = dc_field(default_factory=dict)
    #: Optional :class:`repro.obs.Tracer`; installed on the Simulation
    #: *before* any party is built (parties cache ``sim.tracer``).
    tracer: object | None = None
    #: Optional :class:`repro.obs.Meter`; same before-build rule.
    meter: object | None = None


class BaselineCluster:
    """A built baseline deployment."""

    def __init__(self, config, sim, network, parties) -> None:
        self.config = config
        self.sim = sim
        self.network = network
        self.parties = parties

    @property
    def metrics(self) -> Metrics:
        return self.network.metrics

    @property
    def honest_parties(self) -> list[BaselineParty]:
        return [p for p in self.parties if p.index not in self.config.corrupt]

    def party(self, index: int) -> BaselineParty:
        return self.parties[index - 1]

    def start(self) -> None:
        for party in self.parties:
            if (
                party.index in self.config.corrupt
                and self.config.corrupt[party.index] is None
            ):
                continue
            party.start()

    def run_for(self, seconds: float, max_events: int | None = 5_000_000) -> None:
        self.sim.run(until=self.sim.now + seconds, max_events=max_events)

    def run_until_all_committed_height(
        self, height: int, timeout: float = 10_000.0, max_events: int | None = 5_000_000
    ) -> bool:
        honest = self.honest_parties

        def done() -> bool:
            return all(p.k_max >= height for p in honest)

        self.sim.run(until=timeout, stop_when=done, max_events=max_events)
        return done()

    def check_safety(self) -> None:
        """Prefix property over all honest parties' committed batches."""
        logs = [p.committed_hashes for p in self.honest_parties]
        reference = max(logs, key=len, default=[])
        for log in logs:
            if log != reference[: len(log)]:
                raise AssertionError("baseline safety violated: logs diverge")

    def min_committed_height(self) -> int:
        return min((p.k_max for p in self.honest_parties), default=0)


def build_baseline_cluster(config: BaselineClusterConfig) -> BaselineCluster:
    sim = Simulation(seed=config.seed)
    if config.tracer is not None:
        sim.tracer = config.tracer  # before Network/parties: they cache it
    if config.meter is not None:
        sim.meter = config.meter
    delay_model = config.delay_model if config.delay_model is not None else FixedDelay(0.1)
    metrics = Metrics(n=config.n)
    network = Network(sim, config.n, delay_model, metrics)
    keyrings = generate_keyrings(
        config.n, config.t, seed=config.seed, backend=config.crypto_backend
    )
    parties = []
    for i in range(1, config.n + 1):
        cls = config.corrupt.get(i, config.party_class)
        if cls is None:
            cls = config.party_class
        party = cls(
            index=i,
            keyring=keyrings[i - 1],
            sim=sim,
            network=network,
            n=config.n,
            t=config.t,
            payload_source=config.payload_source,
            **config.party_kwargs,
        )
        party.batch_votes = config.crypto_batch
        parties.append(party)
        network.attach(party)
    for index, cls in config.corrupt.items():
        if cls is None:
            network.crash(index)
    return BaselineCluster(config, sim, network, parties)
