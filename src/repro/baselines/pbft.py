"""PBFT (Castro–Liskov) on the shared simulation substrate.

The reference point for all later BFT work (Section 1.1).  Implemented
faithfully where it matters to the paper's comparisons:

* three-phase agreement: pre-prepare (leader broadcast), prepare
  (all-to-all), commit (all-to-all) — latency 3δ per batch;
* a *stable* primary that is only replaced by a **view change** when
  replicas time out — the property that makes PBFT fragile under the
  slow-primary attack of [15] (experiment E5): a primary that stays just
  under the timeout throttles the whole system indefinitely, because
  unlike ICC nobody else may propose;
* view changes carry each replica's highest *prepared* batch so the new
  primary re-proposes it (the safety-critical part of the view-change
  protocol; checkpoint garbage collection is omitted as in our ICC
  implementation).

Non-pipelined (one outstanding batch), so reciprocal throughput is 3δ —
the number HotStuff improves to 2δ and ICC0/ICC1 match at 2δ.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.messages import Payload
from ..obs import short_id
from .common import Batch, BaselineParty, GENESIS_DIGEST, Vote


@dataclass(frozen=True)
class PrePrepare:
    """Primary's proposal for (view, height)."""

    view: int
    batch: Batch

    kind = "pbft-preprepare"

    def wire_size(self) -> int:
        return 8 + self.batch.wire_size()


@dataclass(frozen=True)
class ViewChange:
    """Vote to install ``new_view``, carrying the highest prepared batch."""

    new_view: int
    voter: int
    prepared_height: int
    prepared_batch: Batch | None = field(compare=False)

    kind = "pbft-viewchange"

    def wire_size(self) -> int:
        size = 8 + 4 + 8 + 48
        if self.prepared_batch is not None:
            size += self.prepared_batch.wire_size()
        return size


class PBFTParty(BaselineParty):
    """One PBFT replica."""

    protocol_name = "PBFT"

    def __init__(self, *, view_timeout: float = 4.0, max_heights: int | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.view = 1
        self.view_timeout = view_timeout
        self.max_heights = max_heights
        self._accepted: dict[tuple[int, int], Batch] = {}  # (view, height) -> batch
        self._batches: dict[bytes, Batch] = {}
        self._prepares: dict[tuple[int, int, bytes], set[int]] = {}
        self._commits: dict[tuple[int, int, bytes], set[int]] = {}
        self._prepare_voted: set[tuple[int, int]] = set()
        self._commit_voted: set[tuple[int, int]] = set()
        self._committable: dict[int, Batch] = {}
        self._highest_prepared: tuple[int, Batch | None] = (0, None)
        self._view_changes: dict[int, dict[int, ViewChange]] = {}
        self._view_change_sent = 0
        self._last_progress = 0.0

    # ------------------------------------------------------------------ identity

    def primary_of(self, view: int) -> int:
        return ((view - 1) % self.n) + 1

    @property
    def is_primary(self) -> bool:
        return self.primary_of(self.view) == self.index

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        self._last_progress = self.sim.now
        if self.is_primary:
            self._propose_next()
        self._arm_timeout()

    def _arm_timeout(self) -> None:
        self.sim.schedule(self.view_timeout / 2, self._check_timeout)

    def _check_timeout(self) -> None:
        if self._done():
            return
        if self.sim.now - self._last_progress >= self.view_timeout:
            self._request_view_change(self.view + 1)
        self._arm_timeout()

    def _done(self) -> bool:
        return self.max_heights is not None and self.k_max >= self.max_heights

    # ------------------------------------------------------------------ proposing

    def _propose_next(self) -> None:
        if self._done():
            return
        height = self.k_max + 1
        if (self.view, height) in self._accepted:
            return  # already proposed / accepted for this slot
        prepared_height, prepared_batch = self._highest_prepared
        if prepared_batch is not None and prepared_height == height:
            batch = prepared_batch  # re-propose what may have committed elsewhere
        else:
            parent = self.output_log[-1].digest if self.output_log else GENESIS_DIGEST
            payload = self.build_payload(height, self.output_log)
            batch = Batch(
                height=height, proposer=self.index, parent_digest=parent, payload=payload
            )
        self.metrics.proposed_at.setdefault(batch.digest, self.sim.now)
        self.metrics.count("pbft-proposals")
        if self.tracer.enabled:
            self._trace(
                "pbft.propose", round=height,
                view=self.view, batch=short_id(batch.digest),
            )
        message = PrePrepare(view=self.view, batch=batch)
        self._broadcast(message, round=height)

    # ------------------------------------------------------------------ message handling

    def on_receive(self, message: object) -> None:
        if isinstance(message, PrePrepare):
            self._on_preprepare(message)
        elif isinstance(message, Vote) and message.protocol == "pbft":
            self._on_vote(message)
        elif isinstance(message, ViewChange):
            self._on_view_change(message)

    def _on_preprepare(self, message: PrePrepare) -> None:
        batch = message.batch
        if message.view != self.view:
            return
        if batch.proposer != self.primary_of(message.view):
            return  # only the primary may pre-prepare
        slot = (message.view, batch.height)
        if slot in self._accepted and self._accepted[slot].digest != batch.digest:
            return  # equivocating primary; first one wins, timeout handles the rest
        if batch.height <= self.k_max:
            return
        self._accepted[slot] = batch
        self._batches[batch.digest] = batch
        if slot not in self._prepare_voted:
            self._prepare_voted.add(slot)
            vote = self.make_vote("pbft", "prepare", message.view, batch.height, batch.digest)
            self._broadcast(vote, round=batch.height)
        self._evaluate(message.view, batch.height, batch.digest)

    def _on_vote(self, vote: Vote) -> None:
        self.enqueue_vote(vote)

    def _accept_vote(self, vote: Vote) -> None:
        key = (vote.view, vote.height, vote.digest)
        table = self._prepares if vote.phase == "prepare" else self._commits
        table.setdefault(key, set()).add(vote.voter)
        self._evaluate(vote.view, vote.height, vote.digest)

    def _evaluate(self, view: int, height: int, digest: bytes) -> None:
        key = (view, height, digest)
        slot = (view, height)
        batch = self._batches.get(digest)
        # prepared: pre-prepare accepted + quorum of prepares.
        if (
            batch is not None
            and self._accepted.get(slot) is not None
            and self._accepted[slot].digest == digest
            and len(self._prepares.get(key, ())) >= self.quorum
            and slot not in self._commit_voted
        ):
            self._commit_voted.add(slot)
            if height > self._highest_prepared[0]:
                self._highest_prepared = (height, batch)
            vote = self.make_vote("pbft", "commit", view, height, digest)
            self._broadcast(vote, round=height)
        # committed: quorum of commits.
        if batch is not None and len(self._commits.get(key, ())) >= self.quorum:
            self._committable.setdefault(height, batch)
            self._execute_ready()

    def _execute_ready(self) -> None:
        progressed = False
        while True:
            batch = self._committable.get(self.k_max + 1)
            if batch is None:
                break
            self.commit_batch(batch)
            progressed = True
        if progressed:
            self._last_progress = self.sim.now
            if self.is_primary:
                self._propose_next()

    # ------------------------------------------------------------------ view change

    def _request_view_change(self, new_view: int) -> None:
        if self._view_change_sent >= new_view:
            return
        self._view_change_sent = new_view
        prepared_height, prepared_batch = self._highest_prepared
        if prepared_height <= self.k_max:
            prepared_height, prepared_batch = 0, None
        message = ViewChange(
            new_view=new_view,
            voter=self.index,
            prepared_height=prepared_height,
            prepared_batch=prepared_batch,
        )
        self.metrics.count("pbft-view-changes-requested")
        self._broadcast(message)

    def _on_view_change(self, message: ViewChange) -> None:
        if message.new_view <= self.view:
            return
        votes = self._view_changes.setdefault(message.new_view, {})
        votes[message.voter] = message
        if len(votes) < self.quorum:
            return
        # Install the new view.
        self.view = message.new_view
        self._last_progress = self.sim.now
        self.metrics.count("pbft-view-changes-installed")
        if self.tracer.enabled:
            self._trace("pbft.viewchange", new_view=self.view)
        # Adopt the highest prepared batch reported by the quorum.
        for vc in votes.values():
            if vc.prepared_batch is not None and vc.prepared_height > self._highest_prepared[0]:
                self._highest_prepared = (vc.prepared_height, vc.prepared_batch)
        if self.is_primary:
            self._propose_next()
