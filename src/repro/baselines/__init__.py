"""Baseline protocols the paper compares against, on the shared substrate."""

from .cluster import BaselineCluster, BaselineClusterConfig, build_baseline_cluster
from .common import Batch, BaselineParty, GENESIS_DIGEST, Vote
from .hotstuff import HotStuffParty
from .pbft import PBFTParty
from .tendermint import TendermintParty

__all__ = [
    "BaselineCluster",
    "BaselineClusterConfig",
    "build_baseline_cluster",
    "Batch",
    "BaselineParty",
    "GENESIS_DIGEST",
    "Vote",
    "HotStuffParty",
    "PBFTParty",
    "TendermintParty",
]
