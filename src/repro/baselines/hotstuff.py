"""Chained HotStuff on the shared simulation substrate.

The closest modern competitor discussed in Section 1.1.  Implemented
features match the claims the paper compares against:

* rotating leader every view, linear message pattern: the leader
  broadcasts a proposal, replicas send votes to the *next* leader;
* chained (pipelined) operation: every proposal carries a QC for its
  parent, so one batch completes per view — reciprocal throughput 2δ;
* the three-chain commit rule: a node is committed when it heads a chain
  of three QCs with consecutive views — commit latency ≈ 6δ (vs 3δ for
  ICC0/ICC1 and PBFT);
* a pacemaker: on timeout, replicas send NewView (carrying their highest
  QC) to the next leader, who proposes once it hears from a quorum —
  like ICC, HotStuff is optimistically responsive;
* like PBFT — and unlike ICC — the leader alone disseminates the batch,
  and a silent leader's view produces nothing (experiments E5/E9).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashing import DIGEST_SIZE, tagged_hash
from ..core.messages import SIG_SIZE, AGG_DESCRIPTOR_SIZE
from ..obs import short_id
from .common import Batch, BaselineParty, GENESIS_DIGEST, Vote, vote_message


@dataclass(frozen=True)
class QC:
    """Quorum certificate: an aggregate over a quorum of generic votes."""

    view: int
    height: int
    node_digest: bytes
    aggregate: object = field(compare=False)

    def wire_size(self) -> int:
        return 8 + 8 + DIGEST_SIZE + SIG_SIZE + AGG_DESCRIPTOR_SIZE


#: Sentinel QC for the genesis node (view 0).
GENESIS_QC = QC(view=0, height=0, node_digest=GENESIS_DIGEST, aggregate=None)


@dataclass(frozen=True)
class HSNode:
    """A node in the HotStuff chain: a batch justified by a parent QC."""

    view: int
    height: int
    batch: Batch
    parent_digest: bytes
    justify: QC = field(compare=False)

    @property
    def digest(self) -> bytes:
        return tagged_hash(
            "hotstuff/node",
            self.view.to_bytes(8, "big"),
            self.height.to_bytes(8, "big"),
            self.batch.digest,
            self.parent_digest,
        )

    kind = "hotstuff-proposal"

    def wire_size(self) -> int:
        return 16 + DIGEST_SIZE + self.batch.wire_size() + self.justify.wire_size()


@dataclass(frozen=True)
class NewView:
    """Pacemaker message: 'I give up on my view; here is my highest QC'.

    It also carries the sender's *last vote* (as LibraBFT's timeout
    messages do).  Without this, a crashed leader swallows the votes of the
    preceding view forever and — with an adversarially aligned round-robin
    — the three-consecutive-view commit rule can starve even though a
    quorum of replicas voted.
    """

    view: int  # the view the sender is entering
    voter: int
    high_qc: QC = field(compare=False)
    last_vote: Vote | None = field(compare=False, default=None)

    kind = "hotstuff-newview"

    def wire_size(self) -> int:
        size = 8 + 4 + self.high_qc.wire_size()
        if self.last_vote is not None:
            size += self.last_vote.wire_size()
        return size


class HotStuffParty(BaselineParty):
    """One chained-HotStuff replica."""

    protocol_name = "HotStuff"

    def __init__(self, *, base_timeout: float = 4.0, max_heights: int | None = None, **kwargs) -> None:
        super().__init__(**kwargs)
        self.cur_view = 1
        self.base_timeout = base_timeout
        self.max_heights = max_heights
        self.high_qc = GENESIS_QC
        self.locked_qc = GENESIS_QC
        self._nodes: dict[bytes, HSNode] = {}
        self._votes: dict[tuple[int, bytes], dict[int, object]] = {}
        self._new_views: dict[int, dict[int, QC]] = {}
        self._voted_views: set[int] = set()
        self._proposed_views: set[int] = set()
        self._timeout_factor = 1.0
        self._last_progress = 0.0
        self._orphans: dict[bytes, list[HSNode]] = {}
        self._last_vote: Vote | None = None
        self._formed_qcs: set[tuple[int, bytes]] = set()

    # ------------------------------------------------------------------ identity

    def leader_of(self, view: int) -> int:
        return ((view - 1) % self.n) + 1

    # ------------------------------------------------------------------ lifecycle

    def start(self) -> None:
        self._last_progress = self.sim.now
        if self.leader_of(self.cur_view) == self.index:
            self._propose(self.cur_view)
        self._arm_timeout()

    def _done(self) -> bool:
        return self.max_heights is not None and self.k_max >= self.max_heights

    def _arm_timeout(self) -> None:
        self.sim.schedule(self.base_timeout / 2, self._check_timeout)

    def _check_timeout(self) -> None:
        if self._done():
            return
        if self.sim.now - self._last_progress >= self.base_timeout * self._timeout_factor:
            self._timeout_factor = min(self._timeout_factor * 2, 64.0)
            self._advance_view(self.cur_view + 1, by_timeout=True)
            self._last_progress = self.sim.now
        self._arm_timeout()

    def _advance_view(self, view: int, by_timeout: bool = False) -> None:
        if view <= self.cur_view and not by_timeout:
            return
        self.cur_view = max(self.cur_view, view)
        leader = self.leader_of(self.cur_view)
        if by_timeout:
            self.metrics.count("hotstuff-timeouts")
            if self.tracer.enabled:
                self._trace("hotstuff.timeout", view=self.cur_view)
            message = NewView(
                view=self.cur_view,
                voter=self.index,
                high_qc=self.high_qc,
                last_vote=self._last_vote,
            )
            if leader == self.index:
                self._on_new_view(message)
            else:
                self._send(leader, message)

    # ------------------------------------------------------------------ proposing

    def _node_chain(self, digest: bytes) -> list[HSNode]:
        chain: list[HSNode] = []
        while digest != GENESIS_DIGEST:
            node = self._nodes.get(digest)
            if node is None:
                break
            chain.append(node)
            digest = node.parent_digest
        chain.reverse()
        return chain

    def _propose(self, view: int) -> None:
        if self._done() or view in self._proposed_views:
            return
        self._proposed_views.add(view)
        parent_digest = self.high_qc.node_digest
        parent = self._nodes.get(parent_digest)
        height = (parent.height if parent else 0) + 1
        chain = [n.batch for n in self._node_chain(parent_digest)]
        payload = self.build_payload(height, chain)
        batch = Batch(
            height=height,
            proposer=self.index,
            parent_digest=parent.batch.digest if parent else GENESIS_DIGEST,
            payload=payload,
        )
        node = HSNode(
            view=view,
            height=height,
            batch=batch,
            parent_digest=parent_digest,
            justify=self.high_qc,
        )
        self.metrics.proposed_at.setdefault(batch.digest, self.sim.now)
        self.metrics.count("hotstuff-proposals")
        if self.tracer.enabled:
            self._trace(
                "hotstuff.propose", round=height,
                view=view, batch=short_id(batch.digest),
            )
        self._broadcast(node, round=height)

    # ------------------------------------------------------------------ messages

    def on_receive(self, message: object) -> None:
        if isinstance(message, HSNode):
            self._on_proposal(message)
        elif isinstance(message, Vote) and message.protocol == "hotstuff":
            self._on_vote(message)
        elif isinstance(message, NewView):
            self._on_new_view(message)

    def _qc_is_valid(self, qc: QC) -> bool:
        if qc.view == 0:
            return qc.node_digest == GENESIS_DIGEST
        signed = vote_message("hotstuff", "generic", qc.view, qc.height, qc.node_digest)
        return self.keys.verify_notary(signed, qc.aggregate)

    def _on_proposal(self, node: HSNode) -> None:
        if node.batch.proposer != self.leader_of(node.view):
            return
        if not self._qc_is_valid(node.justify):
            return
        if node.justify.node_digest != node.parent_digest:
            return
        if node.parent_digest != GENESIS_DIGEST and node.parent_digest not in self._nodes:
            self._orphans.setdefault(node.parent_digest, []).append(node)
            return
        digest = node.digest
        if digest in self._nodes:
            return
        self._nodes[digest] = node
        self._update_high_qc(node.justify)
        self._apply_chain_rules(node)
        # Safety rule: extend the locked node, or see a newer justify.
        safe = (
            self._extends(node, self.locked_qc.node_digest)
            or node.justify.view > self.locked_qc.view
        )
        if safe and node.view >= self.cur_view and node.view not in self._voted_views:
            self._voted_views.add(node.view)
            vote = self.make_vote("hotstuff", "generic", node.view, node.height, digest)
            self._last_vote = vote
            next_leader = self.leader_of(node.view + 1)
            if next_leader == self.index:
                self._on_vote(vote)
            else:
                self._send(next_leader, vote, round=node.height)
            self.cur_view = node.view + 1
            self._last_progress = self.sim.now
            self._timeout_factor = 1.0
        # Adopt orphans now that their parent exists.
        for orphan in self._orphans.pop(digest, []):
            self._on_proposal(orphan)

    def _extends(self, node: HSNode, ancestor_digest: bytes) -> bool:
        if ancestor_digest == GENESIS_DIGEST:
            return True
        cursor = node.parent_digest
        while cursor != GENESIS_DIGEST:
            if cursor == ancestor_digest:
                return True
            parent = self._nodes.get(cursor)
            if parent is None:
                return False
            cursor = parent.parent_digest
        return False

    def _apply_chain_rules(self, node: HSNode) -> None:
        """Two-chain lock, three-chain commit (consecutive views)."""
        b1 = self._nodes.get(node.justify.node_digest)
        if b1 is None:
            return
        b2 = self._nodes.get(b1.justify.node_digest)
        if b2 is not None and b1.justify.view > self.locked_qc.view:
            self.locked_qc = b1.justify  # lock on b2
        if b2 is None:
            return
        b3 = self._nodes.get(b2.justify.node_digest)
        if b3 is None:
            return
        if b1.view == b2.view + 1 == b3.view + 2:
            self._commit_through(b3)

    def _commit_through(self, node: HSNode) -> None:
        chain = self._node_chain(node.digest)
        for entry in chain:
            if entry.height > self.k_max:
                self.commit_batch(entry.batch)
        self._last_progress = self.sim.now

    def _on_vote(self, vote: Vote) -> None:
        self.enqueue_vote(vote)

    def _accept_vote(self, vote: Vote) -> None:
        self._ingest_vote(vote)
        if self.leader_of(vote.view + 1) != self.index:
            return
        if (vote.view, vote.digest) in self._formed_qcs:
            self.cur_view = max(self.cur_view, vote.view + 1)
            self._propose(vote.view + 1)

    def _ingest_vote(self, vote: Vote) -> None:
        """Store a vote and form the QC once a quorum exists.

        QC formation is permissionless (it is just aggregation), so a later
        leader can assemble a QC from votes relayed in NewView messages
        even when the original next-leader crashed.
        """
        key = (vote.view, vote.digest)
        shares = self._votes.setdefault(key, {})
        shares[vote.voter] = vote.share
        if len(shares) < self.quorum or key in self._formed_qcs:
            return
        signed = vote_message("hotstuff", "generic", vote.view, vote.height, vote.digest)
        aggregate = self.keys.combine_notary(signed, list(shares.values()))
        qc = QC(view=vote.view, height=vote.height, node_digest=vote.digest, aggregate=aggregate)
        self._formed_qcs.add(key)
        self._update_high_qc(qc)

    def _update_high_qc(self, qc: QC) -> None:
        if qc.view > self.high_qc.view:
            self.high_qc = qc

    def _on_new_view(self, message: NewView) -> None:
        if self.leader_of(message.view) != self.index:
            return
        if message.last_vote is not None and self.vote_is_valid(message.last_vote):
            self._ingest_vote(message.last_vote)
        self._update_high_qc(message.high_qc)
        table = self._new_views.setdefault(message.view, {})
        table[message.voter] = message.high_qc
        if len(table) >= self.quorum:
            self.cur_view = max(self.cur_view, message.view)
            self._propose(message.view)
