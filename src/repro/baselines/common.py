"""Shared machinery for the baseline protocols (PBFT, HotStuff, Tendermint).

The paper's Related Work section compares ICC against these three
leader-based protocols on latency, reciprocal throughput, responsiveness
and robustness.  To make those comparisons measurable rather than
rhetorical, all three baselines are implemented on the *same* simulation
substrate as ICC: same network, same delay models, same metrics, same
payload sources, same wire-size conventions.

Each baseline commits *batches* (the PBFT term; HotStuff/Tendermint call
them blocks) produced by the shared ``PayloadSource`` interface, and
reports commits through the same :class:`~repro.sim.metrics.Metrics`
channel, so `blocks_per_second`, commit latency and per-node traffic are
directly comparable across all five protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..crypto.hashing import DIGEST_SIZE, tagged_hash
from ..crypto.keyring import Keyring
from ..obs import short_id
from ..sim.metrics import Metrics
from ..sim.network import Network
from ..sim.simulator import Simulation
from ..core.messages import Payload, SIG_SIZE


@dataclass(frozen=True)
class Batch:
    """A batch of commands at a height (the unit baselines agree on)."""

    height: int
    proposer: int
    parent_digest: bytes
    payload: Payload

    kind = "batch"

    @cached_property
    def digest(self) -> bytes:
        return tagged_hash(
            "baseline/batch",
            self.height.to_bytes(8, "big"),
            self.proposer.to_bytes(4, "big"),
            self.parent_digest,
            self.payload.digest,
        )

    def wire_size(self) -> int:
        return 13 + DIGEST_SIZE + self.payload.wire_size()


GENESIS_DIGEST = tagged_hash("baseline/genesis")


@dataclass(frozen=True)
class Vote:
    """A signed vote on a batch digest in some phase of some protocol."""

    protocol: str  # "pbft" | "hotstuff" | "tendermint"
    phase: str  # e.g. "prepare", "commit", "prevote", ...
    view: int
    height: int
    digest: bytes
    voter: int
    share: object = field(compare=False)

    @property
    def kind(self) -> str:
        return f"{self.protocol}-{self.phase}"

    def wire_size(self) -> int:
        return 1 + 8 + 8 + DIGEST_SIZE + 4 + SIG_SIZE


def vote_message(protocol: str, phase: str, view: int, height: int, digest: bytes) -> bytes:
    return tagged_hash(
        f"baseline/{protocol}/{phase}",
        view.to_bytes(8, "big"),
        height.to_bytes(8, "big"),
        digest,
    )


class BaselineParty:
    """Base class: identity, quorum arithmetic, vote plumbing, commit log."""

    protocol_name = "baseline"

    def __init__(
        self,
        index: int,
        keyring: Keyring,
        sim: Simulation,
        network: Network,
        n: int,
        t: int,
        payload_source=None,
    ) -> None:
        self.index = index
        self.keys = keyring
        self.sim = sim
        self.network = network
        self.metrics: Metrics = network.metrics
        #: Trace sink (repro.obs); install a Tracer on the Simulation
        #: before building parties.
        self.tracer = sim.tracer
        self.meter = sim.meter
        self.n = n
        self.t = t
        self.payload_source = payload_source
        self.output_log: list[Batch] = []
        self.committed_digests: set[bytes] = set()
        #: Same-instant vote coalescing: arriving votes queue here and are
        #: verified as one RLC batch through the keyring's batch API (see
        #: repro.crypto.api) in a zero-delay flush event.  Under the fixed
        #: delay models, all n broadcast votes for a phase arrive at the
        #: same simulated instant, so real batches of ~n form.  Turning
        #: this off restores eager per-vote verification; commits and
        #: metrics are identical either way.
        self.batch_votes = True
        self._vote_inbox: list[Vote] = []
        self._vote_flush_scheduled = False

    @property
    def quorum(self) -> int:
        """2f+1-style quorum: n - t."""
        return self.n - self.t

    @property
    def k_max(self) -> int:
        """Height of the last committed batch (name-compatible with ICC)."""
        return len(self.output_log)

    @property
    def committed_hashes(self) -> list[bytes]:
        return [b.digest for b in self.output_log]

    # -- voting helpers -------------------------------------------------------

    def make_vote(self, protocol: str, phase: str, view: int, height: int, digest: bytes) -> Vote:
        signed = vote_message(protocol, phase, view, height, digest)
        return Vote(
            protocol=protocol,
            phase=phase,
            view=view,
            height=height,
            digest=digest,
            voter=self.index,
            share=self.keys.sign_notary_share(signed),
        )

    def vote_is_valid(self, vote: Vote) -> bool:
        signed = vote_message(vote.protocol, vote.phase, vote.view, vote.height, vote.digest)
        return (
            self.keys.share_index(vote.share) == vote.voter
            and self.keys.verify_notary_share(signed, vote.share)
        )

    def votes_are_valid(self, votes: list[Vote]) -> list[bool]:
        """Batch variant of :meth:`vote_is_valid` (one RLC batch).

        The structural voter/share-index check stays eager and per-vote;
        only the signature checks are combined through
        ``Keyring.verify_notary_share_batch``.  Results match
        ``[self.vote_is_valid(v) for v in votes]`` exactly.
        """
        results = [False] * len(votes)
        live: list[int] = []
        items: list[tuple[bytes, object]] = []
        for i, vote in enumerate(votes):
            if self.keys.share_index(vote.share) != vote.voter:
                continue
            signed = vote_message(vote.protocol, vote.phase, vote.view, vote.height, vote.digest)
            live.append(i)
            items.append((signed, vote.share))
        if items:
            report = self.keys.verify_notary_share_batch(items)
            for i, ok in zip(live, report.results):
                results[i] = ok
            if self.tracer.enabled:
                self._trace(
                    "crypto.batch_verify",
                    scheme="vote",
                    count=report.stats.count,
                    invalid=report.stats.invalid,
                    cache_hits=report.stats.cache_hits,
                    cache_misses=report.stats.cache_misses,
                    bisections=report.stats.bisections,
                )
        return results

    def enqueue_vote(self, vote: Vote) -> None:
        """Admit a vote: verify now (eager) or queue for the batch flush.

        Protocol subclasses implement :meth:`_accept_vote`, which receives
        each vote that passed verification.  With ``batch_votes`` on, the
        acceptance happens in a zero-delay event at the same simulated
        instant, so quorum timing and commits are unchanged.
        """
        if not self.batch_votes:
            if self.vote_is_valid(vote):
                self._accept_vote(vote)
            return
        self._vote_inbox.append(vote)
        if not self._vote_flush_scheduled:
            self._vote_flush_scheduled = True
            self.sim.schedule(0.0, self._flush_votes)

    def _flush_votes(self) -> None:
        self._vote_flush_scheduled = False
        votes, self._vote_inbox = self._vote_inbox, []
        for vote, ok in zip(votes, self.votes_are_valid(votes)):
            if ok:
                self._accept_vote(vote)

    def _accept_vote(self, vote: Vote) -> None:
        raise NotImplementedError  # pragma: no cover - protocol-specific

    # -- tracing ---------------------------------------------------------------

    def _trace(self, kind: str, round: int | None = None, **payload) -> None:
        """Emit one trace event; callers guard with ``self.tracer.enabled``."""
        self.tracer.emit(
            time=self.sim.now,
            party=self.index,
            protocol=self.protocol_name,
            round=round,
            kind=kind,
            payload=payload,
        )

    # -- commit plumbing ---------------------------------------------------------

    def commit_batch(self, batch: Batch) -> None:
        if batch.digest in self.committed_digests:
            return
        self.committed_digests.add(batch.digest)
        self.output_log.append(batch)
        if self.tracer.enabled:
            self._trace(
                "baseline.commit", round=batch.height,
                batch=short_id(batch.digest), proposer=batch.proposer,
            )
        self.metrics.on_commit(
            time=self.sim.now,
            observer=self.index,
            round=batch.height,
            proposer=batch.proposer,
            payload_bytes=batch.payload.wire_size(),
            proposed_at=self.metrics.proposed_at.get(batch.digest, -1.0),
        )
        if self.meter.enabled:
            self.meter.count("baseline.commits")
            proposed_at = self.metrics.proposed_at.get(batch.digest)
            if proposed_at is not None:
                self.meter.observe(
                    "baseline.commit.latency", self.sim.now - proposed_at
                )

    def build_payload(self, height: int, chain: list) -> Payload:
        if self.payload_source is None:
            return Payload()
        return self.payload_source(self, height, chain)

    # -- network -------------------------------------------------------------------

    def _broadcast(self, message: object, round: int | None = None) -> None:
        self.network.broadcast(self.index, message, round=round)

    def _send(self, receiver: int, message: object, round: int | None = None) -> None:
        self.network.send(self.index, receiver, message, round=round)
