"""Shared machinery for the baseline protocols (PBFT, HotStuff, Tendermint).

The paper's Related Work section compares ICC against these three
leader-based protocols on latency, reciprocal throughput, responsiveness
and robustness.  To make those comparisons measurable rather than
rhetorical, all three baselines are implemented on the *same* simulation
substrate as ICC: same network, same delay models, same metrics, same
payload sources, same wire-size conventions.

Each baseline commits *batches* (the PBFT term; HotStuff/Tendermint call
them blocks) produced by the shared ``PayloadSource`` interface, and
reports commits through the same :class:`~repro.sim.metrics.Metrics`
channel, so `blocks_per_second`, commit latency and per-node traffic are
directly comparable across all five protocols.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..crypto.hashing import DIGEST_SIZE, tagged_hash
from ..crypto.keyring import Keyring
from ..obs import short_id
from ..sim.metrics import Metrics
from ..sim.network import Network
from ..sim.simulator import Simulation
from ..core.messages import Payload, SIG_SIZE


@dataclass(frozen=True)
class Batch:
    """A batch of commands at a height (the unit baselines agree on)."""

    height: int
    proposer: int
    parent_digest: bytes
    payload: Payload

    kind = "batch"

    @cached_property
    def digest(self) -> bytes:
        return tagged_hash(
            "baseline/batch",
            self.height.to_bytes(8, "big"),
            self.proposer.to_bytes(4, "big"),
            self.parent_digest,
            self.payload.digest,
        )

    def wire_size(self) -> int:
        return 13 + DIGEST_SIZE + self.payload.wire_size()


GENESIS_DIGEST = tagged_hash("baseline/genesis")


@dataclass(frozen=True)
class Vote:
    """A signed vote on a batch digest in some phase of some protocol."""

    protocol: str  # "pbft" | "hotstuff" | "tendermint"
    phase: str  # e.g. "prepare", "commit", "prevote", ...
    view: int
    height: int
    digest: bytes
    voter: int
    share: object = field(compare=False)

    @property
    def kind(self) -> str:
        return f"{self.protocol}-{self.phase}"

    def wire_size(self) -> int:
        return 1 + 8 + 8 + DIGEST_SIZE + 4 + SIG_SIZE


def vote_message(protocol: str, phase: str, view: int, height: int, digest: bytes) -> bytes:
    return tagged_hash(
        f"baseline/{protocol}/{phase}",
        view.to_bytes(8, "big"),
        height.to_bytes(8, "big"),
        digest,
    )


class BaselineParty:
    """Base class: identity, quorum arithmetic, vote plumbing, commit log."""

    protocol_name = "baseline"

    def __init__(
        self,
        index: int,
        keyring: Keyring,
        sim: Simulation,
        network: Network,
        n: int,
        t: int,
        payload_source=None,
    ) -> None:
        self.index = index
        self.keys = keyring
        self.sim = sim
        self.network = network
        self.metrics: Metrics = network.metrics
        #: Trace sink (repro.obs); install a Tracer on the Simulation
        #: before building parties.
        self.tracer = sim.tracer
        self.n = n
        self.t = t
        self.payload_source = payload_source
        self.output_log: list[Batch] = []
        self.committed_digests: set[bytes] = set()

    @property
    def quorum(self) -> int:
        """2f+1-style quorum: n - t."""
        return self.n - self.t

    @property
    def k_max(self) -> int:
        """Height of the last committed batch (name-compatible with ICC)."""
        return len(self.output_log)

    @property
    def committed_hashes(self) -> list[bytes]:
        return [b.digest for b in self.output_log]

    # -- voting helpers -------------------------------------------------------

    def make_vote(self, protocol: str, phase: str, view: int, height: int, digest: bytes) -> Vote:
        signed = vote_message(protocol, phase, view, height, digest)
        return Vote(
            protocol=protocol,
            phase=phase,
            view=view,
            height=height,
            digest=digest,
            voter=self.index,
            share=self.keys.sign_notary_share(signed),
        )

    def vote_is_valid(self, vote: Vote) -> bool:
        signed = vote_message(vote.protocol, vote.phase, vote.view, vote.height, vote.digest)
        return (
            self.keys.share_index(vote.share) == vote.voter
            and self.keys.verify_notary_share(signed, vote.share)
        )

    # -- tracing ---------------------------------------------------------------

    def _trace(self, kind: str, round: int | None = None, **payload) -> None:
        """Emit one trace event; callers guard with ``self.tracer.enabled``."""
        self.tracer.emit(
            time=self.sim.now,
            party=self.index,
            protocol=self.protocol_name,
            round=round,
            kind=kind,
            payload=payload,
        )

    # -- commit plumbing ---------------------------------------------------------

    def commit_batch(self, batch: Batch) -> None:
        if batch.digest in self.committed_digests:
            return
        self.committed_digests.add(batch.digest)
        self.output_log.append(batch)
        if self.tracer.enabled:
            self._trace(
                "baseline.commit", round=batch.height,
                batch=short_id(batch.digest), proposer=batch.proposer,
            )
        self.metrics.on_commit(
            time=self.sim.now,
            observer=self.index,
            round=batch.height,
            proposer=batch.proposer,
            payload_bytes=batch.payload.wire_size(),
            proposed_at=self.metrics.proposed_at.get(batch.digest, -1.0),
        )

    def build_payload(self, height: int, chain: list) -> Payload:
        if self.payload_source is None:
            return Payload()
        return self.payload_source(self, height, chain)

    # -- network -------------------------------------------------------------------

    def _broadcast(self, message: object, round: int | None = None) -> None:
        self.network.broadcast(self.index, message, round=round)

    def _send(self, receiver: int, message: object, round: int | None = None) -> None:
        self.network.send(self.index, receiver, message, round=round)
