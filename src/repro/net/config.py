"""Live-cluster configuration: the JSON file a party binary is launched with.

One file describes the whole cluster — every ``python -m repro serve``
process loads the *same* file and is told which index it is on the
command line.  That is what makes key material line up: each process
calls :func:`repro.crypto.keyring.generate_keyrings` with the shared
``(n, t, seed, backend, group_profile)`` tuple, which is deterministic,
so party *i* holds share *i* of the same threshold keys every other
process expects.  (A deployment would run distributed key generation;
the dealer-style derivation is the same simplification the simulator
makes, and docs/TRANSPORT.md states it.)

The format (``docs/TRANSPORT.md`` shows a complete example)::

    {
      "cluster_id": "demo",
      "n": 4, "t": 1, "seed": 7,
      "protocol": "icc0",
      "peers": [
        {"index": 1, "host": "127.0.0.1", "port": 9001},
        ...
      ],
      "delta_bound": 1.0, "epsilon": 0.05,
      "target_height": 20,
      "load_requests": 160, "load_clients": 8
    }

Everything except ``cluster_id``/``n``/``peers`` has a default, so a
minimal hand-written config stays small.
"""

from __future__ import annotations

import json
import socket
from dataclasses import asdict, dataclass, replace

from .framing import DEFAULT_MAX_FRAME

PROTOCOLS = ("icc0", "icc1", "icc2")


@dataclass(frozen=True)
class PeerSpec:
    """One party's network address."""

    index: int
    host: str
    port: int


@dataclass(frozen=True)
class LiveConfig:
    """Declarative description of one live (TCP) cluster.

    The protocol-parameter fields (``t``, ``delta_bound``, ``epsilon``,
    ``seed``, ``crypto_backend``, ``group_profile``, ``max_rounds``)
    mean exactly what they mean on
    :class:`repro.core.cluster.ClusterConfig`; the rest are live-only.
    """

    cluster_id: str
    n: int
    peers: tuple[PeerSpec, ...]
    t: int = 0
    seed: int = 0
    protocol: str = "icc0"
    crypto_backend: str = "fast"
    group_profile: str = "test"
    #: δ_bound/ε drive the protocol's delay functions.  On localhost the
    #: real propagation delay is ~0, so rounds complete in roughly
    #: 2·ε wall-clock seconds — keep ε small for fast local runs.
    delta_bound: float = 1.0
    epsilon: float = 0.05
    #: Stop proposing after this many rounds (None = run until stopped).
    max_rounds: int | None = None
    #: ``repro serve`` exits once the local party commits this height.
    target_height: int = 20
    #: Overall wall-clock budget for reaching it (seconds).
    timeout: float = 60.0
    #: Frame-body cap for the transport (bytes).
    max_frame: int = DEFAULT_MAX_FRAME
    #: ICC1 overlay degree (ignored by icc0/icc2).
    gossip_degree: int = 4
    #: Client load through the PR 6 batching pipeline: total deterministic
    #: signed requests (0 = run without payload load) spread over
    #: ``load_clients`` clients, admitted ``load_batch`` per tick.
    load_requests: int = 0
    load_clients: int = 8
    load_batch: int = 16
    load_tick: float = 0.05
    #: Client-auth scheme for the load requests ("fast" or "real").
    client_auth: str = "fast"
    #: Unique identifier for one cluster *run* — stamped into every trace
    #: export and result file so the collector can refuse to merge files
    #: from different runs.  The ``repro live`` orchestrator generates
    #: one; an empty value falls back to ``"<cluster_id>:<seed>"``.
    run_id: str = ""

    def effective_run_id(self) -> str:
        """The run id traces are stamped with (never empty)."""
        return self.run_id or f"{self.cluster_id}:{self.seed}"

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError(f"n must be positive, got {self.n}")
        if self.protocol not in PROTOCOLS:
            raise ValueError(
                f"unknown protocol {self.protocol!r} (expected one of {PROTOCOLS})"
            )
        if len(self.peers) != self.n:
            raise ValueError(
                f"config names {len(self.peers)} peers but n={self.n}"
            )
        indices = sorted(p.index for p in self.peers)
        if indices != list(range(1, self.n + 1)):
            raise ValueError(
                f"peer indices must be exactly 1..{self.n}, got {indices}"
            )
        if self.target_height < 1:
            raise ValueError(f"target_height must be >= 1, got {self.target_height}")

    # -- views ---------------------------------------------------------------

    def peer_table(self) -> dict[int, tuple[str, int]]:
        """The index -> (host, port) map the transport is built from."""
        return {p.index: (p.host, p.port) for p in self.peers}

    def peer(self, index: int) -> PeerSpec:
        for p in self.peers:
            if p.index == index:
                return p
        raise KeyError(index)

    # -- JSON round-trip ------------------------------------------------------

    def to_json(self) -> dict:
        data = asdict(self)
        data["peers"] = [asdict(p) for p in self.peers]
        return data

    @classmethod
    def from_json(cls, data: dict) -> "LiveConfig":
        data = dict(data)
        peers = tuple(PeerSpec(**p) for p in data.pop("peers"))
        unknown = set(data) - set(cls.__dataclass_fields__)
        if unknown:
            raise ValueError(f"unknown config keys: {sorted(unknown)}")
        return cls(peers=peers, **data)

    def save(self, path: str) -> None:
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(self.to_json(), fh, indent=1, sort_keys=True)
            fh.write("\n")


def load_live_config(path: str) -> LiveConfig:
    """Load and validate a cluster config file."""
    with open(path, encoding="utf-8") as fh:
        return LiveConfig.from_json(json.load(fh))


def free_local_ports(count: int) -> list[int]:
    """Reserve ``count`` distinct localhost ports by binding to port 0.

    The sockets are held open until all ports are collected so the OS
    cannot hand the same port out twice; the usual "someone else grabs
    the port before we listen" race remains, which is fine for local
    orchestration (the listener bind would fail loudly, not silently).
    """
    sockets = []
    try:
        for _ in range(count):
            sock = socket.socket(socket.AF_INET, socket.SOCK_STREAM)
            sock.bind(("127.0.0.1", 0))
            sockets.append(sock)
        return [s.getsockname()[1] for s in sockets]
    finally:
        for sock in sockets:
            sock.close()


def local_live_config(n: int, *, ports: list[int] | None = None, **overrides) -> LiveConfig:
    """A localhost cluster config with freshly allocated ports.

    Keyword overrides are any :class:`LiveConfig` field except ``n`` and
    ``peers`` (``cluster_id`` defaults to ``"local"``).
    """
    if ports is None:
        ports = free_local_ports(n)
    if len(ports) != n:
        raise ValueError(f"need {n} ports, got {len(ports)}")
    peers = tuple(
        PeerSpec(index=i + 1, host="127.0.0.1", port=ports[i]) for i in range(n)
    )
    overrides.setdefault("cluster_id", "local")
    return LiveConfig(n=n, peers=peers, **overrides)


def with_ports(config: LiveConfig, ports: list[int]) -> LiveConfig:
    """The same cluster on different ports (orchestrator retry helper)."""
    if len(ports) != config.n:
        raise ValueError(f"need {config.n} ports, got {len(ports)}")
    peers = tuple(
        replace(peer, port=port) for peer, port in zip(config.peers, ports)
    )
    return replace(config, peers=peers)


__all__ = [
    "LiveConfig",
    "PeerSpec",
    "PROTOCOLS",
    "free_local_ports",
    "load_live_config",
    "local_live_config",
    "with_ports",
]
