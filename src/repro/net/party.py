"""One live protocol party: unmodified ``repro.core`` objects on sockets.

:class:`LiveParty` performs exactly the wiring :func:`repro.core.cluster
.build_cluster` performs for the simulator — derive the keyring, build
the protocol params, construct the party, install the payload hooks —
except the ``sim`` it hands the party is a :class:`~repro.net.clock
.WallClock` and the ``network`` is a :class:`~repro.net.transport
.TcpNetwork`.  Nothing under :mod:`repro.core` is imported in a modified
form; the party class cannot tell which world it is in.

Client load rides the PR 6 batching pipeline unchanged: each process
builds a :class:`~repro.workloads.batching.RequestBatcher`, derives the
*same* deterministic signed-request set from the shared config seed
(every party would admit the identical ingress — the shared-ingress
shortcut the simulator's load harness also takes), and wires
``payload_source`` / ``payload_verifier`` / commit listeners exactly as
:class:`~repro.core.cluster.ClusterConfig` does.  Chain-level dedup in
``payload_source`` keeps a request from being packed twice even though
every party holds a copy.
"""

from __future__ import annotations

import asyncio
from random import Random

from ..core.icc0 import ICC0Party, empty_payload_source
from ..core.icc1 import ICC1Party
from ..core.icc2 import ICC2Party
from ..core.params import ProtocolParams, StandardDelays
from ..crypto.keyring import generate_keyrings
from ..gossip import GossipParams, build_overlay
from ..workloads.batching import BatchSpec, RequestBatcher, SignedRequest
from .clock import WallClock
from .config import LiveConfig
from .transport import TcpNetwork

_PARTY_CLASSES = {"icc0": ICC0Party, "icc1": ICC1Party, "icc2": ICC2Party}


def generate_load_requests(config: LiveConfig, batcher: RequestBatcher) -> list[SignedRequest]:
    """The deterministic request set every party derives from the seed.

    Request ids depend only on ``(client, seq)``, so even if an auth
    scheme signed non-deterministically the parties would still agree on
    *which* requests exist — ids are what chain dedup and completion
    tracking key on.
    """
    rng = Random(f"live-load/{config.seed}")
    requests: list[SignedRequest] = []
    for i in range(config.load_requests):
        client = i % config.load_clients
        seq = i // config.load_clients
        key = rng.randrange(10_000)
        body = b"live/%d/%d" % (client, seq)
        auth = batcher.auth.sign(client, seq, key, body)
        requests.append(
            SignedRequest(client=client, seq=seq, key=key, auth=auth, body=body)
        )
    return requests


class LiveParty:
    """One party of a live cluster: clock + transport + protocol + load.

    Build it inside a running event loop (``build_live_party`` or
    :class:`~repro.net.cluster.LiveCluster` handle that), then::

        await live.start()
        ok = await live.wait_for_height(20, timeout=60)
        await live.stop()
        print(live.result())
    """

    def __init__(
        self,
        config: LiveConfig,
        index: int,
        *,
        loop: asyncio.AbstractEventLoop | None = None,
        tracer=None,
        meter=None,
    ) -> None:
        if not 1 <= index <= config.n:
            raise ValueError(f"index {index} out of range 1..{config.n}")
        self.config = config
        self.index = index
        self.clock = WallClock(loop=loop, seed=config.seed * 7919 + index)
        if tracer is not None:
            self.clock.tracer = tracer
        if meter is not None:
            self.clock.meter = meter
        self.network = TcpNetwork(
            self.clock,
            index,
            config.peer_table(),
            cluster_id=config.cluster_id,
            max_frame=config.max_frame,
        )

        # -- client load (optional, the PR 6 pipeline) -----------------------
        self.batcher: RequestBatcher | None = None
        self._load_queue: list[SignedRequest] = []
        payload_source = empty_payload_source
        payload_verifier = None
        if config.load_requests > 0:
            self.batcher = RequestBatcher(
                BatchSpec(
                    batch_max=config.load_batch,
                    auth=config.client_auth,
                    group_profile=config.group_profile,
                ),
                seed=config.seed,
            )
            # Manual bind: there is no Cluster object here.  Same wiring,
            # one party instead of "the first honest party".
            self.batcher._sim = self.clock
            self.batcher._tracer = self.clock.tracer
            self.batcher._meter = self.clock.meter
            self._load_queue = generate_load_requests(config, self.batcher)
            payload_source = self.batcher.payload_source
            payload_verifier = self.batcher.verify_block

        # -- the unmodified protocol party -----------------------------------
        keyrings = generate_keyrings(
            config.n,
            config.t,
            seed=config.seed,
            backend=config.crypto_backend,
            group_profile=config.group_profile,
        )
        params = ProtocolParams(
            n=config.n,
            t=config.t,
            delays=StandardDelays(
                delta_bound=config.delta_bound, epsilon=config.epsilon
            ),
            max_rounds=config.max_rounds,
        )
        extra: dict = {}
        if config.protocol == "icc1":
            extra["overlay"] = build_overlay(
                config.n, config.gossip_degree, seed=config.seed
            )
            extra["gossip_params"] = GossipParams(degree=config.gossip_degree)
        self.party = _PARTY_CLASSES[config.protocol](
            index=index,
            keyring=keyrings[index - 1],
            params=params,
            sim=self.clock,
            network=self.network,
            payload_source=payload_source,
            **extra,
        )
        self.party.pool.payload_verifier = payload_verifier
        if self.batcher is not None:
            self.party.commit_listeners.append(self.batcher._on_commit)

        self._height_event = asyncio.Event()
        self.party.commit_listeners.append(lambda _block: self._height_event.set())
        self._started = False
        self._load_handle: asyncio.TimerHandle | None = None
        self.run_id = config.effective_run_id()
        # Answer STAT frames with this party's live snapshot (repro top).
        self.network.stats_provider = self.stat_snapshot

    # -- lifecycle ------------------------------------------------------------

    async def start(self) -> None:
        """Bind the listener, start dialling peers, start the protocol.

        There is no startup barrier: the party starts immediately and its
        round-1 messages sit in the per-peer outbound queues until each
        peer comes up (reconnect/backoff is the barrier).  ICC tolerates
        that asynchrony by design.
        """
        await self.network.start()
        self.network.attach(self.party)
        self.party.start()
        if self._load_queue:
            self._pump_load()
        self._started = True

    def _pump_load(self) -> None:
        """Admit the next chunk of the deterministic request set."""
        chunk = self._load_queue[: self.config.load_batch]
        del self._load_queue[: self.config.load_batch]
        if chunk and self.batcher is not None:
            now = self.clock.now
            self.batcher.admit_batch([(request, now) for request in chunk])
        if self._load_queue:
            self._load_handle = self.clock.schedule(
                self.config.load_tick, self._pump_load
            )
        else:
            self._load_handle = None

    async def wait_for_height(self, height: int, timeout: float) -> bool:
        """True once the local party has committed through ``height``."""
        deadline = self.clock.now + timeout
        while self.party.k_max < height:
            remaining = deadline - self.clock.now
            if remaining <= 0:
                return False
            self._height_event.clear()
            try:
                await asyncio.wait_for(self._height_event.wait(), remaining)
            except asyncio.TimeoutError:
                return False
        return True

    async def stop(self) -> None:
        if self._load_handle is not None:
            self._load_handle.cancel()
            self._load_handle = None
        await self.network.stop()

    # -- results --------------------------------------------------------------

    def _pool_depth(self) -> int:
        """Artifacts currently buffered in the message pool (non-mutating
        — unlike ``MessagePool.artifact_count`` this must not flush
        pending batches from a monitoring probe)."""
        pool = self.party.pool
        return (
            len(pool.blocks)
            + len(pool._authenticators)
            + len(pool._notarizations)
            + len(pool._finalizations)
            + sum(len(v) for v in pool._notar_shares.values())
            + sum(len(v) for v in pool._final_shares.values())
            + sum(len(v) for v in pool._beacon_shares.values())
        )

    def stat_snapshot(self) -> dict:
        """The JSON answer to a STAT frame: this party right now.

        Everything ``repro top`` renders comes from here; it must stay
        cheap and side-effect-free (it runs inside the acceptor loop).
        """
        latencies = sorted(self.batcher.latencies) if self.batcher else []

        def pct(q: float) -> float:
            return latencies[min(len(latencies) - 1, int(q * len(latencies)))]

        return {
            "index": self.index,
            "run_id": self.run_id,
            "cluster_id": self.config.cluster_id,
            "height": self.party.k_max,
            "pool_depth": self._pool_depth(),
            "link_backlog": sum(
                link.queued for link in self.network._links.values()
            ),
            "connects": self.network.connects_total,
            "reconnects": self.network.reconnects_total,
            "dup_connections": self.network.meter.counter_value(
                "live.dup_connections"
            )
            if self.network.meter.enabled
            else 0,
            "frames_rejected": self.network.frames_rejected,
            "requests_completed": self.batcher.completed if self.batcher else 0,
            "request_p50_s": pct(0.50) if latencies else None,
            "request_p99_s": pct(0.99) if latencies else None,
            "net_messages": sum(self.network.metrics.msgs_sent.values()),
            "net_bytes": sum(self.network.metrics.bytes_sent.values()),
            "wall_seconds": round(self.clock.now, 6),
            "clock_sync": self.network.clock_sync.summary(),
        }

    def result(self) -> dict:
        """The JSON-able record ``repro serve`` reports when it exits."""
        latencies = sorted(self.batcher.latencies) if self.batcher else []
        return {
            "index": self.index,
            "run_id": self.run_id,
            "height": self.party.k_max,
            "committed": [h.hex() for h in self.party.committed_hashes],
            "wall_seconds": round(self.clock.now, 6),
            "requests_completed": self.batcher.completed if self.batcher else 0,
            "request_latencies": [round(v, 6) for v in latencies],
            "net_messages": sum(self.network.metrics.msgs_sent.values()),
            "net_bytes": sum(self.network.metrics.bytes_sent.values()),
            "frames_rejected": self.network.frames_rejected,
        }


def build_live_party(
    config: LiveConfig,
    index: int,
    *,
    loop: asyncio.AbstractEventLoop | None = None,
    tracer=None,
    meter=None,
) -> LiveParty:
    """Construct (but do not start) one live party."""
    return LiveParty(config, index, loop=loop, tracer=tracer, meter=meter)


__all__ = ["LiveParty", "build_live_party", "generate_load_requests"]
