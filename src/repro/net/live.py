"""The ``python -m repro serve`` and ``python -m repro live`` entry points.

``serve`` is the party binary: load the shared cluster config, become
party ``--index``, run until the target height (or timeout / SIGTERM),
then write a JSON result record — plus, when asked, a self-identifying
trace JSONL (``--trace``) and a meter snapshot (``--meter``).  ``live``
is the orchestrator: allocate ports, write the config, spawn one
``serve`` process per party, collect the per-party records, check the
paper's prefix property across them, and report wall-clock finalization
results — optionally as the ``BENCH_live.json`` leg that
:mod:`tools.bench_gate` gates.

With ``--trace-dir D`` (or ``--bench``/``--json``, which imply tracing)
every process traces into the run directory and the orchestrator
automatically **collects** the run afterwards
(:func:`repro.obs.collect_run`): clocks aligned, traces merged, meters
merged, and the live critical-path latency breakdown computed and
embedded in the summary.  ``python -m repro collect D`` re-runs that
step standalone.

The quick in-process mode (``--inproc``, implied by ``--check``) runs
the same protocol/transport stack on one event loop via
:class:`~repro.net.cluster.LiveCluster` — fast enough for CI smoke runs
and for :func:`run_live_inproc`, which ``tools/bench_gate.py --live-fresh``
calls to re-measure the committed snapshot.  Even in-process, each party
gets its *own* tracer and meter (its own timeline), so collection works
identically in both modes.
"""

from __future__ import annotations

import asyncio
import contextlib
import dataclasses
import glob
import json
import os
import signal
import subprocess
import sys
import tempfile
import time

from ..analysis.live import consistency_line, live_latency_breakdown
from ..obs import (
    Meter,
    Tracer,
    align_events,
    collect_run,
    estimate_alignment,
    trace_header,
    write_jsonl,
)
from .cluster import LiveCluster
from .config import LiveConfig, load_live_config, local_live_config
from .party import LiveParty

#: Extra wall-clock slack the orchestrator grants each serve process
#: beyond the config timeout before killing it.
KILL_GRACE = 10.0


# --------------------------------------------------------------------- serve


async def _serve(config: LiveConfig, index: int, tracer, meter) -> dict:
    loop = asyncio.get_running_loop()
    live = LiveParty(config, index, loop=loop, tracer=tracer, meter=meter)
    stop_requested = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_requested.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loop; the hard-timeout path still applies
    await live.start()
    waiter = asyncio.ensure_future(
        live.wait_for_height(config.target_height, config.timeout)
    )
    stopper = asyncio.ensure_future(stop_requested.wait())
    done, _pending = await asyncio.wait(
        {waiter, stopper}, return_when=asyncio.FIRST_COMPLETED
    )
    reached = waiter in done and waiter.result()
    for task in (waiter, stopper):
        task.cancel()
    await live.stop()
    result = live.result()
    result["reached_target"] = bool(reached)
    result["target_height"] = config.target_height
    return result


def serve(args) -> int:
    """``python -m repro serve --config cluster.json --index 2``."""
    config = load_live_config(args.config)
    tracer = Tracer() if args.trace else None
    meter = Meter()
    result = asyncio.run(_serve(config, args.index, tracer, meter))
    result["meter"] = {
        name: meter.counter_value(name)
        for name in ("live.connects", "live.reconnects", "live.dup_connections",
                     "live.frames.rejected", "net.messages")
    }
    if args.trace:
        # The header makes the export self-identifying: the collector
        # refuses headerless traces and mixed run_ids.
        write_jsonl(
            tracer.export_events(),
            args.trace,
            header=trace_header(
                run_id=config.effective_run_id(),
                party=args.index,
                cluster_id=config.cluster_id,
            ),
        )
    if getattr(args, "meter", None):
        meter.write_json(args.meter)
    payload = json.dumps(result, indent=1, sort_keys=True)
    if args.result:
        with open(args.result, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)
    return 0 if result["reached_target"] else 1


# ---------------------------------------------------------------------- live


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    values = sorted(values)
    pos = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
    return values[pos]


def _prefix_consistent(chains: list[list[str]]) -> bool:
    """The paper's safety property over the reported committed chains."""
    reference = max(chains, key=len, default=[])
    return all(chain == reference[: len(chain)] for chain in chains)


def summarize(
    config: LiveConfig, results: list[dict], breakdown: dict | None = None
) -> dict:
    """Aggregate per-party serve records into the BENCH_live ``live`` block."""
    heights = [r["height"] for r in results]
    min_height = min(heights, default=0)
    live_ok = bool(results) and all(r.get("reached_target") for r in results)
    safety_ok = bool(results) and _prefix_consistent(
        [r["committed"] for r in results]
    )
    wall = max((r["wall_seconds"] for r in results), default=0.0)
    latencies = results[0].get("request_latencies", []) if results else []
    block = {
        "live_ok": live_ok,
        "safety_ok": safety_ok,
        "parties_reporting": len(results),
        "min_height": min_height,
        "max_height": max(heights, default=0),
        "wall_seconds": round(wall, 3),
        "heights_per_sec": round(min_height / wall, 2) if wall > 0 else 0.0,
        "requests_completed": results[0].get("requests_completed", 0) if results else 0,
        "request_latency_p50": round(_percentile(latencies, 0.50), 4),
        "request_latency_p90": round(_percentile(latencies, 0.90), 4),
    }
    if breakdown is not None:
        block["latency_breakdown"] = breakdown
    return block


def bench_snapshot(config: LiveConfig, live_block: dict) -> dict:
    """The full BENCH_live.json document (see docs/PERFORMANCE.md)."""
    return {
        "benchmark": (
            "live TCP transport: localhost cluster, wall-clock finalization"
        ),
        "seed": config.seed,
        "cluster": {
            "n": config.n,
            "t": config.t,
            "protocol": config.protocol,
            "transport": "tcp-localhost",
            "epsilon": config.epsilon,
        },
        "target_height": config.target_height,
        "live": live_block,
    }


def _fresh_run_id(config: LiveConfig) -> str:
    """A run id unique enough to catch accidental cross-run merges."""
    return f"{config.cluster_id}-{config.seed}-{os.getpid()}-{int(time.time() * 1000)}"


async def _run_inproc(
    config: LiveConfig, observe: bool = False
) -> tuple[list[dict], dict[int, Tracer], dict[int, Meter]]:
    """One in-process run; with ``observe`` each party gets its own
    tracer/meter (its own timeline), mirroring separate processes."""
    tracers: dict[int, Tracer] = {}
    meters: dict[int, Meter] = {}
    per_party = None
    if observe:
        for i in range(1, config.n + 1):
            tracers[i] = Tracer()
            meters[i] = Meter()
        per_party = lambda i: (tracers[i], meters[i])  # noqa: E731
    async with LiveCluster(config, per_party=per_party) as cluster:
        reached = await cluster.wait_for_height(
            config.target_height, config.timeout
        )
        results = cluster.results()
        for record in results:
            record["reached_target"] = (
                reached or record["height"] >= config.target_height
            )
            record["target_height"] = config.target_height
        try:
            cluster.check_safety()
        except AssertionError:
            for record in results:
                record["committed"] = record["committed"] or ["<diverged>"]
        return results, tracers, meters


def _breakdown_from_tracers(
    config: LiveConfig, tracers: dict[int, Tracer]
) -> dict:
    """Align the per-party in-memory traces and compute the breakdown."""
    events_by_party = {i: t.export_events() for i, t in tracers.items()}
    alignment = estimate_alignment(events_by_party)
    return live_latency_breakdown(
        align_events(events_by_party, alignment),
        quorum=config.n - config.t,
        clock_uncertainty=alignment.max_uncertainty,
    )


def run_live_inproc(config: LiveConfig) -> dict:
    """One in-process live run, summarized with its latency breakdown
    (the bench-gate fresh probe)."""
    results, tracers, _meters = asyncio.run(_run_inproc(config, observe=True))
    return summarize(config, results, _breakdown_from_tracers(config, tracers))


def _write_inproc_run(
    config: LiveConfig,
    workdir: str,
    results: list[dict],
    tracers: dict[int, Tracer],
    meters: dict[int, Meter],
) -> None:
    """Persist an observed in-process run in the exact per-process layout
    ``repro collect`` expects."""
    config.save(os.path.join(workdir, "cluster.json"))
    run_id = config.effective_run_id()
    for i in range(1, config.n + 1):
        write_jsonl(
            tracers[i].export_events(),
            os.path.join(workdir, f"trace-{i}.jsonl"),
            header=trace_header(
                run_id=run_id, party=i, cluster_id=config.cluster_id
            ),
        )
        meters[i].write_json(os.path.join(workdir, f"meter-{i}.json"))
    for record in results:
        path = os.path.join(workdir, f"result-{record['index']}.json")
        with open(path, "w", encoding="utf-8") as fh:
            json.dump(record, fh, indent=1, sort_keys=True)
            fh.write("\n")


def _spawn_cluster(
    config: LiveConfig, workdir: str, trace: bool = False
) -> list[dict]:
    """One serve process per party; returns the collected result records."""
    config_path = os.path.join(workdir, "cluster.json")
    config.save(config_path)
    procs: list[subprocess.Popen] = []
    result_paths: list[str] = []
    for i in range(1, config.n + 1):
        result_path = os.path.join(workdir, f"result-{i}.json")
        result_paths.append(result_path)
        argv = [
            sys.executable, "-m", "repro", "serve",
            "--config", config_path,
            "--index", str(i),
            "--result", result_path,
        ]
        if trace:
            argv += [
                "--trace", os.path.join(workdir, f"trace-{i}.jsonl"),
                "--meter", os.path.join(workdir, f"meter-{i}.json"),
            ]
        procs.append(
            subprocess.Popen(
                argv,
                stdout=subprocess.DEVNULL,
                stderr=subprocess.STDOUT,
            )
        )
    deadline = config.timeout + KILL_GRACE
    results: list[dict] = []
    try:
        for proc in procs:
            try:
                proc.wait(timeout=deadline)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=KILL_GRACE)
                except subprocess.TimeoutExpired:
                    proc.kill()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
    for path in result_paths:
        if os.path.exists(path):
            with open(path, encoding="utf-8") as fh:
                results.append(json.load(fh))
    return results


def _clear_run_artifacts(workdir: str) -> None:
    """Remove a previous run's per-process/merged artifacts so a reused
    ``--trace-dir`` cannot mix two runs (the collector would refuse)."""
    patterns = (
        "trace-*.jsonl", "meter-*.json", "result-*.json",
        "merged-trace.jsonl", "merged-meter.json", "alignment.json",
    )
    for pattern in patterns:
        for path in glob.glob(os.path.join(workdir, pattern)):
            os.unlink(path)


def _collect_breakdown(config: LiveConfig, workdir: str) -> dict | None:
    """Collect the run directory; returns the latency breakdown (None if
    collection failed, e.g. a party died before writing its trace)."""
    try:
        collected = collect_run(workdir)
    except Exception as exc:
        print(f"  collect     : FAILED ({exc})")
        return None
    breakdown = live_latency_breakdown(
        collected.events,
        quorum=config.n - config.t,
        clock_uncertainty=collected.alignment.max_uncertainty,
    )
    print(f"  collected   : {collected.merged_trace_path}")
    print(f"  {consistency_line(breakdown)}")
    return breakdown


def _print_summary(config: LiveConfig, live_block: dict) -> None:
    print(
        f"live cluster: n={config.n} t={config.t} protocol={config.protocol} "
        f"target={config.target_height} heights (tcp localhost)"
    )
    print(
        f"  finalized   : min height {live_block['min_height']} "
        f"in {live_block['wall_seconds']:.2f}s wall "
        f"({live_block['heights_per_sec']:.1f} heights/s)"
    )
    print(
        f"  liveness    : {'ok' if live_block['live_ok'] else 'FAILED'} "
        f"({live_block['parties_reporting']}/{config.n} parties reporting)"
    )
    print(f"  safety      : {'ok' if live_block['safety_ok'] else 'VIOLATED'}")
    if live_block["requests_completed"]:
        print(
            f"  client load : {live_block['requests_completed']} requests, "
            f"latency p50 {live_block['request_latency_p50'] * 1000:.0f} ms / "
            f"p90 {live_block['request_latency_p90'] * 1000:.0f} ms"
        )
    breakdown = live_block.get("latency_breakdown")
    if breakdown and breakdown.get("heights"):
        stages = breakdown.get("stage_means_s", {})
        rendered = " + ".join(
            f"{stage.split('_')[0]} {stages.get(stage, 0.0) * 1000:.0f}ms"
            for stage in sorted(stages)
        )
        print(
            f"  breakdown   : {breakdown['heights']} heights, mean "
            f"{breakdown['finalization_latency_mean_s'] * 1000:.0f} ms "
            f"finalization (clock uncertainty "
            f"±{breakdown['clock_uncertainty_s'] * 1e6:.0f} µs; {rendered})"
        )


def live(args) -> int:
    """``python -m repro live`` — orchestrate a local n-party TCP cluster."""
    if args.check:
        config = local_live_config(
            4, t=1, seed=args.seed, protocol=args.protocol,
            epsilon=0.02, target_height=5, timeout=30.0,
            load_requests=40, load_batch=8,
        )
        config = dataclasses.replace(config, run_id=_fresh_run_id(config))
        live_block = run_live_inproc(config)
        _print_summary(config, live_block)
        return 0 if live_block["live_ok"] and live_block["safety_ok"] else 1

    config = local_live_config(
        args.n,
        t=(args.n - 1) // 3,
        seed=args.seed,
        protocol=args.protocol,
        epsilon=args.epsilon,
        target_height=args.heights,
        timeout=args.timeout,
        load_requests=args.load,
        load_batch=16,
    )
    config = dataclasses.replace(config, run_id=_fresh_run_id(config))
    trace_dir = getattr(args, "trace_dir", None)
    # --bench / --json publish a latency breakdown, which needs traces;
    # without an explicit --trace-dir they trace into a temp dir.
    want_trace = bool(trace_dir or args.bench or args.json)
    breakdown: dict | None = None
    if trace_dir:
        os.makedirs(trace_dir, exist_ok=True)
        _clear_run_artifacts(trace_dir)
        workdir_ctx: contextlib.AbstractContextManager[str] = (
            contextlib.nullcontext(trace_dir)
        )
    else:
        workdir_ctx = tempfile.TemporaryDirectory(prefix="repro-live-")
    with workdir_ctx as workdir:
        if args.inproc:
            results, tracers, meters = asyncio.run(
                _run_inproc(config, observe=want_trace)
            )
            if want_trace:
                _write_inproc_run(config, workdir, results, tracers, meters)
        else:
            results = _spawn_cluster(config, workdir, trace=want_trace)
        if want_trace:
            breakdown = _collect_breakdown(config, workdir)
    live_block = summarize(config, results, breakdown)
    _print_summary(config, live_block)
    snapshot = bench_snapshot(config, live_block)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {args.json}")
    if args.bench:
        with open("BENCH_live.json", "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print("  wrote BENCH_live.json")
    return 0 if live_block["live_ok"] and live_block["safety_ok"] else 1


__all__ = [
    "bench_snapshot",
    "live",
    "run_live_inproc",
    "serve",
    "summarize",
]
