"""The ``python -m repro serve`` and ``python -m repro live`` entry points.

``serve`` is the party binary: load the shared cluster config, become
party ``--index``, run until the target height (or timeout / SIGTERM),
then write a JSON result record.  ``live`` is the orchestrator: allocate
ports, write the config, spawn one ``serve`` process per party, collect
the per-party records, check the paper's prefix property across them,
and report wall-clock finalization results — optionally as the
``BENCH_live.json`` leg that :mod:`tools.bench_gate` gates.

The quick in-process mode (``--inproc``, implied by ``--check``) runs
the same protocol/transport stack on one event loop via
:class:`~repro.net.cluster.LiveCluster` — fast enough for CI smoke runs
and for :func:`run_live_inproc`, which ``tools/bench_gate.py --live-fresh``
calls to re-measure the committed snapshot.
"""

from __future__ import annotations

import asyncio
import json
import os
import signal
import subprocess
import sys
import tempfile

from ..obs import Meter, Tracer, write_jsonl
from .cluster import LiveCluster
from .config import LiveConfig, load_live_config, local_live_config
from .party import LiveParty

#: Extra wall-clock slack the orchestrator grants each serve process
#: beyond the config timeout before killing it.
KILL_GRACE = 10.0


# --------------------------------------------------------------------- serve


async def _serve(config: LiveConfig, index: int, tracer, meter) -> dict:
    loop = asyncio.get_running_loop()
    live = LiveParty(config, index, loop=loop, tracer=tracer, meter=meter)
    stop_requested = asyncio.Event()
    for signum in (signal.SIGTERM, signal.SIGINT):
        try:
            loop.add_signal_handler(signum, stop_requested.set)
        except (NotImplementedError, RuntimeError):
            pass  # non-Unix loop; the hard-timeout path still applies
    await live.start()
    waiter = asyncio.ensure_future(
        live.wait_for_height(config.target_height, config.timeout)
    )
    stopper = asyncio.ensure_future(stop_requested.wait())
    done, _pending = await asyncio.wait(
        {waiter, stopper}, return_when=asyncio.FIRST_COMPLETED
    )
    reached = waiter in done and waiter.result()
    for task in (waiter, stopper):
        task.cancel()
    await live.stop()
    result = live.result()
    result["reached_target"] = bool(reached)
    result["target_height"] = config.target_height
    return result


def serve(args) -> int:
    """``python -m repro serve --config cluster.json --index 2``."""
    config = load_live_config(args.config)
    tracer = Tracer() if args.trace else None
    meter = Meter()
    result = asyncio.run(_serve(config, args.index, tracer, meter))
    result["meter"] = {
        name: meter.counter_value(name)
        for name in ("live.connects", "live.reconnects", "live.dup_connections",
                     "live.frames.rejected", "net.messages")
    }
    if args.trace:
        write_jsonl(tracer.export_events(), args.trace)
    payload = json.dumps(result, indent=1, sort_keys=True)
    if args.result:
        with open(args.result, "w", encoding="utf-8") as fh:
            fh.write(payload + "\n")
    else:
        print(payload)
    return 0 if result["reached_target"] else 1


# ---------------------------------------------------------------------- live


def _percentile(values: list[float], q: float) -> float:
    if not values:
        return 0.0
    values = sorted(values)
    pos = min(len(values) - 1, max(0, round(q * (len(values) - 1))))
    return values[pos]


def _prefix_consistent(chains: list[list[str]]) -> bool:
    """The paper's safety property over the reported committed chains."""
    reference = max(chains, key=len, default=[])
    return all(chain == reference[: len(chain)] for chain in chains)


def summarize(config: LiveConfig, results: list[dict]) -> dict:
    """Aggregate per-party serve records into the BENCH_live ``live`` block."""
    heights = [r["height"] for r in results]
    min_height = min(heights, default=0)
    live_ok = bool(results) and all(r.get("reached_target") for r in results)
    safety_ok = bool(results) and _prefix_consistent(
        [r["committed"] for r in results]
    )
    wall = max((r["wall_seconds"] for r in results), default=0.0)
    latencies = results[0].get("request_latencies", []) if results else []
    return {
        "live_ok": live_ok,
        "safety_ok": safety_ok,
        "parties_reporting": len(results),
        "min_height": min_height,
        "max_height": max(heights, default=0),
        "wall_seconds": round(wall, 3),
        "heights_per_sec": round(min_height / wall, 2) if wall > 0 else 0.0,
        "requests_completed": results[0].get("requests_completed", 0) if results else 0,
        "request_latency_p50": round(_percentile(latencies, 0.50), 4),
        "request_latency_p90": round(_percentile(latencies, 0.90), 4),
    }


def bench_snapshot(config: LiveConfig, live_block: dict) -> dict:
    """The full BENCH_live.json document (see docs/PERFORMANCE.md)."""
    return {
        "benchmark": (
            "live TCP transport: localhost cluster, wall-clock finalization"
        ),
        "seed": config.seed,
        "cluster": {
            "n": config.n,
            "t": config.t,
            "protocol": config.protocol,
            "transport": "tcp-localhost",
            "epsilon": config.epsilon,
        },
        "target_height": config.target_height,
        "live": live_block,
    }


async def _run_inproc(config: LiveConfig) -> list[dict]:
    async with LiveCluster(config) as cluster:
        reached = await cluster.wait_for_height(
            config.target_height, config.timeout
        )
        results = cluster.results()
        for record in results:
            record["reached_target"] = (
                reached or record["height"] >= config.target_height
            )
            record["target_height"] = config.target_height
        try:
            cluster.check_safety()
        except AssertionError:
            for record in results:
                record["committed"] = record["committed"] or ["<diverged>"]
        return results


def run_live_inproc(config: LiveConfig) -> dict:
    """One in-process live run, summarized (the bench-gate fresh probe)."""
    results = asyncio.run(_run_inproc(config))
    return summarize(config, results)


def _spawn_cluster(config: LiveConfig, workdir: str) -> list[dict]:
    """One serve process per party; returns the collected result records."""
    config_path = os.path.join(workdir, "cluster.json")
    config.save(config_path)
    procs: list[subprocess.Popen] = []
    result_paths: list[str] = []
    for i in range(1, config.n + 1):
        result_path = os.path.join(workdir, f"result-{i}.json")
        result_paths.append(result_path)
        procs.append(
            subprocess.Popen(
                [
                    sys.executable, "-m", "repro", "serve",
                    "--config", config_path,
                    "--index", str(i),
                    "--result", result_path,
                ],
                stdout=subprocess.DEVNULL,
                stderr=subprocess.STDOUT,
            )
        )
    deadline = config.timeout + KILL_GRACE
    results: list[dict] = []
    try:
        for proc in procs:
            try:
                proc.wait(timeout=deadline)
            except subprocess.TimeoutExpired:
                proc.terminate()
                try:
                    proc.wait(timeout=KILL_GRACE)
                except subprocess.TimeoutExpired:
                    proc.kill()
    finally:
        for proc in procs:
            if proc.poll() is None:
                proc.kill()
    for path in result_paths:
        if os.path.exists(path):
            with open(path, encoding="utf-8") as fh:
                results.append(json.load(fh))
    return results


def _print_summary(config: LiveConfig, live_block: dict) -> None:
    print(
        f"live cluster: n={config.n} t={config.t} protocol={config.protocol} "
        f"target={config.target_height} heights (tcp localhost)"
    )
    print(
        f"  finalized   : min height {live_block['min_height']} "
        f"in {live_block['wall_seconds']:.2f}s wall "
        f"({live_block['heights_per_sec']:.1f} heights/s)"
    )
    print(
        f"  liveness    : {'ok' if live_block['live_ok'] else 'FAILED'} "
        f"({live_block['parties_reporting']}/{config.n} parties reporting)"
    )
    print(f"  safety      : {'ok' if live_block['safety_ok'] else 'VIOLATED'}")
    if live_block["requests_completed"]:
        print(
            f"  client load : {live_block['requests_completed']} requests, "
            f"latency p50 {live_block['request_latency_p50'] * 1000:.0f} ms / "
            f"p90 {live_block['request_latency_p90'] * 1000:.0f} ms"
        )


def live(args) -> int:
    """``python -m repro live`` — orchestrate a local n-party TCP cluster."""
    if args.check:
        config = local_live_config(
            4, t=1, seed=args.seed, protocol=args.protocol,
            epsilon=0.02, target_height=5, timeout=30.0,
            load_requests=40, load_batch=8,
        )
        live_block = run_live_inproc(config)
        _print_summary(config, live_block)
        return 0 if live_block["live_ok"] and live_block["safety_ok"] else 1

    config = local_live_config(
        args.n,
        t=(args.n - 1) // 3,
        seed=args.seed,
        protocol=args.protocol,
        epsilon=args.epsilon,
        target_height=args.heights,
        timeout=args.timeout,
        load_requests=args.load,
        load_batch=16,
    )
    if args.inproc:
        results = asyncio.run(_run_inproc(config))
    else:
        with tempfile.TemporaryDirectory(prefix="repro-live-") as workdir:
            results = _spawn_cluster(config, workdir)
    live_block = summarize(config, results)
    _print_summary(config, live_block)
    snapshot = bench_snapshot(config, live_block)
    if args.json:
        with open(args.json, "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print(f"  wrote {args.json}")
    if args.bench:
        with open("BENCH_live.json", "w", encoding="utf-8") as fh:
            json.dump(snapshot, fh, indent=1, sort_keys=True)
            fh.write("\n")
        print("  wrote BENCH_live.json")
    return 0 if live_block["live_ok"] and live_block["safety_ok"] else 1


__all__ = [
    "bench_snapshot",
    "live",
    "run_live_inproc",
    "serve",
    "summarize",
]
