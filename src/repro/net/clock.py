"""Wall-clock scheduling with the :class:`repro.sim.simulator.Simulation` surface.

The protocol parties never import the simulator *class* — they only call a
handful of attributes on the ``sim`` object they are constructed with:
``now``, ``schedule``, ``schedule_at``, ``fork_rng``, ``tracer``,
``meter``, ``rng``.  :class:`WallClock` implements exactly that surface on
top of an asyncio event loop, so the identical party objects run in real
time.  The differences that matter (and that ``docs/TRANSPORT.md``
documents):

* ``now`` is **monotonic wall time in seconds since the clock was
  created** (``loop.time() - epoch``), not virtual time.  It advances on
  its own; nothing "runs" the clock.
* ``schedule``/``schedule_at`` map to ``loop.call_later`` — callbacks fire
  *at or after* the requested time, never exactly at it, and never
  reentrantly (asyncio only runs callbacks between await points).
* There is no ``run()`` / ``step()`` — the asyncio loop owns execution.
  Code that drives a run to a condition awaits on events instead
  (see :meth:`repro.net.party.LiveParty.wait_for_height`).

Determinism note: seeded RNG streams still exist (protocol code may draw
from ``rng``), but wall-clock runs are **not** bit-reproducible — arrival
order depends on the kernel scheduler and the network.  The protocol's
safety does not depend on timing; that independence is precisely what the
live transport demonstrates.
"""

from __future__ import annotations

import asyncio
from random import Random
from typing import Callable

from ..obs import NULL_METER, NULL_TRACER


class WallClock:
    """Simulation-compatible scheduling facade over an asyncio loop.

    Build it *inside* a running event loop (or pass ``loop`` explicitly).
    ``now`` starts at 0.0 at construction so trace timestamps and metric
    windows read like the simulator's (a run starts at t=0).
    """

    def __init__(self, loop: asyncio.AbstractEventLoop | None = None, seed: int = 0) -> None:
        self.loop = loop if loop is not None else asyncio.get_event_loop()
        self._epoch = self.loop.time()
        self.rng = Random(seed)
        #: Same install-before-build rule as the simulator: parties cache
        #: these references at construction.
        self.tracer = NULL_TRACER
        self.meter = NULL_METER

    # -- the Simulation surface the parties use -----------------------------

    @property
    def now(self) -> float:
        """Seconds of monotonic wall time since this clock was created."""
        return self.loop.time() - self._epoch

    def schedule(self, delay: float, action: Callable[[], None]) -> asyncio.TimerHandle:
        """Run ``action`` after ``delay`` wall-clock seconds (>= 0)."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.loop.call_later(delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> asyncio.TimerHandle:
        """Run ``action`` once ``now`` reaches ``time``.

        Unlike the simulator this never raises for a time slightly in the
        past: wall time advances between the caller computing ``time`` and
        this call executing, so a "late" schedule is normal — the action
        simply runs as soon as possible.
        """
        return self.loop.call_later(max(0.0, time - self.now), action)

    def fork_rng(self, label: str = "") -> Random:
        """Derive an independent RNG stream (same contract as Simulation)."""
        return Random(f"{self.rng.getrandbits(64)}/{label}")
