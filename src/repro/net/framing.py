"""Wire framing for the TCP transport: length-prefixed, typed frames.

The stream protocol is deliberately minimal (``docs/TRANSPORT.md`` has the
layout table and the rationale):

.. code-block:: text

    frame := length (4 bytes, big-endian, = len(body)) || body
    body  := type (1 byte) || payload

    type 0x01  HELLO       payload = sender index (4 bytes, big-endian)
                                     || sender send-time (8 bytes, ns)
                                     || cluster id (UTF-8, rest of frame)
    type 0x02  MSG         payload = link sequence number (8 bytes, big-endian)
                                     || sender send-time (8 bytes, ns)
                                     || one pickled protocol message
    type 0x03  ACK         payload = cumulative sequence number (8 bytes)
                                     || echo of peer send-time (8 bytes, ns)
                                     || our receive-time (8 bytes, ns)
                                     || our ACK send-time (8 bytes, ns)
    type 0x04  STAT        payload = empty (the 1-byte type is the body)
    type 0x05  STAT_REPLY  payload = one JSON object (UTF-8)

A connection opens with exactly one HELLO (so the acceptor knows which
party is talking and that it belongs to the same cluster), then carries
MSG frames until it closes; the acceptor answers with ACK frames on the
same (full-duplex) connection.  Anything else — unknown type byte, a
body longer than ``max_frame``, a zero-length body, a payload that fails
to decode — is a :class:`FrameError`; the transport closes the
connection and counts ``live.frames.rejected``.

Timestamps are party-local monotonic nanoseconds (``WallClock.now`` in
ns), the same timeline trace events use.  Each ACK echoes the newest
peer send-time it saw alongside its local receive/send times, giving the
sender a full NTP-style four-timestamp sample ``(t1, t2, t3, t4)`` per
ACK at zero extra round trips; :mod:`repro.obs.distributed` turns these
into cross-process clock alignment.  A STAT frame may be sent *instead
of* a HELLO by a monitoring client (``python -m repro top``); the
acceptor answers with one STAT_REPLY carrying a JSON snapshot of the
process's meters and state.

MSG sequence numbers are per *directed peer link* (they survive
reconnects) and make delivery reliable without trusting TCP's write
buffer: a ``drain()`` that succeeds just before the peer dies proves
nothing, so the sender retains every frame until the receiver's
cumulative ACK covers it and retransmits the tail on reconnect.  The
receiver deduplicates by sequence number, so each protocol message is
handed to the party exactly once per link.  (A retransmitted MSG carries
its original send-time; the resulting stale clock samples are discarded
by the collector's minimum-RTT filter.)

Message payloads are encoded with :mod:`pickle`.  That is an explicit
trust statement, not an oversight: every signature object in
:mod:`repro.crypto` is an arbitrary Python dataclass (the whole point of
the pluggable backends), and the live transport connects the *configured
peer set only* — the same trust boundary under which the simulator hands
Python objects between parties directly.  A deployment hardening pass
would replace the codec (the one function below) with a schema'd
encoding; nothing else in the transport would change.  Oversized-frame
rejection still bounds memory against a misbehaving peer, and every
protocol message a frame delivers goes through the message pool's full
cryptographic verification exactly as in the simulator.
"""

from __future__ import annotations

import json
import pickle

#: Frame body length cap (bytes).  The paper's "a block's payload may
#: typically be a few megabytes" sets the scale; 16 MiB leaves headroom
#: for a large block plus pickle overhead while bounding what one peer
#: can make us buffer.
DEFAULT_MAX_FRAME = 16 * 1024 * 1024

_LEN_SIZE = 4
_TYPE_HELLO = 0x01
_TYPE_MSG = 0x02
_TYPE_ACK = 0x03
_TYPE_STAT = 0x04
_TYPE_STAT_REPLY = 0x05
_SEQ_SIZE = 8
_TS_SIZE = 8


class FrameError(ValueError):
    """A malformed frame or payload (connection-fatal)."""


class OversizedFrame(FrameError):
    """A frame whose declared body length exceeds the cap."""


def encode_frame(body: bytes, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """Wrap a body in the length prefix (refusing oversized bodies)."""
    if not body:
        raise FrameError("refusing to encode an empty frame body")
    if len(body) > max_frame:
        raise OversizedFrame(
            f"frame body of {len(body)} bytes exceeds the {max_frame}-byte cap"
        )
    return len(body).to_bytes(_LEN_SIZE, "big") + body


def _ts_bytes(ts_ns: int) -> bytes:
    """Encode a local-monotonic-ns timestamp (clamped to be encodable)."""
    return max(0, int(ts_ns)).to_bytes(_TS_SIZE, "big")


def hello_frame(
    index: int,
    cluster_id: str,
    max_frame: int = DEFAULT_MAX_FRAME,
    *,
    ts_ns: int = 0,
) -> bytes:
    """The handshake frame a connector sends first (``ts_ns`` is the
    sender's local send-time, the ``t1`` of the first clock sample)."""
    if index < 1:
        raise FrameError(f"party index {index} is not positive")
    body = (
        bytes([_TYPE_HELLO])
        + index.to_bytes(4, "big")
        + _ts_bytes(ts_ns)
        + cluster_id.encode("utf-8")
    )
    return encode_frame(body, max_frame)


def message_frame(
    seq: int,
    message: object,
    max_frame: int = DEFAULT_MAX_FRAME,
    *,
    ts_ns: int = 0,
) -> bytes:
    """Encode one protocol message as a MSG frame with link sequence
    ``seq`` and sender send-time ``ts_ns``."""
    if seq < 1:
        raise FrameError(f"MSG sequence numbers start at 1, got {seq}")
    body = (
        bytes([_TYPE_MSG])
        + seq.to_bytes(_SEQ_SIZE, "big")
        + _ts_bytes(ts_ns)
        + pickle.dumps(message, protocol=pickle.HIGHEST_PROTOCOL)
    )
    return encode_frame(body, max_frame)


def ack_frame(
    seq: int,
    max_frame: int = DEFAULT_MAX_FRAME,
    *,
    echo_ns: int = 0,
    recv_ns: int = 0,
    send_ns: int = 0,
) -> bytes:
    """Cumulative acknowledgement: every MSG up to ``seq`` was delivered.

    ``echo_ns`` echoes the newest peer send-time this side saw (``t1``),
    ``recv_ns`` is when it arrived here (``t2``), ``send_ns`` is when
    this ACK left (``t3``) — the receiver supplies its own ``t4``.
    """
    if seq < 0:
        raise FrameError(f"ACK sequence must be >= 0, got {seq}")
    body = (
        bytes([_TYPE_ACK])
        + seq.to_bytes(_SEQ_SIZE, "big")
        + _ts_bytes(echo_ns)
        + _ts_bytes(recv_ns)
        + _ts_bytes(send_ns)
    )
    return encode_frame(body, max_frame)


def stat_frame(max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """A metrics-snapshot request (sent instead of HELLO by monitors)."""
    return encode_frame(bytes([_TYPE_STAT]), max_frame)


def stat_reply_frame(snapshot: dict, max_frame: int = DEFAULT_MAX_FRAME) -> bytes:
    """The JSON answer to a STAT frame."""
    body = bytes([_TYPE_STAT_REPLY]) + json.dumps(
        snapshot, sort_keys=True
    ).encode("utf-8")
    return encode_frame(body, max_frame)


def decode_payload(body: bytes) -> tuple[str, object]:
    """Decode one frame body into ``("hello", (index, cluster_id, ts_ns))``,
    ``("msg", (seq, ts_ns, message))``, ``("ack", (seq, echo_ns, recv_ns,
    send_ns))``, ``("stat", None)`` or ``("stat_reply", snapshot)``;
    raises :class:`FrameError` on malformed input."""
    if not body:
        raise FrameError("empty frame body")
    frame_type = body[0]
    if frame_type == _TYPE_HELLO:
        if len(body) < 1 + 4 + _TS_SIZE:
            raise FrameError("truncated HELLO frame")
        index = int.from_bytes(body[1:5], "big")
        ts_ns = int.from_bytes(body[5 : 5 + _TS_SIZE], "big")
        try:
            cluster_id = body[5 + _TS_SIZE :].decode("utf-8")
        except UnicodeDecodeError as exc:
            raise FrameError(f"HELLO cluster id is not UTF-8: {exc}") from exc
        if index < 1:
            raise FrameError(f"HELLO carries invalid party index {index}")
        return "hello", (index, cluster_id, ts_ns)
    if frame_type == _TYPE_MSG:
        if len(body) < 1 + _SEQ_SIZE + _TS_SIZE + 1:
            raise FrameError("truncated MSG frame")
        seq = int.from_bytes(body[1 : 1 + _SEQ_SIZE], "big")
        ts_ns = int.from_bytes(body[1 + _SEQ_SIZE : 1 + _SEQ_SIZE + _TS_SIZE], "big")
        try:
            return "msg", (
                seq,
                ts_ns,
                pickle.loads(body[1 + _SEQ_SIZE + _TS_SIZE :]),
            )
        except Exception as exc:  # pickle raises a zoo of types
            raise FrameError(f"undecodable MSG payload: {exc}") from exc
    if frame_type == _TYPE_ACK:
        if len(body) != 1 + _SEQ_SIZE + 3 * _TS_SIZE:
            raise FrameError("malformed ACK frame")
        seq = int.from_bytes(body[1 : 1 + _SEQ_SIZE], "big")
        stamps = tuple(
            int.from_bytes(
                body[1 + _SEQ_SIZE + i * _TS_SIZE : 1 + _SEQ_SIZE + (i + 1) * _TS_SIZE],
                "big",
            )
            for i in range(3)
        )
        return "ack", (seq, *stamps)
    if frame_type == _TYPE_STAT:
        if len(body) != 1:
            raise FrameError("malformed STAT frame")
        return "stat", None
    if frame_type == _TYPE_STAT_REPLY:
        try:
            snapshot = json.loads(body[1:].decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise FrameError(f"undecodable STAT_REPLY payload: {exc}") from exc
        if not isinstance(snapshot, dict):
            raise FrameError("STAT_REPLY payload is not a JSON object")
        return "stat_reply", snapshot
    raise FrameError(f"unknown frame type 0x{frame_type:02x}")


class FrameDecoder:
    """Incremental frame parser: feed arbitrary byte chunks, get bodies out.

    TCP gives no message boundaries — a frame may arrive byte-by-byte or
    glued to its neighbours.  The decoder buffers partial input and yields
    each complete body exactly once, raising :class:`OversizedFrame` as
    soon as a length prefix exceeds the cap (before buffering the body,
    so a hostile peer cannot make us allocate it).
    """

    def __init__(self, max_frame: int = DEFAULT_MAX_FRAME) -> None:
        self.max_frame = max_frame
        self._buffer = bytearray()

    def feed(self, data: bytes) -> list[bytes]:
        """Absorb ``data``; return every frame body completed by it."""
        self._buffer.extend(data)
        bodies: list[bytes] = []
        while True:
            if len(self._buffer) < _LEN_SIZE:
                return bodies
            length = int.from_bytes(self._buffer[:_LEN_SIZE], "big")
            if length == 0:
                raise FrameError("zero-length frame")
            if length > self.max_frame:
                raise OversizedFrame(
                    f"peer declared a {length}-byte frame "
                    f"(cap {self.max_frame})"
                )
            if len(self._buffer) < _LEN_SIZE + length:
                return bodies
            bodies.append(bytes(self._buffer[_LEN_SIZE : _LEN_SIZE + length]))
            del self._buffer[: _LEN_SIZE + length]

    @property
    def pending_bytes(self) -> int:
        """Bytes buffered awaiting a complete frame (for tests/metrics)."""
        return len(self._buffer)
