"""``python -m repro top`` — poll a live cluster's STAT endpoints.

Every :class:`~repro.net.transport.TcpNetwork` listener answers a STAT
frame (type ``0x04``) with a STAT_REPLY (``0x05``) carrying the party's
current :meth:`~repro.net.party.LiveParty.stat_snapshot` as JSON — no
handshake required, so this tool never has to impersonate a party.
``top`` connects to each peer in the cluster config, asks once, renders
one table row per party (height, pool depth, link backlog, reconnects,
request latency percentiles), and repeats every ``--interval`` seconds.

The same fetch path is importable (:func:`fetch_stats`) so tests can
poll an in-process :class:`~repro.net.cluster.LiveCluster`.
"""

from __future__ import annotations

import asyncio
import json
import time

from .config import LiveConfig, load_live_config
from .framing import FrameDecoder, decode_payload, stat_frame

#: Per-peer connect+reply budget (seconds).
DEFAULT_TIMEOUT = 2.0


async def _fetch_one(
    host: str, port: int, max_frame: int, timeout: float
) -> dict | None:
    """One STAT round-trip; None if the peer is down or unresponsive."""
    try:
        reader, writer = await asyncio.wait_for(
            asyncio.open_connection(host, port), timeout
        )
    except (OSError, asyncio.TimeoutError):
        return None
    try:
        writer.write(stat_frame(max_frame))
        await asyncio.wait_for(writer.drain(), timeout)
        decoder = FrameDecoder(max_frame=max_frame)
        deadline = asyncio.get_running_loop().time() + timeout
        while True:
            remaining = deadline - asyncio.get_running_loop().time()
            if remaining <= 0:
                return None
            try:
                chunk = await asyncio.wait_for(reader.read(65536), remaining)
            except asyncio.TimeoutError:
                return None
            if not chunk:
                return None
            for body in decoder.feed(chunk):
                kind, payload = decode_payload(body)
                if kind == "stat_reply":
                    return payload
    except (OSError, ValueError, asyncio.TimeoutError):
        return None
    finally:
        writer.close()
        try:
            await writer.wait_closed()
        except (OSError, asyncio.CancelledError):
            pass


async def fetch_stats(
    config: LiveConfig, timeout: float = DEFAULT_TIMEOUT
) -> dict[int, dict | None]:
    """STAT snapshots for every party in the config (None = unreachable)."""
    peers = config.peer_table()
    replies = await asyncio.gather(
        *(
            _fetch_one(host, port, config.max_frame, timeout)
            for host, port in peers.values()
        )
    )
    return dict(zip(peers.keys(), replies))


def _fmt_ms(value) -> str:
    return f"{value * 1000:7.1f}" if isinstance(value, (int, float)) else "      -"


def render_table(stats: dict[int, dict | None]) -> str:
    """One fixed-width table: a row per party, '-' for unreachable ones."""
    header = (
        f"{'party':>5} {'height':>6} {'pool':>5} {'backlog':>7} "
        f"{'conn':>4} {'reconn':>6} {'reqs':>5} {'p50ms':>7} {'p99ms':>7} "
        f"{'msgs':>7} {'bytes':>10}"
    )
    lines = [header]
    for index in sorted(stats):
        snap = stats[index]
        if snap is None:
            lines.append(f"{index:>5} {'(unreachable)':>6}")
            continue
        lines.append(
            f"{snap.get('index', index):>5} {snap.get('height', 0):>6} "
            f"{snap.get('pool_depth', 0):>5} {snap.get('link_backlog', 0):>7} "
            f"{snap.get('connects', 0):>4} {snap.get('reconnects', 0):>6} "
            f"{snap.get('requests_completed', 0):>5} "
            f"{_fmt_ms(snap.get('request_p50_s'))} "
            f"{_fmt_ms(snap.get('request_p99_s'))} "
            f"{snap.get('net_messages', 0):>7} {snap.get('net_bytes', 0):>10}"
        )
    return "\n".join(lines)


def top(args) -> int:
    """``python -m repro top --config cluster.json [--interval 2]``."""
    config = load_live_config(args.config)
    iterations = args.iterations
    polled = 0
    reachable_ever = False
    while True:
        stats = asyncio.run(fetch_stats(config, timeout=args.timeout))
        reachable = sum(1 for snap in stats.values() if snap is not None)
        reachable_ever = reachable_ever or reachable > 0
        stamp = time.strftime("%H:%M:%S")
        print(
            f"[{stamp}] cluster {config.cluster_id}: "
            f"{reachable}/{config.n} parties reachable"
        )
        print(render_table(stats))
        if args.json:
            print(json.dumps(stats, sort_keys=True))
        polled += 1
        if iterations and polled >= iterations:
            break
        try:
            time.sleep(args.interval)
        except KeyboardInterrupt:
            break
    return 0 if reachable_ever else 1


__all__ = ["DEFAULT_TIMEOUT", "fetch_stats", "render_table", "top"]
