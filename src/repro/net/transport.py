"""The asyncio/TCP network: the live counterpart of :class:`repro.sim.network.Network`.

One :class:`TcpNetwork` serves one party.  It implements the exact
transmission surface the protocol objects use — ``attach`` /
``broadcast`` / ``send`` / ``multicast``, plus the same
:class:`repro.sim.metrics.Metrics` traffic accounting and the same
``net.*`` meter counters — so an :class:`~repro.core.icc0.ICC0Party`
(or ICC1/ICC2) cannot tell it is talking to sockets.

Topology: every pair of parties is connected by **two TCP connections,
one per direction** — each side owns its outbound connection and accepts
the inbound one.  That keeps connection ownership trivial (no tie-break
protocol for simultaneous dials) at the cost of one extra socket per
pair, which is irrelevant at consensus committee sizes.

Outbound path: per-peer FIFO of sequence-numbered frames drained by a
sender task that dials the peer, sends a HELLO, then writes frames while
reading cumulative ACKs off the same connection.  A frame stays buffered
until an ACK covers it — a successful ``drain()`` proves nothing about
delivery (the kernel buffers it; the peer may die first) — and on
reconnect (exponential backoff, jittered, capped) the whole unACKed tail
is retransmitted.  The receiver deduplicates by sequence number, so the
link gives in-order exactly-once delivery to the party even though the
wire is at-least-once.

Inbound path: the acceptor requires a HELLO naming a configured peer of
the same cluster before any message frame.  A duplicate connection from
a peer supersedes the previous one (newest wins — the peer evidently
reconnected); the per-peer delivery sequence survives the swap, so
retransmitted frames from either connection dedup correctly.  Malformed,
oversized or undecodable frames close the connection and count
``live.frames.rejected``.

Fault injection, crashes and partitions are **simulator-only** concepts
(they manipulate virtual delivery the transport does not control); the
corresponding methods raise :class:`SimulatorOnlyFeature` — see
``docs/FAULTS.md``.
"""

from __future__ import annotations

import asyncio
from collections import deque
from typing import Iterable

from ..sim.metrics import Metrics
from ..sim.network import Receiver, message_kind, wire_size
from .clock import WallClock
from .framing import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    FrameError,
    ack_frame,
    decode_payload,
    hello_frame,
    message_frame,
    stat_reply_frame,
)

#: Reconnect backoff defaults (seconds): first retry after ``BACKOFF_BASE``,
#: doubling (with jitter in [0.5x, 1x]) up to ``BACKOFF_CAP``.
BACKOFF_BASE = 0.05
BACKOFF_CAP = 2.0


class SimulatorOnlyFeature(RuntimeError):
    """A simulator-only control (faults/crash/partition) was used on the
    live transport.  See docs/FAULTS.md — fault scenarios drive *virtual*
    delivery; over real sockets use OS-level tooling (kill the process,
    drop packets with tc/iptables) instead."""


class ClockSync:
    """Per-peer NTP-style sample aggregator for the timestamped ACK path.

    Every ACK carries ``(t1=echoed peer send-time, t2=peer receive-time,
    t3=peer ACK send-time)`` and arrives at local ``t4``; this records the
    instantaneous offset ``theta = ((t2-t1)+(t3-t4))/2`` (peer clock minus
    ours, seconds) and keeps the minimum-RTT sample per peer — the one
    whose offset estimate is tightest (error is bounded by ``rtt/2``).
    The collector (:mod:`repro.obs.distributed`) does the real alignment
    offline from ``live.clock.sample`` trace events; this summary feeds
    the STAT endpoint.
    """

    def __init__(self) -> None:
        self.samples: dict[int, int] = {}
        self.best: dict[int, tuple[float, float]] = {}  # peer -> (theta, rtt)

    def add(self, peer: int, theta: float, rtt: float) -> None:
        self.samples[peer] = self.samples.get(peer, 0) + 1
        current = self.best.get(peer)
        if current is None or rtt < current[1]:
            self.best[peer] = (theta, rtt)

    def summary(self) -> dict:
        """JSON-safe per-peer summary: best offset estimate + bound."""
        return {
            str(peer): {
                "theta_s": self.best[peer][0],
                "uncertainty_s": self.best[peer][1] / 2.0,
                "samples": self.samples[peer],
            }
            for peer in sorted(self.best)
        }


class _PeerLink:
    """Outbound side of one peer: unACKed frame buffer + reconnecting sender.

    Frames carry per-link sequence numbers and stay in ``unacked`` until
    the peer's cumulative ACK covers them; every (re)connection rewinds
    the write cursor to the last ACK, retransmitting the tail.
    """

    def __init__(self, net: "TcpNetwork", peer: int, host: str, port: int) -> None:
        self.net = net
        self.peer = peer
        self.host = host
        self.port = port
        self.unacked: deque[tuple[int, bytes]] = deque()
        self.next_seq = 1
        self.acked = 0
        self._wire_seq = 0  # highest seq written on the current connection
        self.wakeup = asyncio.Event()
        self.task: asyncio.Task | None = None
        self.connected = False
        self.connects = 0  # successful dials (>= 2 means it reconnected)

    def enqueue(self, message: object) -> None:
        seq = self.next_seq
        self.next_seq += 1
        frame = message_frame(
            seq, message, self.net.max_frame, ts_ns=self.net.now_ns()
        )
        self.unacked.append((seq, frame))
        tracer = self.net.tracer
        if tracer.enabled:
            # One half of the causal wire span; the receiver's
            # net.wire.recv with the same (src=us, dst=peer, seq) key
            # closes it.  (Retransmits reuse the frame, so the span
            # measures first-send to first-delivery.)
            tracer.emit(
                time=self.net.clock.now, party=self.net.index, protocol="net",
                round=None, kind="net.wire.send",
                payload={
                    "dst": self.peer,
                    "seq": seq,
                    "kind": message_kind(message),
                    "bytes": len(frame),
                },
            )
        self.wakeup.set()

    @property
    def queued(self) -> int:
        """Frames awaiting acknowledgement (for tests/metrics)."""
        return len(self.unacked)

    def start(self) -> None:
        self.task = self.net.clock.loop.create_task(
            self._run(), name=f"icc-net-out-{self.net.index}->{self.peer}"
        )

    async def _run(self) -> None:
        backoff = self.net.backoff_base
        while not self.net._closing:
            try:
                reader, writer = await asyncio.open_connection(self.host, self.port)
            except OSError:
                await asyncio.sleep(self._jitter(backoff))
                backoff = min(backoff * 2.0, self.net.backoff_cap)
                continue
            backoff = self.net.backoff_base
            self.connected = True
            self.connects += 1
            self.net._on_peer_connect(self.peer, "out", reconnect=self.connects > 1)
            try:
                writer.write(
                    hello_frame(
                        self.net.index, self.net.cluster_id, self.net.max_frame,
                        ts_ns=self.net.now_ns(),
                    )
                )
                await writer.drain()
                await self._converse(reader, writer)
            except (ConnectionError, OSError):
                pass  # fall through to reconnect; unACKed frames stay buffered
            finally:
                self.connected = False
                self.net._on_peer_disconnect(self.peer, "out")
                writer.close()
                try:
                    await writer.wait_closed()
                except (ConnectionError, OSError):
                    pass

    async def _converse(self, reader: asyncio.StreamReader,
                        writer: asyncio.StreamWriter) -> None:
        """Run the write and ACK-read loops until either side of the
        connection fails; whichever loop notices first ends both."""
        self._wire_seq = self.acked  # rewind: retransmit the unACKed tail
        loop = self.net.clock.loop
        tasks = {
            loop.create_task(self._write_loop(writer)),
            loop.create_task(self._read_acks(reader)),
        }
        try:
            await asyncio.wait(tasks, return_when=asyncio.FIRST_COMPLETED)
        finally:
            for task in tasks:
                task.cancel()
            await asyncio.gather(*tasks, return_exceptions=True)

    async def _write_loop(self, writer: asyncio.StreamWriter) -> None:
        while not self.net._closing:
            frame = self._next_unsent()
            if frame is None:
                self.wakeup.clear()
                if self._next_unsent() is None:  # re-check: no lost wakeups
                    await self.wakeup.wait()
                continue
            seq, payload = frame
            writer.write(payload)
            await writer.drain()
            self._wire_seq = seq

    def _next_unsent(self) -> tuple[int, bytes] | None:
        for seq, frame in self.unacked:
            if seq > self._wire_seq:
                return seq, frame
        return None

    async def _read_acks(self, reader: asyncio.StreamReader) -> None:
        decoder = FrameDecoder(self.net.max_frame)
        while True:
            data = await reader.read(65536)
            if not data:
                return  # EOF — peer closed; _converse reconnects
            for body in decoder.feed(data):
                kind, payload = decode_payload(body)
                if kind != "ack":
                    raise FrameError(
                        f"expected ACK on the outbound connection, got {kind}"
                    )
                seq, echo_ns, recv_ns, send_ns = payload  # type: ignore[misc]
                self._on_ack(seq)
                if echo_ns and recv_ns:
                    self.net._record_clock_sample(
                        self.peer, echo_ns, recv_ns, send_ns, self.net.now_ns()
                    )

    def _on_ack(self, seq: int) -> None:
        if seq > self.acked:
            self.acked = seq
        while self.unacked and self.unacked[0][0] <= self.acked:
            self.unacked.popleft()

    def _jitter(self, backoff: float) -> float:
        return backoff * (0.5 + 0.5 * self.net.clock.rng.random())

    async def stop(self) -> None:
        if self.task is not None:
            self.task.cancel()
            try:
                await self.task
            except (asyncio.CancelledError, Exception):
                pass


class TcpNetwork:
    """Length-prefix-framed TCP fabric with the simulator Network's surface.

    ``peers`` maps every party index (including our own) to ``(host,
    port)``; we listen on our own entry and dial the others.  ``metrics``
    defaults to a fresh :class:`~repro.sim.metrics.Metrics` with the same
    byte/message conventions as the simulator (broadcast counts ``n``
    messages but only ``n - 1`` wire copies).
    """

    def __init__(
        self,
        clock: WallClock,
        index: int,
        peers: dict[int, tuple[str, int]],
        *,
        cluster_id: str = "icc-live",
        metrics: Metrics | None = None,
        max_frame: int = DEFAULT_MAX_FRAME,
        backoff_base: float = BACKOFF_BASE,
        backoff_cap: float = BACKOFF_CAP,
    ) -> None:
        if index not in peers:
            raise ValueError(f"own index {index} missing from the peer table")
        self.clock = clock
        #: Alias matching the simulator Network's ``sim`` attribute —
        #: gossip/RBC endpoints resolve their scheduler through
        #: ``network.sim``, and WallClock satisfies the same surface.
        self.sim = clock
        self.index = index
        self.n = len(peers)
        self.peers = dict(peers)
        self.cluster_id = cluster_id
        self.metrics = metrics if metrics is not None else Metrics(n=self.n)
        self.max_frame = max_frame
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self._party: Receiver | None = None
        self._links: dict[int, _PeerLink] = {}
        self._server: asyncio.AbstractServer | None = None
        self._inbound_writers: dict[int, asyncio.StreamWriter] = {}
        self._accept_tasks: set[asyncio.Task] = set()
        self._closing = False
        self._delivered = 0
        #: Highest MSG sequence delivered per peer.  Lives on the network
        #: (not the connection) so it survives reconnects and duplicate
        #: connections — it is what makes retransmission exactly-once.
        self._delivered_seq: dict[int, int] = {}
        self.frames_rejected = 0
        #: Plain connection counters (mirroring the ``live.connects`` /
        #: ``live.reconnects`` meters but always on — the STAT endpoint
        #: reports them even when no Meter is installed).
        self.connects_total = 0
        self.reconnects_total = 0
        #: NTP-style per-peer offset samples from timestamped ACKs.
        self.clock_sync = ClockSync()
        #: When set, STAT frames are answered with this callable's dict
        #: (``LiveParty`` installs its snapshot builder here); otherwise a
        #: minimal transport-level snapshot is returned.
        self.stats_provider = None

    # -- observability (same resolution rule as the simulator Network) ------

    @property
    def tracer(self):
        return self.clock.tracer

    @property
    def meter(self):
        return self.clock.meter

    @property
    def rng(self):
        return self.clock.rng

    def now_ns(self) -> int:
        """The local monotonic timeline in nanoseconds — the same clock
        trace events are stamped with, so wire timestamps and trace times
        are directly comparable."""
        return int(self.clock.now * 1e9)

    # -- lifecycle -----------------------------------------------------------

    def attach(self, party: Receiver) -> None:
        """Attach the single local party (its index must be ours)."""
        if party.index != self.index:
            raise ValueError(
                f"party index {party.index} does not match transport index {self.index}"
            )
        if self._party is not None:
            raise ValueError(f"party {self.index} already attached")
        self._party = party

    async def start(self) -> None:
        """Bind the listening socket and start the per-peer sender tasks."""
        if self._server is not None:
            raise RuntimeError("transport already started")
        host, port = self.peers[self.index]
        self._server = await asyncio.start_server(self._accept, host, port)
        for peer, (peer_host, peer_port) in sorted(self.peers.items()):
            if peer == self.index:
                continue
            link = _PeerLink(self, peer, peer_host, peer_port)
            self._links[peer] = link
            link.start()

    @property
    def bound_port(self) -> int:
        """The port the listener actually bound (resolves port 0)."""
        if self._server is None or not self._server.sockets:
            raise RuntimeError("transport is not listening")
        return self._server.sockets[0].getsockname()[1]

    async def stop(self) -> None:
        """Tear everything down: listener, acceptor tasks, sender tasks."""
        self._closing = True
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
        for task in list(self._accept_tasks):
            task.cancel()
        for link in self._links.values():
            link.wakeup.set()  # unblock queue waits so tasks observe _closing
            await link.stop()
        for writer in list(self._inbound_writers.values()):
            writer.close()
        if self._accept_tasks:
            await asyncio.gather(*self._accept_tasks, return_exceptions=True)
        self._accept_tasks.clear()

    # -- transmission (the surface the protocol objects call) ----------------

    def broadcast(self, sender: int, message: object, round: int | None = None) -> None:
        """Same-message-to-everyone, self-delivery included (Section 3.1)."""
        self._require_local(sender)
        size = wire_size(message)
        self.metrics.on_broadcast(sender, size, message_kind(message), round)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.clock.now, party=sender, protocol="net", round=round,
                kind="net.broadcast",
                payload={"kind": message_kind(message), "bytes": size, "copies": self.n},
            )
        meter = self.meter
        if meter.enabled:
            meter.count("net.messages", self.n)
            meter.count("net.bytes", size * (self.n - 1))
            meter.observe("net.message.bytes", size)
        for link in self._links.values():
            link.enqueue(message)
        self._loopback(message)

    def send(self, sender: int, receiver: int, message: object, round: int | None = None) -> None:
        """Point-to-point send (gossip, ICC2 fragments)."""
        self._require_local(sender)
        size = wire_size(message)
        self.metrics.on_send(sender, size, message_kind(message), round)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.clock.now, party=sender, protocol="net", round=round,
                kind="net.send",
                payload={"kind": message_kind(message), "bytes": size, "receiver": receiver},
            )
        meter = self.meter
        if meter.enabled:
            meter.count("net.messages")
            meter.count("net.bytes", size)
            meter.observe("net.message.bytes", size)
        if receiver == sender:
            self._loopback(message)
            return
        link = self._links.get(receiver)
        if link is None:
            raise ValueError(f"unknown receiver {receiver}")
        link.enqueue(message)

    def multicast(self, sender: int, receivers: Iterable[int], message: object,
                  round: int | None = None) -> None:
        """Same message to a subset (the gossip overlay's fan-out)."""
        self._require_local(sender)
        receivers = list(receivers)
        size = wire_size(message)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.clock.now, party=sender, protocol="net", round=round,
                kind="net.multicast",
                payload={"kind": message_kind(message), "bytes": size,
                         "receivers": len(receivers)},
            )
        meter = self.meter
        if meter.enabled:
            meter.count("net.messages", len(receivers))
            meter.count("net.bytes", size * len(receivers))
            meter.observe("net.message.bytes", size)
        for receiver in receivers:
            self.metrics.on_send(sender, size, message_kind(message), round)
            if receiver == sender:
                self._loopback(message)
                continue
            link = self._links.get(receiver)
            if link is None:
                raise ValueError(f"unknown receiver {receiver}")
            link.enqueue(message)

    def _require_local(self, sender: int) -> None:
        if sender != self.index:
            raise ValueError(
                f"transport for party {self.index} cannot send as party {sender}"
            )

    def _loopback(self, message: object) -> None:
        """Self-delivery: scheduled, never reentrant (mirrors the simulator,
        where a party's own messages arrive as a separate zero-delay event)."""
        self.clock.loop.call_soon(self._hand_over, message)

    def _hand_over(self, message: object) -> None:
        if self._closing:
            return
        if self._party is not None:
            self._delivered += 1
            self._party.on_receive(message)

    @property
    def delivered_count(self) -> int:
        return self._delivered

    # -- inbound -------------------------------------------------------------

    async def _accept(self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter) -> None:
        task = asyncio.current_task()
        if task is not None:
            self._accept_tasks.add(task)
            task.add_done_callback(self._accept_tasks.discard)
        peer_index: int | None = None
        decoder = FrameDecoder(self.max_frame)
        # Newest peer send-time seen on this connection and its local
        # arrival time: echoed back in every ACK so the peer gets a full
        # four-timestamp clock sample per ACK.
        ping_echo_ns = 0
        ping_recv_ns = 0
        try:
            while not self._closing:
                try:
                    data = await reader.read(65536)
                except (ConnectionError, OSError):
                    break
                if not data:
                    break  # EOF
                arrival_ns = self.now_ns()
                try:
                    bodies = decoder.feed(data)
                    ack_due = False
                    for body in bodies:
                        kind, payload = decode_payload(body)
                        if kind == "stat":
                            # Monitoring probe (repro top): answer with a
                            # snapshot; no HELLO required, and the
                            # connection stays a plain query channel.
                            try:
                                writer.write(
                                    stat_reply_frame(
                                        self._stat_payload(), self.max_frame
                                    )
                                )
                                await writer.drain()
                            except (ConnectionError, OSError):
                                break
                        elif peer_index is None:
                            peer_index = self._handshake(kind, payload, writer)
                            ping_echo_ns = payload[2]  # type: ignore[index]
                            ping_recv_ns = arrival_ns
                            # ACK immediately: carries no new cumulative
                            # progress but gives the dialler a clock
                            # sample on every (re)connect.
                            ack_due = True
                        elif kind == "msg":
                            seq, send_ns, message = payload  # type: ignore[misc]
                            ping_echo_ns = send_ns
                            ping_recv_ns = arrival_ns
                            if seq > self._delivered_seq.get(peer_index, 0):
                                self._delivered_seq[peer_index] = seq
                                tracer = self.tracer
                                if tracer.enabled:
                                    tracer.emit(
                                        time=self.clock.now, party=self.index,
                                        protocol="net", round=None,
                                        kind="net.wire.recv",
                                        payload={
                                            "src": peer_index,
                                            "seq": seq,
                                            "kind": message_kind(message),
                                            "bytes": len(body) + 4,
                                        },
                                    )
                                self._hand_over(message)
                            ack_due = True
                        else:
                            raise FrameError(
                                f"unexpected {kind.upper()} frame on an open "
                                "inbound connection"
                            )
                except FrameError as exc:
                    self._reject_frame(peer_index, exc)
                    break
                if ack_due and peer_index is not None:
                    # One cumulative ACK per read chunk releases the
                    # sender's retransmit buffer (ACKed even when every
                    # frame was a duplicate — the peer may have missed
                    # the earlier ACK).
                    try:
                        writer.write(
                            ack_frame(
                                self._delivered_seq.get(peer_index, 0),
                                echo_ns=ping_echo_ns,
                                recv_ns=ping_recv_ns,
                                send_ns=self.now_ns(),
                            )
                        )
                        await writer.drain()
                    except (ConnectionError, OSError):
                        break
        except asyncio.CancelledError:
            pass
        finally:
            if peer_index is not None and self._inbound_writers.get(peer_index) is writer:
                del self._inbound_writers[peer_index]
                self._on_peer_disconnect(peer_index, "in")
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, OSError):
                pass

    def _handshake(self, kind: str, payload: object, writer: asyncio.StreamWriter) -> int:
        """Validate the first frame of an inbound connection."""
        if kind != "hello":
            raise FrameError("first frame was not HELLO")
        index, cluster_id, _ts_ns = payload  # type: ignore[misc]
        if cluster_id != self.cluster_id:
            raise FrameError(
                f"HELLO from cluster {cluster_id!r} (expected {self.cluster_id!r})"
            )
        if index == self.index or index not in self.peers:
            raise FrameError(f"HELLO from unknown party index {index}")
        previous = self._inbound_writers.get(index)
        if previous is not None:
            # Duplicate connection: the peer reconnected (or a stale socket
            # lingered).  Newest wins; closing the old transport makes its
            # read loop see EOF and exit.
            previous.close()
            if self.meter.enabled:
                self.meter.count("live.dup_connections")
        self._inbound_writers[index] = writer
        self._on_peer_connect(index, "in", reconnect=previous is not None)
        return index

    def _reject_frame(self, peer_index: int | None, exc: FrameError) -> None:
        self.frames_rejected += 1
        if self.meter.enabled:
            self.meter.count("live.frames.rejected")
        if self.tracer.enabled:
            self.tracer.emit(
                time=self.clock.now, party=self.index, protocol="net", round=None,
                kind="live.frame.rejected",
                payload={"peer": peer_index, "reason": str(exc)},
            )

    # -- clock samples + STAT endpoint ----------------------------------------

    def _record_clock_sample(
        self, peer: int, t1_ns: int, t2_ns: int, t3_ns: int, t4_ns: int
    ) -> None:
        """Record one NTP four-timestamp sample for ``peer``.

        ``t1`` our send-time (echoed), ``t2`` peer receive-time, ``t3``
        peer ACK send-time, ``t4`` our ACK receive-time; ``theta`` is the
        peer clock minus ours, ``rtt`` the round trip net of the peer's
        hold time.  Retransmitted frames echo stale send-times and show
        up as huge RTTs — downstream minimum filters discard them.
        """
        rtt = ((t4_ns - t1_ns) - (t3_ns - t2_ns)) * 1e-9
        if rtt < 0:
            return  # stale echo ordering artefact; not a usable sample
        theta = ((t2_ns - t1_ns) + (t3_ns - t4_ns)) * 0.5e-9
        self.clock_sync.add(peer, theta, rtt)
        if self.meter.enabled:
            self.meter.count("live.clock.samples")
        if self.tracer.enabled:
            self.tracer.emit(
                time=self.clock.now, party=self.index, protocol="net", round=None,
                kind="live.clock.sample",
                payload={"peer": peer, "theta": theta, "rtt": rtt},
            )

    def _stat_payload(self) -> dict:
        """The STAT answer: the installed provider's snapshot, or a
        transport-level fallback when no party is wired in."""
        if self.meter.enabled:
            self.meter.count("live.stat.requests")
        if self.tracer.enabled:
            self.tracer.emit(
                time=self.clock.now, party=self.index, protocol="net", round=None,
                kind="live.stat.request", payload={},
            )
        if self.stats_provider is not None:
            return dict(self.stats_provider())
        return {
            "index": self.index,
            "cluster_id": self.cluster_id,
            "delivered": self._delivered,
            "connects": self.connects_total,
            "reconnects": self.reconnects_total,
            "clock_sync": self.clock_sync.summary(),
        }

    # -- connection observability --------------------------------------------

    def _on_peer_connect(self, peer: int, direction: str, reconnect: bool) -> None:
        self.connects_total += 1
        if reconnect:
            self.reconnects_total += 1
        if self.meter.enabled:
            self.meter.count("live.connects")
            if reconnect:
                self.meter.count("live.reconnects")
        if self.tracer.enabled:
            self.tracer.emit(
                time=self.clock.now, party=self.index, protocol="net", round=None,
                kind="live.peer.connect",
                payload={"peer": peer, "direction": direction, "reconnect": reconnect},
            )

    def _on_peer_disconnect(self, peer: int, direction: str) -> None:
        if self._closing:
            return
        if self.tracer.enabled:
            self.tracer.emit(
                time=self.clock.now, party=self.index, protocol="net", round=None,
                kind="live.peer.disconnect",
                payload={"peer": peer, "direction": direction},
            )

    # -- simulator-only controls ----------------------------------------------

    def install_faults(self, interceptor: object) -> None:
        """Fault scenarios manipulate *virtual* delivery; the live transport
        cannot honour them.  See docs/FAULTS.md ("Simulator-only")."""
        raise SimulatorOnlyFeature(
            "fault injection is simulator-only: TcpNetwork cannot intercept "
            "real socket delivery — run the scenario against "
            "repro.sim.network.Network, or use OS-level tooling for live "
            "fault drills"
        )

    def clear_faults(self) -> None:
        raise SimulatorOnlyFeature(
            "fault injection is simulator-only: nothing to clear on TcpNetwork"
        )

    def crash(self, index: int) -> None:
        raise SimulatorOnlyFeature(
            "crash() is simulator-only: to crash a live party, stop its "
            "process (the transport's reconnect/backoff handles the rest)"
        )

    def revive(self, index: int) -> None:
        raise SimulatorOnlyFeature(
            "revive() is simulator-only: restart the party process instead"
        )

    def add_partition(self, group: set[int], heal_time: float) -> None:
        raise SimulatorOnlyFeature(
            "partitions are simulator-only: use OS-level packet filtering "
            "for live partition drills"
        )
