"""An embeddable n-party live cluster on one event loop.

:class:`LiveCluster` is the live-transport counterpart of
:func:`repro.core.cluster.embed_cluster`: all n parties run inside one
process on one asyncio loop — but every message still crosses a real
TCP connection through each party's own :class:`~repro.net.transport
.TcpNetwork` (n listening sockets, n·(n−1) directed connections, real
framing, real kernel buffers).  It exists for two callers:

* programmatic embedding — ``examples/live_cluster.py`` finalizes a
  4-party chain in ~20 lines;
* tests and the ``repro live --check`` quick leg, which need a live
  cluster without the cost and signal-handling of n OS processes.

``python -m repro live`` proper spawns one ``repro serve`` process per
party instead; the protocol and transport code paths are identical.

Usage::

    config = local_live_config(4, t=1, epsilon=0.01, target_height=5)
    async with LiveCluster(config) as cluster:
        ok = await cluster.wait_for_height(5, timeout=30.0)
        cluster.check_safety()
"""

from __future__ import annotations

import asyncio

from .config import LiveConfig
from .party import LiveParty


class LiveCluster:
    """All parties of one live config, co-hosted on the current loop."""

    def __init__(
        self, config: LiveConfig, *, tracer=None, meter=None, per_party=None
    ) -> None:
        """``tracer``/``meter`` are shared by every party (handy for an
        embedded view of aggregate activity); ``per_party`` instead maps
        an index (1..n) to a ``(tracer, meter)`` pair, giving each party
        its own private timeline exactly as separate processes would —
        what distributed-trace collection needs.  ``per_party`` wins when
        both are given."""
        self.config = config
        self._tracer = tracer
        self._meter = meter
        self._per_party = per_party
        self.parties: list[LiveParty] = []
        self._started = False

    # -- lifecycle ------------------------------------------------------------

    def _observability(self, index: int) -> tuple:
        if self._per_party is not None:
            return self._per_party(index)
        return self._tracer, self._meter

    async def start(self) -> None:
        if self._started:
            raise RuntimeError("cluster already started")
        loop = asyncio.get_running_loop()
        self.parties = []
        for i in range(1, self.config.n + 1):
            tracer, meter = self._observability(i)
            self.parties.append(
                LiveParty(self.config, i, loop=loop, tracer=tracer, meter=meter)
            )
        for live in self.parties:
            await live.start()
        self._started = True

    async def stop(self) -> None:
        for live in self.parties:
            await live.stop()
        self._started = False

    async def __aenter__(self) -> "LiveCluster":
        await self.start()
        return self

    async def __aexit__(self, *exc) -> None:
        await self.stop()

    # -- progress -------------------------------------------------------------

    async def wait_for_height(self, height: int, timeout: float) -> bool:
        """True once **every** party has committed through ``height``."""
        loop = asyncio.get_running_loop()
        deadline = loop.time() + timeout
        for live in self.parties:
            remaining = deadline - loop.time()
            if remaining <= 0 or not await live.wait_for_height(height, remaining):
                return False
        return True

    def min_height(self) -> int:
        return min((live.party.k_max for live in self.parties), default=0)

    def check_safety(self) -> None:
        """Assert the paper's prefix property across all parties' outputs."""
        logs = [live.party.committed_hashes for live in self.parties]
        reference = max(logs, key=len, default=[])
        for log in logs:
            if log != reference[: len(log)]:
                raise AssertionError("safety violated: committed logs diverge")

    def results(self) -> list[dict]:
        return [live.result() for live in self.parties]


__all__ = ["LiveCluster"]
