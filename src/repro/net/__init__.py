"""Real asyncio/TCP transport: the deployed face of the simulator.

Everything under :mod:`repro.net` exists so that the *identical*
:mod:`repro.core` protocol objects (ICC0/ICC1/ICC2 parties, the message
pool, the random beacon) that run inside the discrete-event simulator can
run as one-process-per-party over real sockets, with **zero changes to the
protocol layer**.  The package mirrors the two objects a party is wired
to at construction time:

* :class:`~repro.net.clock.WallClock` stands in for
  :class:`repro.sim.simulator.Simulation` — same ``now`` /
  ``schedule`` / ``schedule_at`` / ``tracer`` / ``meter`` / ``rng``
  surface, but backed by the asyncio event loop's monotonic clock
  instead of virtual time;
* :class:`~repro.net.transport.TcpNetwork` stands in for
  :class:`repro.sim.network.Network` — same ``attach`` / ``broadcast`` /
  ``send`` / ``multicast`` surface and the same
  :class:`repro.sim.metrics.Metrics` accounting, but messages cross real
  TCP connections with length-prefixed framing, per-peer outbound queues
  and reconnect/backoff (see ``docs/TRANSPORT.md``).

On top of those two substitutions:

* :mod:`repro.net.config` — the JSON peer/cluster configuration a party
  binary is launched with;
* :mod:`repro.net.party` — :class:`LiveParty`, one protocol party bound
  to a socket (the ``python -m repro serve`` body);
* :mod:`repro.net.cluster` — :class:`LiveCluster`, an embeddable
  n-party localhost cluster on one event loop (the programmatic API,
  mirroring :func:`repro.core.cluster.embed_cluster` for the simulator);
* :mod:`repro.net.live` — the ``python -m repro serve`` / ``python -m
  repro live`` entry points: spawn one OS process per party, drive
  client load through the batching pipeline, record the
  ``BENCH_live.json`` wall-clock leg.

Fault injection (:meth:`repro.sim.network.Network.install_faults`) is
**simulator-only**: :class:`TcpNetwork` raises
:class:`SimulatorOnlyFeature` if a scenario is attached — see
``docs/FAULTS.md``.
"""

from .clock import WallClock
from .config import LiveConfig, PeerSpec, load_live_config
from .framing import (
    DEFAULT_MAX_FRAME,
    FrameDecoder,
    FrameError,
    OversizedFrame,
    decode_payload,
    encode_frame,
    hello_frame,
    message_frame,
)
from .transport import SimulatorOnlyFeature, TcpNetwork
from .party import LiveParty, build_live_party
from .cluster import LiveCluster

__all__ = [
    "WallClock",
    "LiveConfig",
    "PeerSpec",
    "load_live_config",
    "DEFAULT_MAX_FRAME",
    "FrameDecoder",
    "FrameError",
    "OversizedFrame",
    "decode_payload",
    "encode_frame",
    "hello_frame",
    "message_frame",
    "SimulatorOnlyFeature",
    "TcpNetwork",
    "LiveParty",
    "build_live_party",
    "LiveCluster",
]
