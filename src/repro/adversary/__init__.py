"""Adversary library: pluggable Byzantine behaviours for any ICC variant."""

from .behaviors import (
    AggressiveByzantineMixin,
    ConsistentFailureMixin,
    EquivocatingProposerMixin,
    LazyLeaderMixin,
    SilentMixin,
    SlowProposerMixin,
    WithholdFinalizationMixin,
    WithholdNotarizationMixin,
    corrupt_class,
)

__all__ = [
    "AggressiveByzantineMixin",
    "ConsistentFailureMixin",
    "EquivocatingProposerMixin",
    "LazyLeaderMixin",
    "SilentMixin",
    "SlowProposerMixin",
    "WithholdFinalizationMixin",
    "WithholdNotarizationMixin",
    "corrupt_class",
]
