"""Byzantine behaviours, as mixins over any ICC party class.

The paper's threat model: up to t < n/3 statically-corrupted parties, fully
coordinated, from crash failures through arbitrary (Byzantine) behaviour.
Each mixin implements one concrete attack; :func:`corrupt_class` composes a
mixin with a base protocol class (ICC0/ICC1/ICC2), so every attack works
against every protocol variant.

The attacks:

* :class:`SilentMixin` — "refuses to participate" (Table 1, third
  scenario).  Distinct from a network crash: the node exists but sends
  nothing.
* :class:`EquivocatingProposerMixin` — proposes two different blocks and
  shows each to half the network (exercises the rank-disqualification
  logic of clause (c)).
* :class:`WithholdFinalizationMixin` — participates in tree building but
  never helps finalize (stalls commits until an honest-leader round
  carries them; experiment E4).
* :class:`WithholdNotarizationMixin` — never sends notarization shares
  (reduces effective quorum to the honest parties).
* :class:`LazyLeaderMixin` — always proposes empty blocks ("at one
  extreme, a corrupt leader could always propose an empty block",
  Section 1.1); throughput robustness, experiment E5.
* :class:`AggressiveByzantineMixin` — signs everything it can: shares
  notarizations for *every* valid block immediately (ignoring rank
  priority and delays), finalization-shares every valid block, and
  equivocates proposals.  Safety must survive this with t < n/3; the
  safety property tests run it at full strength.
* :class:`SlowProposerMixin` — delays its proposal by a configurable
  amount (models a leader behind a slow link).
"""

from __future__ import annotations

from ..core.icc0 import ICC0Party
from ..core.messages import Authenticator, Block, EMPTY_PAYLOAD, Payload
from ..core import messages as msg
from ..obs import short_id


class SilentMixin:
    """Corrupt party that never sends or processes anything."""

    def start(self) -> None:  # noqa: D102 - protocol override
        pass

    def on_receive(self, message: object) -> None:  # noqa: D102
        pass


class ConsistentFailureMixin:
    """The paper's intermediate corruption class ("consistent failures"):
    a corrupt party that "behaves in a way that is not conspicuously
    incorrect" (Section 3.1).

    It follows the protocol faithfully — valid signatures, correct echo
    behaviour, timely beacon shares — but extracts maximal *passive*
    advantage: it never proposes blocks (keeping its payload slot useless)
    and never contributes finalization shares (delaying commits), neither
    of which any other party can attribute to it as provable misbehaviour.
    """

    def _clause_b_propose(self) -> bool:  # noqa: D102
        self.proposed = True  # pretend we already proposed; send nothing
        return False

    def _send_finalization_share(self, block: Block) -> None:  # noqa: D102
        self.metrics.count("finalization-shares-withheld")
        if self.tracer.enabled:
            self._trace(
                "adv.withhold.finalization", round=block.round,
                block=short_id(block.hash),
            )


class WithholdFinalizationMixin:
    """Never contribute finalization shares."""

    def _send_finalization_share(self, block: Block) -> None:  # noqa: D102
        self.metrics.count("finalization-shares-withheld")
        if self.tracer.enabled:
            self._trace(
                "adv.withhold.finalization", round=block.round,
                block=short_id(block.hash),
            )


class WithholdNotarizationMixin:
    """Never contribute notarization shares (but still echo and propose)."""

    def _send_notarization_share(self, block: Block) -> None:  # noqa: D102
        self.metrics.count("notarization-shares-withheld")
        if self.tracer.enabled:
            self._trace(
                "adv.withhold.notarization", round=block.round,
                block=short_id(block.hash),
            )


class LazyLeaderMixin:
    """Propose syntactically-valid but empty blocks regardless of load."""

    def _make_payload(self, round: int, chain: list[Block]) -> Payload:  # noqa: D102
        if self.tracer.enabled:
            self._trace("adv.lazy.payload", round=round)
        return EMPTY_PAYLOAD


class SlowProposerMixin:
    """Delay own proposals by ``propose_lag`` simulated seconds."""

    propose_lag: float = 5.0

    def _clause_b_propose(self) -> bool:  # noqa: D102
        if self.sim.now < self.round_start + self.propose_lag:
            self._schedule_wake(self.round_start + self.propose_lag)
            return False
        proposed = super()._clause_b_propose()
        if proposed and self.tracer.enabled:
            self._trace("adv.slow.propose", lag=self.propose_lag)
        return proposed


class EquivocatingProposerMixin:
    """Propose two conflicting blocks; show each to half the parties."""

    def _clause_b_propose(self) -> bool:  # noqa: D102
        k = self.round
        if self.proposed:
            return False
        if self.sim.now < self.round_start + self.delays.prop(self.my_rank):
            return False
        parents = self.pool.notarized_blocks(k - 1)
        if not parents:
            return False
        parent = min(parents, key=lambda b: b.hash)
        chain = self.pool.chain_suffix(parent.hash)
        base_payload = self._make_payload(k, chain)
        twins = []
        for tag in (b"equivocation/a", b"equivocation/b"):
            payload = Payload(
                commands=base_payload.commands + (tag,),
                filler_bytes=base_payload.filler_bytes,
            )
            block = Block(
                round=k, proposer=self.index, parent_hash=parent.hash, payload=payload
            )
            signed = msg.authenticator_message(k, self.index, block.hash)
            auth = Authenticator(
                round=k,
                proposer=self.index,
                block_hash=block.hash,
                signature=self.keys.sign_auth(signed),
            )
            twins.append((block, auth))
        parent_notz = self.pool.notarization_of(parent.hash) if k > 1 else None
        half = self.params.n // 2
        for receiver in range(1, self.params.n + 1):
            block, auth = twins[0] if receiver <= half else twins[1]
            self.network.send(self.index, receiver, block, round=k)
            self.network.send(self.index, receiver, auth, round=k)
            if parent_notz is not None:
                self.network.send(self.index, receiver, parent_notz, round=k)
        self.metrics.count("equivocating-proposals")
        if self.tracer.enabled:
            self._trace(
                "adv.equivocate", round=k,
                blocks=[short_id(block.hash) for block, _ in twins],
            )
        self.proposed = True
        return True


class AggressiveByzantineMixin(EquivocatingProposerMixin):
    """Maximal protocol-level misbehaviour: sign everything, equivocate.

    Ignores rank priority, Δntry delays, the one-share-per-rank rule, and
    the N ⊆ {B} finalization guard.  Cannot forge signatures (the paper
    assumes secure cryptography) — every other rule is broken.
    """

    def _clause_c_echo_and_share(self) -> bool:  # noqa: D102
        k = self.round
        changed = False
        for block in self.pool.valid_blocks(k):
            if block.hash in self.notar_shared:
                continue
            self.notar_shared[block.hash] = self._block_rank(block)
            if self.tracer.enabled:
                self._trace(
                    "adv.aggressive.sign", round=k, block=short_id(block.hash)
                )
            self._send_notarization_share(block)
            # Also finalization-share it — honest parties never would here.
            self._send_finalization_share(block)
            changed = True
        return changed


def corrupt_class(base: type[ICC0Party], *mixins: type) -> type[ICC0Party]:
    """Compose Byzantine mixins with a protocol base class.

    Example: ``corrupt_class(ICC1Party, EquivocatingProposerMixin)`` yields
    an equivocating proposer that speaks the ICC1 gossip substrate.
    """
    name = "".join(m.__name__.replace("Mixin", "") for m in mixins) + base.__name__
    return type(name, (*mixins, base), {})
