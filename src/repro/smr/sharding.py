"""Multi-subnet sharding: K embedded clusters behind one certified fabric.

The "millions of users" composition (ROADMAP): a :class:`ShardedDeployment`
instantiates K :class:`~repro.core.cluster.Cluster`s — each with its own
party set, keyrings, namespaced trace/metric streams and private
delay-RNG stream (:func:`~repro.core.cluster.embed_cluster`) — inside one
coordinating :class:`~repro.sim.simulator.Simulation`, and couples them
through :class:`~repro.smr.xnet.XNet` certified streams:

* each shard runs the full PR-6 load pipeline (per-shard
  :class:`~repro.workloads.batching.RequestBatcher` ingress, RLC batch
  authentication, block packing, per-block re-authentication);
* a :class:`~repro.workloads.sharding.ShardPopulation` offers every shard
  its own open-loop request stream, a fraction of which addresses remote
  shards (xnet-enveloped bodies);
* cross-shard bodies finalize on their origin shard, cross the fabric as
  versioned, sequence-numbered, certified stream messages, and are
  re-admitted at the destination by a **gateway**: a reserved ingress
  client that re-signs the inner body under the destination's client-auth
  keys, carrying the *origin* arrival time so the destination's
  completion hook measures true end-to-end cross-shard latency.

Everything is deterministic — fixed delays, hash-MAC auth, per-shard
seeded populations, no ``sim.rng`` draws — so one deployment run is
bit-identical in any process, which is what lets the experiment layer fan
whole deployments across the parallel runner's process pool with
identical results at any ``--jobs``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass

from ..core.cluster import Cluster, ClusterConfig, ClusterHandle, embed_cluster
from ..crypto.hashing import tagged_hash
from ..sim.delays import FixedDelay
from ..sim.simulator import Simulation
from ..workloads.batching import BatchSpec, RequestBatcher, SignedRequest
from ..workloads.sharding import ShardLoadSpec, ShardPopulation
from .xnet import StreamCertifier, StreamMessage, XNet, make_envelope

__all__ = [
    "GATEWAY_CLIENT_BASE",
    "ShardResult",
    "ShardSpec",
    "ShardedDeployment",
]

#: Gateway ingress client ids: GATEWAY_CLIENT_BASE + source-shard index.
#: Far above any population client id, so streams never collide.
GATEWAY_CLIENT_BASE = 0xFFFF0000


@dataclass(frozen=True)
class ShardSpec:
    """Declarative description of one sharded deployment run (picklable)."""

    shards: int = 2
    n: int = 4
    t: int = 1
    seed: int = 0
    duration: float = 2.0
    drain: float = 1.0
    #: Network / protocol timing (FixedDelay keeps runs deterministic).
    delta: float = 0.05
    delta_bound: float = 0.3
    epsilon: float = 0.005
    transfer_delay: float = 0.1
    #: Per-shard load shape (see ShardLoadSpec).
    offered: float = 200.0
    xfrac: float = 0.0
    clients: int = 100
    payload_bytes: int = 64
    #: Ingress batching.
    batch_max: int = 64
    queue_cap: int = 100_000
    auth: str = "fast"

    def __post_init__(self) -> None:
        if self.shards < 1:
            raise ValueError("need at least one shard")


@dataclass(frozen=True)
class ShardResult:
    """Aggregate outcome of one deployment run (picklable)."""

    shards: int
    n: int
    offered: float
    xfrac: float
    duration: float
    #: Requests finalized where they were addressed: locally-addressed
    #: requests on their shard + cross-shard requests on the destination.
    committed: int
    committed_local: int
    committed_cross: int
    #: Aggregate finalized-request throughput, requests/second.
    goodput: float
    mean_local_latency: float | None
    mean_cross_latency: float | None
    #: mean_cross / mean_local (None until both sides have samples).
    latency_penalty: float | None
    transfers: int
    rejected: int
    undeliverable: int
    min_committed_round: int
    #: Order-insensitive digest over every shard's committed request set.
    digest: str


class ShardedDeployment:
    """K embedded clusters, one Simulation, one certified xnet fabric."""

    def __init__(
        self,
        spec: ShardSpec,
        sim: Simulation | None = None,
        tracer=None,
        meter=None,
    ) -> None:
        self.spec = spec
        self.sim = sim if sim is not None else Simulation(seed=spec.seed)
        if tracer is not None:
            self.sim.tracer = tracer
        if meter is not None:
            self.sim.meter = meter
        secret = tagged_hash("ICC/xnet/topology-secret", spec.seed.to_bytes(8, "big"))
        self.xnet = XNet(
            self.sim,
            transfer_delay=spec.transfer_delay,
            certifier=StreamCertifier(secret),
        )
        self.names = [f"shard{k}" for k in range(spec.shards)]
        self.handles: dict[str, ClusterHandle] = {}
        self.batchers: dict[str, RequestBatcher] = {}
        self.population = ShardPopulation(
            ShardLoadSpec(
                offered=spec.offered,
                xfrac=spec.xfrac,
                clients=spec.clients,
                payload_bytes=spec.payload_bytes,
            ),
            seed=spec.seed,
        )
        # Latency / completion accounting (fed by batcher completion hooks).
        self.local_latencies: dict[str, list[float]] = {n: [] for n in self.names}
        self.cross_latencies: list[float] = []
        self._gateway_rids: dict[str, dict[bytes, float]] = {n: {} for n in self.names}
        self._gateway_seq: dict[str, dict[str, int]] = {n: {} for n in self.names}
        for k, name in enumerate(self.names):
            self._build_shard(k, name)

    # -- construction ------------------------------------------------------

    def _build_shard(self, k: int, name: str) -> None:
        spec = self.spec
        batcher = RequestBatcher(
            BatchSpec(
                batch_max=spec.batch_max,
                queue_cap=spec.queue_cap,
                auth=spec.auth,
            ),
            seed=spec.seed + k,
        )
        config = ClusterConfig(
            n=spec.n,
            t=spec.t,
            delta_bound=spec.delta_bound,
            epsilon=spec.epsilon,
            seed=spec.seed + k,
            delay_model=FixedDelay(spec.delta),
            payload_source=batcher.payload_source,
            payload_verifier=batcher.verify_block,
        )
        handle = embed_cluster(name, config, self.sim)
        batcher.bind(handle.cluster, tracer=handle.tracer, meter=handle.meter)
        batcher.on_complete(
            lambda rid, latency, name=name: self._on_complete(name, rid, latency)
        )
        self.xnet.register(
            name,
            handle.cluster,
            submit=lambda message, name=name: self._gateway(name, message),
        )
        self.handles[name] = handle
        self.batchers[name] = batcher

    # -- the gateway: certified stream -> destination ingress --------------

    def _gateway(self, name: str, message: StreamMessage) -> None:
        """Re-admit a validated cross-shard body into shard ``name``.

        The gateway is a reserved ingress client per source stream: it
        re-signs the inner body under this shard's client-auth keys (the
        batcher's per-block re-authentication then covers it like any
        other request) and carries the *origin* arrival time, so the
        completion hook's latency is end-to-end across both shards."""
        batcher = self.batchers[name]
        source_index = self.names.index(message.source) if message.source in self.names else 0
        client = GATEWAY_CLIENT_BASE + source_index
        seqs = self._gateway_seq[name]
        seq = seqs.get(message.source, 0)
        seqs[message.source] = seq + 1
        body = message.body
        auth = batcher.auth.sign(client, seq, 0, body)
        request = SignedRequest(client=client, seq=seq, key=0, auth=auth, body=body)
        origin = self.population.origin.get(body)
        arrival = origin[1] if origin is not None else self.sim.now
        accepted = batcher.admit_batch([(request, arrival)])
        if accepted:
            self._gateway_rids[name][request.request_id] = arrival

    def _on_complete(self, name: str, rid: bytes, latency: float) -> None:
        if rid in self._gateway_rids[name]:
            self.cross_latencies.append(latency)
            meter = self.sim.meter
            if meter.enabled:
                meter.count("shard.cross.committed")
                meter.observe("shard.cross.latency", latency)
        elif rid in self.population.cross_rids.get(name, ()):
            # Origin-side hop of a cross-shard request: the commit that
            # feeds the stream, not a user-visible completion.
            pass
        else:
            self.local_latencies[name].append(latency)

    # -- running -----------------------------------------------------------

    def run(self) -> ShardResult:
        """Install the load, run every shard, return the aggregate result."""
        spec = self.spec
        self.population.install(
            self.sim,
            [(name, self.batchers[name]) for name in self.names],
            duration=spec.duration,
            envelope=make_envelope,
        )
        for handle in self.handles.values():
            handle.start()
        self.sim.run(until=spec.duration + spec.drain, max_events=50_000_000)
        for handle in self.handles.values():
            handle.cluster.check_safety()
        result = self.result()
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=0, protocol="sharding", round=None,
                kind="shard.run",
                payload={"shards": spec.shards, "committed": result.committed,
                         "transfers": result.transfers,
                         "rejected": result.rejected},
            )
        return result

    def result(self) -> ShardResult:
        spec = self.spec
        committed_local = sum(len(v) for v in self.local_latencies.values())
        committed_cross = len(self.cross_latencies)
        committed = committed_local + committed_cross
        mean_local = _mean(
            [s for latencies in self.local_latencies.values() for s in latencies]
        )
        mean_cross = _mean(self.cross_latencies)
        penalty = (
            mean_cross / mean_local
            if mean_local is not None and mean_cross is not None and mean_local > 0
            else None
        )
        digest = hashlib.sha256(
            b"".join(
                self.batchers[name].committed_digest().encode() for name in self.names
            )
        ).hexdigest()
        return ShardResult(
            shards=spec.shards,
            n=spec.n,
            offered=spec.offered,
            xfrac=spec.xfrac,
            duration=spec.duration,
            committed=committed,
            committed_local=committed_local,
            committed_cross=committed_cross,
            goodput=committed / spec.duration,
            mean_local_latency=mean_local,
            mean_cross_latency=mean_cross,
            latency_penalty=penalty,
            transfers=self.xnet.transfers,
            rejected=self.xnet.rejected,
            undeliverable=self.xnet.undeliverable,
            min_committed_round=min(
                (self.handles[n].cluster.min_committed_round() for n in self.names),
                default=0,
            ),
            digest=digest,
        )


def _mean(samples: list[float]) -> float | None:
    return sum(samples) / len(samples) if samples else None
