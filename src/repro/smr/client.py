"""Client frontend: submit commands, await commits, measure latency.

Completes the state-machine-replication story (Section 1): clients hand
commands to the replicated service and consider them *executed* once a
replica they watch has committed them.  The frontend measures the
end-to-end latency — submit → appears in every watched replica's committed
prefix — which is the figure an application actually experiences (commit
latency 3δ plus queueing for the next block).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.icc0 import ICC0Party
from ..core.messages import Block, Payload
from ..workloads.generators import MempoolWorkload, WorkloadSpec


#: Client commands travel as ``cli:<8-byte seq>\x00<body>`` so commits can
#: be matched back to handles; state machines want the bare body.
_CLIENT_PREFIX = b"cli:"
_CLIENT_ENVELOPE_LEN = 13  # 12-byte key + 1 separator byte


def strip_client_envelope(command: bytes) -> bytes:
    """Return the application body of a client-submitted command.

    Handles every envelope format replicas may see: the frontend's
    ``cli:`` envelope, the load pipeline's signed-request wire format
    (:mod:`repro.workloads.batching`), and xnet stream wire
    (:mod:`repro.smr.xnet` — cross-subnet commands arrive wrapped in
    their certified stream message).  Envelopes nest (a ``cli:`` command
    may carry stream wire), so stripping recurses until a bare body
    remains.  Commands in no known format pass through unchanged, so
    state machines can consume mixed streams.
    """
    if command.startswith(_CLIENT_PREFIX) and len(command) >= _CLIENT_ENVELOPE_LEN:
        return strip_client_envelope(command[_CLIENT_ENVELOPE_LEN:])
    if command.startswith(b"ld"):
        from ..workloads.batching import strip_request_envelope

        return strip_request_envelope(command)
    if command.startswith(b"xstr\x1f"):
        from .xnet import strip_stream_envelope

        return strip_client_envelope(strip_stream_envelope(command))
    return command


@dataclass
class CommandHandle:
    """Tracks one submitted command through to commitment."""

    key: bytes
    command: bytes
    submitted_at: float
    committed_at: float | None = None
    committed_round: int | None = None

    @property
    def done(self) -> bool:
        return self.committed_at is not None

    @property
    def latency(self) -> float | None:
        if self.committed_at is None:
            return None
        return self.committed_at - self.submitted_at


class ClientFrontend:
    """Submits commands into party mempools and watches an observer replica.

    Usage (the payload source must be wired at cluster-build time)::

        client = ClientFrontend()
        config = ClusterConfig(..., payload_source=client.payload_source)
        cluster = build_cluster(config)
        client.bind(cluster, observer=1)
        handle = client.submit(b"put k v")        # now, or
        client.submit_at(5.0, b"put k v2")        # at a future instant
    """

    def __init__(self, max_block_commands: int = 10_000) -> None:
        self._workload = MempoolWorkload(
            WorkloadSpec(rate_per_second=0.0, payload_bytes=0,
                         max_block_commands=max_block_commands)
        )
        self._cluster = None
        self._observer: ICC0Party | None = None
        self._sequence = 0
        self.handles: dict[bytes, CommandHandle] = {}

    # -- wiring ------------------------------------------------------------------

    @property
    def payload_source(self):
        return self._workload.payload_source

    def bind(self, cluster, observer: int = 1) -> None:
        self._cluster = cluster
        self._observer = cluster.party(observer)
        for index in range(1, cluster.params.n + 1):
            self._workload._pending.setdefault(index, {})
        self._observer.commit_listeners.append(self._on_commit)
        self._workload.attach_commit_pruning(cluster)

    # -- submission ---------------------------------------------------------------

    def submit(self, body: bytes) -> CommandHandle:
        """Submit now (at the current simulation time)."""
        if self._cluster is None:
            raise RuntimeError("bind() the client to a cluster first")
        self._sequence += 1
        key = _CLIENT_PREFIX + self._sequence.to_bytes(8, "big")
        command = key + b"\x00" + body
        handle = CommandHandle(
            key=key, command=command, submitted_at=self._cluster.sim.now
        )
        self.handles[key] = handle
        for pending in self._workload._pending.values():
            pending[command[:12]] = command
        return handle

    def submit_at(self, time: float, body: bytes) -> None:
        """Schedule a submission at an absolute simulation time."""
        if self._cluster is None:
            raise RuntimeError("bind() the client to a cluster first")
        self._cluster.sim.schedule_at(time, lambda: self.submit(body))

    def submit_stream(self, rate: float, duration: float, body_bytes: int = 32) -> None:
        """A steady stream of rate req/s for ``duration`` seconds."""
        if rate <= 0:
            return
        interval = 1.0 / rate
        time = self._cluster.sim.now + interval
        end = self._cluster.sim.now + duration
        count = 0
        while time < end:
            self.submit_at(time, b"x" * body_bytes)
            time += interval
            count += 1

    # -- completion ---------------------------------------------------------------

    def _on_commit(self, block: Block) -> None:
        for command in block.payload.commands:
            key = command[:12]
            handle = self.handles.get(key)
            if handle is not None and handle.committed_at is None:
                handle.committed_at = self._cluster.sim.now
                handle.committed_round = block.round

    # -- reporting ----------------------------------------------------------------

    @property
    def completed(self) -> list[CommandHandle]:
        return [h for h in self.handles.values() if h.done]

    @property
    def outstanding(self) -> list[CommandHandle]:
        return [h for h in self.handles.values() if not h.done]

    def latencies(self) -> list[float]:
        return [h.latency for h in self.completed]

    def mean_latency(self) -> float:
        values = self.latencies()
        return sum(values) / len(values) if values else float("nan")
