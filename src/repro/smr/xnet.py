"""Cross-subnet messaging: certified streams between replicated state machines.

The paper's opening framing (Section 1): "the Internet Computer is a
dynamic collection of intercommunicating replicated state machines:
commands for atomic broadcast on one replicated state machine are either
derived from messages received [from] other replicated state machines, or
from external clients."

This module supplies that second command source.  An :class:`XNet` couples
several independently-running subnets (each its own consensus instance)
inside one simulation:

* commands committed on subnet A whose body is an *xnet envelope*
  addressed to subnet B are extracted from A's committed prefix — the
  committed prefix **is** the certified stream (the IC certifies
  cross-subnet streams against the source subnet's state);
* each extracted body is sealed into a versioned :class:`StreamMessage`
  carrying a per-``(source, destination)`` sequence number and a
  certificate binding ``(source, destination, seq, body)`` to the
  topology's certification key (:class:`StreamCertifier` — a keyed hash
  standing in for the IC's threshold signature on the stream state);
* at destination **ingress** the certificate, wire version and strict
  sequence order are checked; failures are dropped and counted
  (``shard.xnet.rejected`` / ``shard.xnet.reject``), successes submitted
  into B's mempools still wrapped in their stream wire; and
* every registered subnet's message pools get a composed
  ``payload_verifier`` (the same hook the load pipeline uses), so a block
  proposing stream-carried commands with bad certificates is rejected
  wholesale — a Byzantine proposer cannot smuggle forged cross-subnet
  traffic past honest parties.

Per-source FIFO holds by construction: A commits in a total order, the
transfer preserves it, and the ingress sequence check enforces it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..core.cluster import Cluster
from ..core.messages import Block
from ..crypto.hashing import tagged_hash
from ..sim.simulator import Simulation
from .client import ClientFrontend

__all__ = [
    "XNET_STREAM_VERSION",
    "EnvelopeError",
    "StreamCertifier",
    "StreamMessage",
    "Subnet",
    "XNet",
    "is_envelope",
    "is_stream",
    "make_envelope",
    "parse_envelope",
    "strip_stream_envelope",
]

#: Wire version of the inter-subnet stream format; ingress drops others.
XNET_STREAM_VERSION = 1

_ENVELOPE_TAG = b"xnet\x1f"
_STREAM_TAG = b"xstr\x1f"
_SEP = b"\x1f"
_SEQ_LEN = 8
_CERT_LEN = 32


class EnvelopeError(ValueError):
    """An xnet envelope or stream message failed to round-trip.

    Raised by :func:`parse_envelope` / :meth:`StreamMessage.from_wire` on
    bytes that are not (or are a corrupted form of) the respective wire
    format — explicit failure instead of a silent ``None``.
    """


def make_envelope(destination: str, body: bytes) -> bytes:
    """Wrap ``body`` as a cross-subnet message for ``destination``."""
    if _SEP in destination.encode():
        raise ValueError("destination may not contain the separator byte")
    return _ENVELOPE_TAG + destination.encode() + _SEP + body


def is_envelope(command: bytes) -> bool:
    """True when ``command`` claims to be an xnet envelope (tag check only)."""
    return command.startswith(_ENVELOPE_TAG)


def parse_envelope(command: bytes) -> tuple[str, bytes]:
    """Return (destination, body) of an xnet envelope.

    Raises :class:`EnvelopeError` when ``command`` does not carry the
    envelope tag or is a malformed envelope (tag without separator).
    Use :func:`is_envelope` to filter mixed command streams first.
    """
    if not command.startswith(_ENVELOPE_TAG):
        raise EnvelopeError("not an xnet envelope (missing tag)")
    rest = command[len(_ENVELOPE_TAG):]
    destination, sep, body = rest.partition(_SEP)
    if not sep:
        raise EnvelopeError("malformed xnet envelope (no destination separator)")
    return destination.decode(errors="replace"), body


# ---------------------------------------------------------------- stream wire


@dataclass(frozen=True)
class StreamMessage:
    """One versioned, certified inter-subnet stream message."""

    version: int
    source: str
    destination: str
    seq: int
    cert: bytes
    body: bytes

    def wire(self) -> bytes:
        """Serialize: tag ∥ version ∥ src ∥ sep ∥ dst ∥ sep ∥ seq ∥ cert ∥ body."""
        return (
            _STREAM_TAG
            + bytes([self.version])
            + self.source.encode()
            + _SEP
            + self.destination.encode()
            + _SEP
            + self.seq.to_bytes(_SEQ_LEN, "big")
            + self.cert
            + self.body
        )

    @classmethod
    def from_wire(cls, data: bytes) -> "StreamMessage":
        """Parse stream wire bytes; raises :class:`EnvelopeError` when malformed."""
        if not data.startswith(_STREAM_TAG):
            raise EnvelopeError("not an xnet stream message (missing tag)")
        rest = data[len(_STREAM_TAG):]
        if len(rest) < 1:
            raise EnvelopeError("truncated stream message (no version byte)")
        version, rest = rest[0], rest[1:]
        source, sep, rest = rest.partition(_SEP)
        if not sep:
            raise EnvelopeError("malformed stream message (no source separator)")
        destination, sep, rest = rest.partition(_SEP)
        if not sep:
            raise EnvelopeError("malformed stream message (no destination separator)")
        if len(rest) < _SEQ_LEN + _CERT_LEN:
            raise EnvelopeError("truncated stream message (seq/cert missing)")
        seq = int.from_bytes(rest[:_SEQ_LEN], "big")
        cert = rest[_SEQ_LEN:_SEQ_LEN + _CERT_LEN]
        body = rest[_SEQ_LEN + _CERT_LEN:]
        return cls(
            version=version,
            source=source.decode(errors="replace"),
            destination=destination.decode(errors="replace"),
            seq=seq,
            cert=cert,
            body=body,
        )


def is_stream(command: bytes) -> bool:
    """True when ``command`` claims to be stream wire bytes (tag check only)."""
    return command.startswith(_STREAM_TAG)


def strip_stream_envelope(command: bytes) -> bytes:
    """Return the application body of stream wire bytes (state machines
    want the bare command; certification was checked at ingress and at
    block admission)."""
    return StreamMessage.from_wire(command).body


class StreamCertifier:
    """Certifies stream messages against a shared topology secret.

    On the real Internet Computer the source subnet threshold-signs its
    outbound stream state and the destination verifies that certificate.
    Here — consistent with this repo's ``fast`` crypto idiom — the
    certificate is a keyed hash over ``(source, destination, seq, body)``;
    anyone without the topology secret cannot forge it, which is exactly
    the property the rejection tests pin.
    """

    def __init__(self, secret: bytes) -> None:
        self.secret = secret

    def certify(self, source: str, destination: str, seq: int, body: bytes) -> bytes:
        return tagged_hash(
            "ICC/xnet/stream-cert",
            self.secret,
            source.encode(),
            destination.encode(),
            seq.to_bytes(_SEQ_LEN, "big"),
            body,
        )

    def verify(self, message: StreamMessage) -> bool:
        expected = self.certify(
            message.source, message.destination, message.seq, message.body
        )
        return message.cert == expected


# ------------------------------------------------------------------- topology


@dataclass
class Subnet:
    """One registered subnet: its cluster plus an ingress surface.

    Ingress is either a :class:`~repro.smr.client.ClientFrontend` (stream
    wire goes into the mempool as an ordinary command, re-certified at
    block admission) or a ``submit`` callback receiving the validated
    :class:`StreamMessage` (the sharded gateway path).  ``in_seq`` tracks
    the next expected sequence number per source stream.
    """

    name: str
    cluster: Cluster
    client: ClientFrontend | None = None
    submit: Callable[[StreamMessage], None] | None = None
    received: list[tuple[str, bytes]] = field(default_factory=list)
    in_seq: dict[str, int] = field(default_factory=dict)


class XNet:
    """Routes committed xnet envelopes between registered subnets as
    versioned, sequence-numbered, certified stream messages."""

    def __init__(
        self,
        sim: Simulation,
        transfer_delay: float = 0.2,
        *,
        certifier: StreamCertifier | None = None,
    ) -> None:
        self.sim = sim
        self.transfer_delay = transfer_delay
        self.certifier = certifier if certifier is not None else StreamCertifier(b"xnet-topology")
        self.subnets: dict[str, Subnet] = {}
        self.transfers = 0
        self.undeliverable = 0
        self.rejected = 0
        self._next_seq: dict[tuple[str, str], int] = {}
        self._verified_blocks: dict[bytes, bool] = {}

    def register(
        self,
        name: str,
        cluster: Cluster,
        client: ClientFrontend | None = None,
        *,
        submit: Callable[[StreamMessage], None] | None = None,
    ) -> Subnet:
        """Register a subnet and start watching its committed prefix."""
        if name in self.subnets:
            raise ValueError(f"subnet {name!r} already registered")
        if _SEP in name.encode():
            raise ValueError("subnet name may not contain the separator byte")
        if cluster.sim is not self.sim:
            raise ValueError("all coupled subnets must share one simulation")
        if client is None and submit is None:
            raise ValueError("register() needs a client frontend or a submit hook")
        subnet = Subnet(name=name, cluster=cluster, client=client, submit=submit)
        self.subnets[name] = subnet
        observer = cluster.honest_parties[0]

        def on_commit(block: Block, source=name) -> None:
            from .client import strip_client_envelope

            for command in block.payload.commands:
                stripped = strip_client_envelope(command)
                if not is_envelope(stripped):
                    continue
                try:
                    destination, body = parse_envelope(stripped)
                except EnvelopeError:
                    self._reject(source, "", -1, "malformed")
                    continue
                self._transfer(source, destination, body)

        observer.commit_listeners.append(on_commit)
        # Certification at block admission, reusing the pool's
        # payload_verifier hook: honest parties refuse any proposed block
        # whose stream-carried commands fail the certificate check.
        for party in cluster.parties:
            party.pool.payload_verifier = self._compose_verifier(
                party.pool.payload_verifier
            )
        return subnet

    # -- egress: committed envelope -> certified stream message --------------

    def _transfer(self, source: str, destination: str, body: bytes) -> None:
        if destination not in self.subnets:
            self.undeliverable += 1
            return
        key = (source, destination)
        seq = self._next_seq.get(key, 0)
        self._next_seq[key] = seq + 1
        message = StreamMessage(
            version=XNET_STREAM_VERSION,
            source=source,
            destination=destination,
            seq=seq,
            cert=self.certifier.certify(source, destination, seq, body),
            body=body,
        )
        self.transfers += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=0, protocol="xnet", round=None,
                kind="shard.xnet.transfer",
                payload={"source": source, "destination": destination,
                         "seq": seq, "bytes": len(body)},
            )
        meter = self.sim.meter
        if meter.enabled:
            meter.count("shard.xnet.transfers")
        self.sim.schedule(self.transfer_delay, lambda: self.ingress(message))

    # -- ingress: certification + sequencing at the destination --------------

    def ingress(self, message: StreamMessage) -> bool:
        """Admit one stream message at its destination.

        Returns True when the message passed every check and was submitted;
        False when it was dropped (and counted/traced with a reason).
        """
        target = self.subnets.get(message.destination)
        if target is None:
            self.undeliverable += 1
            return False
        if message.version != XNET_STREAM_VERSION:
            return self._reject(message.source, message.destination,
                                message.seq, "version")
        if not self.certifier.verify(message):
            return self._reject(message.source, message.destination,
                                message.seq, "cert")
        expected = target.in_seq.get(message.source, 0)
        if message.seq != expected:
            return self._reject(message.source, message.destination,
                                message.seq, "seq")
        target.in_seq[message.source] = expected + 1
        target.received.append((message.source, message.body))
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=0, protocol="xnet", round=None,
                kind="shard.xnet.deliver",
                payload={"source": message.source,
                         "destination": message.destination,
                         "seq": message.seq, "bytes": len(message.body)},
            )
        meter = self.sim.meter
        if meter.enabled:
            meter.count("shard.xnet.delivered")
        if target.submit is not None:
            target.submit(message)
        else:
            assert target.client is not None
            target.client.submit(message.wire())
        return True

    def _reject(self, source: str, destination: str, seq: int, reason: str) -> bool:
        self.rejected += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=0, protocol="xnet", round=None,
                kind="shard.xnet.reject",
                payload={"source": source, "destination": destination,
                         "seq": seq, "reason": reason},
            )
        meter = self.sim.meter
        if meter.enabled:
            meter.count("shard.xnet.rejected")
        return False

    # -- block-admission certification (payload_verifier reuse) --------------

    def _compose_verifier(self, prev: Callable[[Block], bool] | None) -> Callable[[Block], bool]:
        def verify(block: Block) -> bool:
            if prev is not None and not prev(block):
                return False
            return self.verify_block(block)

        return verify

    def verify_block(self, block: Block) -> bool:
        """True iff every stream-carried command in ``block`` certifies.

        Blocks without stream wire pass untouched; verdicts are memoized
        per block hash (blocks are verified once per party per proposal).
        Sequence order is *not* checked here — it is stateful and belongs
        to ingress; the certificate is the forgery barrier.
        """
        cached = self._verified_blocks.get(block.hash)
        if cached is not None:
            return cached
        verdict = True
        for command in block.payload.commands:
            inner = _outer_body(command)
            if not is_stream(inner):
                continue
            try:
                message = StreamMessage.from_wire(inner)
            except EnvelopeError:
                self._reject("", "", -1, "malformed")
                verdict = False
                break
            if message.version != XNET_STREAM_VERSION or not self.certifier.verify(message):
                self._reject(message.source, message.destination,
                             message.seq, "block-cert")
                verdict = False
                break
        self._verified_blocks[block.hash] = verdict
        return verdict


def _outer_body(command: bytes) -> bytes:
    """Strip exactly one client-envelope layer (cli:/ld) so block-level
    certification can see carried stream wire; unlike
    ``strip_client_envelope`` this never unwraps the stream itself."""
    if command.startswith(b"cli:") and len(command) >= 13:
        return command[13:]
    if command.startswith(b"ld"):
        from ..workloads.batching import strip_request_envelope

        return strip_request_envelope(command)
    return command
