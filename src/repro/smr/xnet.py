"""Cross-subnet messaging: intercommunicating replicated state machines.

The paper's opening framing (Section 1): "the Internet Computer is a
dynamic collection of intercommunicating replicated state machines:
commands for atomic broadcast on one replicated state machine are either
derived from messages received [from] other replicated state machines, or
from external clients."

This module supplies that second command source.  An :class:`XNet` couples
several independently-running subnets (each its own consensus instance)
inside one simulation:

* commands committed on subnet A whose body is an *xnet envelope*
  addressed to subnet B are extracted from A's committed prefix,
* carried across with a configurable transfer delay (the IC certifies
  cross-subnet streams against the source subnet's state; here the
  committed prefix *is* the certified stream), and
* submitted into B's mempools as ordinary commands.

Per-source FIFO holds by construction: A commits in a total order and the
transfer preserves it.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..core.cluster import Cluster
from ..core.messages import Block
from .client import ClientFrontend

_ENVELOPE_TAG = b"xnet\x1f"
_SEP = b"\x1f"


def make_envelope(destination: str, body: bytes) -> bytes:
    """Wrap ``body`` as a cross-subnet message for ``destination``."""
    if _SEP in destination.encode():
        raise ValueError("destination may not contain the separator byte")
    return _ENVELOPE_TAG + destination.encode() + _SEP + body


def parse_envelope(command: bytes) -> tuple[str, bytes] | None:
    """Return (destination, body) if ``command`` is an xnet envelope."""
    if not command.startswith(_ENVELOPE_TAG):
        return None
    rest = command[len(_ENVELOPE_TAG):]
    destination, sep, body = rest.partition(_SEP)
    if not sep:
        return None
    return destination.decode(errors="replace"), body


@dataclass
class Subnet:
    """One registered subnet: its cluster plus a client frontend."""

    name: str
    cluster: Cluster
    client: ClientFrontend
    received: list[tuple[str, bytes]] = field(default_factory=list)


class XNet:
    """Routes committed xnet envelopes between registered subnets."""

    def __init__(self, sim, transfer_delay: float = 0.2) -> None:
        self.sim = sim
        self.transfer_delay = transfer_delay
        self.subnets: dict[str, Subnet] = {}
        self.transfers = 0
        self.undeliverable = 0

    def register(self, name: str, cluster: Cluster, client: ClientFrontend) -> Subnet:
        """Register a subnet and start watching its committed prefix."""
        if name in self.subnets:
            raise ValueError(f"subnet {name!r} already registered")
        if cluster.sim is not self.sim:
            raise ValueError("all coupled subnets must share one simulation")
        subnet = Subnet(name=name, cluster=cluster, client=client)
        self.subnets[name] = subnet
        observer = cluster.honest_parties[0]

        def on_commit(block: Block, source=name) -> None:
            from .client import strip_client_envelope

            for command in block.payload.commands:
                envelope = parse_envelope(strip_client_envelope(command))
                if envelope is None:
                    continue
                destination, payload = envelope
                self._route(source, destination, payload)

        observer.commit_listeners.append(on_commit)
        return subnet

    def _route(self, source: str, destination: str, body: bytes) -> None:
        target = self.subnets.get(destination)
        if target is None:
            self.undeliverable += 1
            return
        self.transfers += 1

        def deliver() -> None:
            target.received.append((source, body))
            target.client.submit(body)

        self.sim.schedule(self.transfer_delay, deliver)
