"""State machine replication on top of atomic broadcast (Section 1)."""

from .client import ClientFrontend, CommandHandle, strip_client_envelope
from .machine import (
    CommandError,
    CounterStateMachine,
    KVStateMachine,
    TokenLedgerMachine,
)
from .replica import Checkpoint, Replica, attach_replicas, check_replica_agreement
from .xnet import Subnet, XNet, make_envelope, parse_envelope

__all__ = [
    "ClientFrontend",
    "CommandHandle",
    "strip_client_envelope",
    "Subnet",
    "XNet",
    "make_envelope",
    "parse_envelope",
    "CommandError",
    "CounterStateMachine",
    "KVStateMachine",
    "TokenLedgerMachine",
    "Checkpoint",
    "Replica",
    "attach_replicas",
    "check_replica_agreement",
]
