"""State machine replication on top of atomic broadcast (Section 1)."""

from .client import ClientFrontend, CommandHandle, strip_client_envelope
from .machine import (
    CommandError,
    CounterStateMachine,
    KVStateMachine,
    TokenLedgerMachine,
)
from .replica import Checkpoint, Replica, attach_replicas, check_replica_agreement
from .sharding import ShardResult, ShardSpec, ShardedDeployment
from .xnet import (
    XNET_STREAM_VERSION,
    EnvelopeError,
    StreamCertifier,
    StreamMessage,
    Subnet,
    XNet,
    is_envelope,
    is_stream,
    make_envelope,
    parse_envelope,
    strip_stream_envelope,
)

__all__ = [
    "ClientFrontend",
    "CommandHandle",
    "strip_client_envelope",
    "EnvelopeError",
    "ShardResult",
    "ShardSpec",
    "ShardedDeployment",
    "StreamCertifier",
    "StreamMessage",
    "Subnet",
    "XNET_STREAM_VERSION",
    "XNet",
    "is_envelope",
    "is_stream",
    "make_envelope",
    "parse_envelope",
    "strip_stream_envelope",
    "CommandError",
    "CounterStateMachine",
    "KVStateMachine",
    "TokenLedgerMachine",
    "Checkpoint",
    "Replica",
    "attach_replicas",
    "check_replica_agreement",
]
