"""Replica and checkpointing: glue between consensus and a state machine.

A :class:`Replica` subscribes to a party's commit stream and applies every
committed command to its state machine, taking a checkpoint digest every
``checkpoint_interval`` commands (the paper notes real deployments add
"some kind of checkpointing and garbage collection mechanism, similar to
that in PBFT"; the digests here are what such a mechanism would exchange).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.icc0 import ICC0Party
from ..core.messages import Block
from .machine import KVStateMachine


@dataclass(frozen=True)
class Checkpoint:
    """State digest after a known number of applied commands."""

    command_count: int
    round: int
    digest: bytes


class Replica:
    """Applies a party's committed commands to a deterministic machine."""

    def __init__(
        self,
        party: ICC0Party,
        machine=None,
        checkpoint_interval: int = 100,
    ) -> None:
        self.party = party
        self.machine = machine if machine is not None else KVStateMachine()
        self.checkpoint_interval = checkpoint_interval
        self.checkpoints: list[Checkpoint] = []
        self._commands_seen = 0
        party.commit_listeners.append(self._on_commit)

    def _on_commit(self, block: Block) -> None:
        from .client import strip_client_envelope

        for command in block.payload.commands:
            self.machine.apply(strip_client_envelope(command))
            self._commands_seen += 1
            if self._commands_seen % self.checkpoint_interval == 0:
                self.checkpoints.append(
                    Checkpoint(
                        command_count=self._commands_seen,
                        round=block.round,
                        digest=self.machine.digest(),
                    )
                )

    @property
    def commands_applied(self) -> int:
        return self._commands_seen

    def digest(self) -> bytes:
        return self.machine.digest()


def attach_replicas(cluster, machine_factory=KVStateMachine, **kwargs) -> list[Replica]:
    """One replica per party; returns them in party-index order."""
    return [
        Replica(party, machine=machine_factory(), **kwargs)
        for party in cluster.parties
    ]


def check_replica_agreement(replicas: list[Replica]) -> None:
    """Assert all replicas agree on every common checkpoint prefix.

    This is the end-to-end statement of safety: identical command
    sequences drive identical state evolution.
    """
    by_count: dict[int, set[bytes]] = {}
    for replica in replicas:
        for checkpoint in replica.checkpoints:
            by_count.setdefault(checkpoint.command_count, set()).add(checkpoint.digest)
    for count, digests in sorted(by_count.items()):
        if len(digests) != 1:
            raise AssertionError(
                f"replicas diverged at checkpoint {count}: {len(digests)} distinct states"
            )
