"""Deterministic state machines driven by atomic broadcast.

State machine replication (the paper's motivating application, Section 1):
every replica applies the same committed command sequence to a
deterministic machine and therefore reaches the same state.  We provide a
key-value machine (the classic example) plus a counter machine used in
tests; both expose a state digest for cross-replica comparison and
checkpointing.
"""

from __future__ import annotations

from ..crypto.hashing import tagged_hash


class CommandError(ValueError):
    """Raised for commands that do not parse; replicas must *agree* on
    rejection, so parsing is strict and deterministic."""


class KVStateMachine:
    """A replicated key-value store.

    Command wire format (ASCII, '\\x1f'-separated):
    ``put <key> <value>``, ``del <key>``, ``noop``.
    Unknown or malformed commands are ignored deterministically (counted),
    because a Byzantine proposer may inject garbage commands and all
    replicas must handle them identically.
    """

    SEP = b"\x1f"

    def __init__(self) -> None:
        self.state: dict[bytes, bytes] = {}
        self.applied = 0
        self.rejected = 0

    @classmethod
    def put(cls, key: bytes, value: bytes) -> bytes:
        return cls.SEP.join((b"put", key, value))

    @classmethod
    def delete(cls, key: bytes) -> bytes:
        return cls.SEP.join((b"del", key))

    @classmethod
    def noop(cls) -> bytes:
        return b"noop"

    def apply(self, command: bytes) -> None:
        parts = command.split(self.SEP)
        op = parts[0]
        if op == b"put" and len(parts) == 3:
            self.state[parts[1]] = parts[2]
            self.applied += 1
        elif op == b"del" and len(parts) == 2:
            self.state.pop(parts[1], None)
            self.applied += 1
        elif op == b"noop" and len(parts) == 1:
            self.applied += 1
        else:
            self.rejected += 1

    def get(self, key: bytes) -> bytes | None:
        return self.state.get(key)

    def digest(self) -> bytes:
        """Order-independent state digest for replica comparison."""
        items = sorted(self.state.items())
        return tagged_hash(
            "ICC/smr/kv-digest",
            self.applied.to_bytes(8, "big"),
            self.rejected.to_bytes(8, "big"),
            *(k + self.SEP + v for k, v in items),
        )


class TokenLedgerMachine:
    """A token ledger: mint and transfer with deterministic validation.

    The canonical "useful" replicated state machine: balances must never
    go negative, and *every* replica must agree not only on successful
    transfers but on which transfers were rejected — rejection is part of
    the replicated state (the ``rejected`` counter feeds the digest).

    Command format (ASCII fields, '\\x1f'-separated):
    ``mint <account> <amount>``, ``xfer <src> <dst> <amount>``.
    """

    SEP = b"\x1f"

    def __init__(self) -> None:
        self.balances: dict[bytes, int] = {}
        self.applied = 0
        self.rejected = 0
        self.total_supply = 0

    @classmethod
    def mint(cls, account: bytes, amount: int) -> bytes:
        return cls.SEP.join((b"mint", account, str(amount).encode()))

    @classmethod
    def transfer(cls, source: bytes, destination: bytes, amount: int) -> bytes:
        return cls.SEP.join((b"xfer", source, destination, str(amount).encode()))

    @staticmethod
    def _parse_amount(raw: bytes) -> int | None:
        try:
            amount = int(raw)
        except ValueError:
            return None
        return amount if amount > 0 else None

    def apply(self, command: bytes) -> None:
        parts = command.split(self.SEP)
        op = parts[0]
        if op == b"mint" and len(parts) == 3:
            amount = self._parse_amount(parts[2])
            if amount is None:
                self.rejected += 1
                return
            self.balances[parts[1]] = self.balances.get(parts[1], 0) + amount
            self.total_supply += amount
            self.applied += 1
        elif op == b"xfer" and len(parts) == 4:
            amount = self._parse_amount(parts[3])
            source, destination = parts[1], parts[2]
            if amount is None or self.balances.get(source, 0) < amount:
                self.rejected += 1
                return
            self.balances[source] -= amount
            if not self.balances[source]:
                del self.balances[source]
            self.balances[destination] = self.balances.get(destination, 0) + amount
            self.applied += 1
        else:
            self.rejected += 1

    def balance(self, account: bytes) -> int:
        return self.balances.get(account, 0)

    def digest(self) -> bytes:
        items = sorted(self.balances.items())
        return tagged_hash(
            "ICC/smr/ledger-digest",
            self.applied.to_bytes(8, "big"),
            self.rejected.to_bytes(8, "big"),
            self.total_supply.to_bytes(16, "big"),
            *(k + b"=" + str(v).encode() for k, v in items),
        )


class CounterStateMachine:
    """Minimal machine: commands are big-endian increments."""

    def __init__(self) -> None:
        self.value = 0
        self.applied = 0

    def apply(self, command: bytes) -> None:
        if command:
            self.value += int.from_bytes(command[:8], "big")
        self.applied += 1

    def digest(self) -> bytes:
        return tagged_hash(
            "ICC/smr/counter-digest",
            self.value.to_bytes(16, "big"),
            self.applied.to_bytes(8, "big"),
        )
