"""Random beacon → rank permutation (Sections 2.3 and 3.3).

Each round's beacon value R_k seeds a pseudorandom permutation π of the n
parties, assigning each a unique rank 0..n-1.  The rank-0 party is the
round's leader.  Under the threshold-signature security of S_beacon, R_k is
unpredictable until t+1 parties release shares, and the permutation is
independent across rounds and of the (statically chosen) corrupt set.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random


@dataclass(frozen=True)
class RankAssignment:
    """The permutation π for one round.

    ``by_rank[r]`` is the party index (1-based) holding rank r;
    ``rank_of[party]`` inverts it.
    """

    round: int
    by_rank: tuple[int, ...]

    @property
    def leader(self) -> int:
        """The party of rank 0."""
        return self.by_rank[0]

    def rank_of(self, party: int) -> int:
        """Rank of a party (0 = leader). O(n) but n is small; cached by callers."""
        return self.by_rank.index(party)

    def party_at(self, rank: int) -> int:
        return self.by_rank[rank]


def permutation_from_beacon(round: int, beacon_value: bytes, n: int) -> RankAssignment:
    """Derive the round's rank permutation from the beacon value.

    A ``random.Random`` seeded with the beacon output performs a
    Fisher–Yates shuffle; this stands in for the hash-expander the
    production system uses and is identically distributed (uniform over
    permutations) given a uniform beacon value.
    """
    rng = Random(int.from_bytes(beacon_value, "big") ^ round)
    order = list(range(1, n + 1))
    rng.shuffle(order)
    return RankAssignment(round=round, by_rank=tuple(order))


def leader_is_corrupt_probability(n: int, t: int) -> float:
    """P(rank-0 party is corrupt) = t/n < 1/3 — quoted throughout the paper."""
    return t / n


def trace_rank_assignment(
    tracer, *, time: float, party: int, protocol: str, assignment: RankAssignment
) -> None:
    """Emit the ``beacon.permutation`` trace event for one party's view of a
    round's proposer election (see :mod:`repro.obs`).  No-op when tracing
    is disabled."""
    if not tracer.enabled:
        return
    tracer.emit(
        time=time,
        party=party,
        protocol=protocol,
        round=assignment.round,
        kind="beacon.permutation",
        payload={"leader": assignment.leader, "rank": assignment.rank_of(party)},
    )
