"""The per-party message pool and the block predicates of Section 3.4.

"Each party has a pool which holds the set of all messages received from all
parties (including itself)" (Section 3.1).  The pool verifies each message's
cryptography (invalid messages are dropped and counted), indexes artifacts
by block and round, and incrementally maintains the paper's four block
classifications:

* **authentic** — a valid authenticator for the block is present;
* **valid**     — authentic, and the parent is present and *notarized*;
* **notarized** — valid, and a notarization is present;
* **finalized** — valid, and a finalization is present.

``root`` is always authentic/valid/notarized/finalized.  Because validity is
recursive through parents, the pool propagates state changes through a
child index rather than re-scanning (a notarization arriving for a parent
may make a whole subtree of buffered children valid).

Share verification is *lazy and batched* by default (``batch_verify``):
arriving notarization/finalization/beacon shares pass cheap structural
checks eagerly (signer-index consistency, duplicate detection against
stored ∪ pending) but their signature crypto is queued and verified in one
RLC batch (:mod:`repro.crypto.api` / :mod:`repro.crypto.fastpath`) the next
time a query needs the answer.  Every query that observes shares flushes
what it observes first, so observable pool state is identical to the
eager path.  The only divergences are forgery-only (and simulated
adversaries never forge — see :mod:`repro.crypto.keyring`): ``add`` returns
True for a queued share that a later flush drops, and re-adding a forged
share before its flush counts as a duplicate rather than a second invalid.
Set ``batch_verify=False`` (or ``ClusterConfig.crypto_batch=False``) to
verify eagerly per message; experiment outputs are bit-identical either
way.  Each flush emits a ``crypto.batch_verify`` trace event.

**Cross-height flushing** (``flush_across_heights``, default on): queries
flush only the pending shares they actually observe — per block hash for
notarization/finalization shares, per round for beacon shares — so
stragglers for *other* heights keep accumulating and are verified later in
one larger RLC combination instead of many tiny ones.  This is what lets
batches fill across heights at low traffic, where a height rarely has more
than a handful of unverified shares at any query point.  Two safety valves
bound the accumulation, both ``ClusterConfig``-tunable: ``flush_min_batch``
(flush a share kind once that many shares are pending, 0 = off) and
``flush_deadline`` (flush once the oldest pending share of a kind is older
than this many simulated seconds, None = off).  Both triggers fire inside
``add`` — never from a timer — so the event schedule, and therefore the
whole run, stays deterministic.  Query results are bit-identical with the
feature on or off: RLC verification accepts exactly the per-item oracle's
set regardless of how shares are grouped into batches.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from ..crypto.keyring import Keyring
from ..obs import NULL_METER, NULL_TRACER
from . import messages as msg
from .messages import (
    Authenticator,
    BeaconShare,
    Block,
    Finalization,
    FinalizationShare,
    GENESIS_BEACON,
    Notarization,
    NotarizationShare,
    ROOT_BLOCK,
    ROOT_HASH,
)


@dataclass
class PoolStats:
    """Counters for dropped / duplicate messages (robustness diagnostics)."""

    invalid_dropped: int = 0
    duplicates: int = 0
    buffered_beacon_shares: int = 0


class MessagePool:
    """Verified message store for one party."""

    def __init__(self, keyring: Keyring, batch_verify: bool = True) -> None:
        self._keys = keyring
        self.n = keyring.n
        self.t = keyring.t
        self.batch_verify = batch_verify
        #: Optional payload batch-admission hook: ``verifier(block) -> bool``.
        #: Called once per *new* block; a False verdict drops the block as
        #: invalid.  The load pipeline installs
        #: :meth:`repro.workloads.batching.RequestBatcher.verify_block` here
        #: to batch-authenticate client requests (memoized per block hash),
        #: so a Byzantine proposer cannot smuggle forged requests into a
        #: notarized block.  See ``ClusterConfig.payload_verifier``.
        self.payload_verifier = None
        self.stats = PoolStats()

        #: Cross-height flushing knobs (see the module docstring).  Wired
        #: from ``ClusterConfig.crypto_flush_*`` by ``build_cluster``.
        self.flush_across_heights = True
        self.flush_min_batch = 0
        self.flush_deadline: float | None = None

        # Shares whose structural checks passed but whose signature crypto
        # is deferred to the next flush (batch_verify mode only).  The
        # ``_pending_*_count`` mirrors track total pending shares per kind
        # (size trigger); ``_pending_*_since`` is the queue-time of the
        # oldest pending share (deadline trigger), None when empty.
        self._pending_notar: dict[bytes, dict[int, NotarizationShare]] = defaultdict(dict)
        self._pending_final: dict[bytes, dict[int, FinalizationShare]] = defaultdict(dict)
        self._pending_beacon: dict[int, dict[int, BeaconShare]] = defaultdict(dict)
        self._pending_notar_count = 0
        self._pending_final_count = 0
        self._pending_beacon_count = 0
        self._pending_notar_since: float | None = None
        self._pending_final_since: float | None = None
        self._pending_beacon_since: float | None = None

        # Trace wiring (see repro.obs): the owning party binds its tracer
        # so verification drops and GC sweeps are attributable to a party.
        self._tracer = NULL_TRACER
        self._meter = NULL_METER
        self._trace_sim = None
        self._trace_party = 0
        self._trace_protocol = "pool"

        self.blocks: dict[bytes, Block] = {ROOT_HASH: ROOT_BLOCK}
        self._children: dict[bytes, set[bytes]] = defaultdict(set)
        self._blocks_by_round: dict[int, set[bytes]] = defaultdict(set)

        self._authentic: set[bytes] = {ROOT_HASH}
        self._authenticators: dict[bytes, Authenticator] = {}
        self._valid: set[bytes] = {ROOT_HASH}
        self._notarized: set[bytes] = {ROOT_HASH}
        self._finalized: set[bytes] = {ROOT_HASH}

        self._notarizations: dict[bytes, Notarization] = {}
        self._finalizations: dict[bytes, Finalization] = {}
        self._notar_shares: dict[bytes, dict[int, NotarizationShare]] = defaultdict(dict)
        self._final_shares: dict[bytes, dict[int, FinalizationShare]] = defaultdict(dict)

        # Random-beacon state.  beacon value of round 0 is the genesis value.
        self.beacon_values: dict[int, bytes] = {0: GENESIS_BEACON}
        self._beacon_shares: dict[int, dict[int, BeaconShare]] = defaultdict(dict)
        self._pending_beacon_shares: dict[int, list[BeaconShare]] = defaultdict(list)

    # -- ingestion ---------------------------------------------------------

    def bind_tracing(self, tracer, sim, party: int, protocol: str) -> None:
        """Attach a trace sink (called by the owning party at construction)."""
        self._tracer = tracer
        self._meter = sim.meter if sim is not None else NULL_METER
        self._trace_sim = sim
        self._trace_party = party
        self._trace_protocol = protocol

    def add(self, message: object) -> bool:
        """Verify and store a message; returns True if it changed the pool."""
        if not (self._tracer.enabled or self._meter.enabled):
            return self._add(message)
        before = self.stats.invalid_dropped
        changed = self._add(message)
        if self.stats.invalid_dropped > before:
            if self._meter.enabled:
                self._meter.count(
                    "pool.invalid", self.stats.invalid_dropped - before
                )
            if self._tracer.enabled:
                self._emit_rejected(message)
        return changed

    def _emit_rejected(self, message: object) -> None:
        self._tracer.emit(
            time=self._trace_sim.now if self._trace_sim is not None else 0.0,
            party=self._trace_party,
            protocol=self._trace_protocol,
            round=getattr(message, "round", None),
            kind="pool.invalid",
            payload={"artifact": type(message).__name__},
        )

    def _add(self, message: object) -> bool:
        if isinstance(message, Block):
            return self._add_block(message)
        if isinstance(message, Authenticator):
            return self._add_authenticator(message)
        if isinstance(message, NotarizationShare):
            return self._add_notar_share(message)
        if isinstance(message, Notarization):
            return self._add_notarization(message)
        if isinstance(message, FinalizationShare):
            return self._add_final_share(message)
        if isinstance(message, Finalization):
            return self._add_finalization(message)
        if isinstance(message, BeaconShare):
            return self._add_beacon_share(message)
        raise TypeError(f"pool cannot hold {type(message).__name__}")

    def _add_block(self, block: Block) -> bool:
        if block.round < 1 or not 1 <= block.proposer <= self.n:
            self.stats.invalid_dropped += 1
            return False
        h = block.hash
        if h in self.blocks:
            self.stats.duplicates += 1
            return False
        if self.payload_verifier is not None and not self.payload_verifier(block):
            self.stats.invalid_dropped += 1
            return False
        self.blocks[h] = block
        self._blocks_by_round[block.round].add(h)
        self._children[block.parent_hash].add(h)
        self._try_validate(h)
        return True

    def _add_authenticator(self, auth: Authenticator) -> bool:
        if auth.block_hash in self._authentic:
            self.stats.duplicates += 1
            return False
        signed = msg.authenticator_message(auth.round, auth.proposer, auth.block_hash)
        if not self._keys.verify_auth(auth.proposer, signed, auth.signature):
            self.stats.invalid_dropped += 1
            return False
        self._authentic.add(auth.block_hash)
        self._authenticators[auth.block_hash] = auth
        self._try_validate(auth.block_hash)
        return True

    def _add_notar_share(self, share: NotarizationShare) -> bool:
        h = share.block_hash
        if share.signer in self._notar_shares[h] or share.signer in self._pending_notar.get(h, ()):
            self.stats.duplicates += 1
            return False
        if self._keys.share_index(share.share) != share.signer:
            self.stats.invalid_dropped += 1
            return False
        if self.batch_verify:
            self._pending_notar[h][share.signer] = share
            self._pending_notar_count += 1
            if self._pending_notar_since is None:
                self._pending_notar_since = self._now()
            if self._flush_due(self._pending_notar_count, self._pending_notar_since):
                self._flush_notar()
            return True
        signed = msg.notarization_message(share.round, share.proposer, share.block_hash)
        if not self._keys.verify_notary_share(signed, share.share):
            self.stats.invalid_dropped += 1
            return False
        self._notar_shares[h][share.signer] = share
        return True

    def _add_notarization(self, notarization: Notarization) -> bool:
        if notarization.block_hash in self._notarizations:
            self.stats.duplicates += 1
            return False
        signed = msg.notarization_message(
            notarization.round, notarization.proposer, notarization.block_hash
        )
        if not self._keys.verify_notary(signed, notarization.aggregate):
            self.stats.invalid_dropped += 1
            return False
        self._notarizations[notarization.block_hash] = notarization
        self._try_notarize(notarization.block_hash)
        return True

    def _add_final_share(self, share: FinalizationShare) -> bool:
        h = share.block_hash
        if share.signer in self._final_shares[h] or share.signer in self._pending_final.get(h, ()):
            self.stats.duplicates += 1
            return False
        if self._keys.share_index(share.share) != share.signer:
            self.stats.invalid_dropped += 1
            return False
        if self.batch_verify:
            self._pending_final[h][share.signer] = share
            self._pending_final_count += 1
            if self._pending_final_since is None:
                self._pending_final_since = self._now()
            if self._flush_due(self._pending_final_count, self._pending_final_since):
                self._flush_final()
            return True
        signed = msg.finalization_message(share.round, share.proposer, share.block_hash)
        if not self._keys.verify_final_share(signed, share.share):
            self.stats.invalid_dropped += 1
            return False
        self._final_shares[h][share.signer] = share
        return True

    def _add_finalization(self, finalization: Finalization) -> bool:
        if finalization.block_hash in self._finalizations:
            self.stats.duplicates += 1
            return False
        signed = msg.finalization_message(
            finalization.round, finalization.proposer, finalization.block_hash
        )
        if not self._keys.verify_final(signed, finalization.aggregate):
            self.stats.invalid_dropped += 1
            return False
        self._finalizations[finalization.block_hash] = finalization
        self._try_finalize(finalization.block_hash)
        return True

    def _add_beacon_share(self, share: BeaconShare) -> bool:
        if share.round < 1:
            self.stats.invalid_dropped += 1
            return False
        if (
            share.signer in self._beacon_shares[share.round]
            or share.signer in self._pending_beacon.get(share.round, ())
        ):
            self.stats.duplicates += 1
            return False
        previous = self.beacon_values.get(share.round - 1)
        if previous is None:
            # Cannot verify until R_{k-1} is known; buffer for later.
            self._pending_beacon_shares[share.round].append(share)
            self.stats.buffered_beacon_shares += 1
            return True
        return self._verify_and_store_beacon_share(share, previous)

    def _verify_and_store_beacon_share(self, share: BeaconShare, previous: bytes) -> bool:
        if self._keys.share_index(share.share) != share.signer:
            self.stats.invalid_dropped += 1
            return False
        if self.batch_verify:
            self._pending_beacon[share.round][share.signer] = share
            self._pending_beacon_count += 1
            if self._pending_beacon_since is None:
                self._pending_beacon_since = self._now()
            if self._flush_due(self._pending_beacon_count, self._pending_beacon_since):
                self._flush_beacon()
            return True
        signed = msg.beacon_message(share.round, previous)
        if not self._keys.verify_beacon_share(signed, share.share):
            self.stats.invalid_dropped += 1
            return False
        self._beacon_shares[share.round][share.signer] = share
        return True


    # -- deferred batch verification ---------------------------------------

    def _now(self) -> float:
        return self._trace_sim.now if self._trace_sim is not None else 0.0

    def _flush_due(self, count: int, since: float) -> bool:
        """Size / deadline safety valves for cross-height accumulation."""
        if self.flush_min_batch and count >= self.flush_min_batch:
            return True
        return (
            self.flush_deadline is not None
            and self._now() - since >= self.flush_deadline
        )

    @staticmethod
    def _take_pending(pending: dict, keys, across: bool) -> list:
        """Remove and return the pending shares a query is about to observe.

        ``keys=None`` (or cross-height flushing disabled) drains the whole
        dict; otherwise only the given keys are drained and shares for
        other heights/rounds keep accumulating.  The caller passes keys in
        a deterministic order — batch transcripts must not depend on set
        iteration order.
        """
        if keys is None or not across:
            buckets = list(pending.values())
            pending.clear()
        else:
            buckets = [pending.pop(k) for k in keys if k in pending]
        return [s for bucket in buckets for s in bucket.values()]

    def _emit_invalid(self, artifact: object, round: int | None) -> None:
        if self._meter.enabled:
            self._meter.count("pool.invalid")
        if self._tracer.enabled:
            self._tracer.emit(
                time=self._trace_sim.now if self._trace_sim is not None else 0.0,
                party=self._trace_party,
                protocol=self._trace_protocol,
                round=round,
                kind="pool.invalid",
                payload={"artifact": type(artifact).__name__},
            )

    def _emit_batch(self, scheme: str, stats) -> None:
        if self._meter.enabled and stats.count:
            self._meter.observe("crypto.batch.size", stats.count)
        if self._tracer.enabled:
            self._tracer.emit(
                time=self._trace_sim.now if self._trace_sim is not None else 0.0,
                party=self._trace_party,
                protocol=self._trace_protocol,
                round=None,
                kind="crypto.batch_verify",
                payload={
                    "scheme": scheme,
                    "count": stats.count,
                    "invalid": stats.invalid,
                    "cache_hits": stats.cache_hits,
                    "cache_misses": stats.cache_misses,
                    "bisections": stats.bisections,
                },
            )

    def _flush_notar(self, keys=None) -> None:
        if not self._pending_notar:
            return
        shares = self._take_pending(self._pending_notar, keys, self.flush_across_heights)
        if self._pending_notar:
            self._pending_notar_count -= len(shares)
        else:
            self._pending_notar_count = 0
            self._pending_notar_since = None
        if not shares:
            return
        items = [
            (msg.notarization_message(s.round, s.proposer, s.block_hash), s.share)
            for s in shares
        ]
        report = self._keys.verify_notary_share_batch(items)
        for share, ok in zip(shares, report.results):
            if ok:
                self._notar_shares[share.block_hash][share.signer] = share
            else:
                self.stats.invalid_dropped += 1
                self._emit_invalid(share, share.round)
        self._emit_batch("notary", report.stats)

    def _flush_final(self, keys=None) -> None:
        if not self._pending_final:
            return
        shares = self._take_pending(self._pending_final, keys, self.flush_across_heights)
        if self._pending_final:
            self._pending_final_count -= len(shares)
        else:
            self._pending_final_count = 0
            self._pending_final_since = None
        if not shares:
            return
        items = [
            (msg.finalization_message(s.round, s.proposer, s.block_hash), s.share)
            for s in shares
        ]
        report = self._keys.verify_final_share_batch(items)
        for share, ok in zip(shares, report.results):
            if ok:
                self._final_shares[share.block_hash][share.signer] = share
            else:
                self.stats.invalid_dropped += 1
                self._emit_invalid(share, share.round)
        self._emit_batch("final", report.stats)

    def _flush_beacon(self, rounds=None) -> None:
        if not self._pending_beacon:
            return
        shares = self._take_pending(self._pending_beacon, rounds, self.flush_across_heights)
        if self._pending_beacon:
            self._pending_beacon_count -= len(shares)
        else:
            self._pending_beacon_count = 0
            self._pending_beacon_since = None
        if not shares:
            return
        # Only shares whose previous beacon value was known are ever queued,
        # so the message reconstruction below cannot miss.
        items = [
            (msg.beacon_message(s.round, self.beacon_values[s.round - 1]), s.share)
            for s in shares
        ]
        report = self._keys.verify_beacon_share_batch(items)
        for share, ok in zip(shares, report.results):
            if ok:
                self._beacon_shares[share.round][share.signer] = share
            else:
                self.stats.invalid_dropped += 1
                self._emit_invalid(share, share.round)
        self._emit_batch("beacon", report.stats)

    def flush_pending(self) -> None:
        """Run all deferred share verification now (a no-op when empty)."""
        self._flush_notar()
        self._flush_final()
        self._flush_beacon()

    # -- state propagation ----------------------------------------------------

    def _try_validate(self, h: bytes) -> None:
        if h in self._valid or h not in self._authentic:
            return
        block = self.blocks.get(h)
        if block is None:
            return
        if block.parent_hash not in self._notarized:
            return
        self._valid.add(h)
        self._try_notarize(h)
        self._try_finalize(h)

    def _try_notarize(self, h: bytes) -> None:
        if h in self._notarized or h not in self._valid or h not in self._notarizations:
            return
        self._notarized.add(h)
        for child in self._children.get(h, ()):
            self._try_validate(child)

    def _try_finalize(self, h: bytes) -> None:
        if h in self._finalized or h not in self._valid or h not in self._finalizations:
            return
        self._finalized.add(h)

    # -- predicates (Section 3.4) ------------------------------------------------

    def is_authentic(self, h: bytes) -> bool:
        return h in self._authentic

    def is_valid(self, h: bytes) -> bool:
        return h in self._valid

    def is_notarized(self, h: bytes) -> bool:
        return h in self._notarized

    def is_finalized(self, h: bytes) -> bool:
        return h in self._finalized

    # -- queries used by the protocol loops ----------------------------------------

    def valid_blocks(self, round: int) -> list[Block]:
        return [
            self.blocks[h]
            for h in self._blocks_by_round.get(round, ())
            if h in self._valid
        ]

    def notarized_blocks(self, round: int) -> list[Block]:
        if round == 0:
            return [ROOT_BLOCK]
        return [
            self.blocks[h]
            for h in self._blocks_by_round.get(round, ())
            if h in self._notarized
        ]

    def finalized_blocks(self, round: int) -> list[Block]:
        return [
            self.blocks[h]
            for h in self._blocks_by_round.get(round, ())
            if h in self._finalized
        ]

    def authenticator_of(self, h: bytes) -> Authenticator | None:
        return self._authenticators.get(h)

    def notarization_of(self, h: bytes) -> Notarization | None:
        return self._notarizations.get(h)

    def finalization_of(self, h: bytes) -> Finalization | None:
        return self._finalizations.get(h)

    def notar_share_count(self, h: bytes) -> int:
        self._flush_notar((h,))
        return len(self._notar_shares.get(h, ()))

    def notar_shares(self, h: bytes) -> list[NotarizationShare]:
        self._flush_notar((h,))
        return list(self._notar_shares.get(h, {}).values())

    def final_share_count(self, h: bytes) -> int:
        self._flush_final((h,))
        return len(self._final_shares.get(h, ()))

    def final_shares(self, h: bytes) -> list[FinalizationShare]:
        self._flush_final((h,))
        return list(self._final_shares.get(h, {}).values())

    def combinable_notarization(self, round: int, quorum: int) -> Block | None:
        """A valid, non-notarized round-k block with >= quorum notar shares."""
        self._flush_notar(sorted(self._blocks_by_round.get(round, ())))
        for h in self._blocks_by_round.get(round, ()):
            if h in self._valid and h not in self._notarized:
                if len(self._notar_shares.get(h, ())) >= quorum:
                    return self.blocks[h]
        return None

    def combinable_finalization(self, round: int, quorum: int) -> Block | None:
        """A valid, non-finalized round-k block with >= quorum final shares."""
        self._flush_final(sorted(self._blocks_by_round.get(round, ())))
        for h in self._blocks_by_round.get(round, ()):
            if h in self._valid and h not in self._finalized:
                if len(self._final_shares.get(h, ())) >= quorum:
                    return self.blocks[h]
        return None

    def rounds_with_final_activity(self) -> list[int]:
        """Rounds that have any finalization or finalization share."""
        self._flush_final()
        rounds = {
            self.blocks[h].round
            for h in self._finalized
            if h != ROOT_HASH
        }
        rounds.update(s.round for shares in self._final_shares.values() for s in shares.values())
        return sorted(rounds)

    def chain(self, h: bytes) -> list[Block]:
        """Blocks from root (exclusive) to the block with hash ``h``."""
        out: list[Block] = []
        cursor = h
        while cursor != ROOT_HASH:
            block = self.blocks.get(cursor)
            if block is None:
                raise KeyError("chain broken: missing ancestor block")
            out.append(block)
            cursor = block.parent_hash
        out.reverse()
        return out

    def chain_suffix(self, h: bytes) -> list[Block]:
        """Like :meth:`chain`, but tolerates garbage-collected ancestry:
        returns the contiguous suffix of the chain still present in the
        pool (possibly the whole chain)."""
        out: list[Block] = []
        cursor = h
        while cursor != ROOT_HASH:
            block = self.blocks.get(cursor)
            if block is None:
                break
            out.append(block)
            cursor = block.parent_hash
        out.reverse()
        return out

    # -- beacon ---------------------------------------------------------------

    def beacon_share_count(self, round: int) -> int:
        self._flush_beacon((round,))
        return len(self._beacon_shares.get(round, ()))

    def beacon_shares_for(self, round: int) -> list[BeaconShare]:
        self._flush_beacon((round,))
        return list(self._beacon_shares.get(round, {}).values())

    def set_beacon_value(self, round: int, value: bytes) -> None:
        """Record R_round and verify any buffered shares for round+1."""
        if round in self.beacon_values:
            return
        self.beacon_values[round] = value
        pending = self._pending_beacon_shares.pop(round + 1, [])
        for share in pending:
            if (
                share.signer not in self._beacon_shares[share.round]
                and share.signer not in self._pending_beacon.get(share.round, ())
            ):
                self._verify_and_store_beacon_share(share, value)
        if pending:
            # Verify the whole reveal in one batch right away so buffered
            # garbage is counted at reveal time, as on the eager path.
            self._flush_beacon((round + 1,))

    def beacon_value(self, round: int) -> bytes | None:
        return self.beacon_values.get(round)

    # -- catch-up support ---------------------------------------------------------

    def install_anchor(
        self, block: Block, auth: Authenticator, notarization: Notarization
    ) -> bool:
        """Install a block as notarized *without* requiring its ancestry.

        Used by the catch-up subprotocol when the ancestry was pruned
        network-wide: the notarization itself certifies that n-t parties
        validated the block, which is the same quorum evidence ordinary
        validation bottoms out in.  All signatures are still verified.
        Returns False (installing nothing) on any verification failure.
        """
        if block.round < 1 or not 1 <= block.proposer <= self.n:
            return False
        if auth.block_hash != block.hash or notarization.block_hash != block.hash:
            return False
        signed_auth = msg.authenticator_message(block.round, block.proposer, block.hash)
        if not self._keys.verify_auth(block.proposer, signed_auth, auth.signature):
            return False
        signed_notz = msg.notarization_message(block.round, block.proposer, block.hash)
        if not self._keys.verify_notary(signed_notz, notarization.aggregate):
            return False
        h = block.hash
        self.blocks[h] = block
        self._blocks_by_round[block.round].add(h)
        self._children[block.parent_hash].add(h)
        self._authentic.add(h)
        self._authenticators[h] = auth
        self._valid.add(h)
        self._notarizations[h] = notarization
        self._notarized.add(h)
        for child in self._children.get(h, ()):
            self._try_validate(child)
        return True

    # -- garbage collection ------------------------------------------------------

    def prune(self, before_round: int) -> int:
        """Discard all artifacts for rounds < ``before_round``.

        The paper keeps pools append-only for presentation and notes that a
        practical implementation discards messages that are no longer
        relevant (Section 3.1).  Safe once the caller has committed through
        ``before_round``: predicates for live rounds never consult pruned
        rounds (a new block's parent is at its own round - 1).  Returns the
        number of blocks removed.
        """
        self.flush_pending()
        doomed = [
            h
            for round, hashes in self._blocks_by_round.items()
            if round < before_round
            for h in hashes
        ]
        for h in doomed:
            block = self.blocks.pop(h)
            self._children.pop(h, None)
            self._children.get(block.parent_hash, set()).discard(h)
            self._authentic.discard(h)
            self._valid.discard(h)
            self._notarized.discard(h)
            self._finalized.discard(h)
            self._authenticators.pop(h, None)
            self._notarizations.pop(h, None)
            self._finalizations.pop(h, None)
            self._notar_shares.pop(h, None)
            self._final_shares.pop(h, None)
        for round in [r for r in self._blocks_by_round if r < before_round]:
            del self._blocks_by_round[round]
        for round in [r for r in self._beacon_shares if r < before_round]:
            del self._beacon_shares[round]
        for round in [r for r in self._pending_beacon_shares if r < before_round]:
            del self._pending_beacon_shares[round]
        if self._tracer.enabled and doomed:
            self._tracer.emit(
                time=self._trace_sim.now if self._trace_sim is not None else 0.0,
                party=self._trace_party,
                protocol=self._trace_protocol,
                round=None,
                kind="pool.prune",
                payload={"before_round": before_round, "removed": len(doomed)},
            )
        return len(doomed)

    def artifact_count(self) -> int:
        """Rough pool size (for memory-boundedness tests)."""
        self.flush_pending()
        return (
            len(self.blocks)
            + len(self._authenticators)
            + len(self._notarizations)
            + len(self._finalizations)
            + sum(len(v) for v in self._notar_shares.values())
            + sum(len(v) for v in self._final_shares.values())
            + sum(len(v) for v in self._beacon_shares.values())
        )
