"""Canonical byte serialization of blocks.

ICC2's reliable broadcast transports *bytes*, so blocks must round-trip
through a canonical encoding (it is also what a real deployment would put
on the wire).  ``filler_bytes`` — the benchmark stand-in for bulk payload —
is materialised as zero bytes, so erasure coding operates on the true
payload size.
"""

from __future__ import annotations

from .messages import Block, Payload

_MAGIC = b"ICB1"


class DeserializeError(ValueError):
    """Raised for malformed block encodings (e.g. from corrupt dealers)."""


def serialize_block(block: Block) -> bytes:
    """Canonical encoding: magic, header fields, commands, filler zeros."""
    parts = [
        _MAGIC,
        block.round.to_bytes(8, "big"),
        block.proposer.to_bytes(4, "big"),
        block.parent_hash,
        block.payload.filler_bytes.to_bytes(8, "big"),
        len(block.payload.commands).to_bytes(4, "big"),
    ]
    for command in block.payload.commands:
        parts.append(len(command).to_bytes(4, "big"))
        parts.append(command)
    parts.append(b"\x00" * block.payload.filler_bytes)
    return b"".join(parts)


def deserialize_block(data: bytes) -> Block:
    """Inverse of :func:`serialize_block`; raises :class:`DeserializeError`."""
    view = memoryview(data)
    try:
        if bytes(view[:4]) != _MAGIC:
            raise DeserializeError("bad magic")
        round = int.from_bytes(view[4:12], "big")
        proposer = int.from_bytes(view[12:16], "big")
        parent_hash = bytes(view[16:48])
        filler = int.from_bytes(view[48:56], "big")
        count = int.from_bytes(view[56:60], "big")
        offset = 60
        commands = []
        for _ in range(count):
            length = int.from_bytes(view[offset : offset + 4], "big")
            offset += 4
            if offset + length > len(view):
                raise DeserializeError("truncated command")
            commands.append(bytes(view[offset : offset + length]))
            offset += length
        if len(view) - offset != filler:
            raise DeserializeError("filler length mismatch")
    except (IndexError, OverflowError) as exc:
        raise DeserializeError(str(exc)) from exc
    return Block(
        round=round,
        proposer=proposer,
        parent_hash=parent_hash,
        payload=Payload(commands=tuple(commands), filler_bytes=filler),
    )
