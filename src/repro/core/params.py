"""Protocol parameters and the delay functions of Section 3.5.

The Tree-Building subprotocol is driven by two non-decreasing delay
functions over ranks r in [n]:

* ``Δprop(r)`` — how long a party of rank r waits before proposing;
* ``Δntry(r)`` — how long parties wait before notarization-sharing a block
  of rank r.

Liveness needs 2δ + Δprop(0) <= Δntry(1) whenever the network delay during
the round is bounded by δ.  The paper's recommended instantiation (eq. (2))
is Δprop(r) = 2·Δbnd·r and Δntry(r) = 2·Δbnd·r + ε, which these classes
implement; both are injectable so experiments can explore alternatives
(including the adaptive-Δbnd variant discussed in Section 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Protocol, runtime_checkable

DelayFunction = Callable[[int], float]


@runtime_checkable
class DelayPolicy(Protocol):
    """The protocol-delay interface parties consult each round: Δprop(r)
    and Δntry(r) over ranks.  :class:`StandardDelays` and
    :class:`AdaptiveDelays` both satisfy it; ``ClusterConfig.protocol_delays``
    accepts any implementation (validated in ``__post_init__``)."""

    def prop(self, rank: int) -> float: ...

    def ntry(self, rank: int) -> float: ...


@dataclass(frozen=True)
class StandardDelays:
    """The recommended delay functions from eq. (2) of the paper.

    ``epsilon`` is the "governor": it may be zero, but a non-zero value
    keeps the protocol from running "too fast" in the sense discussed in
    Section 3.5 (it also spaces out the notarization-entry times of
    candidate blocks of successive ranks).
    """

    delta_bound: float
    epsilon: float = 0.0

    def prop(self, rank: int) -> float:
        return 2.0 * self.delta_bound * rank

    def ntry(self, rank: int) -> float:
        return 2.0 * self.delta_bound * rank + self.epsilon


@dataclass
class AdaptiveDelays:
    """Delay functions that adapt to an unknown Δbnd (Section 1).

    The paper notes ICC can "adaptively adjust to an unknown
    communication-delay bound", with care.  The standard safe scheme is
    exponential back-off on the bound: if a round fails to produce a
    notarized leader block, the local estimate doubles (up to a cap), and
    it decays multiplicatively on success.  This keeps liveness: once the
    estimate exceeds the true Δbnd during a synchronous period, an
    honest-leader round finalizes.
    """

    initial_bound: float
    max_bound: float = 60.0
    growth: float = 2.0
    decay: float = 0.9
    epsilon: float = 0.0
    current_bound: float = field(init=False)

    def __post_init__(self) -> None:
        self.current_bound = self.initial_bound

    def prop(self, rank: int) -> float:
        return 2.0 * self.current_bound * rank

    def ntry(self, rank: int) -> float:
        return 2.0 * self.current_bound * rank + self.epsilon

    def on_round_result(self, leader_block_notarized: bool) -> None:
        """Feed back whether the round's rank-0 block got notarized."""
        if leader_block_notarized:
            self.current_bound = max(
                self.initial_bound, self.current_bound * self.decay
            )
        else:
            self.current_bound = min(self.max_bound, self.current_bound * self.growth)


@dataclass
class ProtocolParams:
    """Everything an ICC party needs to know besides its keys.

    ``n`` parties, at most ``t`` corrupt (t < n/3); quorum ``n - t`` for
    notarization/finalization and ``t + 1`` for the beacon, per Section 3.2.
    """

    n: int
    t: int
    delays: StandardDelays | AdaptiveDelays
    max_rounds: int | None = None  # stop participating after this round
    #: When set, parties prune pool artifacts older than k_max - gc_depth
    #: after each commit (the checkpointing/garbage-collection optimization
    #: the paper defers to implementations).  None = keep everything.
    gc_depth: int | None = None

    def __post_init__(self) -> None:
        if self.n < 1:
            raise ValueError("need at least one party")
        if self.t < 0 or (self.t > 0 and 3 * self.t >= self.n):
            raise ValueError(f"require t < n/3 (n={self.n}, t={self.t})")

    @property
    def notarization_quorum(self) -> int:
        return self.n - self.t

    @property
    def finalization_quorum(self) -> int:
        return self.n - self.t

    @property
    def beacon_quorum(self) -> int:
        return self.t + 1


def max_faults(n: int) -> int:
    """Largest t with 3t < n — the optimal resilience bound [4]."""
    return (n - 1) // 3
