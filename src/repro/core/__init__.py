"""The paper's primary contribution: the ICC protocol family.

* :mod:`repro.core.icc0` — Protocol ICC0 (Figures 1–2), the reference.
* :mod:`repro.core.icc1` — ICC0 integrated with the gossip sub-layer.
* :mod:`repro.core.icc2` — block dissemination via erasure-coded reliable
  broadcast.
"""

from .beacon import RankAssignment, permutation_from_beacon
from .cluster import (
    Cluster,
    ClusterConfig,
    ClusterHandle,
    build_cluster,
    embed_cluster,
    run_happy_path,
)
from .icc0 import ICC0Party, SafetyViolation, empty_payload_source
from .messages import (
    Authenticator,
    BeaconShare,
    Block,
    EMPTY_PAYLOAD,
    Finalization,
    FinalizationShare,
    GENESIS_BEACON,
    Notarization,
    NotarizationShare,
    Payload,
    ROOT_BLOCK,
    ROOT_HASH,
)
from .params import AdaptiveDelays, DelayPolicy, ProtocolParams, StandardDelays, max_faults
from .pool import MessagePool

__all__ = [
    "RankAssignment",
    "permutation_from_beacon",
    "Cluster",
    "ClusterConfig",
    "ClusterHandle",
    "build_cluster",
    "embed_cluster",
    "run_happy_path",
    "ICC0Party",
    "SafetyViolation",
    "empty_payload_source",
    "Authenticator",
    "BeaconShare",
    "Block",
    "EMPTY_PAYLOAD",
    "Finalization",
    "FinalizationShare",
    "GENESIS_BEACON",
    "Notarization",
    "NotarizationShare",
    "Payload",
    "ROOT_BLOCK",
    "ROOT_HASH",
    "AdaptiveDelays",
    "DelayPolicy",
    "ProtocolParams",
    "StandardDelays",
    "max_faults",
    "MessagePool",
]
