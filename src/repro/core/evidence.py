"""Accountability: transferable evidence of proposer equivocation.

Section 1.1: "if a leader consistently underperforms ..., the Internet
Computer provides mechanisms for reconfiguring the set of protocol
participants ..., by which such a leader can be removed."  Removal needs
*grounds*.  For the one provably-attributable misbehaviour in ICC —
proposing two different blocks in one round (the event clause (c)
punishes with rank disqualification) — the two signed authenticators
themselves form a self-contained, transferable proof: anyone holding both
can verify the same party signed two distinct round-k blocks, without
trusting the accuser.

:class:`EquivocationMonitor` watches a party's pool for conflicting
authenticators and collects :class:`EquivocationEvidence` records; the
``verify_evidence`` function is what a governance layer (out of scope
here, as in the paper) would check before removing the culprit.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.keyring import Keyring
from . import messages as msg
from .icc0 import ICC0Party
from .messages import Authenticator


@dataclass(frozen=True)
class EquivocationEvidence:
    """Two valid authenticators by one proposer for one round.

    Self-certifying: verification needs only public keys.
    """

    round: int
    proposer: int
    first: Authenticator = field(compare=False)
    second: Authenticator = field(compare=False)

    def wire_size(self) -> int:
        return 12 + self.first.wire_size() + self.second.wire_size()


def verify_evidence(keys: Keyring, evidence: EquivocationEvidence) -> bool:
    """Check that the evidence proves equivocation by ``proposer``."""
    a, b = evidence.first, evidence.second
    if a.block_hash == b.block_hash:
        return False  # same block twice proves nothing
    for auth in (a, b):
        if auth.round != evidence.round or auth.proposer != evidence.proposer:
            return False
        signed = msg.authenticator_message(auth.round, auth.proposer, auth.block_hash)
        if not keys.verify_auth(auth.proposer, signed, auth.signature):
            return False
    return True


class EquivocationMonitor:
    """Collects equivocation evidence from a party's message stream."""

    def __init__(self, party: ICC0Party) -> None:
        self.party = party
        self.evidence: list[EquivocationEvidence] = []
        self._seen: dict[tuple[int, int], Authenticator] = {}
        self._reported: set[tuple[int, int]] = set()
        # Wrap the party's ingress so every verified authenticator passes
        # through the monitor (duck-typed interception keeps the protocol
        # classes free of accountability concerns).
        self._original_on_receive = party.on_receive
        party.on_receive = self._on_receive  # type: ignore[method-assign]

    def _on_receive(self, message: object) -> None:
        if isinstance(message, Authenticator):
            self._inspect(message)
        self._original_on_receive(message)

    def _inspect(self, auth: Authenticator) -> None:
        signed = msg.authenticator_message(auth.round, auth.proposer, auth.block_hash)
        if not self.party.keys.verify_auth(auth.proposer, signed, auth.signature):
            return  # unverifiable claims are not evidence
        key = (auth.round, auth.proposer)
        previous = self._seen.get(key)
        if previous is None:
            self._seen[key] = auth
            return
        if previous.block_hash == auth.block_hash or key in self._reported:
            return
        self._reported.add(key)
        self.evidence.append(
            EquivocationEvidence(
                round=auth.round, proposer=auth.proposer, first=previous, second=auth
            )
        )
        self.party.metrics.count("equivocation-evidence")

    def culprits(self) -> set[int]:
        """Parties with at least one verified equivocation on record."""
        return {e.proposer for e in self.evidence}


def attach_monitors(cluster) -> list[EquivocationMonitor]:
    """One monitor per honest party; returns them in party order."""
    return [EquivocationMonitor(party) for party in cluster.honest_parties]
