"""Protocol ICC1 — ICC0 integrated with the peer-to-peer gossip sub-layer.

The consensus logic is *identical* to ICC0 (the paper: ICC1 "is only
slightly more involved than ICC0", and "the logic of the protocol can be
easily understood independent of this sub-layer").  What changes is the
communication substrate:

* every "broadcast" becomes a gossip *publish* — small artifacts are pushed
  along the overlay, blocks are advertised by hash and pulled at most once
  per peer;
* block *echo* in clause (c) is cheap: a party that already holds the block
  only re-adverts it, so no duplicate block bodies cross any link — this is
  how ICC1 "coordinates well with the peer-to-peer gossip sub-layer"
  (Section 1).

The observable effect (experiment E7): the leader's per-round egress for a
block of size S drops from (n-1)·S to degree·S, removing the bottleneck
that all leader-based protocols must address.
"""

from __future__ import annotations

from ..gossip.protocol import GossipNode, GossipParams
from .icc0 import ICC0Party
from .messages import Authenticator, Block, Notarization


class ICC1Party(ICC0Party):
    """ICC0 logic over a gossip sub-layer."""

    protocol_name = "ICC1"

    def __init__(
        self,
        *,
        overlay: dict[int, list[int]],
        gossip_params: GossipParams | None = None,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        params = gossip_params if gossip_params is not None else GossipParams()
        self.gossip = GossipNode(
            index=self.index,
            network=self.network,
            neighbors=overlay[self.index],
            params=params,
            deliver=self._on_gossip_artifact,
        )

    # -- substrate overrides -------------------------------------------------

    def _broadcast(self, message: object) -> None:
        """All ICC1 communication rides the gossip sub-layer."""
        self.gossip.publish(message)

    def _disseminate_block(
        self,
        block: Block,
        auth: Authenticator | None,
        parent_notarization: Notarization | None,
    ) -> None:
        self.gossip.publish(block)
        if auth is not None:
            self.gossip.publish(auth)
        if parent_notarization is not None:
            self.gossip.publish(parent_notarization)

    def on_receive(self, message: object) -> None:
        """Network ingress: gossip wire messages go to the gossip node."""
        if self.gossip.on_network(message):
            return
        super().on_receive(message)

    def _on_gossip_artifact(self, artifact: object) -> None:
        """An artifact fully received via gossip enters the pool."""
        if self.pool.add(artifact):
            if self.tracer.enabled:
                self._trace(
                    "icc.artifact.gossip",
                    round=getattr(artifact, "round", None),
                    artifact=type(artifact).__name__,
                )
            self._progress()
