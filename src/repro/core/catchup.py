"""Catch-up (state sync) for lagging parties.

The paper's PBFT critique (Section 1.1) highlights that "the details of
how these lagging parties catch up" matter: naive catch-up lets an
attacker multiply traffic.  The Internet Computer pairs consensus with a
state-sync protocol; this module implements the consensus-side equivalent
so that garbage collection (``ProtocolParams.gc_depth``) and long
partitions compose: a re-joining party cannot re-fetch pruned artifacts
one by one, so it *jumps* to a certified recent state.

Protocol:

* a party that observes protocol messages for rounds far ahead of its own
  broadcasts a (tiny, rate-limited) :class:`SyncRequest` carrying its
  committed round — the rate limit is exactly the defence against the
  traffic-multiplication attack above: one in-flight request per target
  round, with a cooldown;
* an up-to-date peer answers point-to-point with a :class:`SyncResponse`:
  the **beacon signature chain** from the requester's round (threshold
  signatures, ~48 bytes per round — verifiable sequentially since each
  R_k is signed relative to R_{k-1}), plus **round certificates** (block,
  authenticator, notarization) for its recent unpruned window, plus the
  **finalization** of its committed tip;
* the requester verifies everything against its keys: the beacon chain
  first, then the oldest certified block is installed as a *trusted
  anchor* (its notarization proves n-t parties vouched for it; ancestry
  below it was pruned network-wide), descendants validate normally, and
  the finalization lets it commit the tip — recording an explicit
  ``state_transfer_gaps`` entry for the rounds whose payloads it skipped
  (an SMR layer fetches the corresponding state snapshot; that transfer
  is application data, not consensus).

After the jump the party re-enters the ordinary protocol at the tip's
round and participates normally.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..crypto.hashing import DIGEST_SIZE
from . import messages as msg
from .icc0 import ICC0Party
from .messages import (
    Authenticator,
    Block,
    Finalization,
    Notarization,
    SIG_SIZE,
)


@dataclass(frozen=True)
class SyncRequest:
    """'I am at committed round ``committed_round``; help me catch up.'"""

    requester: int
    committed_round: int

    kind = "sync-request"

    def wire_size(self) -> int:
        return 4 + 8


@dataclass(frozen=True)
class BeaconLink:
    """One link of the beacon chain: the combined signature for a round."""

    round: int
    signature: object = field(compare=False)

    def wire_size(self) -> int:
        return 8 + SIG_SIZE


@dataclass(frozen=True)
class RoundCertificate:
    """A notarized block with its supporting artifacts."""

    block: Block
    authenticator: Authenticator = field(compare=False)
    notarization: Notarization = field(compare=False)

    def wire_size(self) -> int:
        return (
            self.block.wire_size()
            + self.authenticator.wire_size()
            + self.notarization.wire_size()
        )


@dataclass(frozen=True)
class SyncResponse:
    """Everything a laggard needs to jump to the responder's tip."""

    responder: int
    from_round: int  # the requester's committed round this extends
    beacon_chain: tuple[BeaconLink, ...]
    certificates: tuple[RoundCertificate, ...]  # ascending rounds
    finalization: Finalization = field(compare=False)

    kind = "sync-response"

    def wire_size(self) -> int:
        return (
            4
            + 8
            + sum(l.wire_size() for l in self.beacon_chain)
            + sum(c.wire_size() for c in self.certificates)
            + self.finalization.wire_size()
            + DIGEST_SIZE
        )


class CatchupMixin:
    """Catch-up behaviour, composable with any ICC party class.

    ``corrupt_class``-style composition works here too:
    ``type("X", (CatchupMixin, ICC1Party), {})`` yields a gossip party
    with state sync.  :class:`CatchupParty` is the ICC0 composition.
    """

    def __init__(
        self,
        *,
        lag_threshold: int = 5,
        request_cooldown: float = 2.0,
        **kwargs,
    ) -> None:
        super().__init__(**kwargs)
        self.lag_threshold = lag_threshold
        self.request_cooldown = request_cooldown
        self.state_transfer_gaps: list[tuple[int, int]] = []
        self._beacon_signatures: dict[int, object] = {}
        self._highest_round_seen = 0
        self._last_request_at = -1e9
        self._last_request_round = -1

    # -- retain beacon signatures so we can serve sync responses -------------

    def _advance_beacons(self) -> None:
        before = self._beacon_computed
        super()._advance_beacons()
        for k in range(before + 1, self._beacon_computed + 1):
            # Recombine is cheap relative to keeping every share; store the
            # combined signature for the sync responder role.
            previous = self.pool.beacon_value(k - 1)
            shares = [s.share for s in self.pool.beacon_shares_for(k)]
            if previous is not None and len(shares) >= self.params.beacon_quorum:
                self._beacon_signatures[k] = self.keys.combine_beacon(
                    msg.beacon_message(k, previous), shares
                )

    # -- lag detection ----------------------------------------------------------

    def on_receive(self, message: object) -> None:
        if isinstance(message, SyncRequest):
            self._serve_sync(message)
            return
        if isinstance(message, SyncResponse):
            self._apply_sync(message)
            return
        self._note_round(message)
        super().on_receive(message)

    def _on_gossip_artifact(self, artifact: object) -> None:
        """ICC1 composition: artifacts arrive unwrapped via the gossip
        layer, so lag detection hooks here as well."""
        self._note_round(artifact)
        super()._on_gossip_artifact(artifact)

    def _note_round(self, message: object) -> None:
        observed = getattr(message, "round", None)
        if isinstance(observed, int):
            self._highest_round_seen = max(self._highest_round_seen, observed)
            if observed > self.round + self.lag_threshold:
                self._maybe_request_sync()

    def _maybe_request_sync(self) -> None:
        now = self.sim.now
        if now - self._last_request_at < self.request_cooldown:
            return
        if self._highest_round_seen <= self._last_request_round:
            return
        self._last_request_at = now
        self._last_request_round = self._highest_round_seen
        self.metrics.count("sync-requests")
        # Sync messages travel outside the gossip/RBC substrate (they are
        # addressed traffic, not consensus artifacts).
        self.network.broadcast(
            self.index, SyncRequest(requester=self.index, committed_round=self.k_max)
        )

    # -- responder side -----------------------------------------------------------

    def _serve_sync(self, request: SyncRequest) -> None:
        if request.requester == self.index:
            return
        if self.k_max <= request.committed_round:
            return  # nothing to offer
        beacon_chain = []
        for k in range(request.committed_round + 1, self._beacon_computed + 1):
            signature = self._beacon_signatures.get(k)
            if signature is None:
                return  # pruned beyond our ability to prove; another peer may serve
            beacon_chain.append(BeaconLink(round=k, signature=signature))
        certificates = []
        tip: Block | None = None
        for block in self.output_log:
            if block.round <= request.committed_round:
                continue
            auth = self.pool.authenticator_of(block.hash)
            notarization = self.pool.notarization_of(block.hash)
            if auth is None or notarization is None:
                certificates = []  # pruned: restart the window later
                continue
            certificates.append(
                RoundCertificate(block=block, authenticator=auth, notarization=notarization)
            )
            tip = block
        if tip is None or not certificates:
            return
        finalization = self.pool.finalization_of(tip.hash)
        if finalization is None:
            # Serve up to our last finalization-certified block instead.
            while certificates and self.pool.finalization_of(certificates[-1].block.hash) is None:
                certificates.pop()
            if not certificates:
                return
            tip = certificates[-1].block
            finalization = self.pool.finalization_of(tip.hash)
        self.metrics.count("sync-responses")
        self.network.send(
            self.index,
            request.requester,
            SyncResponse(
                responder=self.index,
                from_round=request.committed_round,
                beacon_chain=tuple(beacon_chain),
                certificates=tuple(certificates),
                finalization=finalization,
            ),
        )

    # -- requester side -------------------------------------------------------------

    def _apply_sync(self, response: SyncResponse) -> None:
        tip = response.certificates[-1].block if response.certificates else None
        if tip is None or tip.round <= self.k_max:
            return
        # 1. Verify and adopt the beacon chain sequentially.
        for link in response.beacon_chain:
            if self.pool.beacon_value(link.round) is not None:
                continue
            previous = self.pool.beacon_value(link.round - 1)
            if previous is None:
                return  # chain does not connect to what we know; discard
            signed = msg.beacon_message(link.round, previous)
            if not self.keys.verify_beacon(signed, link.signature):
                self.metrics.count("sync-bad-beacon")
                return
            self.pool.set_beacon_value(link.round, self.keys.beacon_value(link.signature))
            self._beacon_computed = max(self._beacon_computed, link.round)
            self._beacon_signatures[link.round] = link.signature
        # 2. Install the certified segment: the oldest block anchors on its
        #    notarization alone; descendants validate normally.
        anchored = False
        for certificate in response.certificates:
            block = certificate.block
            if self.pool.is_notarized(block.hash):
                anchored = True
                continue
            if not anchored:
                if not self.pool.install_anchor(
                    block, certificate.authenticator, certificate.notarization
                ):
                    self.metrics.count("sync-bad-anchor")
                    return
                anchored = True
            else:
                self.pool.add(block)
                self.pool.add(certificate.authenticator)
                self.pool.add(certificate.notarization)
        # 3. Jump-commit the finalized tip.
        signed = msg.finalization_message(tip.round, tip.proposer, tip.hash)
        if response.finalization.block_hash != tip.hash or not self.keys.verify_final(
            signed, response.finalization.aggregate
        ):
            self.metrics.count("sync-bad-finalization")
            return
        self.pool.add(response.finalization)
        if response.certificates[0].block.round > self.k_max + 1:
            # Rounds between our tip and the anchor were pruned network-wide;
            # their payloads travel via application-level state transfer.
            self.state_transfer_gaps.append(
                (self.k_max + 1, response.certificates[0].block.round - 1)
            )
            self._jump_to(response.certificates[0].block)
        self.metrics.count("sync-applied")
        # 4. Resume the ordinary protocol at the new frontier.
        self._progress()
        if self.round <= tip.round:
            self.round = tip.round + 1
            self.waiting_beacon = True
            self._progress()

    def _jump_to(self, anchor: Block) -> None:
        """Adopt ``anchor`` as the new committed tip without its ancestry."""
        self.k_max = anchor.round - 1
        self._committed_tip = anchor.parent_hash


class CatchupParty(CatchupMixin, ICC0Party):
    """ICC0 party with the catch-up subprotocol enabled."""

    protocol_name = "ICC0+catchup"