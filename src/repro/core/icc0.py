"""Protocol ICC0 — Figures 1 and 2 of the paper, line by line.

An :class:`ICC0Party` runs two concurrent subprotocols:

* the **Tree-Building subprotocol** (Figure 1): per round, wait for the
  beacon, then repeatedly fire whichever of clauses (a)/(b)/(c) is enabled
  until the round is *done* (a notarized block for the round exists);
* the **Finalization subprotocol** (Figure 2): watch all rounds for
  finalized blocks (or combinable finalization-share sets) and commit the
  chain up to them.

The paper's blocking ``wait for`` loops are realised as an event-driven
state machine: :meth:`_progress` re-evaluates all enabled clauses whenever
(i) a message enters the pool or (ii) a scheduled timer (a Δprop/Δntry
boundary) fires.  Every clause below carries a comment naming the clause of
Figure 1 / Figure 2 it implements.

Dissemination of blocks is funnelled through ``_disseminate_block`` so that
ICC1 (gossip sub-layer) and ICC2 (erasure-coded reliable broadcast) can
override just that aspect — the consensus logic is shared.
"""

from __future__ import annotations

import copy
from typing import Callable

from ..crypto.keyring import Keyring
from ..obs import short_id
from ..sim.metrics import Metrics
from ..sim.network import Network
from ..sim.simulator import Simulation
from . import messages as msg
from .beacon import RankAssignment, permutation_from_beacon, trace_rank_assignment
from .messages import (
    Authenticator,
    BeaconShare,
    Block,
    EMPTY_PAYLOAD,
    Finalization,
    FinalizationShare,
    Notarization,
    NotarizationShare,
    Payload,
    ROOT_HASH,
)
from .params import ProtocolParams
from .pool import MessagePool

#: Builds a payload for a proposal: f(party, round, parent_chain) -> Payload.
PayloadSource = Callable[["ICC0Party", int, list[Block]], Payload]


def empty_payload_source(party: "ICC0Party", round: int, chain: list[Block]) -> Payload:
    """Default getPayload: empty blocks (the paper's 'without load' scenario)."""
    return EMPTY_PAYLOAD


class SafetyViolation(AssertionError):
    """Raised when a party observes two incompatible committed chains.

    This never fires when at most t < n/3 parties are corrupt (the paper's
    Safety lemma); tests use it to detect protocol bugs, and
    beyond-threshold experiments use it to demonstrate the bound is tight.
    """


class ICC0Party:
    """One party P_α running Protocol ICC0."""

    protocol_name = "ICC0"

    def __init__(
        self,
        index: int,
        keyring: Keyring,
        params: ProtocolParams,
        sim: Simulation,
        network: Network,
        payload_source: PayloadSource = empty_payload_source,
    ) -> None:
        self.index = index
        self.keys = keyring
        self.params = params
        # Delay functions are per-party state: the adaptive-Δbnd variant
        # maintains a *local* estimate, so each party gets its own copy.
        self.delays = copy.copy(params.delays)
        self.sim = sim
        self.network = network
        self.metrics: Metrics = network.metrics
        #: Cached trace sink — install a Tracer on the Simulation *before*
        #: constructing parties (build_cluster does; see repro.obs).
        self.tracer = sim.tracer
        #: Cached metric sink (same install-before-build rule).
        self.meter = sim.meter
        self.payload_source = payload_source
        self.pool = MessagePool(keyring)
        self.pool.bind_tracing(self.tracer, sim, index, self.protocol_name)

        # Tree-Building state (Figure 1).
        self.round = 0  # current round k; 0 = not yet started
        self.waiting_beacon = True
        self.round_start = 0.0  # t0
        self.proposed = False
        self.notar_shared: dict[bytes, int] = {}  # N: block hash -> rank
        self.disqualified: set[int] = set()  # D
        self.ranks: RankAssignment | None = None
        self.my_rank = -1
        self._echoed: set[bytes] = set()
        self._wakes_scheduled: set[float] = set()
        self._beacon_computed = 0  # highest k with known R_k
        self._beacon_shared = 0  # highest k whose share we've broadcast
        self._stopped = False

        # Finalization state (Figure 2).
        self.k_max = 0
        self.output_log: list[Block] = []  # committed blocks, in order
        self._committed_tip = ROOT_HASH
        #: Called with each newly committed block, in commit order (used by
        #: the replicated-state-machine layer and by workload dedup).
        self.commit_listeners: list[Callable[[Block], None]] = []

    # ------------------------------------------------------------------ wiring

    def start(self) -> None:
        """Initialise: broadcast a share of the round-1 random beacon."""
        self._share_beacon(1)
        self.round = 1
        self.waiting_beacon = True
        self._progress()

    def on_receive(self, message: object) -> None:
        """Network delivery: add to the pool, then re-evaluate the protocol."""
        if self.pool.add(message):
            self._progress()

    def _wake(self) -> None:
        self._progress()

    def _trace(self, kind: str, round: int | None = None, **payload) -> None:
        """Emit one trace event; callers guard with ``self.tracer.enabled``."""
        self.tracer.emit(
            time=self.sim.now,
            party=self.index,
            protocol=self.protocol_name,
            round=self.round if round is None else round,
            kind=kind,
            payload=payload,
        )

    # -------------------------------------------------------------- dissemination

    def _broadcast(self, message: object) -> None:
        self.network.broadcast(self.index, message, round=self.round)

    def _disseminate_block(
        self,
        block: Block,
        auth: Authenticator | None,
        parent_notarization: Notarization | None,
    ) -> None:
        """Send a block plus its supporting artifacts to everyone.

        ICC0 simply broadcasts all three ("broadcast B, B's authenticator,
        and the notarization for B's parent").  ICC1/ICC2 override this.
        """
        self._broadcast(block)
        if auth is not None:
            self._broadcast(auth)
        if parent_notarization is not None:
            self._broadcast(parent_notarization)

    # ------------------------------------------------------------------- beacon

    def _share_beacon(self, round: int) -> None:
        """Broadcast our threshold share of the round-``round`` beacon."""
        if self._beacon_shared >= round:
            return
        previous = self.pool.beacon_value(round - 1)
        if previous is None:  # pragma: no cover - callers guarantee this
            raise RuntimeError("cannot share a beacon without the previous value")
        share = self.keys.sign_beacon_share(msg.beacon_message(round, previous))
        self._beacon_shared = round
        beacon_share = BeaconShare(round=round, signer=self.index, share=share)
        self.pool.add(beacon_share)
        self._broadcast(beacon_share)

    def _advance_beacons(self) -> None:
        """Combine t+1 shares into R_k for every round we can (pipelined)."""
        while True:
            k = self._beacon_computed + 1
            if self.pool.beacon_share_count(k) < self.params.beacon_quorum:
                return
            previous = self.pool.beacon_value(k - 1)
            shares = [s.share for s in self.pool.beacon_shares_for(k)]
            combined = self.keys.combine_beacon(msg.beacon_message(k, previous), shares)
            value = self.keys.beacon_value(combined)
            self.pool.set_beacon_value(k, value)
            self._beacon_computed = k
            self.metrics.count("beacons-computed")
            if self.tracer.enabled:
                self._trace("icc.beacon.computed", round=k)

    # ------------------------------------------------------------ the main loop

    def _progress(self) -> None:
        """Re-evaluate every enabled clause until quiescent."""
        if self._stopped:
            self._run_finalization_watcher()
            return
        for _ in range(10_000):  # defensive bound; each iteration must make progress
            self._advance_beacons()
            if self._stopped:  # max_rounds reached while looping
                self._run_finalization_watcher()
                return
            changed = False
            if self.waiting_beacon:
                # "wait for t+1 shares of the round-k random beacon"
                if self.pool.beacon_value(self.round) is not None:
                    self._enter_round()
                    changed = True
            else:
                changed |= self._clause_a_finish_round()
                if not self.waiting_beacon and not self._stopped:
                    changed |= self._clause_b_propose()
                    changed |= self._clause_c_echo_and_share()
            changed |= self._run_finalization_watcher()
            if not changed:
                return
        raise RuntimeError("ICC0 _progress failed to quiesce (protocol bug)")

    def _enter_round(self) -> None:
        """Round preliminaries: permutation, beacon pipelining, timers."""
        k = self.round
        if self.params.max_rounds is not None and k > self.params.max_rounds:
            self._stopped = True
            return
        value = self.pool.beacon_value(k)
        self.ranks = permutation_from_beacon(k, value, self.params.n)
        self.my_rank = self.ranks.rank_of(self.index)
        # Pipelining: "broadcast a share of the random beacon for round k+1".
        self._share_beacon(k + 1)
        self.waiting_beacon = False
        self.round_start = self.sim.now  # t0 <- clock()
        self.proposed = False
        self.notar_shared = {}
        self.disqualified = set()
        self._echoed = set()
        self._wakes_scheduled = set()
        self.metrics.on_round_entry(self.index, k, self.sim.now)
        if self.tracer.enabled:
            self._trace("icc.round.enter", round=k, rank=self.my_rank)
            trace_rank_assignment(
                self.tracer, time=self.sim.now, party=self.index,
                protocol=self.protocol_name, assignment=self.ranks,
            )
        # Timer for our own proposal delay; Δntry wakes are scheduled lazily
        # when candidate blocks actually appear (see _schedule_wake).
        self._schedule_wake(self.round_start + self.delays.prop(self.my_rank))

    def _schedule_wake(self, at: float) -> None:
        if at <= self.sim.now or at in self._wakes_scheduled:
            return
        self._wakes_scheduled.add(at)
        self.sim.schedule_at(at, self._wake)

    # -- clause (a): finish the round -----------------------------------------

    def _clause_a_finish_round(self) -> bool:
        """Figure 1 (a): a notarized round-k block, or a combinable share set."""
        k = self.round
        quorum = self.params.notarization_quorum
        notarization: Notarization | None = None
        block: Block | None = None

        combined_here = False
        already = self.pool.notarized_blocks(k)
        if already:
            block = min(already, key=lambda b: b.hash)
            notarization = self.pool.notarization_of(block.hash)
        else:
            candidate = self.pool.combinable_notarization(k, quorum)
            if candidate is not None:
                # "combine the notarization shares into a notarization"
                signed = msg.notarization_message(k, candidate.proposer, candidate.hash)
                shares = [s.share for s in self.pool.notar_shares(candidate.hash)]
                aggregate = self.keys.combine_notary(signed, shares)
                notarization = Notarization(
                    round=k,
                    proposer=candidate.proposer,
                    block_hash=candidate.hash,
                    aggregate=aggregate,
                )
                self.pool.add(notarization)
                block = candidate
                combined_here = True
                self.metrics.count("notarizations-combined")
        if block is None or notarization is None:
            return False
        if self.tracer.enabled:
            self._trace(
                "icc.round.done", round=k, block=short_id(block.hash),
                combined=combined_here, supported=len(self.notar_shared),
            )

        # "broadcast the notarization for B"
        self._broadcast(notarization)
        # "if N ⊆ {B} then broadcast a finalization share for B"
        if set(self.notar_shared) <= {block.hash}:
            self._send_finalization_share(block)

        # Feed the adaptive-Δbnd variant (Section 1: the protocol "can be
        # modified to adaptively adjust to an unknown communication-delay
        # bound").  The local congestion signal: supporting more than one
        # block this round means Δntry(1) elapsed before the best proposal
        # arrived — the delay estimate is too small.  A clean round (N has
        # at most one block) lets the estimate decay.
        feedback = getattr(self.delays, "on_round_result", None)
        if feedback is not None:
            feedback(len(self.notar_shared) <= 1)

        # done <- true: move on to round k+1.
        self.round = k + 1
        self.waiting_beacon = True
        self.metrics.count("rounds-finished")
        if self.meter.enabled:
            self.meter.count("icc.rounds.finished")
            self.meter.observe("icc.round.duration", self.sim.now - self.round_start)
        return True

    def _send_finalization_share(self, block: Block) -> None:
        """Broadcast our S_final share on ``block`` (overridable seam)."""
        signed = msg.finalization_message(block.round, block.proposer, block.hash)
        share = self.keys.sign_final_share(signed)
        fshare = FinalizationShare(
            round=block.round,
            proposer=block.proposer,
            block_hash=block.hash,
            signer=self.index,
            share=share,
        )
        self.pool.add(fshare)
        self._broadcast(fshare)
        self.metrics.count("finalization-shares-sent")
        if self.tracer.enabled:
            self._trace(
                "icc.share.finalization", round=block.round, block=short_id(block.hash)
            )

    # -- clause (b): propose a block ------------------------------------------

    def _clause_b_propose(self) -> bool:
        """Figure 1 (b): propose once clock() >= t0 + Δprop(r_me)."""
        k = self.round
        if self.proposed:
            return False
        if self.sim.now < self.round_start + self.delays.prop(self.my_rank):
            return False
        parents = self.pool.notarized_blocks(k - 1)
        if not parents:  # pragma: no cover - previous round guarantees one
            return False
        # "choose a notarized round-(k-1) block Bp" — any one; we take the
        # smallest hash for determinism.
        parent = min(parents, key=lambda b: b.hash)
        # The available ancestry (chain_suffix tolerates pruned prefixes;
        # dedup against pruned rounds is the mempool's job, since those
        # commands are already committed).
        chain = self.pool.chain_suffix(parent.hash)
        payload = self._make_payload(k, chain)
        block = Block(round=k, proposer=self.index, parent_hash=parent.hash, payload=payload)
        signed = msg.authenticator_message(k, self.index, block.hash)
        auth = Authenticator(
            round=k, proposer=self.index, block_hash=block.hash,
            signature=self.keys.sign_auth(signed),
        )
        self.pool.add(block)
        self.pool.add(auth)
        parent_notz = self.pool.notarization_of(parent.hash) if k > 1 else None
        self._disseminate_block(block, auth, parent_notz)
        self.metrics.proposed_at.setdefault(block.hash, self.sim.now)
        self.metrics.count("blocks-proposed")
        if self.my_rank == 0:
            self.metrics.count("leader-proposals")
        if self.tracer.enabled:
            self._trace(
                "icc.block.proposed", round=k, block=short_id(block.hash),
                parent=short_id(parent.hash), payload_bytes=payload.wire_size(),
                rank=self.my_rank,
            )
        if self.meter.enabled:
            self.meter.count("icc.blocks.proposed")
        self.proposed = True
        return True

    def _make_payload(self, round: int, chain: list[Block]) -> Payload:
        """getPayload(Bp) — overridable seam; default asks the payload source."""
        return self.payload_source(self, round, chain)

    # -- clause (c): echo / notarization-share / disqualify --------------------

    def _block_rank(self, block: Block) -> int:
        return self.ranks.rank_of(block.proposer)

    def _clause_c_echo_and_share(self) -> bool:
        """Figure 1 (c): support the best (lowest-rank, non-disqualified)
        valid block once its Δntry has elapsed."""
        k = self.round
        valid = self.pool.valid_blocks(k)
        if not valid:
            return False
        ranked = sorted(
            ((self._block_rank(b), b) for b in valid),
            key=lambda rb: (rb[0], rb[1].hash),
        )
        candidates = [(r, b) for r, b in ranked if r not in self.disqualified]
        if not candidates:
            return False
        min_rank = candidates[0][0]
        changed = False
        for rank, block in candidates:
            if rank != min_rank:
                break  # a better (lower-rank, non-disqualified) block exists
            if block.hash in self.notar_shared:
                continue  # B ∈ N
            ntry_at = self.round_start + self.delays.ntry(rank)
            if self.sim.now < ntry_at:
                self._schedule_wake(ntry_at)
                continue
            self._support_block(rank, block)
            changed = True
            if rank in self.disqualified:
                break  # D changed; recompute candidates on the next pass
        return changed

    def _support_block(self, rank: int, block: Block) -> None:
        """The body of clause (c) for one firing block."""
        k = self.round
        # "if r != r_me then broadcast B, B's authenticator, and the
        # notarization for B's parent"  (the echo)
        if rank != self.my_rank and block.hash not in self._echoed:
            self._echoed.add(block.hash)
            auth = self.pool.authenticator_of(block.hash)
            parent_notz = (
                self.pool.notarization_of(block.parent_hash) if k > 1 else None
            )
            self._disseminate_block(block, auth, parent_notz)
            self.metrics.count("blocks-echoed")
            if self.tracer.enabled:
                self._trace(
                    "icc.block.echoed", round=k, block=short_id(block.hash), rank=rank
                )
        # "if some block in N has rank r then D <- D ∪ {r}
        #  else N <- N ∪ {B}, broadcast a notarization share for B"
        if rank in self.notar_shared.values():
            self.disqualified.add(rank)
            self.metrics.count("ranks-disqualified")
            if self.tracer.enabled:
                self._trace("icc.rank.disqualified", round=k, rank=rank)
        else:
            self.notar_shared[block.hash] = rank
            self._send_notarization_share(block)

    def _send_notarization_share(self, block: Block) -> None:
        """Broadcast our S_notary share on ``block`` (overridable seam)."""
        signed = msg.notarization_message(block.round, block.proposer, block.hash)
        share = self.keys.sign_notary_share(signed)
        nshare = NotarizationShare(
            round=block.round,
            proposer=block.proposer,
            block_hash=block.hash,
            signer=self.index,
            share=share,
        )
        self.pool.add(nshare)
        self._broadcast(nshare)
        self.metrics.count("notarization-shares-sent")
        if self.tracer.enabled:
            self._trace(
                "icc.share.notarization", round=block.round, block=short_id(block.hash)
            )

    # -- Figure 2: the Finalization subprotocol ---------------------------------

    def _run_finalization_watcher(self) -> bool:
        """One pass of Figure 2; returns True if anything committed."""
        quorum = self.params.finalization_quorum
        progressed = False
        while True:
            target: Block | None = None
            finalization: Finalization | None = None
            combined_here = False
            for k in self.pool.rounds_with_final_activity():
                if k <= self.k_max:
                    continue
                done = self.pool.finalized_blocks(k)
                if done:
                    target = min(done, key=lambda b: b.hash)
                    finalization = self.pool.finalization_of(target.hash)
                    break
                candidate = self.pool.combinable_finalization(k, quorum)
                if candidate is not None:
                    # "combine the finalization shares into a finalization"
                    signed = msg.finalization_message(k, candidate.proposer, candidate.hash)
                    shares = [s.share for s in self.pool.final_shares(candidate.hash)]
                    aggregate = self.keys.combine_final(signed, shares)
                    finalization = Finalization(
                        round=k,
                        proposer=candidate.proposer,
                        block_hash=candidate.hash,
                        aggregate=aggregate,
                    )
                    self.pool.add(finalization)
                    target = candidate
                    combined_here = True
                    self.metrics.count("finalizations-combined")
                    break
            if target is None or finalization is None:
                return progressed
            if self.tracer.enabled:
                self._trace(
                    "icc.finalization", round=target.round,
                    block=short_id(target.hash), combined=combined_here,
                )
            # "broadcast the finalization for B"
            self._broadcast(finalization)
            self._commit_chain(target)
            progressed = True

    def _commit_chain(self, block: Block) -> None:
        """Output the payloads of the last k - k_max blocks ending at B.

        Walks back only to the previously committed tip (not the root), so
        ancestors below the tip may have been garbage-collected.
        """
        k = block.round
        segment: list[Block] = []
        cursor_hash = block.hash
        while cursor_hash != self._committed_tip:
            cursor = self.pool.blocks.get(cursor_hash)
            if cursor is None:
                raise SafetyViolation(
                    f"party {self.index}: finalized chain does not extend the "
                    f"committed prefix at round {self.k_max}"
                )
            segment.append(cursor)
            cursor_hash = cursor.parent_hash
        segment.reverse()
        # Safety invariant: exactly one block per round k_max+1 .. k.
        if [b.round for b in segment] != list(range(self.k_max + 1, k + 1)):
            raise SafetyViolation(
                f"party {self.index}: committed chain forked at round {self.k_max}"
            )
        for committed in segment:
            self.output_log.append(committed)
            for listener in self.commit_listeners:
                listener(committed)
            if self.tracer.enabled:
                self._trace(
                    "icc.block.committed", round=committed.round,
                    block=short_id(committed.hash), proposer=committed.proposer,
                    payload_bytes=committed.payload.wire_size(),
                )
            self.metrics.on_commit(
                time=self.sim.now,
                observer=self.index,
                round=committed.round,
                proposer=committed.proposer,
                payload_bytes=committed.payload.wire_size(),
                proposed_at=self.metrics.proposed_at.get(committed.hash, -1.0),
            )
            if self.meter.enabled:
                self.meter.count("icc.blocks.committed")
                proposed_at = self.metrics.proposed_at.get(committed.hash)
                if proposed_at is not None:
                    self.meter.observe(
                        "icc.commit.latency", self.sim.now - proposed_at
                    )
        self._committed_tip = block.hash
        self.k_max = k
        # Garbage collection (Section 3.1 notes real implementations prune;
        # laggards farther back than gc_depth need state transfer, which is
        # out of the protocol's scope).
        if self.params.gc_depth is not None:
            self.pool.prune(self.k_max - self.params.gc_depth)

    # ------------------------------------------------------------------- queries

    @property
    def committed_payloads(self) -> list[Payload]:
        return [b.payload for b in self.output_log]

    @property
    def committed_hashes(self) -> list[bytes]:
        return [b.hash for b in self.output_log]

    def output_commands(self) -> list[bytes]:
        """The atomic-broadcast output: all committed commands, in order."""
        return [c for b in self.output_log for c in b.payload.commands]
