"""Protocol ICC2 — block dissemination via erasure-coded reliable broadcast.

Same consensus skeleton as ICC0/ICC1; the difference (Section 1.1) is that
"instead of relying on a peer-to-peer gossip sub-layer to efficiently
disseminate large blocks, it instead makes use of a subprotocol based on
erasure codes to do so".

* A proposer *disperses* its serialized block through
  :class:`repro.rbc.RbcEndpoint` instead of broadcasting the body.
* Small artifacts (authenticators, shares, notarizations, finalizations,
  beacon shares) are broadcast as in ICC0 — they are λ-sized and never the
  bottleneck.
* The echo step of clause (c) re-disperses a block only if the party never
  saw it travel through an RBC instance (defends against a corrupt
  proposer bypassing the RBC and handing the block to a subset directly);
  otherwise the RBC's own totality (fill phase) already guarantees
  delivery to everyone.

Cost model (paper, Section 1): per-party bits per round O(S) once
S = Ω(n·λ·log n); reciprocal throughput 3δ, latency 4δ — one δ more than
ICC0/ICC1, paid for removing the leader bottleneck without a gossip layer.
"""

from __future__ import annotations

from ..obs import short_id
from ..rbc.protocol import RbcEndpoint, RbcMessage
from .icc0 import ICC0Party
from .messages import Authenticator, Block, Notarization
from .serialize import DeserializeError, deserialize_block, serialize_block


class ICC2Party(ICC0Party):
    """ICC0 logic with reliable-broadcast block dissemination."""

    protocol_name = "ICC2"

    def __init__(self, **kwargs) -> None:
        super().__init__(**kwargs)
        self.rbc = RbcEndpoint(
            index=self.index,
            n=self.params.n,
            t=self.params.t,
            network=self.network,
            deliver=self._on_rbc_deliver,
        )
        self._rbc_handled: set[bytes] = set()  # block hashes seen through RBC

    # -- substrate overrides -------------------------------------------------

    def _disseminate_block(
        self,
        block: Block,
        auth: Authenticator | None,
        parent_notarization: Notarization | None,
    ) -> None:
        if block.hash not in self._rbc_handled:
            self._rbc_handled.add(block.hash)
            data = serialize_block(block)
            if self.tracer.enabled:
                self._trace(
                    "rbc.disperse", round=block.round,
                    block=short_id(block.hash), bytes=len(data),
                )
            self.rbc.disperse(data)
        if auth is not None:
            self._broadcast(auth)
        if parent_notarization is not None:
            self._broadcast(parent_notarization)

    def on_receive(self, message: object) -> None:
        if isinstance(message, RbcMessage):
            self.rbc.on_message(message)
            return
        super().on_receive(message)

    def _on_rbc_deliver(self, dealer: int, root: bytes, data: bytes) -> None:
        """A reliable-broadcast instance completed: recover the block."""
        try:
            block = deserialize_block(data)
        except DeserializeError:
            self.metrics.count("rbc-undecodable-blocks")
            if self.tracer.enabled:
                self._trace("rbc.undecodable", round=None, dealer=dealer)
            return
        if self.tracer.enabled:
            self._trace(
                "rbc.deliver", round=block.round, dealer=dealer, bytes=len(data)
            )
        self._rbc_handled.add(block.hash)
        if self.pool.add(block):
            self._progress()
