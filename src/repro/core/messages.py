"""Protocol messages and block structures (Section 3.4 of the paper).

Every artifact exchanged by the ICC protocols is defined here:

* :class:`Block` — (block, k, α, phash, payload), plus the ``root`` sentinel;
* :class:`Authenticator` — the proposer's S_auth signature binding a block;
* :class:`NotarizationShare` / :class:`Notarization`;
* :class:`FinalizationShare` / :class:`Finalization`;
* :class:`BeaconShare` — a threshold-signature share of the random beacon.

Each message reports a ``wire_size()`` modelled on the *production* system's
BLS object sizes (48-byte signatures/shares, 32-byte hashes), so traffic
metrics reflect what the deployed protocol sends, independent of the Python
simulation's internal representation.  Each message also has a ``kind``
string used as the metrics label.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from functools import cached_property

from ..crypto.hashing import DIGEST_SIZE, tagged_hash

# -- wire-size model constants (bytes) ----------------------------------------
SIG_SIZE = 48  # a BLS signature or signature share
AGG_DESCRIPTOR_SIZE = 8  # compressed signatory bitmap of a multi-signature
ROUND_SIZE = 8
INDEX_SIZE = 4
TAG_SIZE = 1

#: Proposer index used for the root sentinel (no party has index 0).
ROOT_PROPOSER = 0


@dataclass(frozen=True)
class Payload:
    """Application content of a block.

    ``commands`` are opaque byte strings fed in by clients (the atomic
    broadcast inputs).  ``filler_bytes`` lets benchmarks model large blocks
    (the paper: "a block's payload may typically be a few megabytes")
    without materialising megabytes per message in RAM.
    """

    commands: tuple[bytes, ...] = ()
    filler_bytes: int = 0

    def wire_size(self) -> int:
        return 4 + sum(4 + len(c) for c in self.commands) + self.filler_bytes

    @cached_property
    def digest(self) -> bytes:
        return tagged_hash(
            "ICC/payload",
            self.filler_bytes.to_bytes(8, "big"),
            *self.commands,
        )


EMPTY_PAYLOAD = Payload()


@dataclass(frozen=True)
class Block:
    """A round-k block: (block, k, α, phash, payload)."""

    round: int
    proposer: int  # α, 1-based party index (0 reserved for root)
    parent_hash: bytes
    payload: Payload

    kind = "block"

    @cached_property
    def hash(self) -> bytes:
        """H(B): the collision-resistant block hash used everywhere."""
        return tagged_hash(
            "ICC/block",
            self.round.to_bytes(ROUND_SIZE, "big"),
            self.proposer.to_bytes(INDEX_SIZE, "big"),
            self.parent_hash,
            self.payload.digest,
        )

    def wire_size(self) -> int:
        return (
            TAG_SIZE
            + ROUND_SIZE
            + INDEX_SIZE
            + DIGEST_SIZE
            + self.payload.wire_size()
        )


def make_root() -> Block:
    """The special genesis block (round 0, depth 0, empty payload).

    The paper treats ``root`` as its own authenticator, notarization and
    finalization; the pool special-cases its hash accordingly.
    """
    return Block(
        round=0,
        proposer=ROOT_PROPOSER,
        parent_hash=b"\x00" * DIGEST_SIZE,
        payload=EMPTY_PAYLOAD,
    )


ROOT_BLOCK = make_root()
ROOT_HASH = ROOT_BLOCK.hash


# -- canonical signed byte strings ------------------------------------------------
# Section 3.4 defines the exact tuples each signature covers.


def authenticator_message(round: int, proposer: int, block_hash: bytes) -> bytes:
    return tagged_hash(
        "ICC/msg/authenticator",
        round.to_bytes(ROUND_SIZE, "big"),
        proposer.to_bytes(INDEX_SIZE, "big"),
        block_hash,
    )


def notarization_message(round: int, proposer: int, block_hash: bytes) -> bytes:
    return tagged_hash(
        "ICC/msg/notarization",
        round.to_bytes(ROUND_SIZE, "big"),
        proposer.to_bytes(INDEX_SIZE, "big"),
        block_hash,
    )


def finalization_message(round: int, proposer: int, block_hash: bytes) -> bytes:
    return tagged_hash(
        "ICC/msg/finalization",
        round.to_bytes(ROUND_SIZE, "big"),
        proposer.to_bytes(INDEX_SIZE, "big"),
        block_hash,
    )


def beacon_message(round: int, previous_value: bytes) -> bytes:
    """The message threshold-signed to produce beacon value R_round.

    The paper signs R_{k-1} directly; we additionally bind the round number
    for domain separation (a strict strengthening — it rules out cross-round
    replay even if a beacon value ever repeated).
    """
    return tagged_hash(
        "ICC/msg/beacon", round.to_bytes(ROUND_SIZE, "big"), previous_value
    )


#: R_0 — the fixed, publicly-known initial beacon value.
GENESIS_BEACON = tagged_hash("ICC/beacon/genesis")


# -- signature-carrying messages ------------------------------------------------


@dataclass(frozen=True)
class BlockId:
    """The (round, proposer, hash) triple that identifies a block."""

    round: int
    proposer: int
    block_hash: bytes


@dataclass(frozen=True)
class Authenticator:
    """(authenticator, k, α, H(B), σ) — σ is P_α's S_auth signature."""

    round: int
    proposer: int
    block_hash: bytes
    signature: object = field(compare=False)

    kind = "authenticator"

    def block_id(self) -> BlockId:
        return BlockId(self.round, self.proposer, self.block_hash)

    def wire_size(self) -> int:
        return TAG_SIZE + ROUND_SIZE + INDEX_SIZE + DIGEST_SIZE + SIG_SIZE


@dataclass(frozen=True)
class NotarizationShare:
    """(notarization-share, k, α, H(B), ns, β) — β's S_notary share."""

    round: int
    proposer: int
    block_hash: bytes
    signer: int  # β
    share: object = field(compare=False)

    kind = "notarization-share"

    def block_id(self) -> BlockId:
        return BlockId(self.round, self.proposer, self.block_hash)

    def wire_size(self) -> int:
        return TAG_SIZE + ROUND_SIZE + 2 * INDEX_SIZE + DIGEST_SIZE + SIG_SIZE


@dataclass(frozen=True)
class Notarization:
    """(notarization, k, α, H(B), σ) — σ an aggregated S_notary signature."""

    round: int
    proposer: int
    block_hash: bytes
    aggregate: object = field(compare=False)

    kind = "notarization"

    def block_id(self) -> BlockId:
        return BlockId(self.round, self.proposer, self.block_hash)

    def wire_size(self) -> int:
        return (
            TAG_SIZE
            + ROUND_SIZE
            + INDEX_SIZE
            + DIGEST_SIZE
            + SIG_SIZE
            + AGG_DESCRIPTOR_SIZE
        )


@dataclass(frozen=True)
class FinalizationShare:
    """(finalization-share, k, α, H(B), fs, β)."""

    round: int
    proposer: int
    block_hash: bytes
    signer: int
    share: object = field(compare=False)

    kind = "finalization-share"

    def block_id(self) -> BlockId:
        return BlockId(self.round, self.proposer, self.block_hash)

    def wire_size(self) -> int:
        return TAG_SIZE + ROUND_SIZE + 2 * INDEX_SIZE + DIGEST_SIZE + SIG_SIZE


@dataclass(frozen=True)
class Finalization:
    """(finalization, k, α, H(B), σ)."""

    round: int
    proposer: int
    block_hash: bytes
    aggregate: object = field(compare=False)

    kind = "finalization"

    def block_id(self) -> BlockId:
        return BlockId(self.round, self.proposer, self.block_hash)

    def wire_size(self) -> int:
        return (
            TAG_SIZE
            + ROUND_SIZE
            + INDEX_SIZE
            + DIGEST_SIZE
            + SIG_SIZE
            + AGG_DESCRIPTOR_SIZE
        )


@dataclass(frozen=True)
class BeaconShare:
    """A party's threshold-signature share of the round-k beacon."""

    round: int
    signer: int
    share: object = field(compare=False)

    kind = "beacon-share"

    def wire_size(self) -> int:
        return TAG_SIZE + ROUND_SIZE + INDEX_SIZE + SIG_SIZE
