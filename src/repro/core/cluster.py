"""Cluster assembly: wire parties, keys, network and simulator together.

Every test, example and benchmark builds its runs through
:func:`build_cluster`, so experiment setup is uniform and fully seeded.

A cluster is an **embeddable component**, not a process-wide singleton:
nothing here touches module-level state, and several clusters can coexist
in one process — or in one :class:`~repro.sim.simulator.Simulation` — at
once.  :func:`embed_cluster` builds a cluster inside an existing
Simulation behind an explicit :class:`ClusterHandle`: the cluster gets its
own namespace prefix on every trace/metric stream (``"<name>/..."``, via
:func:`repro.obs.namespaced_tracer` / :func:`repro.obs.namespaced_meter`)
and its own seeded delay-sampling RNG stream, so K embedded clusters are
observably separable and bit-identical to K standalone runs with the same
seeds (pinned by ``tests/core/test_embedded_cluster.py``).  This is the
substrate :mod:`repro.smr.sharding` composes into multi-subnet
deployments.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field, replace
from random import Random
from typing import Callable, Sequence

from ..crypto.keyring import Keyring, generate_keyrings
from ..obs.metrics import MeterLike, namespaced_meter
from ..obs.tracer import TraceEvent, TracerLike, namespaced_tracer
from ..sim.delays import DelayModel, FixedDelay
from ..sim.metrics import Metrics
from ..sim.network import Network
from ..sim.simulator import Simulation
from .icc0 import ICC0Party, PayloadSource, empty_payload_source
from .params import DelayPolicy, ProtocolParams, StandardDelays

#: Builds one party; adversarial behaviours provide alternatives.
PartyFactory = Callable[..., ICC0Party]


@dataclass
class ClusterConfig:
    """Declarative description of one simulation run."""

    n: int
    t: int = 0
    delta_bound: float = 1.0
    epsilon: float = 0.05
    seed: int = 0
    crypto_backend: str = "fast"
    group_profile: str = "test"
    #: Lazy RLC batch verification in the message pools (see
    #: repro.core.pool).  Off = eager per-message verification; experiment
    #: outputs are bit-identical either way.
    crypto_batch: bool = True
    #: Cross-height batch flushing in the message pools (see
    #: repro.core.pool): queries flush only the pending shares they
    #: observe, so RLC batches fill across heights at low traffic.  Query
    #: results are bit-identical on or off.
    crypto_flush_across_heights: bool = True
    #: Flush a pool's pending shares of one kind once this many are
    #: queued (0 = no size trigger).
    crypto_flush_min_batch: int = 0
    #: Flush once the oldest pending share of a kind is older than this
    #: many simulated seconds (None = no deadline trigger).
    crypto_flush_deadline: float | None = None
    max_rounds: int | None = None
    gc_depth: int | None = None  # pool pruning depth; None keeps everything
    delay_model: DelayModel | None = None  # default FixedDelay(0.1)
    #: Override the protocol delay functions (e.g. AdaptiveDelays); when
    #: None, StandardDelays(delta_bound, epsilon) is used.
    protocol_delays: DelayPolicy | None = None
    payload_source: PayloadSource = empty_payload_source
    #: Optional payload batch-admission hook installed on every party's
    #: pool (see :attr:`repro.core.pool.MessagePool.payload_verifier`).
    payload_verifier: Callable | None = None
    party_class: PartyFactory = ICC0Party
    #: index -> factory for corrupt parties; None entries mean crash-failure.
    corrupt: dict[int, PartyFactory | None] = dc_field(default_factory=dict)
    extra_party_kwargs: dict = dc_field(default_factory=dict)
    #: Optional :class:`repro.obs.Tracer`; installed on the Simulation
    #: *before* any party is built (parties cache ``sim.tracer``).  With a
    #: ``namespace`` the install is scoped to this cluster's build instead
    #: of mutating the Simulation for good.
    tracer: TracerLike | None = None
    #: Optional :class:`repro.obs.Meter` (counters/gauges/histograms);
    #: installed on the Simulation under the same before-build rule.
    meter: MeterLike | None = None
    #: Embeddability: prefix every trace event's protocol label and every
    #: metric name with ``"<namespace>/"`` so several clusters can share
    #: one Simulation's sinks with separable streams.  None (default) =
    #: the classic standalone behaviour.
    namespace: str | None = None
    #: Embeddability: seed string for a cluster-private delay-sampling RNG
    #: (``random.Random(rng_stream)``), so embedded clusters never consume
    #: each other's ``sim.rng`` draws.  None = share ``sim.rng``.
    rng_stream: str | None = None

    def __post_init__(self) -> None:
        if len(self.corrupt) > self.t:
            raise ValueError(
                f"{len(self.corrupt)} corrupt parties declared but t={self.t}"
            )
        if self.protocol_delays is not None and not isinstance(
            self.protocol_delays, DelayPolicy
        ):
            raise TypeError(
                "protocol_delays must implement DelayPolicy (prop/ntry), got "
                f"{type(self.protocol_delays).__name__}"
            )
        if self.tracer is not None and not (
            isinstance(self.tracer, TracerLike) and hasattr(self.tracer, "enabled")
        ):
            raise TypeError(
                "tracer must implement TracerLike (enabled + emit), got "
                f"{type(self.tracer).__name__}"
            )
        if self.meter is not None and not (
            isinstance(self.meter, MeterLike) and hasattr(self.meter, "enabled")
        ):
            raise TypeError(
                "meter must implement MeterLike (enabled + count/gauge/observe), "
                f"got {type(self.meter).__name__}"
            )
        if self.namespace is not None and ("/" in self.namespace or not self.namespace):
            raise ValueError(
                f"namespace must be non-empty and '/'-free: {self.namespace!r}"
            )
        if self.crypto_flush_min_batch < 0:
            raise ValueError(
                f"crypto_flush_min_batch must be >= 0, got {self.crypto_flush_min_batch}"
            )
        if self.crypto_flush_deadline is not None and self.crypto_flush_deadline < 0:
            raise ValueError(
                f"crypto_flush_deadline must be >= 0, got {self.crypto_flush_deadline}"
            )


class Cluster:
    """A built, ready-to-run simulation of n parties."""

    def __init__(
        self,
        config: ClusterConfig,
        sim: Simulation,
        network: Network,
        parties: list[ICC0Party],
        params: ProtocolParams,
        keyrings: list[Keyring],
    ) -> None:
        self.config = config
        self.sim = sim
        self.network = network
        self.parties = parties
        self.params = params
        self.keyrings = keyrings
        #: Set by :func:`build_cluster`; the embeddable face of this cluster.
        self.handle: ClusterHandle | None = None

    @property
    def metrics(self) -> Metrics:
        return self.network.metrics

    @property
    def honest_parties(self) -> list[ICC0Party]:
        return [p for p in self.parties if p.index not in self.config.corrupt]

    def party(self, index: int) -> ICC0Party:
        return self.parties[index - 1]

    def start(self) -> None:
        for party in self.parties:
            if (
                party.index in self.config.corrupt
                and self.config.corrupt[party.index] is None
            ):
                continue  # crash-failures never even start
            party.start()

    def run_for(self, seconds: float, max_events: int | None = 5_000_000) -> None:
        self.sim.run(until=self.sim.now + seconds, max_events=max_events)

    def run_until_all_committed_round(
        self, round: int, timeout: float = 10_000.0, max_events: int | None = 5_000_000
    ) -> bool:
        """Run until every honest party has committed through ``round``."""
        honest = self.honest_parties

        def done() -> bool:
            return all(p.k_max >= round for p in honest)

        self.sim.run(until=timeout, stop_when=done, max_events=max_events)
        return done()

    # -- correctness checks used throughout the test-suite ---------------------

    def check_safety(self) -> None:
        """Assert the prefix property over all honest parties' outputs.

        "if one party has output a sequence s and another has output s',
        then s must be a prefix of s', or vice versa" (Section 1).
        """
        logs = [p.committed_hashes for p in self.honest_parties]
        reference = max(logs, key=len, default=[])
        for log in logs:
            if log != reference[: len(log)]:
                raise AssertionError("safety violated: committed logs diverge")

    def min_committed_round(self) -> int:
        return min((p.k_max for p in self.honest_parties), default=0)

    def max_committed_round(self) -> int:
        return max((p.k_max for p in self.honest_parties), default=0)


@dataclass
class ClusterHandle:
    """The explicit face of one (possibly embedded) cluster.

    Bundles the cluster with the exact observability views and RNG stream
    its components were wired to at build time: ``tracer``/``meter`` are
    the (namespaced, when embedded) sinks every party and the network
    cached, and ``rng`` is the cluster-private delay stream (None when the
    cluster shares ``sim.rng``).  Holding a handle is how callers address
    one cluster among many in a shared Simulation without any global
    lookup.
    """

    name: str
    cluster: Cluster
    tracer: TracerLike
    meter: MeterLike
    rng: Random | None = None

    # -- delegation conveniences ------------------------------------------

    @property
    def config(self) -> ClusterConfig:
        return self.cluster.config

    @property
    def sim(self) -> Simulation:
        return self.cluster.sim

    @property
    def network(self) -> Network:
        return self.cluster.network

    @property
    def parties(self) -> list[ICC0Party]:
        return self.cluster.parties

    def start(self) -> None:
        self.cluster.start()

    def events(self, kind: str | None = None) -> list[TraceEvent]:
        """This cluster's slice of the trace (namespace-filtered when
        embedded)."""
        return self.tracer.events(kind)

    def counter(self, name: str) -> int:
        """This cluster's slice of a counter metric (bare registry name)."""
        value = getattr(self.meter, "counter_value", None)
        return int(value(name)) if value is not None else 0


def build_cluster(config: ClusterConfig, sim: Simulation | None = None) -> Cluster:
    """Construct a fully wired cluster from a config (nothing runs yet).

    Pass an existing ``sim`` to co-schedule several clusters in one
    simulation (e.g. multiple subnets coupled by :mod:`repro.smr.xnet`);
    with ``config.namespace`` set the build never mutates the shared
    Simulation's tracer/meter permanently — the namespaced views are
    installed only while parties are constructed (they cache the sinks)
    and the network keeps explicit overrides.  :func:`embed_cluster` is
    the one-call wrapper for that mode.
    """
    if sim is None:
        sim = Simulation(seed=config.seed)
    base_tracer = config.tracer if config.tracer is not None else sim.tracer
    base_meter = config.meter if config.meter is not None else sim.meter
    if config.namespace is not None:
        cluster_tracer = namespaced_tracer(base_tracer, config.namespace)
        cluster_meter = namespaced_meter(base_meter, config.namespace)
    else:
        cluster_tracer = base_tracer
        cluster_meter = base_meter
    cluster_rng = Random(config.rng_stream) if config.rng_stream is not None else None
    prev_tracer, prev_meter = sim.tracer, sim.meter
    # Before Network/parties are built: they cache the sinks they see here.
    sim.tracer = cluster_tracer
    sim.meter = cluster_meter
    try:
        delay_model = config.delay_model if config.delay_model is not None else FixedDelay(0.1)
        metrics = Metrics(n=config.n)
        network = Network(
            sim,
            config.n,
            delay_model,
            metrics,
            tracer=cluster_tracer if config.namespace is not None else None,
            meter=cluster_meter if config.namespace is not None else None,
            rng=cluster_rng,
        )
        keyrings = generate_keyrings(
            config.n,
            config.t,
            seed=config.seed,
            backend=config.crypto_backend,
            group_profile=config.group_profile,
        )
        delays = config.protocol_delays
        if delays is None:
            delays = StandardDelays(delta_bound=config.delta_bound, epsilon=config.epsilon)
        params = ProtocolParams(
            n=config.n,
            t=config.t,
            delays=delays,
            max_rounds=config.max_rounds,
            gc_depth=config.gc_depth,
        )
        parties: list[ICC0Party] = []
        for i in range(1, config.n + 1):
            factory = config.corrupt.get(i, config.party_class)
            if factory is None:  # crash failure: attach a stub that stays silent
                factory = config.party_class
            party = factory(
                index=i,
                keyring=keyrings[i - 1],
                params=params,
                sim=sim,
                network=network,
                payload_source=config.payload_source,
                **config.extra_party_kwargs,
            )
            party.pool.batch_verify = config.crypto_batch
            party.pool.flush_across_heights = config.crypto_flush_across_heights
            party.pool.flush_min_batch = config.crypto_flush_min_batch
            party.pool.flush_deadline = config.crypto_flush_deadline
            party.pool.payload_verifier = config.payload_verifier
            parties.append(party)
            network.attach(party)
        for index, factory in config.corrupt.items():
            if factory is None:
                network.crash(index)
    finally:
        if config.namespace is not None:
            # Scoped install: an embedded build leaves the shared
            # Simulation's sinks exactly as it found them.
            sim.tracer, sim.meter = prev_tracer, prev_meter
    cluster = Cluster(config, sim, network, parties, params, keyrings)
    cluster.handle = ClusterHandle(
        name=config.namespace if config.namespace is not None else f"cluster{config.seed}",
        cluster=cluster,
        tracer=cluster_tracer,
        meter=cluster_meter,
        rng=cluster_rng,
    )
    return cluster


def embed_cluster(name: str, config: ClusterConfig, sim: Simulation) -> ClusterHandle:
    """Build ``config`` as an embedded component of an existing ``sim``.

    The cluster gets ``name`` as its trace/metric namespace and (unless
    the config pins one) a private delay-RNG stream derived from
    ``(name, config.seed)`` — so the same config embedded next to any
    number of siblings, or standalone in a fresh Simulation, finalizes
    bit-identical chains.
    """
    config = replace(
        config,
        namespace=name,
        rng_stream=(
            config.rng_stream
            if config.rng_stream is not None
            else f"cluster/{name}/{config.seed}"
        ),
    )
    cluster = build_cluster(config, sim=sim)
    assert cluster.handle is not None
    return cluster.handle


def run_happy_path(
    n: int = 4,
    rounds: int = 5,
    delta: float = 0.1,
    seed: int = 0,
    **overrides,
) -> Cluster:
    """Convenience: run a fault-free cluster for a number of rounds."""
    config = ClusterConfig(
        n=n,
        t=0,
        delta_bound=delta * 2,
        delay_model=FixedDelay(delta),
        max_rounds=rounds + 2,
        seed=seed,
        **overrides,
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(rounds)
    return cluster
