"""Cluster assembly: wire parties, keys, network and simulator together.

Every test, example and benchmark builds its runs through
:func:`build_cluster`, so experiment setup is uniform and fully seeded.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Callable, Sequence

from ..crypto.keyring import Keyring, generate_keyrings
from ..sim.delays import DelayModel, FixedDelay
from ..sim.metrics import Metrics
from ..sim.network import Network
from ..sim.simulator import Simulation
from .icc0 import ICC0Party, PayloadSource, empty_payload_source
from .params import ProtocolParams, StandardDelays

#: Builds one party; adversarial behaviours provide alternatives.
PartyFactory = Callable[..., ICC0Party]


@dataclass
class ClusterConfig:
    """Declarative description of one simulation run."""

    n: int
    t: int = 0
    delta_bound: float = 1.0
    epsilon: float = 0.05
    seed: int = 0
    crypto_backend: str = "fast"
    group_profile: str = "test"
    #: Lazy RLC batch verification in the message pools (see
    #: repro.core.pool).  Off = eager per-message verification; experiment
    #: outputs are bit-identical either way.
    crypto_batch: bool = True
    max_rounds: int | None = None
    gc_depth: int | None = None  # pool pruning depth; None keeps everything
    delay_model: DelayModel | None = None  # default FixedDelay(0.1)
    #: Override the protocol delay functions (e.g. AdaptiveDelays); when
    #: None, StandardDelays(delta_bound, epsilon) is used.
    protocol_delays: object | None = None
    payload_source: PayloadSource = empty_payload_source
    #: Optional payload batch-admission hook installed on every party's
    #: pool (see :attr:`repro.core.pool.MessagePool.payload_verifier`).
    payload_verifier: Callable | None = None
    party_class: PartyFactory = ICC0Party
    #: index -> factory for corrupt parties; None entries mean crash-failure.
    corrupt: dict[int, PartyFactory | None] = dc_field(default_factory=dict)
    extra_party_kwargs: dict = dc_field(default_factory=dict)
    #: Optional :class:`repro.obs.Tracer`; installed on the Simulation
    #: *before* any party is built (parties cache ``sim.tracer``).
    tracer: object | None = None
    #: Optional :class:`repro.obs.Meter` (counters/gauges/histograms);
    #: installed on the Simulation under the same before-build rule.
    meter: object | None = None

    def __post_init__(self) -> None:
        if len(self.corrupt) > self.t:
            raise ValueError(
                f"{len(self.corrupt)} corrupt parties declared but t={self.t}"
            )


class Cluster:
    """A built, ready-to-run simulation of n parties."""

    def __init__(
        self,
        config: ClusterConfig,
        sim: Simulation,
        network: Network,
        parties: list[ICC0Party],
        params: ProtocolParams,
        keyrings: list[Keyring],
    ) -> None:
        self.config = config
        self.sim = sim
        self.network = network
        self.parties = parties
        self.params = params
        self.keyrings = keyrings

    @property
    def metrics(self) -> Metrics:
        return self.network.metrics

    @property
    def honest_parties(self) -> list[ICC0Party]:
        return [p for p in self.parties if p.index not in self.config.corrupt]

    def party(self, index: int) -> ICC0Party:
        return self.parties[index - 1]

    def start(self) -> None:
        for party in self.parties:
            if (
                party.index in self.config.corrupt
                and self.config.corrupt[party.index] is None
            ):
                continue  # crash-failures never even start
            party.start()

    def run_for(self, seconds: float, max_events: int | None = 5_000_000) -> None:
        self.sim.run(until=self.sim.now + seconds, max_events=max_events)

    def run_until_all_committed_round(
        self, round: int, timeout: float = 10_000.0, max_events: int | None = 5_000_000
    ) -> bool:
        """Run until every honest party has committed through ``round``."""
        honest = self.honest_parties

        def done() -> bool:
            return all(p.k_max >= round for p in honest)

        self.sim.run(until=timeout, stop_when=done, max_events=max_events)
        return done()

    # -- correctness checks used throughout the test-suite ---------------------

    def check_safety(self) -> None:
        """Assert the prefix property over all honest parties' outputs.

        "if one party has output a sequence s and another has output s',
        then s must be a prefix of s', or vice versa" (Section 1).
        """
        logs = [p.committed_hashes for p in self.honest_parties]
        reference = max(logs, key=len, default=[])
        for log in logs:
            if log != reference[: len(log)]:
                raise AssertionError("safety violated: committed logs diverge")

    def min_committed_round(self) -> int:
        return min((p.k_max for p in self.honest_parties), default=0)

    def max_committed_round(self) -> int:
        return max((p.k_max for p in self.honest_parties), default=0)


def build_cluster(config: ClusterConfig, sim: Simulation | None = None) -> Cluster:
    """Construct a fully wired cluster from a config (nothing runs yet).

    Pass an existing ``sim`` to co-schedule several clusters in one
    simulation (e.g. multiple subnets coupled by :mod:`repro.smr.xnet`).
    """
    if sim is None:
        sim = Simulation(seed=config.seed)
    if config.tracer is not None:
        sim.tracer = config.tracer  # before Network/parties: they cache it
    if config.meter is not None:
        sim.meter = config.meter
    delay_model = config.delay_model if config.delay_model is not None else FixedDelay(0.1)
    metrics = Metrics(n=config.n)
    network = Network(sim, config.n, delay_model, metrics)
    keyrings = generate_keyrings(
        config.n,
        config.t,
        seed=config.seed,
        backend=config.crypto_backend,
        group_profile=config.group_profile,
    )
    delays = config.protocol_delays
    if delays is None:
        delays = StandardDelays(delta_bound=config.delta_bound, epsilon=config.epsilon)
    params = ProtocolParams(
        n=config.n,
        t=config.t,
        delays=delays,
        max_rounds=config.max_rounds,
        gc_depth=config.gc_depth,
    )
    parties: list[ICC0Party] = []
    for i in range(1, config.n + 1):
        factory = config.corrupt.get(i, config.party_class)
        if factory is None:  # crash failure: attach a stub that stays silent
            factory = config.party_class
        party = factory(
            index=i,
            keyring=keyrings[i - 1],
            params=params,
            sim=sim,
            network=network,
            payload_source=config.payload_source,
            **config.extra_party_kwargs,
        )
        party.pool.batch_verify = config.crypto_batch
        party.pool.payload_verifier = config.payload_verifier
        parties.append(party)
        network.attach(party)
    for index, factory in config.corrupt.items():
        if factory is None:
            network.crash(index)
    return Cluster(config, sim, network, parties, params, keyrings)


def run_happy_path(
    n: int = 4,
    rounds: int = 5,
    delta: float = 0.1,
    seed: int = 0,
    **overrides,
) -> Cluster:
    """Convenience: run a fault-free cluster for a number of rounds."""
    config = ClusterConfig(
        n=n,
        t=0,
        delta_bound=delta * 2,
        delay_model=FixedDelay(delta),
        max_rounds=rounds + 2,
        seed=seed,
        **overrides,
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(rounds)
    return cluster
