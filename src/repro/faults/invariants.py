"""Safety and bounded-liveness invariants over a faulted run.

These express, as machine-checked predicates, the properties a scenario
run must uphold (the paper's P2/P3 under the fault model of
``docs/FAULTS.md``):

* **safety** — no two honest parties finalize conflicting blocks at any
  height, and every pair of honest output logs is prefix-consistent.
  Checked per height (round for ICC, batch height for the baselines) so
  it remains meaningful even when a recovering party state-jumped past
  pruned history.
* **bounded liveness** — after the *last transient fault clears*
  (:meth:`~repro.faults.scenario.Scenario.clear_time`; standing
  Byzantine corruption never clears and is tolerated by assumption),
  every live honest party commits again within ``liveness_rounds``
  round-times.  A round under synchrony with a corrupt leader costs
  O(Δbnd), so the deadline is ``clear + liveness_rounds · round_time``
  with ``round_time`` defaulting to the cluster's Δbnd.  When the run is
  too short to contain the deadline, liveness is reported as *not
  assessable* instead of silently passing.

Works for ICC clusters (:class:`repro.core.cluster.Cluster`) and the
baseline clusters — both expose ``honest_parties``, per-party output
logs, ``network`` and ``metrics``.
"""

from __future__ import annotations

from dataclasses import dataclass

from .scenario import Scenario


@dataclass(frozen=True)
class Violation:
    """One invariant failure (kind is ``safety`` or ``liveness``)."""

    kind: str
    detail: str


@dataclass(frozen=True)
class InvariantReport:
    """Outcome of checking one run against the invariants."""

    scenario: str
    parties_checked: tuple[int, ...]
    liveness_checked: bool
    clear_time: float
    liveness_deadline: float | None
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    @property
    def safety_ok(self) -> bool:
        return not any(v.kind == "safety" for v in self.violations)

    @property
    def liveness_ok(self) -> bool:
        return not any(v.kind == "liveness" for v in self.violations)

    def describe(self) -> str:
        if self.ok:
            live = "liveness OK" if self.liveness_checked else "liveness n/a"
            return f"safety OK, {live}"
        return "; ".join(f"{v.kind}: {v.detail}" for v in self.violations)


def _height_map(party) -> dict[int, bytes]:
    """height -> identity of the block/batch the party committed there."""
    out: dict[int, bytes] = {}
    for entry in party.output_log:
        if hasattr(entry, "round"):
            out[entry.round] = entry.hash  # ICC block
        else:
            out[entry.height] = entry.digest  # baseline batch
    return out


def check_invariants(
    cluster,
    scenario: Scenario,
    duration: float,
    *,
    round_time: float | None = None,
    liveness_rounds: int = 12,
) -> InvariantReport:
    """Check safety always, liveness when the run extends past the deadline."""
    honest = cluster.honest_parties
    violations: list[Violation] = []

    # -- safety: per-height agreement across every honest pair ---------------
    maps = {party.index: _height_map(party) for party in honest}
    indices = [party.index for party in honest]
    for pos, a in enumerate(indices):
        for b in indices[pos + 1:]:
            map_a, map_b = maps[a], maps[b]
            for height in map_a.keys() & map_b.keys():
                if map_a[height] != map_b[height]:
                    violations.append(Violation(
                        "safety",
                        f"parties {a} and {b} committed conflicting blocks "
                        f"at height {height}",
                    ))
    try:
        cluster.check_safety()  # the prefix property, as everywhere else
    except AssertionError as exc:
        violations.append(Violation("safety", str(exc)))

    # -- bounded liveness after the last transient fault clears --------------
    clear = scenario.clear_time()
    if round_time is None:
        round_time = getattr(cluster.config, "delta_bound", 1.0)
    deadline = clear + liveness_rounds * round_time
    liveness_checked = duration >= deadline
    checked: list[int] = []
    if liveness_checked:
        for party in honest:
            if cluster.network.is_crashed(party.index):
                continue  # crashed at end of run: excluded by design
            checked.append(party.index)
            after = [
                record.time
                for record in cluster.metrics.commits_of(party.index)
                if record.time >= clear
            ]
            if not after:
                violations.append(Violation(
                    "liveness",
                    f"party {party.index} never committed after faults "
                    f"cleared at t={clear:.2f}",
                ))
            elif min(after) > deadline:
                violations.append(Violation(
                    "liveness",
                    f"party {party.index} first committed at "
                    f"t={min(after):.2f}, after the t={deadline:.2f} bound "
                    f"({liveness_rounds} round-times past t={clear:.2f})",
                ))
    else:
        checked = [p.index for p in honest]

    return InvariantReport(
        scenario=scenario.name,
        parties_checked=tuple(checked),
        liveness_checked=liveness_checked,
        clear_time=clear,
        liveness_deadline=deadline if liveness_checked else None,
        violations=tuple(violations),
    )
