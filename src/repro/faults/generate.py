"""Seeded random-scenario generation for chaos sweeps.

:func:`generate_scenario` draws a coherent, *checkable* scenario from a
seed: faults are sampled so that the invariants of
:mod:`repro.faults.invariants` are guaranteed to be satisfiable —

* Byzantine corruption plus parties left crashed never exceeds t (the
  paper's corruption budget), so safety and eventual liveness hold by
  the protocol's own guarantees;
* every transient fault settles by ``settle_frac · duration``, leaving a
  fault-free tail long enough for the bounded-liveness check to be
  assessable;
* crash schedules alternate crash→recover per party, partitions heal,
  and link-fault windows close — eventual delivery holds after the
  schedule clears.

The generator uses its own ``Random(f"chaos/{seed}")`` stream, so a seed
fully determines the scenario on every machine and at any job count.
"""

from __future__ import annotations

from random import Random

from .scenario import (
    ByzantineFault,
    ClockSkewFault,
    CrashFault,
    LinkFault,
    OutageFault,
    PartitionFault,
    RecoverFault,
    Scenario,
)

#: Behaviours safe for arbitrary chaos mixes (each tested standalone in
#: the adversary suite; all respect the t < n/3 corruption budget).
CHAOS_BEHAVIORS = (
    "silent",
    "slow-proposer",
    "lazy-leader",
    "withhold-finalization",
    "withhold-notarization",
    "aggressive",
)


def generate_scenario(
    seed: int,
    n: int,
    t: int,
    duration: float,
    *,
    settle_frac: float = 0.6,
    intensity: float = 1.0,
) -> Scenario:
    """A random but invariant-checkable scenario for an n-party cluster."""
    rng = Random(f"chaos/{seed}")
    settle = settle_frac * duration
    events: list = []

    def window(min_frac: float = 0.05, max_frac: float = 0.45) -> tuple[float, float]:
        start = rng.uniform(min_frac, max_frac) * duration
        end = min(start + rng.uniform(0.05, 0.3) * duration, settle)
        return round(start, 3), round(end, 3)

    # Byzantine parties (static corruption, within the t budget).
    n_byz = rng.randint(0, t)
    byz = rng.sample(range(1, n + 1), n_byz)
    for party in byz:
        behavior = rng.choice(CHAOS_BEHAVIORS)
        params: tuple = ()
        if behavior == "slow-proposer":
            params = (("propose_lag", round(rng.uniform(0.5, 2.0), 3)),)
        events.append(ByzantineFault(party=party, behavior=behavior, params=params))

    # Crash/recover cycles on honest parties — all recovered before settle.
    # The paper's model allows at most t faulty parties *at any time*:
    # Byzantine plus concurrently-crashed must stay within t, or the tree
    # stops growing during the outage and the in-flight round's beacon
    # shares (broadcast exactly once) are lost to the crashed parties —
    # an unrecoverable stall even state sync cannot repair, because no
    # peer ever pulls ahead.  Budgeting crashes to t - n_byz keeps the
    # tree growing, so recovered laggards catch up and liveness resumes.
    honest = [i for i in range(1, n + 1) if i not in set(byz)]
    n_crash = rng.randint(0, min(t - n_byz, len(honest)))
    for party in rng.sample(honest, n_crash):
        start, end = window()
        if end <= start:
            continue
        events.append(CrashFault(at=start, party=party))
        events.append(RecoverFault(at=end, party=party))

    # One partition, usually.
    if rng.random() < 0.7:
        size = rng.randint(1, max(1, n // 2))
        group = tuple(sorted(rng.sample(range(1, n + 1), size)))
        start, heal = window(0.1, 0.4)
        if heal > start:
            events.append(PartitionFault(at=start, group=group, heal_at=heal))

    # Link faults: drop / duplicate / corrupt / latency spikes.
    for _ in range(rng.randint(0, max(1, round(3 * intensity)))):
        start, end = window()
        if end <= start:
            continue
        flavor = rng.choice(("drop", "duplicate", "corrupt", "delay"))
        scoped = rng.random() < 0.5  # whole fabric vs one party's links
        sender = rng.randint(1, n) if scoped else None
        events.append(LinkFault(
            start=start,
            end=end,
            sender=sender,
            drop_prob=round(rng.uniform(0.05, 0.3), 3) if flavor == "drop" else 0.0,
            duplicate_prob=(
                round(rng.uniform(0.1, 0.4), 3) if flavor == "duplicate" else 0.0
            ),
            corrupt_prob=(
                round(rng.uniform(0.05, 0.25), 3) if flavor == "corrupt" else 0.0
            ),
            extra_delay=round(rng.uniform(0.1, 0.5), 3) if flavor == "delay" else 0.0,
            jitter=round(rng.uniform(0.0, 0.2), 3) if flavor == "delay" else 0.0,
        ))

    # Occasionally a full-network outage...
    if rng.random() < 0.3:
        start, end = window(0.15, 0.35)
        if end > start:
            events.append(OutageFault(start=start, end=end))

    # ...or a skewed clock.
    if rng.random() < 0.4:
        start, end = window()
        if end > start:
            events.append(ClockSkewFault(
                start=start, end=end,
                party=rng.randint(1, n),
                offset=round(rng.uniform(0.05, 0.3), 3),
            ))

    scenario = Scenario(name=f"chaos-{seed}", seed=seed, events=tuple(events))
    scenario.validate(n)
    return scenario
