"""Execute a :class:`~repro.faults.scenario.Scenario` against a cluster.

Two mechanisms, mirroring the two halves of the fault model:

* **timed faults** (crash / recover / partition) are scheduled on the
  simulator's event queue at install time and fire at their scenario
  timestamps, driving the existing :class:`repro.sim.network.Network`
  primitives;
* **per-delivery faults** (link drop / duplication / corruption / latency,
  outages, clock skew) are applied by a :class:`FaultInjector` installed
  as the network's interceptor — every remote delivery passes through
  :meth:`FaultInjector.intercept` *after* its natural delay is computed,
  and the injector either returns ``None`` (deliver unchanged: the fast
  path, bit-identical to a run with no scenario attached) or a
  replacement delivery plan.

Determinism: every probabilistic decision draws from the injector's own
``Random(f"faults/{seed}/{name}")`` stream — never from the simulation's
RNG — and decisions are consumed in delivery order, which the simulator
makes deterministic.  Attaching a scenario therefore never perturbs the
simulation's RNG stream, and the same scenario seed reproduces the same
faults bit-for-bit at any job count.

Byzantine corruption is static, so it is applied at *cluster build* time
instead: :func:`scenario_corrupt` turns a scenario's ``ByzantineFault``
declarations into the ``ClusterConfig.corrupt`` dict via the behaviour
registry (:data:`BEHAVIORS`).
"""

from __future__ import annotations

import dataclasses
from random import Random
from typing import Any, Callable

from ..adversary.behaviors import (
    AggressiveByzantineMixin,
    ConsistentFailureMixin,
    EquivocatingProposerMixin,
    LazyLeaderMixin,
    SilentMixin,
    SlowProposerMixin,
    WithholdFinalizationMixin,
    WithholdNotarizationMixin,
    corrupt_class,
)
from ..sim.network import Network, message_kind
from .scenario import (
    ByzantineFault,
    ClockSkewFault,
    CrashFault,
    LinkFault,
    OutageFault,
    PartitionFault,
    RecoverFault,
    Scenario,
    ScenarioError,
)

# -- Byzantine behaviour registry ---------------------------------------------

#: behaviour name -> builder(base_party_class, params_dict) -> party class.
BEHAVIORS: dict[str, Callable[[type, dict], type]] = {}


def register_behavior(name: str, builder: Callable[[type, dict], type]) -> None:
    """Register a named Byzantine behaviour (duplicate names are bugs)."""
    if name in BEHAVIORS:
        raise ValueError(f"duplicate fault behavior {name!r}")
    BEHAVIORS[name] = builder


def _mixin_behavior(mixin: type) -> Callable[[type, dict], type]:
    """A behaviour that composes an adversary mixin over the base class.

    Params become class attributes on the composed class (the same
    convention the hand-wired experiments used, e.g. ``propose_lag``).
    """

    def build(base: type, params: dict) -> type:
        cls = corrupt_class(base, mixin)
        for key, value in params.items():
            if not hasattr(cls, key):
                raise ScenarioError(
                    f"behavior param {key!r} is not an attribute of {cls.__name__}"
                )
            setattr(cls, key, value)
        return cls

    return build


register_behavior("silent", _mixin_behavior(SilentMixin))
register_behavior("consistent-failure", _mixin_behavior(ConsistentFailureMixin))
register_behavior("slow-proposer", _mixin_behavior(SlowProposerMixin))
register_behavior("lazy-leader", _mixin_behavior(LazyLeaderMixin))
register_behavior("withhold-finalization", _mixin_behavior(WithholdFinalizationMixin))
register_behavior("withhold-notarization", _mixin_behavior(WithholdNotarizationMixin))
register_behavior("equivocate", _mixin_behavior(EquivocatingProposerMixin))
register_behavior("aggressive", _mixin_behavior(AggressiveByzantineMixin))


def scenario_corrupt(scenario: Scenario, base: type) -> dict[int, type]:
    """The ``ClusterConfig.corrupt`` dict for a scenario's Byzantine events.

    Declarations with identical (behaviour, params) share one composed
    class — matching the hand-wired experiments, where all t slow
    proposers were instances of a single ``corrupt_class`` product.
    """
    cache: dict[tuple, type] = {}
    corrupt: dict[int, type] = {}
    for fault in scenario.byzantine().values():
        key = (fault.behavior, fault.params)
        cls = cache.get(key)
        if cls is None:
            builder = BEHAVIORS.get(fault.behavior)
            if builder is None:
                raise ScenarioError(
                    f"unknown fault behavior {fault.behavior!r} "
                    f"(registered: {sorted(BEHAVIORS)})"
                )
            cls = builder(base, fault.kwargs)
            cache[key] = cls
        corrupt[fault.party] = cls
    return corrupt


# -- payload corruption -------------------------------------------------------

#: Authenticated fields to tamper with, in preference order: flipping any
#: of these makes the receiver's signature / hash verification fail.
_TAMPER_FIELDS = (
    "block_hash",
    "digest",
    "parent_hash",
    "parent_digest",
    "share",
    "signature",
)


def _flip(value: bytes) -> bytes:
    return bytes([value[0] ^ 0xFF]) + value[1:]


def corrupt_message(message: object) -> object | None:
    """A tampered copy of ``message``, or ``None`` when nothing is tamperable.

    Messages are shared across receivers, so corruption NEVER mutates —
    it builds a replacement via :func:`dataclasses.replace` (or a fresh
    ``bytes`` object).  The tampered field is always one the receiver
    authenticates, so corrupted traffic is rejected (``pool.invalid``) or
    fails authenticity and is harmlessly buffered; it can never enter an
    honest party's output.
    """
    if isinstance(message, (bytes, bytearray)):
        return _flip(bytes(message)) if message else None
    if not dataclasses.is_dataclass(message):
        return None
    by_name = {f.name: getattr(message, f.name) for f in dataclasses.fields(message)}
    names = [n for n in _TAMPER_FIELDS if isinstance(by_name.get(n), bytes)]
    names += [
        n for n, v in by_name.items()
        if n not in _TAMPER_FIELDS and isinstance(v, bytes)
    ]
    for name in names:
        value = by_name[name]
        if not value:
            continue
        try:
            return dataclasses.replace(message, **{name: _flip(value)})
        except (TypeError, ValueError):
            continue
    return None


# -- the injector -------------------------------------------------------------


def _merge_outages(events: list[OutageFault]) -> tuple[tuple[float, float], ...]:
    """Sorted, non-overlapping ``(start, end)`` outage windows."""
    windows = sorted((e.start, e.end) for e in events)
    merged: list[tuple[float, float]] = []
    for start, end in windows:
        if merged and start <= merged[-1][1]:
            merged[-1] = (merged[-1][0], max(merged[-1][1], end))
        else:
            merged.append((start, end))
    return tuple(merged)


class FaultInjector:
    """Executes one scenario against one network.

    Build it after the cluster, call :meth:`install` before
    ``cluster.start()``, run the simulation, then read :attr:`counters`
    (and the ``fault.*`` trace events, when tracing) for what fired.
    """

    def __init__(self, scenario: Scenario, network: Network) -> None:
        scenario.validate(network.n)
        self.scenario = scenario
        self.network = network
        self.sim = network.sim
        #: Fault-decision RNG: independent of the simulation's stream.
        self.rng = Random(f"faults/{scenario.seed}/{scenario.name}")
        #: How many per-delivery faults fired, by kind.
        self.counters: dict[str, int] = {
            "drop": 0, "duplicate": 0, "corrupt": 0, "delay": 0,
        }
        events = scenario.events
        self._links = tuple(e for e in events if isinstance(e, LinkFault))
        self._skews = tuple(e for e in events if isinstance(e, ClockSkewFault))
        self._outages = _merge_outages(
            [e for e in events if isinstance(e, OutageFault)]
        )
        self._installed = False

    # -- installation ---------------------------------------------------------

    def install(self) -> "FaultInjector":
        """Schedule timed faults and hook per-delivery interception."""
        if self._installed:
            raise ValueError("scenario already installed")
        self._installed = True
        sim = self.sim
        tracer = sim.tracer
        if tracer.enabled:
            tracer.emit(
                time=sim.now, party=0, protocol="fault", round=None,
                kind="fault.inject",
                payload={
                    "scenario": self.scenario.name,
                    "seed": self.scenario.seed,
                    "events": len(self.scenario.events),
                },
            )
        for event in self.scenario.events:
            if isinstance(event, CrashFault):
                sim.schedule_at(event.at, lambda e=event: self._fire_crash(e))
            elif isinstance(event, RecoverFault):
                sim.schedule_at(event.at, lambda e=event: self._fire_recover(e))
            elif isinstance(event, PartitionFault):
                sim.schedule_at(event.at, lambda e=event: self._fire_partition(e))
        if self.scenario.needs_interceptor():
            self.network.install_faults(self)
            if tracer.enabled:
                # Outage markers are trace-only: pure no-ops for the
                # simulation, so untraced runs carry zero extra events.
                for start, end in self._outages:
                    sim.schedule_at(start, lambda e=end: self._mark_outage(True, e))
                    sim.schedule_at(end, lambda e=end: self._mark_outage(False, e))
        return self

    def _fire_crash(self, event: CrashFault) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(time=self.sim.now, party=event.party, protocol="fault",
                        round=None, kind="fault.crash")
        self.network.crash(event.party)

    def _fire_recover(self, event: RecoverFault) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(time=self.sim.now, party=event.party, protocol="fault",
                        round=None, kind="fault.recover")
        self.network.revive(event.party)

    def _fire_partition(self, event: PartitionFault) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(time=self.sim.now, party=0, protocol="fault", round=None,
                        kind="fault.partition",
                        payload={"group": sorted(event.group),
                                 "heal_time": event.heal_at})
        self.network.add_partition(set(event.group), event.heal_at)

    def _mark_outage(self, begin: bool, end: float) -> None:
        tracer = self.sim.tracer
        if not tracer.enabled:
            return
        if begin:
            tracer.emit(time=self.sim.now, party=0, protocol="fault", round=None,
                        kind="fault.outage.begin", payload={"until": end})
        else:
            tracer.emit(time=self.sim.now, party=0, protocol="fault", round=None,
                        kind="fault.outage.end")

    # -- per-delivery interception --------------------------------------------

    def _outage_end(self, time: float) -> float | None:
        for start, end in self._outages:
            if start <= time < end:
                return end
            if time < start:
                return None
        return None

    def intercept(
        self, sender: int, receiver: int, message: object, delay: float
    ) -> list[tuple[float, object]] | None:
        """Apply active per-delivery faults; ``None`` = deliver unchanged."""
        now = self.sim.now
        new_delay = delay
        out = message
        touched = False
        duplicates = 0
        # Clock skew: the sender's late clock delays its outbound traffic.
        for skew in self._skews:
            if skew.party == sender and skew.start <= now < skew.end:
                new_delay += skew.offset
                touched = True
                self._note_delay(message, receiver, skew.offset)
        # Outage stretch: deliveries sent in (or landing in) an outage
        # window arrive one natural delay after the window closes — the
        # rule of delays.IntermittentSynchrony, expressed declaratively.
        if self._outages:
            landing = now + new_delay
            end_landing = self._outage_end(landing)
            if end_landing is not None:
                target = end_landing
            elif self._outage_end(now) is not None:
                target = landing
            else:
                target = None
            if target is not None:
                stretched = (target - now) + new_delay
                self._note_delay(message, receiver, stretched - new_delay)
                new_delay = stretched
                touched = True
        # Link faults: independent rolls per matching event, in schedule
        # order (a fixed order keeps the RNG stream deterministic).
        for link in self._links:
            if not link.start <= now < link.end:
                continue
            if link.sender is not None and link.sender != sender:
                continue
            if link.receiver is not None and link.receiver != receiver:
                continue
            if link.drop_prob > 0.0 and self.rng.random() < link.drop_prob:
                self.counters["drop"] += 1
                self._note(message, receiver, "fault.drop")
                return []
            if link.corrupt_prob > 0.0 and self.rng.random() < link.corrupt_prob:
                self.counters["corrupt"] += 1
                self._note(message, receiver, "fault.corrupt")
                tampered = corrupt_message(out)
                if tampered is None:
                    # Nothing tamperable: to the receiver, an unverifiable
                    # message and a lost one are indistinguishable.
                    return []
                out = tampered
                touched = True
            if link.extra_delay > 0.0 or link.jitter > 0.0:
                extra = link.extra_delay
                if link.jitter > 0.0:
                    extra += self.rng.uniform(0.0, link.jitter)
                new_delay += extra
                touched = True
                self._note_delay(message, receiver, extra)
            if link.duplicate_prob > 0.0 and self.rng.random() < link.duplicate_prob:
                duplicates += 1
                self.counters["duplicate"] += 1
                self._note(message, receiver, "fault.duplicate")
        if not touched and duplicates == 0:
            return None
        hops: list[tuple[float, object]] = [(new_delay, out)]
        for _ in range(duplicates):
            # The duplicate trails by a uniform fraction of the delay.
            hops.append((new_delay + self.rng.uniform(0.0, new_delay), out))
        return hops

    def _note(self, message: object, receiver: int, kind: str) -> None:
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=receiver, protocol="fault", round=None,
                kind=kind,
                payload={"kind": message_kind(message), "receiver": receiver},
            )

    def _note_delay(self, message: object, receiver: int, extra: float) -> None:
        self.counters["delay"] += 1
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=receiver, protocol="fault", round=None,
                kind="fault.delay",
                payload={"kind": message_kind(message), "receiver": receiver,
                         "extra": extra},
            )


def install_scenario(cluster, scenario: Scenario) -> FaultInjector:
    """Validate ``scenario`` against ``cluster`` and install it.

    Call between ``build_cluster`` and ``cluster.start()`` so that timed
    faults scheduled at t=0 precede protocol traffic.
    """
    return FaultInjector(scenario, cluster.network).install()
