"""Declarative, seeded fault injection for the simulator.

See ``docs/FAULTS.md`` for the fault model, the scenario schema and the
invariant definitions.  Typical use::

    from repro.faults import Scenario, CrashFault, RecoverFault
    from repro.faults import install_scenario, check_invariants

    scenario = Scenario(name="one-crash", seed=7, events=(
        CrashFault(at=2.0, party=3),
        RecoverFault(at=6.0, party=3),
    ))
    cluster = build_cluster(config)
    install_scenario(cluster, scenario)
    cluster.start()
    cluster.run_for(20.0)
    report = check_invariants(cluster, scenario, duration=20.0)
    assert report.ok, report.describe()
"""

from .generate import CHAOS_BEHAVIORS, generate_scenario
from .inject import (
    BEHAVIORS,
    FaultInjector,
    corrupt_message,
    install_scenario,
    register_behavior,
    scenario_corrupt,
)
from .invariants import InvariantReport, Violation, check_invariants
from .scenario import (
    ByzantineFault,
    ClockSkewFault,
    CrashFault,
    EVENT_TYPES,
    FaultEvent,
    LinkFault,
    OutageFault,
    PartitionFault,
    RecoverFault,
    Scenario,
    ScenarioError,
    outage_schedule,
)

__all__ = [
    "BEHAVIORS",
    "ByzantineFault",
    "CHAOS_BEHAVIORS",
    "ClockSkewFault",
    "CrashFault",
    "EVENT_TYPES",
    "FaultEvent",
    "FaultInjector",
    "InvariantReport",
    "LinkFault",
    "OutageFault",
    "PartitionFault",
    "RecoverFault",
    "Scenario",
    "ScenarioError",
    "Violation",
    "check_invariants",
    "corrupt_message",
    "generate_scenario",
    "install_scenario",
    "outage_schedule",
    "register_behavior",
    "scenario_corrupt",
]
