"""Declarative fault scenarios: typed, seeded schedules of fault events.

The paper's robustness claims (Table 1 under f Byzantine parties,
liveness after partitions heal in the partially-synchronous model) are
about *behaviour under faults*.  A :class:`Scenario` makes the fault side
of such an experiment first-class data instead of hand-wired
``Network.crash`` calls: a named, seeded, composable schedule of typed
fault events that can be validated, serialized to JSON, generated
randomly (:mod:`repro.faults.generate`) and executed against any cluster
(:mod:`repro.faults.inject`).

The fault model (documented in ``docs/FAULTS.md``) distinguishes:

* **process faults** — :class:`CrashFault` / :class:`RecoverFault`
  (a node going silent and rejoining) and :class:`ByzantineFault`
  (a statically corrupted party running an adversary behaviour from
  :mod:`repro.adversary`);
* **network faults** — :class:`PartitionFault` (messages across the cut
  held until heal), :class:`LinkFault` (per-link probabilistic drop,
  duplication, payload corruption, latency and jitter inside a time
  window), :class:`OutageFault` (a full-network asynchronous stretch:
  deliveries land after the outage ends, realising the paper's
  intermittent-synchrony assumption), and :class:`ClockSkewFault`
  (a party whose clock runs late: its outbound traffic lags by the
  offset).

All timestamps are simulator seconds.  Events are frozen dataclasses so
scenarios are hashable, picklable and comparable — the determinism the
parallel runner relies on.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields
from typing import Any, Iterator, Mapping


@dataclass(frozen=True)
class CrashFault:
    """Silence ``party`` at time ``at`` (crash failure / node offline)."""

    at: float
    party: int

    kind = "crash"


@dataclass(frozen=True)
class RecoverFault:
    """Bring a previously crashed ``party`` back at time ``at``."""

    at: float
    party: int

    kind = "recover"


@dataclass(frozen=True)
class PartitionFault:
    """Partition ``group`` from the rest from ``at`` until ``heal_at``.

    Messages across the cut are held back and delivered at heal time, so
    eventual delivery — the paper's standing assumption — holds.
    """

    at: float
    group: tuple[int, ...]
    heal_at: float

    kind = "partition"


@dataclass(frozen=True)
class LinkFault:
    """Probabilistic per-link interference inside ``[start, end)``.

    ``sender``/``receiver`` of ``None`` match any party, so one event can
    degrade a single directed link, everything a party sends, everything
    it receives, or the whole fabric.  Within the window each delivery
    independently suffers:

    * ``drop_prob`` — lost outright (windows are finite, so eventual
      delivery holds *after* the fault clears; protocols recover via
      rebroadcast and the catch-up subprotocol);
    * ``duplicate_prob`` — delivered twice (the second copy trails by a
      uniform fraction of the original delay);
    * ``corrupt_prob`` — the payload is tampered in flight; signature /
      hash checks at the receiver must reject it (messages that carry no
      tamperable authenticated field are dropped instead — equivalent
      from the receiver's point of view);
    * ``extra_delay`` + uniform ``jitter`` — a latency spike.
    """

    start: float
    end: float
    sender: int | None = None
    receiver: int | None = None
    drop_prob: float = 0.0
    duplicate_prob: float = 0.0
    corrupt_prob: float = 0.0
    extra_delay: float = 0.0
    jitter: float = 0.0

    kind = "link"


@dataclass(frozen=True)
class OutageFault:
    """A full-network asynchronous stretch over ``[start, end)``.

    Any message sent during the window, or whose natural arrival lands in
    it, is held so that it arrives one base delay after the window ends —
    exactly the stretch rule of
    :class:`repro.sim.delays.IntermittentSynchrony`, but declarative and
    composable with the other fault types.  A schedule of outages is how
    the intermittent-synchrony experiment (E10) is expressed as a
    scenario; see :func:`outage_schedule`.
    """

    start: float
    end: float

    kind = "outage"


@dataclass(frozen=True)
class ClockSkewFault:
    """``party``'s clock runs ``offset`` seconds late during the window.

    Modelled at the network boundary: everything the party sends inside
    ``[start, end)`` arrives ``offset`` seconds later than it would have
    (a late clock makes every locally-timed action late).  The party's
    *inbound* traffic is unaffected.
    """

    start: float
    end: float
    party: int
    offset: float

    kind = "clock-skew"


@dataclass(frozen=True)
class ByzantineFault:
    """Statically corrupt ``party`` with a named adversary behaviour.

    ``behavior`` names an entry in the behaviour registry
    (:data:`repro.faults.inject.BEHAVIORS`); ``params`` are its keyword
    arguments as a sorted items tuple (hashable and picklable, matching
    the :class:`~repro.experiments.runner.RunSpec` convention).
    Byzantine corruption is static (the paper's model), so this event
    has no timestamp — it applies from the start of the run.
    """

    party: int
    behavior: str
    params: tuple[tuple[str, Any], ...] = ()

    kind = "byzantine"

    @property
    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)


#: Every concrete event type, keyed by its ``kind`` tag.
EVENT_TYPES: dict[str, type] = {
    cls.kind: cls
    for cls in (
        CrashFault,
        RecoverFault,
        PartitionFault,
        LinkFault,
        OutageFault,
        ClockSkewFault,
        ByzantineFault,
    )
}

FaultEvent = (
    CrashFault
    | RecoverFault
    | PartitionFault
    | LinkFault
    | OutageFault
    | ClockSkewFault
    | ByzantineFault
)


class ScenarioError(ValueError):
    """A scenario failed validation (inconsistent or out-of-range events)."""


def _settle_time(event: FaultEvent) -> float:
    """When this event's disturbance is over (static faults settle at 0)."""
    if isinstance(event, (CrashFault, RecoverFault)):
        return event.at
    if isinstance(event, PartitionFault):
        return event.heal_at
    if isinstance(event, (LinkFault, OutageFault, ClockSkewFault)):
        return event.end
    return 0.0  # ByzantineFault: standing corruption, tolerated by assumption


@dataclass(frozen=True)
class Scenario:
    """A named, seeded schedule of fault events.

    ``seed`` drives every probabilistic decision the injector makes while
    executing the scenario (drop/duplicate/corrupt rolls, jitter), through
    an RNG stream independent of the simulation's own — so attaching a
    scenario is deterministic and repeatable by construction.
    """

    name: str
    seed: int = 0
    events: tuple[FaultEvent, ...] = ()

    def __iter__(self) -> Iterator[FaultEvent]:
        return iter(self.events)

    def of_kind(self, kind: str) -> list[FaultEvent]:
        return [e for e in self.events if e.kind == kind]

    def byzantine(self) -> dict[int, ByzantineFault]:
        """Corrupted party index -> its behaviour declaration."""
        return {e.party: e for e in self.events if isinstance(e, ByzantineFault)}

    def clear_time(self) -> float:
        """When the last fault clears (0.0 for an all-static scenario).

        Standing Byzantine corruption does not count — the protocol is
        expected to stay live *despite* it (t < n/3); the liveness
        invariant measures resumption after every *transient* fault has
        settled.
        """
        return max((_settle_time(e) for e in self.events), default=0.0)

    def needs_interceptor(self) -> bool:
        """True when any event requires the per-delivery network hook."""
        return any(
            isinstance(e, (LinkFault, OutageFault, ClockSkewFault)) for e in self.events
        )

    # -- validation -----------------------------------------------------------

    def validate(self, n: int) -> None:
        """Raise :class:`ScenarioError` unless the scenario is coherent."""

        def check_party(index: int, what: str) -> None:
            if not 1 <= index <= n:
                raise ScenarioError(f"{what}: party {index} outside 1..{n}")

        def check_prob(value: float, what: str) -> None:
            if not 0.0 <= value <= 1.0:
                raise ScenarioError(f"{what}: probability {value} outside [0, 1]")

        crash_state: dict[int, list[tuple[float, bool]]] = {}
        byz: set[int] = set()
        for event in self.events:
            if isinstance(event, (CrashFault, RecoverFault)):
                check_party(event.party, event.kind)
                if event.at < 0:
                    raise ScenarioError(f"{event.kind}: negative time {event.at}")
                crash_state.setdefault(event.party, []).append(
                    (event.at, isinstance(event, CrashFault))
                )
            elif isinstance(event, PartitionFault):
                if not event.group:
                    raise ScenarioError("partition: empty group")
                for index in event.group:
                    check_party(index, "partition")
                if event.heal_at <= event.at:
                    raise ScenarioError(
                        f"partition: heal_at {event.heal_at} not after {event.at}"
                    )
            elif isinstance(event, (LinkFault, OutageFault, ClockSkewFault)):
                if event.end <= event.start or event.start < 0:
                    raise ScenarioError(
                        f"{event.kind}: bad window [{event.start}, {event.end})"
                    )
                if isinstance(event, LinkFault):
                    for index, what in ((event.sender, "sender"), (event.receiver, "receiver")):
                        if index is not None:
                            check_party(index, f"link {what}")
                    check_prob(event.drop_prob, "link drop_prob")
                    check_prob(event.duplicate_prob, "link duplicate_prob")
                    check_prob(event.corrupt_prob, "link corrupt_prob")
                    if event.extra_delay < 0 or event.jitter < 0:
                        raise ScenarioError("link: negative delay/jitter")
                if isinstance(event, ClockSkewFault):
                    check_party(event.party, "clock-skew")
                    if event.offset < 0:
                        raise ScenarioError("clock-skew: negative offset")
            elif isinstance(event, ByzantineFault):
                check_party(event.party, "byzantine")
                if event.party in byz:
                    raise ScenarioError(
                        f"byzantine: party {event.party} corrupted twice"
                    )
                byz.add(event.party)
            else:  # pragma: no cover - EVENT_TYPES is the closed set
                raise ScenarioError(f"unknown event type {type(event).__name__}")
        # Crash/recover must alternate per party, in time order.
        for party, transitions in crash_state.items():
            transitions.sort(key=lambda item: item[0])
            down = False
            for at, is_crash in transitions:
                if is_crash and down:
                    raise ScenarioError(f"party {party} crashed twice without recover")
                if not is_crash and not down:
                    raise ScenarioError(f"party {party} recovered without a crash")
                down = is_crash
        overlap = byz & {
            e.party for e in self.events if isinstance(e, (CrashFault, RecoverFault))
        }
        if overlap:
            raise ScenarioError(
                f"parties both Byzantine and crash-scheduled: {sorted(overlap)}"
            )

    # -- serialization ---------------------------------------------------------

    def to_dict(self) -> dict:
        """JSON-safe form (the schema documented in ``docs/FAULTS.md``)."""
        out_events = []
        for event in self.events:
            entry: dict[str, Any] = {"kind": event.kind}
            for f in fields(event):
                value = getattr(event, f.name)
                if f.name == "group":
                    value = list(value)
                elif f.name == "params":
                    value = dict(value)
                entry[f.name] = value
            out_events.append(entry)
        return {"name": self.name, "seed": self.seed, "events": out_events}

    @classmethod
    def from_dict(cls, data: Mapping) -> "Scenario":
        events = []
        for entry in data.get("events", ()):
            entry = dict(entry)
            kind = entry.pop("kind", None)
            event_type = EVENT_TYPES.get(kind)
            if event_type is None:
                raise ScenarioError(f"unknown fault event kind {kind!r}")
            if "group" in entry:
                entry["group"] = tuple(entry["group"])
            if "params" in entry:
                entry["params"] = tuple(sorted(dict(entry["params"]).items()))
            try:
                events.append(event_type(**entry))
            except TypeError as exc:
                raise ScenarioError(f"bad {kind} event: {exc}") from None
        return cls(
            name=str(data.get("name", "scenario")),
            seed=int(data.get("seed", 0)),
            events=tuple(events),
        )

    def describe(self) -> str:
        """Compact one-line summary, e.g. ``2 crash, 1 partition, 1 link``."""
        counts: dict[str, int] = {}
        for event in self.events:
            counts[event.kind] = counts.get(event.kind, 0) + 1
        if not counts:
            return "fault-free"
        return ", ".join(f"{count} {kind}" for kind, count in sorted(counts.items()))


def outage_schedule(
    period: float, sync_len: float, duration: float
) -> tuple[OutageFault, ...]:
    """Outage windows realising intermittent synchrony over ``duration``.

    The network is synchronous for the first ``sync_len`` seconds of every
    ``period`` and in outage for the rest — the complement of
    :meth:`repro.sim.delays.IntermittentSynchrony.in_sync_window`, so a
    scenario built from these windows reproduces that delay model exactly
    (pinned by ``tests/faults/test_ports.py``).
    """
    if not 0 < sync_len <= period:
        raise ScenarioError("need 0 < sync_len <= period")
    windows = []
    start = sync_len
    while start < duration + period:
        windows.append(OutageFault(start=start, end=start - sync_len + period))
        start += period
    return tuple(windows)
