"""Peer-to-peer gossip sub-layer (the IC's dissemination fabric, used by ICC1)."""

from .overlay import build_overlay, overlay_diameter
from .protocol import (
    Advert,
    ArtifactDelivery,
    ArtifactRequest,
    GOSSIP_MESSAGE_TYPES,
    GossipNode,
    GossipParams,
    Push,
    artifact_id,
)

__all__ = [
    "build_overlay",
    "overlay_diameter",
    "Advert",
    "ArtifactDelivery",
    "ArtifactRequest",
    "GOSSIP_MESSAGE_TYPES",
    "GossipNode",
    "GossipParams",
    "Push",
    "artifact_id",
]
