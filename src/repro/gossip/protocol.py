"""The peer-to-peer gossip sub-layer (advertise / request / deliver).

This is the dissemination mechanism Protocol ICC1 integrates with
(Section 1: "Protocol ICC1 is designed to be integrated with a peer-to-peer
gossip sub-layer, which reduces the bottleneck created at the leader for
disseminating large blocks").  It follows the Internet Computer's design:

* **small artifacts** (signature shares, notarizations, beacon shares) are
  *pushed*: flooded to overlay neighbours, with a seen-set stopping loops;
* **large artifacts** (blocks) are *advertised by hash*: a node sends an
  advert to its neighbours; a neighbour missing the artifact requests the
  body from one advertiser, re-requesting from another advertiser on
  timeout (so a corrupt advertiser cannot suppress delivery).

The overlay graph comes from :mod:`repro.gossip.overlay`.  The gossip layer
reduces the *leader's* egress for a block of size S from (n-1)·S to d·S;
total network traffic stays O(n·S) but the bottleneck [35] moves away from
the proposer — exactly the effect experiment E7 measures.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from ..crypto.hashing import DIGEST_SIZE, tagged_hash
from ..obs import short_id
from ..sim.network import Network, wire_size as artifact_wire_size
from ..core import messages as msg


def artifact_id(artifact: object) -> bytes:
    """Content-derived identity used for gossip dedup.

    Semantically-equivalent artifacts (e.g. two notarizations of the same
    block combined from different share subsets) share an id, so the gossip
    layer never transports redundant aggregates.
    """
    if isinstance(artifact, msg.Block):
        return tagged_hash("gossip/id/block", artifact.hash)
    if isinstance(artifact, msg.Authenticator):
        return tagged_hash("gossip/id/auth", artifact.block_hash)
    if isinstance(artifact, msg.Notarization):
        return tagged_hash("gossip/id/notarization", artifact.block_hash)
    if isinstance(artifact, msg.Finalization):
        return tagged_hash("gossip/id/finalization", artifact.block_hash)
    if isinstance(artifact, msg.NotarizationShare):
        return tagged_hash(
            "gossip/id/notar-share", artifact.block_hash, artifact.signer.to_bytes(4, "big")
        )
    if isinstance(artifact, msg.FinalizationShare):
        return tagged_hash(
            "gossip/id/final-share", artifact.block_hash, artifact.signer.to_bytes(4, "big")
        )
    if isinstance(artifact, msg.BeaconShare):
        return tagged_hash(
            "gossip/id/beacon-share",
            artifact.round.to_bytes(8, "big"),
            artifact.signer.to_bytes(4, "big"),
        )
    raise TypeError(f"no gossip identity for {type(artifact).__name__}")


# -- gossip wire messages -----------------------------------------------------


@dataclass(frozen=True)
class Advert:
    """'I have artifact <id> of <size> bytes' — sent to neighbours."""

    artifact_id: bytes
    size: int
    sender: int

    kind = "gossip-advert"

    def wire_size(self) -> int:
        return DIGEST_SIZE + 8 + 4


@dataclass(frozen=True)
class ArtifactRequest:
    """'Please send me artifact <id>' — sent to one advertiser."""

    artifact_id: bytes
    requester: int

    kind = "gossip-request"

    def wire_size(self) -> int:
        return DIGEST_SIZE + 4


@dataclass(frozen=True)
class ArtifactDelivery:
    """The artifact body, in response to a request."""

    artifact_id: bytes
    artifact: object = field(compare=False)

    @property
    def kind(self) -> str:
        inner = getattr(self.artifact, "kind", type(self.artifact).__name__)
        return f"gossip-body:{inner}"

    def wire_size(self) -> int:
        return DIGEST_SIZE + artifact_wire_size(self.artifact)


@dataclass(frozen=True)
class Push:
    """A small artifact flooded directly (no advert round-trip)."""

    artifact_id: bytes
    artifact: object = field(compare=False)

    @property
    def kind(self) -> str:
        inner = getattr(self.artifact, "kind", type(self.artifact).__name__)
        return f"gossip-push:{inner}"

    def wire_size(self) -> int:
        return DIGEST_SIZE + artifact_wire_size(self.artifact)


GOSSIP_MESSAGE_TYPES = (Advert, ArtifactRequest, ArtifactDelivery, Push)


@dataclass(frozen=True)
class GossipParams:
    """Tuning knobs for the gossip sub-layer."""

    degree: int = 4
    push_threshold: int = 1024  # artifacts <= this many bytes are pushed
    request_timeout: float = 1.0  # retry a request after this long
    max_request_cycles: int = 25  # give up after this many full retry sweeps
                                  # (re-armed by any fresh advert)


class GossipNode:
    """One party's endpoint of the gossip sub-layer."""

    def __init__(
        self,
        index: int,
        network: Network,
        neighbors: list[int],
        params: GossipParams,
        deliver: Callable[[object], None],
    ) -> None:
        self.index = index
        self.network = network
        self.sim = network.sim
        self.tracer = network.sim.tracer
        self.meter = network.sim.meter
        self.neighbors = list(neighbors)
        self.params = params
        self.deliver = deliver
        self._have: dict[bytes, object] = {}
        self._advertisers: dict[bytes, list[int]] = {}
        self._requested: dict[bytes, set[int]] = {}
        self._retry_cycles: dict[bytes, int] = {}

    # -- local origin -----------------------------------------------------------

    def publish(self, artifact: object) -> None:
        """Inject a locally-created artifact into the gossip network."""
        aid = artifact_id(artifact)
        if aid in self._have:
            return
        self._have[aid] = artifact
        if self.tracer.enabled:
            size = artifact_wire_size(artifact)
            self.tracer.emit(
                time=self.sim.now, party=self.index, protocol="gossip",
                round=getattr(artifact, "round", None), kind="gossip.publish",
                payload={
                    "id": short_id(aid),
                    "kind": getattr(artifact, "kind", type(artifact).__name__),
                    "bytes": size,
                    "push": size <= self.params.push_threshold,
                },
            )
        self._propagate(aid, artifact, exclude=None)

    def _propagate(self, aid: bytes, artifact: object, exclude: int | None) -> None:
        targets = [p for p in self.neighbors if p != exclude]
        if not targets:
            return
        size = artifact_wire_size(artifact)
        if size <= self.params.push_threshold:
            message = Push(artifact_id=aid, artifact=artifact)
        else:
            message = Advert(artifact_id=aid, size=size, sender=self.index)
        self.network.multicast(self.index, targets, message)

    # -- network ingress ----------------------------------------------------------

    def on_network(self, message: object) -> bool:
        """Handle a gossip wire message; returns False if not one."""
        if isinstance(message, Push):
            self._on_push(message)
        elif isinstance(message, Advert):
            self._on_advert(message)
        elif isinstance(message, ArtifactRequest):
            self._on_request(message)
        elif isinstance(message, ArtifactDelivery):
            self._on_delivery(message)
        else:
            return False
        return True

    def _on_push(self, message: Push) -> None:
        if message.artifact_id in self._have:
            return
        self._have[message.artifact_id] = message.artifact
        if self.tracer.enabled:
            self._trace_deliver(message.artifact_id, message.artifact, via="push")
        if self.meter.enabled:
            self.meter.count("gossip.delivered")
        self.deliver(message.artifact)
        self._propagate(message.artifact_id, message.artifact, exclude=None)

    def _trace_deliver(self, aid: bytes, artifact: object, via: str) -> None:
        self.tracer.emit(
            time=self.sim.now, party=self.index, protocol="gossip",
            round=getattr(artifact, "round", None), kind="gossip.deliver",
            payload={
                "id": short_id(aid),
                "kind": getattr(artifact, "kind", type(artifact).__name__),
                "bytes": artifact_wire_size(artifact),
                "via": via,
            },
        )

    def _on_advert(self, advert: Advert) -> None:
        aid = advert.artifact_id
        if aid in self._have:
            return
        advertisers = self._advertisers.setdefault(aid, [])
        if advert.sender not in advertisers:
            advertisers.append(advert.sender)
        if aid not in self._requested:
            self._request_from_next(aid)

    def _request_from_next(self, aid: bytes) -> None:
        if aid in self._have:
            return
        asked = self._requested.setdefault(aid, set())
        candidates = [p for p in self._advertisers.get(aid, []) if p not in asked]
        if not candidates:
            # Every known advertiser was tried; allow a fresh cycle so an
            # eventually-responsive peer is retried (eventual delivery).
            cycles = self._retry_cycles.get(aid, 0) + 1
            self._retry_cycles[aid] = cycles
            if cycles > self.params.max_request_cycles:
                # Stop burning events; a fresh advert re-arms the request.
                self._requested.pop(aid, None)
                if self.tracer.enabled:
                    self.tracer.emit(
                        time=self.sim.now, party=self.index, protocol="gossip",
                        round=None, kind="gossip.giveup",
                        payload={"id": short_id(aid), "cycles": cycles},
                    )
                return
            asked.clear()
            candidates = list(self._advertisers.get(aid, []))
            if not candidates:
                return
        target = candidates[0]
        asked.add(target)
        if self.tracer.enabled:
            self.tracer.emit(
                time=self.sim.now, party=self.index, protocol="gossip",
                round=None, kind="gossip.request",
                payload={"id": short_id(aid), "target": target,
                         "cycle": self._retry_cycles.get(aid, 0)},
            )
        self.network.send(
            self.index, target, ArtifactRequest(artifact_id=aid, requester=self.index)
        )
        self.sim.schedule(self.params.request_timeout, lambda: self._request_from_next(aid))

    def _on_request(self, request: ArtifactRequest) -> None:
        artifact = self._have.get(request.artifact_id)
        if artifact is None:
            return  # we don't have it (yet); requester will retry elsewhere
        self.network.send(
            self.index,
            request.requester,
            ArtifactDelivery(artifact_id=request.artifact_id, artifact=artifact),
        )

    def _on_delivery(self, delivery: ArtifactDelivery) -> None:
        aid = delivery.artifact_id
        if aid in self._have:
            return
        if artifact_id(delivery.artifact) != aid:
            return  # malformed or malicious body; ignore, retries continue
        self._have[aid] = delivery.artifact
        self._requested.pop(aid, None)
        if self.tracer.enabled:
            self._trace_deliver(aid, delivery.artifact, via="request")
        if self.meter.enabled:
            self.meter.count("gossip.delivered")
        self.deliver(delivery.artifact)
        self._propagate(aid, delivery.artifact, exclude=None)
