"""Gossip overlay topology.

The Internet Computer's peer-to-peer layer connects each node to a bounded
set of peers.  We model the overlay as a random d-regular connected graph
(via networkx, seeded for determinism).  The overlay determines which pairs
of parties exchange gossip traffic; the underlying latency of each overlay
link still comes from the simulator's delay model.
"""

from __future__ import annotations

import networkx as nx


def build_overlay(n: int, degree: int, seed: int = 0) -> dict[int, list[int]]:
    """Adjacency lists (party index -> sorted neighbours) for n parties.

    Falls back to a complete graph when n is too small for the requested
    degree.  Regenerates until connected (random regular graphs are almost
    always connected for d >= 3, so this terminates immediately in
    practice).
    """
    if n < 2:
        return {1: []} if n == 1 else {}
    d = min(degree, n - 1)
    if d >= n - 1:
        return {i: [j for j in range(1, n + 1) if j != i] for i in range(1, n + 1)}
    if (n * d) % 2 == 1:
        d += 1  # regular graphs need an even degree sum
        if d >= n - 1:
            return {i: [j for j in range(1, n + 1) if j != i] for i in range(1, n + 1)}
    for attempt in range(100):
        graph = nx.random_regular_graph(d, n, seed=seed + attempt)
        if nx.is_connected(graph):
            # networkx labels 0..n-1; shift to 1-based party indices.
            return {
                node + 1: sorted(neighbor + 1 for neighbor in graph.neighbors(node))
                for node in graph.nodes
            }
    raise RuntimeError(f"could not build a connected {d}-regular overlay for n={n}")


def overlay_diameter(adjacency: dict[int, list[int]]) -> int:
    """Diameter of the overlay — bounds gossip propagation hops."""
    graph = nx.Graph()
    graph.add_nodes_from(adjacency)
    for node, neighbors in adjacency.items():
        graph.add_edges_from((node, other) for other in neighbors)
    return nx.diameter(graph)
