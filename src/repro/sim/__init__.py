"""Discrete-event simulation substrate.

The testbed substitute for the Internet Computer deployment (DESIGN.md §2):
a deterministic event-driven simulator with pluggable network delay models
covering synchrony, asynchrony, partial synchrony, intermittent synchrony
and adversarial scheduling.
"""

from .events import CalendarEventQueue, EventHandle, EventQueue, HeapEventQueue
from .delays import (
    AdversarialDelay,
    DelayModel,
    FixedDelay,
    IntermittentSynchrony,
    MessageAwareDelay,
    PartialSynchrony,
    UniformDelay,
    WanDelay,
)
from .metrics import CommitRecord, Metrics, NullMetrics
from .network import Network, Receiver, message_kind, wire_size
from .simulator import Simulation

__all__ = [
    "AdversarialDelay",
    "DelayModel",
    "FixedDelay",
    "IntermittentSynchrony",
    "MessageAwareDelay",
    "PartialSynchrony",
    "UniformDelay",
    "WanDelay",
    "CommitRecord",
    "Metrics",
    "NullMetrics",
    "Network",
    "Receiver",
    "message_kind",
    "wire_size",
    "Simulation",
    "CalendarEventQueue",
    "EventHandle",
    "EventQueue",
    "HeapEventQueue",
]
