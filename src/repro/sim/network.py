"""The broadcast network connecting simulated parties.

Matches the communication model of Section 3.1:

* the only primitive honest parties use is **broadcast** (same message to
  everyone) — but the broadcast is *not secure*: a corrupt party may send
  different messages to different parties (:meth:`Network.send`), or
  nothing at all;
* scheduling of delivery is adversary-controlled in the worst case — the
  pluggable :class:`~repro.sim.delays.DelayModel` decides delays;
* every message from an honest party to an honest party is eventually
  delivered (delay models uphold this; crashes model *corrupt* parties).

Point-to-point ``send`` also exists because ICC2's reliable-broadcast
subprotocol and the gossip sub-layer are not all-to-all.
"""

from __future__ import annotations

from typing import Protocol

from .delays import DelayModel
from .metrics import Metrics
from .simulator import Simulation


class Receiver(Protocol):
    """What the network requires of an attached party."""

    index: int

    def on_receive(self, message: object) -> None: ...


def wire_size(message: object) -> int:
    """Size of a message on the wire, via duck typing.

    Message classes expose ``wire_size()``; raw bytes fall back to their
    length.  Anything else is a programming error — better loud than a
    silently meaningless traffic measurement.
    """
    method = getattr(message, "wire_size", None)
    if method is not None:
        return int(method())
    if isinstance(message, (bytes, bytearray)):
        return len(message)
    raise TypeError(f"cannot size message of type {type(message).__name__}")


def message_kind(message: object) -> str:
    """Metric label for a message, via duck typing."""
    kind = getattr(message, "kind", None)
    if kind is not None:
        return str(kind)
    return type(message).__name__


class Network:
    """Delay-model-driven message fabric for up to ``n`` parties."""

    def __init__(
        self,
        sim: Simulation,
        n: int,
        delay_model: DelayModel,
        metrics: Metrics | None = None,
        uplink_bps: float | None = None,
    ) -> None:
        """``uplink_bps`` (optional) models each node's finite upload
        bandwidth: transmissions serialize through the sender's NIC, so a
        message of size B adds B·8/uplink_bps of transmission time *and*
        queues behind the sender's earlier transmissions.  This is what
        turns the leader's (n-1)·S egress into real latency on a WAN — the
        bottleneck effect [35] measures and the reason ICC1/ICC2 exist.
        None = infinite bandwidth (pure propagation-delay model).
        """
        self.sim = sim
        self.n = n
        self.delay_model = delay_model
        self.metrics = metrics if metrics is not None else Metrics(n=n)
        self.uplink_bps = uplink_bps
        #: Probability a transmission is delivered twice (transport-level
        #: retries / gossip re-sends).  Protocol state must be idempotent
        #: under duplication — the pool's dedup guarantees it.
        self.duplicate_prob: float = 0.0
        self._uplink_free_at: dict[int, float] = {}
        self._parties: dict[int, Receiver] = {}
        self._crashed: set[int] = set()
        self._partitions: list[tuple[frozenset[int], float]] = []
        self._delivered = 0

    # -- topology management --------------------------------------------------

    def attach(self, party: Receiver) -> None:
        if not 1 <= party.index <= self.n:
            raise ValueError(f"party index {party.index} outside 1..{self.n}")
        if party.index in self._parties:
            raise ValueError(f"party {party.index} already attached")
        self._parties[party.index] = party

    def crash(self, index: int) -> None:
        """Silence a party (crash-failure corruption, or a node going
        offline): it neither sends nor receives, and messages addressed to
        it are *dropped* (unlike a partition, which holds them back)."""
        self._crashed.add(index)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(time=self.sim.now, party=index, protocol="net",
                        round=None, kind="net.crash")

    def revive(self, index: int) -> None:
        """Bring a crashed/offline party back.  In the paper's model a
        corrupt party stays corrupt; revive models an *honest* node that
        was offline and rejoins — the catch-up subprotocol's scenario."""
        self._crashed.discard(index)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(time=self.sim.now, party=index, protocol="net",
                        round=None, kind="net.revive")

    def is_crashed(self, index: int) -> bool:
        return index in self._crashed

    def add_partition(self, group: set[int], heal_time: float) -> None:
        """Until ``heal_time``, messages between ``group`` and the rest are
        held back (and delivered at heal time — eventual delivery holds)."""
        self._partitions.append((frozenset(group), heal_time))
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(time=self.sim.now, party=0, protocol="net", round=None,
                        kind="net.partition",
                        payload={"group": sorted(group), "heal_time": heal_time})

    def _partition_hold(self, sender: int, receiver: int) -> float:
        """Extra wait imposed by active partitions (0 when none)."""
        hold = 0.0
        now = self.sim.now
        for group, heal in self._partitions:
            if heal <= now:
                continue
            if (sender in group) != (receiver in group):
                hold = max(hold, heal - now)
        return hold

    # -- transmission -----------------------------------------------------------

    def broadcast(self, sender: int, message: object, round: int | None = None) -> None:
        """Send ``message`` from ``sender`` to all parties (including itself).

        Self-delivery is immediate (the party's own messages go straight
        into its pool, Section 3.1); remote deliveries follow the delay
        model.  Traffic accounting follows the paper's conventions (see
        :mod:`repro.sim.metrics`).
        """
        if sender in self._crashed:
            return
        size = wire_size(message)
        self.metrics.on_broadcast(sender, size, message_kind(message), round)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=sender, protocol="net", round=round,
                kind="net.broadcast",
                payload={"kind": message_kind(message), "bytes": size, "copies": self.n},
            )
        for receiver in range(1, self.n + 1):
            if receiver == sender:
                self._deliver(sender, receiver, message)
            else:
                # Each copy serializes through the sender's uplink in turn.
                self._deliver(
                    sender, receiver, message,
                    sent_at=self._transmission_done_at(sender, size),
                )

    def send(self, sender: int, receiver: int, message: object, round: int | None = None) -> None:
        """Point-to-point send (gossip, ICC2 fragments, Byzantine equivocation)."""
        if sender in self._crashed:
            return
        size = wire_size(message)
        self.metrics.on_send(sender, size, message_kind(message), round)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=sender, protocol="net", round=round,
                kind="net.send",
                payload={"kind": message_kind(message), "bytes": size, "receiver": receiver},
            )
        sent_at = None
        if receiver != sender:
            sent_at = self._transmission_done_at(sender, size)
        self._deliver(sender, receiver, message, sent_at=sent_at)

    def multicast(self, sender: int, receivers: list[int], message: object, round: int | None = None) -> None:
        """Send the same message to a subset (used by the gossip overlay)."""
        if sender in self._crashed:
            return
        size = wire_size(message)
        tracer = self.sim.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=sender, protocol="net", round=round,
                kind="net.multicast",
                payload={"kind": message_kind(message), "bytes": size,
                         "receivers": len(receivers)},
            )
        for receiver in receivers:
            self.metrics.on_send(sender, size, message_kind(message), round)
            sent_at = None
            if receiver != sender:
                sent_at = self._transmission_done_at(sender, size)
            self._deliver(sender, receiver, message, sent_at=sent_at)

    def _transmission_done_at(self, sender: int, size: int) -> float:
        """When the sender's NIC finishes pushing this message out."""
        if self.uplink_bps is None:
            return self.sim.now
        start = max(self.sim.now, self._uplink_free_at.get(sender, 0.0))
        done = start + size * 8.0 / self.uplink_bps
        self._uplink_free_at[sender] = done
        return done

    def _deliver(
        self, sender: int, receiver: int, message: object, sent_at: float | None = None
    ) -> None:
        if receiver in self._crashed:
            return
        if receiver == sender:
            delay = 0.0
        else:
            sampler = getattr(self.delay_model, "sample_message", None)
            if sampler is not None:
                delay = sampler(sender, receiver, self.sim.now, message, self.sim.rng)
            else:
                delay = self.delay_model.sample(sender, receiver, self.sim.now, self.sim.rng)
            delay += self._partition_hold(sender, receiver)
            if sent_at is not None:
                delay += sent_at - self.sim.now  # NIC serialization time
        self.sim.schedule(delay, lambda: self._hand_over(receiver, message))
        if (
            receiver != sender
            and self.duplicate_prob > 0.0
            and self.sim.rng.random() < self.duplicate_prob
        ):
            # The duplicate trails the original by a fresh delay sample.
            extra = self.delay_model.sample(sender, receiver, self.sim.now, self.sim.rng)
            self.sim.schedule(delay + extra, lambda: self._hand_over(receiver, message))

    def _hand_over(self, receiver: int, message: object) -> None:
        if receiver in self._crashed:
            return
        party = self._parties.get(receiver)
        if party is not None:
            self._delivered += 1
            party.on_receive(message)

    @property
    def delivered_count(self) -> int:
        return self._delivered
