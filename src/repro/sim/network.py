"""The broadcast network connecting simulated parties.

Matches the communication model of Section 3.1:

* the only primitive honest parties use is **broadcast** (same message to
  everyone) — but the broadcast is *not secure*: a corrupt party may send
  different messages to different parties (:meth:`Network.send`), or
  nothing at all;
* scheduling of delivery is adversary-controlled in the worst case — the
  pluggable :class:`~repro.sim.delays.DelayModel` decides delays;
* every message from an honest party to an honest party is eventually
  delivered (delay models uphold this; crashes model *corrupt* parties).

Point-to-point ``send`` also exists because ICC2's reliable-broadcast
subprotocol and the gossip sub-layer are not all-to-all.
"""

from __future__ import annotations

from typing import Protocol

from .delays import DelayModel
from .metrics import Metrics
from .simulator import Simulation


class Receiver(Protocol):
    """What the network requires of an attached party."""

    index: int

    def on_receive(self, message: object) -> None: ...


class FaultInterceptor(Protocol):
    """What the network requires of an installed fault injector.

    ``intercept`` sees every remote delivery after its natural delay has
    been computed and either returns ``None`` (deliver unchanged — the
    fast path) or a replacement list of ``(delay, message)`` hops: empty
    to drop the delivery, one entry to delay/corrupt it, several to
    duplicate it.  See :class:`repro.faults.inject.FaultInjector`.
    """

    def intercept(
        self, sender: int, receiver: int, message: object, delay: float
    ) -> list[tuple[float, object]] | None: ...


def wire_size(message: object) -> int:
    """Size of a message on the wire, via duck typing.

    Message classes expose ``wire_size()``; raw bytes fall back to their
    length.  Anything else is a programming error — better loud than a
    silently meaningless traffic measurement.
    """
    method = getattr(message, "wire_size", None)
    if method is not None:
        return int(method())
    if isinstance(message, (bytes, bytearray)):
        return len(message)
    raise TypeError(f"cannot size message of type {type(message).__name__}")


def message_kind(message: object) -> str:
    """Metric label for a message, via duck typing."""
    kind = getattr(message, "kind", None)
    if kind is not None:
        return str(kind)
    return type(message).__name__


class Network:
    """Delay-model-driven message fabric for up to ``n`` parties."""

    def __init__(
        self,
        sim: Simulation,
        n: int,
        delay_model: DelayModel,
        metrics: Metrics | None = None,
        uplink_bps: float | None = None,
        *,
        tracer: object | None = None,
        meter: object | None = None,
        rng: object | None = None,
    ) -> None:
        """``uplink_bps`` (optional) models each node's finite upload
        bandwidth: transmissions serialize through the sender's NIC, so a
        message of size B adds B·8/uplink_bps of transmission time *and*
        queues behind the sender's earlier transmissions.  This is what
        turns the leader's (n-1)·S egress into real latency on a WAN — the
        bottleneck effect [35] measures and the reason ICC1/ICC2 exist.
        None = infinite bandwidth (pure propagation-delay model).

        ``tracer``/``meter``/``rng`` (keyword-only) override the
        simulation-level defaults for this network only.  Embedded
        clusters use them to keep namespaced observability streams and a
        private delay-sampling RNG, so K networks sharing one Simulation
        stay independent of each other's draws; ``None`` (the default)
        resolves to ``sim.tracer`` / ``sim.meter`` / ``sim.rng`` live,
        exactly the pre-override behaviour.
        """
        self.sim = sim
        self.n = n
        self.delay_model = delay_model
        self.metrics = metrics if metrics is not None else Metrics(n=n)
        self.uplink_bps = uplink_bps
        self._tracer_override = tracer
        self._meter_override = meter
        self._rng_override = rng
        #: Probability a transmission is delivered twice (transport-level
        #: retries / gossip re-sends).  Protocol state must be idempotent
        #: under duplication — the pool's dedup guarantees it.
        self.duplicate_prob: float = 0.0
        self._uplink_free_at: dict[int, float] = {}
        self._parties: dict[int, Receiver] = {}
        self._crashed: set[int] = set()
        self._partitions: list[tuple[frozenset[int], float]] = []
        self._delivered = 0
        #: Optional fault interceptor (:class:`repro.faults.inject.FaultInjector`).
        #: ``None`` keeps :meth:`_deliver` on the exact pre-fault-layer path —
        #: the zero-overhead no-op mirror of the disabled tracer.
        self._faults: FaultInterceptor | None = None

    # -- observability / randomness resolution --------------------------------

    @property
    def tracer(self):
        """The tracer this network emits through (override or ``sim.tracer``)."""
        return self._tracer_override if self._tracer_override is not None else self.sim.tracer

    @property
    def meter(self):
        """The meter this network records through (override or ``sim.meter``)."""
        return self._meter_override if self._meter_override is not None else self.sim.meter

    @property
    def rng(self):
        """The RNG delay sampling draws from (override or ``sim.rng``)."""
        return self._rng_override if self._rng_override is not None else self.sim.rng

    # -- topology management --------------------------------------------------

    def attach(self, party: Receiver) -> None:
        if not 1 <= party.index <= self.n:
            raise ValueError(f"party index {party.index} outside 1..{self.n}")
        if party.index in self._parties:
            raise ValueError(f"party {party.index} already attached")
        self._parties[party.index] = party

    def crash(self, index: int) -> None:
        """Silence a party (crash-failure corruption, or a node going
        offline): it neither sends nor receives, and messages addressed to
        it are *dropped* (unlike a partition, which holds them back).
        Crashing an already-crashed party is a no-op."""
        if not 1 <= index <= self.n:
            raise ValueError(f"cannot crash party {index}: outside 1..{self.n}")
        self._crashed.add(index)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(time=self.sim.now, party=index, protocol="net",
                        round=None, kind="net.crash")

    def revive(self, index: int) -> None:
        """Bring a crashed/offline party back.  In the paper's model a
        corrupt party stays corrupt; revive models an *honest* node that
        was offline and rejoins — the catch-up subprotocol's scenario.

        Reviving a party that is not crashed is an error: it is always a
        mis-specified fault schedule, and silently accepting it used to
        emit a phantom ``net.revive`` trace event for a node that never
        went down.
        """
        if not 1 <= index <= self.n:
            raise ValueError(f"cannot revive party {index}: outside 1..{self.n}")
        if index not in self._crashed:
            raise ValueError(f"cannot revive party {index}: it is not crashed")
        self._crashed.discard(index)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(time=self.sim.now, party=index, protocol="net",
                        round=None, kind="net.revive")

    def is_crashed(self, index: int) -> bool:
        return index in self._crashed

    def add_partition(self, group: set[int], heal_time: float) -> None:
        """Until ``heal_time``, messages between ``group`` and the rest are
        held back (and delivered at heal time — eventual delivery holds).

        Partitions compose: when several active partitions separate a
        sender/receiver pair (overlapping groups with different heal
        times), the message is held until the *last* separating partition
        heals.  A crashed node may appear in a group — crash semantics
        win (its messages are dropped, not held) until it is revived,
        after which the partition applies to it like anyone else.
        A ``heal_time`` in the past is accepted as an explicit no-op.
        """
        for index in group:
            if not 1 <= index <= self.n:
                raise ValueError(
                    f"cannot partition party {index}: outside 1..{self.n}"
                )
        now = self.sim.now
        # Healed partitions can never hold a future message — prune them so
        # long fault schedules do not grow the scan in _partition_hold.
        self._partitions = [(g, heal) for g, heal in self._partitions if heal > now]
        if heal_time > now:
            self._partitions.append((frozenset(group), heal_time))
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(time=self.sim.now, party=0, protocol="net", round=None,
                        kind="net.partition",
                        payload={"group": sorted(group), "heal_time": heal_time})

    def active_partitions(self) -> list[tuple[frozenset[int], float]]:
        """The partitions that can still hold messages back (for tests)."""
        now = self.sim.now
        return [(g, heal) for g, heal in self._partitions if heal > now]

    def _partition_hold(self, sender: int, receiver: int) -> float:
        """Extra wait imposed by active partitions (0 when none)."""
        hold = 0.0
        now = self.sim.now
        for group, heal in self._partitions:
            if heal <= now:
                continue
            if (sender in group) != (receiver in group):
                hold = max(hold, heal - now)
        return hold

    # -- fault injection -------------------------------------------------------

    def install_faults(self, interceptor: FaultInterceptor) -> None:
        """Attach a fault interceptor to every remote delivery.

        Only one interceptor may be installed at a time (compose fault
        schedules at the :class:`~repro.faults.scenario.Scenario` level,
        not by stacking interceptors).
        """
        if self._faults is not None:
            raise ValueError("a fault interceptor is already installed")
        self._faults = interceptor

    def clear_faults(self) -> None:
        """Restore the exact zero-overhead no-fault delivery path."""
        self._faults = None

    # -- transmission -----------------------------------------------------------

    def broadcast(self, sender: int, message: object, round: int | None = None) -> None:
        """Send ``message`` from ``sender`` to all parties (including itself).

        Self-delivery is immediate (the party's own messages go straight
        into its pool, Section 3.1); remote deliveries follow the delay
        model.  Traffic accounting follows the paper's conventions (see
        :mod:`repro.sim.metrics`).
        """
        if sender in self._crashed:
            return
        size = wire_size(message)
        self.metrics.on_broadcast(sender, size, message_kind(message), round)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=sender, protocol="net", round=round,
                kind="net.broadcast",
                payload={"kind": message_kind(message), "bytes": size, "copies": self.n},
            )
        meter = self.meter
        if meter.enabled:
            meter.count("net.messages", self.n)
            meter.count("net.bytes", size * (self.n - 1))
            meter.observe("net.message.bytes", size)
        for receiver in range(1, self.n + 1):
            if receiver == sender:
                self._deliver(sender, receiver, message)
            else:
                # Each copy serializes through the sender's uplink in turn.
                self._deliver(
                    sender, receiver, message,
                    sent_at=self._transmission_done_at(sender, size),
                )

    def send(self, sender: int, receiver: int, message: object, round: int | None = None) -> None:
        """Point-to-point send (gossip, ICC2 fragments, Byzantine equivocation)."""
        if sender in self._crashed:
            return
        size = wire_size(message)
        self.metrics.on_send(sender, size, message_kind(message), round)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=sender, protocol="net", round=round,
                kind="net.send",
                payload={"kind": message_kind(message), "bytes": size, "receiver": receiver},
            )
        meter = self.meter
        if meter.enabled:
            meter.count("net.messages")
            meter.count("net.bytes", size)
            meter.observe("net.message.bytes", size)
        sent_at = None
        if receiver != sender:
            sent_at = self._transmission_done_at(sender, size)
        self._deliver(sender, receiver, message, sent_at=sent_at)

    def multicast(self, sender: int, receivers: list[int], message: object, round: int | None = None) -> None:
        """Send the same message to a subset (used by the gossip overlay)."""
        if sender in self._crashed:
            return
        size = wire_size(message)
        tracer = self.tracer
        if tracer.enabled:
            tracer.emit(
                time=self.sim.now, party=sender, protocol="net", round=round,
                kind="net.multicast",
                payload={"kind": message_kind(message), "bytes": size,
                         "receivers": len(receivers)},
            )
        meter = self.meter
        if meter.enabled:
            meter.count("net.messages", len(receivers))
            meter.count("net.bytes", size * len(receivers))
            meter.observe("net.message.bytes", size)
        for receiver in receivers:
            self.metrics.on_send(sender, size, message_kind(message), round)
            sent_at = None
            if receiver != sender:
                sent_at = self._transmission_done_at(sender, size)
            self._deliver(sender, receiver, message, sent_at=sent_at)

    def _transmission_done_at(self, sender: int, size: int) -> float:
        """When the sender's NIC finishes pushing this message out."""
        if self.uplink_bps is None:
            return self.sim.now
        start = max(self.sim.now, self._uplink_free_at.get(sender, 0.0))
        done = start + size * 8.0 / self.uplink_bps
        self._uplink_free_at[sender] = done
        return done

    def _deliver(
        self, sender: int, receiver: int, message: object, sent_at: float | None = None
    ) -> None:
        if receiver in self._crashed:
            return
        if receiver == sender:
            delay = 0.0
        else:
            sampler = getattr(self.delay_model, "sample_message", None)
            if sampler is not None:
                delay = sampler(sender, receiver, self.sim.now, message, self.rng)
            else:
                delay = self.delay_model.sample(sender, receiver, self.sim.now, self.rng)
            delay += self._partition_hold(sender, receiver)
            if sent_at is not None:
                delay += sent_at - self.sim.now  # NIC serialization time
            if self._faults is not None:
                plan = self._faults.intercept(sender, receiver, message, delay)
                if plan is not None:
                    # The interceptor replaced this delivery (drop / delay /
                    # corrupt / duplicate); scenario-level duplication owns
                    # the hops, so the duplicate_prob path below is skipped.
                    for hop_delay, hop_message in plan:
                        self.sim.schedule(
                            hop_delay,
                            lambda m=hop_message: self._hand_over(receiver, m),
                        )
                    return
        self.sim.schedule(delay, lambda: self._hand_over(receiver, message))
        if (
            receiver != sender
            and self.duplicate_prob > 0.0
            and self.rng.random() < self.duplicate_prob
        ):
            # The duplicate trails the original by a fresh delay sample.
            extra = self.delay_model.sample(sender, receiver, self.sim.now, self.rng)
            self.sim.schedule(delay + extra, lambda: self._hand_over(receiver, message))

    def _hand_over(self, receiver: int, message: object) -> None:
        if receiver in self._crashed:
            return
        party = self._parties.get(receiver)
        if party is not None:
            self._delivered += 1
            party.on_receive(message)

    @property
    def delivered_count(self) -> int:
        return self._delivered
