"""Measurement plumbing: traffic, message counts, commit log.

Everything the paper's evaluation reports is derived from three streams:

* per-party sent bytes / sent messages (Table 1's "sent traffic" column,
  and the message-complexity experiments E3),
* the commit log of finalized blocks (block rate, latency), and
* free-form named counters protocol code can bump (notarizations combined,
  blocks proposed, rounds with multiple proposals, ...).

The paper counts a broadcast by one party as ``n`` messages ("one party
broadcasting a message contributes a term of n to the message complexity",
Section 1); :meth:`Metrics.on_broadcast` follows that convention, while
bytes are charged for the n-1 actual transmissions.
"""

from __future__ import annotations

from collections import Counter, defaultdict
from dataclasses import dataclass, field


@dataclass(frozen=True)
class CommitRecord:
    """One finalized block as observed by one party."""

    time: float
    observer: int
    round: int
    proposer: int
    payload_bytes: int
    proposed_at: float  # simulation time the block was proposed (-1 unknown)


@dataclass
class Metrics:
    """Collects everything the experiment harness reports on."""

    n: int
    bytes_sent: Counter = field(default_factory=Counter)  # party -> bytes
    msgs_sent: Counter = field(default_factory=Counter)  # party -> count
    bytes_by_kind: Counter = field(default_factory=Counter)  # msg kind -> bytes
    msgs_by_kind: Counter = field(default_factory=Counter)
    msgs_by_round: Counter = field(default_factory=Counter)  # round -> count
    counters: Counter = field(default_factory=Counter)
    commits: list[CommitRecord] = field(default_factory=list)
    round_entry: dict[tuple[int, int], float] = field(default_factory=dict)
    proposed_at: dict[bytes, float] = field(default_factory=dict)

    # -- recording -----------------------------------------------------------

    def on_broadcast(self, sender: int, size: int, kind: str, round: int | None = None) -> None:
        """One party broadcast a message of ``size`` bytes to everyone.

        Two deliberately different conventions, per the module docstring:

        * **messages** — the broadcast counts as ``n`` messages (one per
          party, the sender's free self-delivery included), matching the
          paper's message-complexity accounting ("one party broadcasting a
          message contributes a term of n", Section 1);
        * **bytes** — only the ``n - 1`` copies that actually cross the
          wire are charged, so ``bytes_sent`` models real per-node egress
          (Table 1's traffic column) rather than the n-fold count.

        Both conventions are pinned by ``tests/sim/test_metrics.py``.
        """
        self.msgs_sent[sender] += self.n
        self.bytes_sent[sender] += size * (self.n - 1)
        self.msgs_by_kind[kind] += self.n
        self.bytes_by_kind[kind] += size * (self.n - 1)
        if round is not None:
            self.msgs_by_round[round] += self.n

    def on_send(self, sender: int, size: int, kind: str, round: int | None = None) -> None:
        """Point-to-point send (gossip / ICC2 fragments)."""
        self.msgs_sent[sender] += 1
        self.bytes_sent[sender] += size
        self.msgs_by_kind[kind] += 1
        self.bytes_by_kind[kind] += size
        if round is not None:
            self.msgs_by_round[round] += 1

    def count(self, name: str, inc: int = 1) -> None:
        self.counters[name] += inc

    def on_commit(
        self,
        time: float,
        observer: int,
        round: int,
        proposer: int,
        payload_bytes: int,
        proposed_at: float = -1.0,
    ) -> None:
        self.commits.append(
            CommitRecord(
                time=time,
                observer=observer,
                round=round,
                proposer=proposer,
                payload_bytes=payload_bytes,
                proposed_at=proposed_at,
            )
        )

    def on_round_entry(self, party: int, round: int, time: float) -> None:
        """First entry of ``party`` into ``round`` (for round-duration stats)."""
        self.round_entry.setdefault((party, round), time)

    # -- reporting -----------------------------------------------------------

    def commits_of(self, observer: int) -> list[CommitRecord]:
        return [c for c in self.commits if c.observer == observer]

    def blocks_per_second(self, observer: int, horizon: float) -> float:
        """Finalized blocks per second as seen by one party."""
        if horizon <= 0:
            return 0.0
        return len(self.commits_of(observer)) / horizon

    def mean_sent_bits_per_second(self, horizon: float) -> float:
        """Average per-node egress in bits/s over the run (Table 1 metric)."""
        if horizon <= 0 or self.n == 0:
            return 0.0
        total_bytes = sum(self.bytes_sent.values())
        return total_bytes * 8.0 / self.n / horizon

    def max_sent_bits_per_second(self, horizon: float) -> float:
        """Worst per-node egress — the 'bottleneck' measure of [35]."""
        if horizon <= 0 or not self.bytes_sent:
            return 0.0
        return max(self.bytes_sent.values()) * 8.0 / horizon

    def commit_latencies(self) -> list[float]:
        """Propose→commit latency samples (only records with known propose time)."""
        return [c.time - c.proposed_at for c in self.commits if c.proposed_at >= 0.0]

    def round_durations(self, party: int) -> dict[int, float]:
        """Duration of each completed round for one party."""
        entries = {
            rnd: time for (p, rnd), time in self.round_entry.items() if p == party
        }
        durations = {}
        for rnd, start in entries.items():
            nxt = entries.get(rnd + 1)
            if nxt is not None:
                durations[rnd] = nxt - start
        return durations

    def messages_in_round(self, round: int) -> int:
        return self.msgs_by_round[round]

    def summary(self, horizon: float) -> dict:
        """A compact dict used by the experiment harness printers."""
        finalized_rounds = {c.round for c in self.commits}
        return {
            "n": self.n,
            "horizon_s": horizon,
            "finalized_rounds": len(finalized_rounds),
            "total_commits_observed": len(self.commits),
            "mean_node_egress_mbps": self.mean_sent_bits_per_second(horizon) / 1e6,
            "max_node_egress_mbps": self.max_sent_bits_per_second(horizon) / 1e6,
            "total_messages": sum(self.msgs_sent.values()),
            "counters": dict(self.counters),
        }


class NullMetrics(Metrics):
    """Metrics sink that records nothing (for micro-benchmarks)."""

    def __init__(self) -> None:  # noqa: D107 - trivial
        super().__init__(n=0)

    def on_broadcast(self, *args, **kwargs) -> None:  # noqa: D102
        pass

    def on_send(self, *args, **kwargs) -> None:  # noqa: D102
        pass

    def count(self, *args, **kwargs) -> None:  # noqa: D102
        pass

    def on_commit(self, *args, **kwargs) -> None:  # noqa: D102
        pass

    def on_round_entry(self, *args, **kwargs) -> None:  # noqa: D102
        pass
