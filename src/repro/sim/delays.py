"""Network delay models.

The paper's analysis distinguishes three regimes: synchrony (delays bounded
by a known Δbnd), asynchrony (arbitrary delays), and partial synchrony
(synchronous every now and then, the liveness assumption of Section 1).
The models here cover all three, plus a WAN model calibrated to the
deployment figures of Section 5 (inter-DC ping RTTs between 6 ms and
110 ms).

All models are *deterministic given the RNG*, and all times are in seconds.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Callable, Protocol


class DelayModel(Protocol):
    """Samples a one-way message delay for a (sender, receiver) pair."""

    def sample(self, sender: int, receiver: int, now: float, rng) -> float: ...


@dataclass(frozen=True)
class FixedDelay:
    """Every message takes exactly ``delta`` seconds (ideal synchrony)."""

    delta: float

    def sample(self, sender: int, receiver: int, now: float, rng) -> float:
        return self.delta


@dataclass(frozen=True)
class UniformDelay:
    """Delays drawn uniformly from [low, high]."""

    low: float
    high: float

    def sample(self, sender: int, receiver: int, now: float, rng) -> float:
        return rng.uniform(self.low, self.high)


@dataclass
class WanDelay:
    """Wide-area network model matching the paper's deployment (Section 5).

    Each ordered pair of parties gets a fixed base one-way latency drawn
    once from [min_one_way, max_one_way] (the paper reports 6–110 ms RTT, so
    defaults are 3–55 ms one-way), plus per-message log-normal jitter.
    Same-pair latencies are symmetric, as ping RTTs are.
    """

    min_one_way: float = 0.003
    max_one_way: float = 0.055
    jitter_sigma: float = 0.1
    _base: dict[tuple[int, int], float] = field(default_factory=dict, repr=False)

    def sample(self, sender: int, receiver: int, now: float, rng) -> float:
        if sender == receiver:
            return 0.0
        key = (min(sender, receiver), max(sender, receiver))
        base = self._base.get(key)
        if base is None:
            base = rng.uniform(self.min_one_way, self.max_one_way)
            self._base[key] = base
        jitter = math.exp(rng.gauss(0.0, self.jitter_sigma))
        return base * jitter

    def max_delay_bound(self) -> float:
        """A safe Δbnd for this model (covers base × generous jitter)."""
        return self.max_one_way * 2.0


@dataclass
class PartialSynchrony:
    """Asynchronous until GST, synchronous afterwards (Dwork-Lynch-Stockmeyer).

    Before ``gst`` every message is delayed by an amount chosen by
    ``async_delay`` (a callable, default: uniform up to ``max_async``);
    messages are never lost — delivery may simply land after GST.  From
    ``gst`` on, ``base`` applies.
    """

    base: DelayModel
    gst: float
    max_async: float = 10.0
    async_delay: Callable[[int, int, float], float] | None = None

    def sample(self, sender: int, receiver: int, now: float, rng) -> float:
        if now >= self.gst:
            return self.base.sample(sender, receiver, now, rng)
        if self.async_delay is not None:
            raw = self.async_delay(sender, receiver, now)
        else:
            raw = rng.uniform(0.0, self.max_async)
        # Ensure eventual delivery: never beyond GST + one base delay.
        base_after = self.base.sample(sender, receiver, max(now, self.gst), rng)
        return min(raw, (self.gst - now) + base_after) if raw > 0 else base_after


@dataclass
class IntermittentSynchrony:
    """Synchronous only inside periodic windows — the paper's assumption.

    The network alternates: for ``sync_len`` seconds out of every ``period``
    seconds it behaves like ``base``; outside the windows, delays stretch so
    that delivery lands inside the *next* synchronous window (plus base
    delay).  This realises "the network is synchronous for relatively short
    intervals of time every now and then" (Section 1).
    """

    base: DelayModel
    period: float
    sync_len: float

    def __post_init__(self) -> None:
        if not 0 < self.sync_len <= self.period:
            raise ValueError("need 0 < sync_len <= period")

    def in_sync_window(self, time: float) -> bool:
        return (time % self.period) < self.sync_len

    def next_window_start(self, time: float) -> float:
        offset = time % self.period
        if offset < self.sync_len:
            return time
        return time + (self.period - offset)

    def sample(self, sender: int, receiver: int, now: float, rng) -> float:
        base_delay = self.base.sample(sender, receiver, now, rng)
        if self.in_sync_window(now) and self.in_sync_window(now + base_delay):
            return base_delay
        return (self.next_window_start(now + base_delay) - now) + base_delay


@dataclass
class AdversarialDelay:
    """Adversary-scheduled delays (for worst-case message complexity runs).

    ``strategy(sender, receiver, now)`` returns the delay the adversary
    wants; it is clamped to ``max_delay`` so that eventual delivery (the
    standing assumption of the paper) is preserved.
    """

    strategy: Callable[[int, int, float], float]
    max_delay: float = 60.0

    def sample(self, sender: int, receiver: int, now: float, rng) -> float:
        return max(0.0, min(self.strategy(sender, receiver, now), self.max_delay))


@dataclass
class MessageAwareDelay:
    """Adversarial scheduler that may inspect the message being delivered.

    The paper's model lets the adversary schedule message delivery
    arbitrarily; content-aware scheduling is what realises the *worst-case*
    O(n³) message complexity (delivering candidate blocks in decreasing
    rank order to maximise per-party echoes).  ``strategy(sender, receiver,
    now, message)`` returns the desired delay, clamped to ``max_delay``.
    """

    strategy: Callable[[int, int, float, object], float]
    max_delay: float = 60.0

    def sample(self, sender: int, receiver: int, now: float, rng) -> float:
        return max(0.0, min(self.strategy(sender, receiver, now, None), self.max_delay))

    def sample_message(self, sender: int, receiver: int, now: float, message: object, rng) -> float:
        return max(0.0, min(self.strategy(sender, receiver, now, message), self.max_delay))
