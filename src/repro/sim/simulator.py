"""The simulation kernel: virtual time plus the event loop.

A :class:`Simulation` owns the clock and the event queue.  Everything else
(network, parties, workloads, adversaries) schedules callbacks on it.  All
randomness used anywhere in a run must derive from :attr:`Simulation.rng`
(or a seed drawn from it), which makes runs reproducible.
"""

from __future__ import annotations

from random import Random
from typing import Callable

from ..obs import NULL_METER, NULL_TRACER
from .events import EventHandle, EventQueue


class Simulation:
    """Discrete-event simulation kernel with virtual time in seconds.

    ``event_queue`` swaps the queue implementation (any object with the
    ``EventQueue`` contract — e.g. :class:`repro.sim.events.HeapEventQueue`
    for the legacy single-heap baseline); pass it at construction, before
    anything is scheduled.  Both implementations pop the identical
    (time, seq) order, so runs are bit-identical either way.
    """

    def __init__(self, seed: int = 0, event_queue: EventQueue | None = None) -> None:
        self.rng = Random(seed)
        self.now: float = 0.0
        self.events = event_queue if event_queue is not None else EventQueue()
        self._events_processed = 0
        #: Structured-event tracer (see :mod:`repro.obs`).  The no-op
        #: default makes tracing free; install a real Tracer *before*
        #: building parties/networks — they cache this reference.
        self.tracer = NULL_TRACER
        #: Aggregating meter (see :mod:`repro.obs.metrics`) — the tracer's
        #: counter/gauge/histogram twin, same install-before-build rule.
        self.meter = NULL_METER

    # -- scheduling ---------------------------------------------------------

    def schedule(self, delay: float, action: Callable[[], None]) -> EventHandle:
        """Run ``action`` after ``delay`` simulated seconds."""
        if delay < 0:
            raise ValueError(f"negative delay {delay}")
        return self.events.schedule(self.now + delay, action)

    def schedule_at(self, time: float, action: Callable[[], None]) -> EventHandle:
        """Run ``action`` at absolute simulated time ``time`` (>= now)."""
        if time < self.now:
            raise ValueError(f"cannot schedule in the past ({time} < {self.now})")
        return self.events.schedule(time, action)

    def fork_rng(self, label: str = "") -> Random:
        """Derive an independent RNG stream (for a party, workload, ...)."""
        return Random(f"{self.rng.getrandbits(64)}/{label}")

    # -- running ------------------------------------------------------------

    def step(self) -> bool:
        """Process one event; returns False when the queue is empty."""
        event = self.events.pop()
        if event is None:
            return False
        if event.time < self.now:  # pragma: no cover - defensive
            raise RuntimeError("event queue went backwards in time")
        self.now = event.time
        self._events_processed += 1
        event.action()
        return True

    def run(
        self,
        until: float | None = None,
        max_events: int | None = None,
        stop_when: Callable[[], bool] | None = None,
    ) -> None:
        """Drain events until a bound is reached.

        * ``until``     — stop once virtual time would exceed this value
                          (the clock is advanced to ``until``).
        * ``max_events``— hard cap on processed events (guards against
                          livelock bugs in protocol code).
        * ``stop_when`` — predicate checked after every event.
        """
        processed = 0
        while True:
            next_time = self.events.peek_time()
            if next_time is None:
                break
            if until is not None and next_time > until:
                self.now = until
                break
            if max_events is not None and processed >= max_events:
                raise RuntimeError(
                    f"simulation exceeded max_events={max_events}; "
                    "possible livelock in protocol logic"
                )
            self.step()
            processed += 1
            if stop_when is not None and stop_when():
                break
        if self.tracer.enabled:
            self.tracer.emit(
                time=self.now, party=0, protocol="sim", round=None, kind="sim.run",
                payload={"events_processed": processed, "until": until},
            )
        if self.meter.enabled:
            self.meter.count("sim.events.processed", processed)
            self.meter.gauge("sim.duration", self.now)

    @property
    def events_processed(self) -> int:
        return self._events_processed
