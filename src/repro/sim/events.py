"""Event queue for the discrete-event simulator.

A minimal, deterministic priority queue of timed callbacks.  Ties are broken
by insertion order (a monotone sequence number), so two events scheduled for
the same instant always fire in the order they were scheduled — this is what
makes whole-simulation runs reproducible bit-for-bit.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable


@dataclass(order=True)
class _QueuedEvent:
    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by :meth:`EventQueue.schedule`; allows cancellation."""

    __slots__ = ("_event",)

    def __init__(self, event: _QueuedEvent) -> None:
        self._event = event

    def cancel(self) -> None:
        self._event.cancelled = True

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class EventQueue:
    """Deterministic min-heap of timed events."""

    def __init__(self) -> None:
        self._heap: list[_QueuedEvent] = []
        self._counter = itertools.count()

    def schedule(self, time: float, action: Callable[[], None]) -> EventHandle:
        if time < 0:
            raise ValueError("cannot schedule an event in negative time")
        event = _QueuedEvent(time=time, seq=next(self._counter), action=action)
        heapq.heappush(self._heap, event)
        return EventHandle(event)

    def pop(self) -> _QueuedEvent | None:
        """Next non-cancelled event, or None when the queue is drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return event
        return None

    def peek_time(self) -> float | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None

    def __len__(self) -> int:
        return sum(1 for e in self._heap if not e.cancelled)

    def __bool__(self) -> bool:
        return self.peek_time() is not None
