"""Event queues for the discrete-event simulator.

A deterministic priority queue of timed callbacks.  Ties are broken by
insertion order (a monotone sequence number), so two events scheduled for
the same instant always fire in the order they were scheduled — this is
what makes whole-simulation runs reproducible bit-for-bit.

Two implementations share one contract (and one handle/counter substrate):

* :class:`CalendarEventQueue` — the default (exported as ``EventQueue``).
  A calendar queue: near-future events land in an array of fixed-width
  time slots (each a tiny heap of C-comparable ``(time, seq, event)``
  tuples), far-future events wait in an overflow heap, and the slot
  window advances/rebuilds itself with a width adapted to the observed
  event spacing.  Pushes into a slot are O(log k) for tiny k, and the
  per-comparison cost is tuple comparison in C instead of a Python
  ``__lt__``.
* :class:`HeapEventQueue` — the original single binary heap of
  :class:`_QueuedEvent` dataclasses, kept as the reference
  implementation: the property tests in ``tests/sim/test_event_queue.py``
  pin that both queues pop identical (time, seq) orders, and
  ``python -m repro profile`` measures the calendar queue's ops/sec win
  against it.

**Ordering correctness of the calendar queue** does not depend on float
arithmetic being exact.  An event's bucket is a *monotone* function of its
time: ``i = int((t - start) * inv_width)`` is nondecreasing in ``t``
(multiplication by a positive constant and truncation of a non-negative
value are both monotone), and the clamps applied on top (``max(i,
cursor)``, ``min(i, nslots - 1)``) are monotone too.  Monotone placement
means an event in a lower bucket can never have a later time than one in a
higher bucket, so draining buckets in index order pops times in
nondecreasing order even when rounding shifts an event one bucket over;
equal times always compute the identical bucket, where the per-slot heap
applies the exact (time, seq) tie-break.  Cancelled events are dropped
lazily at the head, exactly like the legacy heap.

``__len__`` is O(1) on both queues: a live-event counter is decremented on
cancel and pop (the legacy implementation rescanned the whole heap on
every call).
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass, field
from typing import Callable

#: Number of slots in the calendar window.
_SLOTS = 64
#: Width multiplier: window spans ~4x the mean gap per slot, so bursts of
#: same-instant events share a slot instead of leaving most slots empty.
_WIDTH_FACTOR = 4.0


@dataclass(order=True)
class _QueuedEvent:
    """One scheduled callback; orders by (time, seq) for the legacy heap."""

    time: float
    seq: int
    action: Callable[[], None] = field(compare=False)
    cancelled: bool = field(default=False, compare=False)
    popped: bool = field(default=False, compare=False)


class EventHandle:
    """Returned by ``schedule``; allows cancellation."""

    __slots__ = ("_queue", "_event")

    def __init__(self, queue: "_QueueBase", event: _QueuedEvent) -> None:
        self._queue = queue
        self._event = event

    def cancel(self) -> None:
        self._queue._cancel(self._event)

    @property
    def cancelled(self) -> bool:
        return self._event.cancelled

    @property
    def time(self) -> float:
        return self._event.time


class _QueueBase:
    """Shared handle/sequence/live-count substrate for both queues."""

    def __init__(self) -> None:
        self._counter = itertools.count()
        self._live = 0

    def _new_event(self, time: float, action: Callable[[], None]) -> _QueuedEvent:
        if time < 0:
            raise ValueError("cannot schedule an event in negative time")
        self._live += 1
        return _QueuedEvent(time=time, seq=next(self._counter), action=action)

    def _cancel(self, event: _QueuedEvent) -> None:
        # O(1) len bookkeeping: only a still-pending event reduces the live
        # count; double-cancel and cancel-after-fire are no-ops beyond the
        # flag (matching the legacy heap's scan-based semantics).
        if not event.cancelled and not event.popped:
            self._live -= 1
        event.cancelled = True

    def _mark_popped(self, event: _QueuedEvent) -> _QueuedEvent:
        event.popped = True
        self._live -= 1
        return event

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0


class HeapEventQueue(_QueueBase):
    """The original implementation: one binary heap of event objects.

    Kept as the ordering reference for :class:`CalendarEventQueue` (and as
    the baseline leg of the event-queue benchmark).  Semantics are
    unchanged from the pre-calendar ``EventQueue``, except ``__len__`` is
    O(1) now.
    """

    def __init__(self) -> None:
        super().__init__()
        self._heap: list[_QueuedEvent] = []

    def schedule(self, time: float, action: Callable[[], None]) -> EventHandle:
        event = self._new_event(time, action)
        heapq.heappush(self._heap, event)
        return EventHandle(self, event)

    def pop(self) -> _QueuedEvent | None:
        """Next non-cancelled event, or None when the queue is drained."""
        while self._heap:
            event = heapq.heappop(self._heap)
            if not event.cancelled:
                return self._mark_popped(event)
        return None

    def peek_time(self) -> float | None:
        while self._heap and self._heap[0].cancelled:
            heapq.heappop(self._heap)
        return self._heap[0].time if self._heap else None


class CalendarEventQueue(_QueueBase):
    """Calendar/slot queue: near-future slots + far-future overflow heap.

    The window covers ``[start, end)`` split into ``_SLOTS`` fixed-width
    buckets; ``cursor`` is the lowest possibly-nonempty bucket.  Events
    before ``start`` (possible because the queue API allows scheduling at
    any non-negative time) go to a small "early" heap that always drains
    first; events at or past ``end`` wait in the overflow heap.  When the
    window runs dry it is rebuilt over the overflow with a slot width
    adapted to the pending events' spacing.  See the module docstring for
    the ordering argument.
    """

    def __init__(self) -> None:
        super().__init__()
        self._early: list[tuple[float, int, _QueuedEvent]] = []
        self._slots: list[list[tuple[float, int, _QueuedEvent]]] = [
            [] for _ in range(_SLOTS)
        ]
        self._cursor = 0
        self._in_window = 0
        self._overflow: list[tuple[float, int, _QueuedEvent]] = []
        # Empty initial window: everything overflows until the first
        # rebuild observes real event spacing and sizes the slots.
        self._start = 0.0
        self._end = 0.0
        self._inv_width = 0.0

    # -- placement ---------------------------------------------------------

    def schedule(self, time: float, action: Callable[[], None]) -> EventHandle:
        event = self._new_event(time, action)
        entry = (time, event.seq, event)
        if time >= self._end:
            heapq.heappush(self._overflow, entry)
        elif time < self._start:
            heapq.heappush(self._early, entry)
        else:
            i = int((time - self._start) * self._inv_width)
            if i >= _SLOTS:
                i = _SLOTS - 1
            if i < self._cursor:
                i = self._cursor
            heapq.heappush(self._slots[i], entry)
            self._in_window += 1
        return EventHandle(self, event)

    def _rebuild(self) -> None:
        """Re-anchor the window over the overflow heap (slots are empty).

        Slot width adapts to the observed spacing: the window spans
        ``_WIDTH_FACTOR``× the mean gap per slot over the events being
        migrated, so roughly the next ``_SLOTS``/``_WIDTH_FACTOR`` events
        land in distinct slots while same-instant bursts share one.
        Cancelled events are dropped here (their live count was already
        settled at cancel time).
        """
        overflow = [e for e in self._overflow if not e[2].cancelled]
        heapq.heapify(overflow)
        self._overflow = overflow
        if not overflow:
            return
        start = overflow[0][0]
        sample = overflow[: min(len(overflow), 256)]
        span = max(t for t, _, _ in sample) - start
        n = len(sample)
        width = (span / n) * _WIDTH_FACTOR if span > 0.0 and n > 1 else 1.0
        self._start = start
        self._end = start + width * _SLOTS
        self._inv_width = 1.0 / width
        self._cursor = 0
        slots = self._slots
        keep: list[tuple[float, int, _QueuedEvent]] = []
        migrated = 0
        for entry in overflow:
            t = entry[0]
            if t < self._end:
                i = int((t - start) * self._inv_width)
                if i >= _SLOTS:
                    i = _SLOTS - 1
                slots[i].append(entry)
                migrated += 1
            else:
                keep.append(entry)
        for slot in slots:
            if len(slot) > 1:
                heapq.heapify(slot)
        heapq.heapify(keep)
        self._overflow = keep
        self._in_window += migrated

    def _min_heap(self) -> list[tuple[float, int, _QueuedEvent]] | None:
        """The heap holding the global minimum, cancelled heads pruned.

        Returns the early heap or a window slot (never the overflow: when
        only the overflow has events the window is rebuilt over it first).
        """
        while True:
            if self._early:
                heap = self._early
                in_window = False
            elif self._in_window:
                slots = self._slots
                c = self._cursor
                while not slots[c]:
                    c += 1
                self._cursor = c
                heap = slots[c]
                in_window = True
            elif self._overflow:
                self._rebuild()
                continue
            else:
                return None
            if heap[0][2].cancelled:
                heapq.heappop(heap)
                if in_window:
                    self._in_window -= 1
                continue
            return heap

    def pop(self) -> _QueuedEvent | None:
        """Next non-cancelled event, or None when the queue is drained."""
        heap = self._min_heap()
        if heap is None:
            return None
        if heap is not self._early:
            self._in_window -= 1
        return self._mark_popped(heapq.heappop(heap)[2])

    def peek_time(self) -> float | None:
        heap = self._min_heap()
        return heap[0][0] if heap is not None else None


#: The simulator's default queue.
EventQueue = CalendarEventQueue

__all__ = [
    "EventHandle",
    "EventQueue",
    "CalendarEventQueue",
    "HeapEventQueue",
]
