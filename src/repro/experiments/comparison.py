"""Experiment E9 — the cross-protocol comparison of Section 1.1.

Reproduces, by measurement on a common substrate, the comparison table the
paper builds in prose:

==========  ==================  ========  ===========================
protocol    reciprocal          latency   optimistically responsive?
            throughput
==========  ==================  ========  ===========================
ICC0/ICC1   2δ                  3δ        yes
ICC2        3δ                  4δ        yes
PBFT        3δ                  3δ        yes
HotStuff    2δ                  6δ        yes
Tendermint  O(Δbnd)             3δ        no
==========  ==================  ========  ===========================

All five protocols run fault-free over the same fixed-delay network; we
report measured steady-state per-block time and propose→commit latency in
multiples of δ.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import (
    BaselineClusterConfig,
    HotStuffParty,
    PBFTParty,
    TendermintParty,
    build_baseline_cluster,
)
from . import runner
from .common import make_icc_config, mean, print_table, run_icc
from ..sim.delays import FixedDelay

PAPER_ROWS = {
    "ICC0": ("2δ", "3δ", "yes"),
    "ICC1": ("2δ", "3δ", "yes"),
    "ICC2": ("3δ", "4δ", "yes"),
    "PBFT": ("3δ", "3δ", "yes"),
    "HotStuff": ("2δ", "6δ", "yes"),
    "Tendermint": ("O(Δbnd)", "3δ", "no"),
}


@dataclass(frozen=True)
class ComparisonRow:
    protocol: str
    block_time_in_delta: float
    latency_in_delta: float


def run_icc_row(protocol: str, delta: float, n: int, blocks: int, seed: int) -> ComparisonRow:
    config = make_icc_config(
        protocol,
        n=n,
        t=(n - 1) // 3,
        delta_bound=delta * 4,
        epsilon=delta * 0.01,
        delay_model=FixedDelay(delta),
        seed=seed,
        max_rounds=blocks,
        gossip_degree=n - 1,
    )
    cluster = run_icc(config, duration=blocks * delta * 10 + 10)
    observer = cluster.honest_parties[0]
    durations = cluster.metrics.round_durations(observer.index)
    steady = [v for k, v in durations.items() if 2 <= k <= blocks - 1]
    latencies = cluster.metrics.commit_latencies()
    return ComparisonRow(
        protocol=protocol,
        block_time_in_delta=mean(steady) / delta,
        latency_in_delta=mean(latencies) / delta,
    )


def run_baseline_row(cls, kwargs: dict, delta: float, n: int, blocks: int, seed: int) -> ComparisonRow:
    config = BaselineClusterConfig(
        party_class=cls,
        n=n,
        t=(n - 1) // 3,
        seed=seed,
        delay_model=FixedDelay(delta),
        party_kwargs={**kwargs, "max_heights": blocks},
    )
    cluster = build_baseline_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_height(blocks, timeout=blocks * 100 * delta + 200)
    cluster.check_safety()
    # Steady-state block time: drop the first few heights (pipeline fill).
    observer = cluster.honest_parties[0]
    records = cluster.metrics.commits_of(observer.index)
    times = sorted(r.time for r in records)
    steady = [b - a for a, b in zip(times[2:], times[3:])]
    latencies = cluster.metrics.commit_latencies()
    return ComparisonRow(
        protocol=cls.protocol_name,
        block_time_in_delta=mean(steady) / delta,
        latency_in_delta=mean(latencies) / delta,
    )


#: Baseline party classes and their timeout kwargs, by protocol name —
#: the self-describing form a RunSpec can carry across process boundaries.
def _baseline_setup(protocol: str, delta: float) -> tuple[type, dict]:
    if protocol == "PBFT":
        return PBFTParty, dict(view_timeout=100 * delta)
    if protocol == "HotStuff":
        return HotStuffParty, dict(base_timeout=100 * delta)
    if protocol == "Tendermint":
        return TendermintParty, dict(
            timeout_propose=100 * delta, timeout_step=100 * delta, timeout_commit=20 * delta
        )
    raise ValueError(f"unknown baseline protocol {protocol!r}")


def baseline_row(protocol: str, delta: float, n: int, blocks: int, seed: int) -> ComparisonRow:
    """RunSpec executor: one baseline row, addressed by protocol name."""
    cls, kwargs = _baseline_setup(protocol, delta)
    return run_baseline_row(cls, kwargs, delta, n, blocks, seed)


def specs(delta: float = 0.05, n: int = 7, blocks: int = 30, seed: int = 17) -> list[runner.RunSpec]:
    """One RunSpec per comparison row (three ICC, three baselines)."""
    out = [
        runner.spec(
            "comparison",
            "comparison.run_icc_row",
            label=f"comparison-{p}",
            protocol=p,
            delta=delta,
            n=n,
            blocks=blocks,
            seed=seed,
        )
        for p in ("ICC0", "ICC1", "ICC2")
    ]
    out += [
        runner.spec(
            "comparison",
            "comparison.baseline_row",
            label=f"comparison-{p}",
            protocol=p,
            delta=delta,
            n=n,
            blocks=blocks,
            seed=seed,
        )
        for p in ("PBFT", "HotStuff", "Tendermint")
    ]
    return out


def run(delta: float = 0.05, n: int = 7, blocks: int = 30, seed: int = 17) -> list[ComparisonRow]:
    return [runner.run_spec(s) for s in specs(delta=delta, n=n, blocks=blocks, seed=seed)]


def tabulate(specs: list[runner.RunSpec], results: list[ComparisonRow]) -> list[ComparisonRow]:
    table_rows = []
    for r in results:
        paper_tp, paper_lat, responsive = PAPER_ROWS[r.protocol]
        table_rows.append(
            (
                r.protocol,
                f"{r.block_time_in_delta:.1f} δ",
                paper_tp,
                f"{r.latency_in_delta:.1f} δ",
                paper_lat,
                responsive,
            )
        )
    print_table(
        "E9: cross-protocol comparison (fault-free, synchronous; Tendermint's "
        "block time includes its Δbnd-scale timeout_commit = 20δ here)",
        ["protocol", "block time", "paper", "latency", "paper", "responsive"],
        table_rows,
    )
    return results


def main(jobs: int = 1) -> list[ComparisonRow]:
    suite = specs()
    return tabulate(suite, runner.execute(suite, jobs=jobs))


if __name__ == "__main__":
    main()
