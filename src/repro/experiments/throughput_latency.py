"""Experiments E1/E2 — reciprocal throughput and latency of ICC0/ICC1/ICC2.

Paper claims (Section 1): in steady state with honest leaders and network
delay δ ≤ Δbnd,

* ICC0 and ICC1 finish a round every **2δ** (reciprocal throughput) and
  commit a proposed block after **3δ** (latency);
* ICC2 pays one extra δ for the erasure-coded dissemination: **3δ** and
  **4δ** respectively.

This experiment runs all three protocols over a fixed-delay network for a
sweep of δ values and reports measured round duration and propose→commit
latency as multiples of δ.  (ε is set ≈ 0 so the governor does not mask the
intrinsic protocol latency; Δbnd is comfortably above δ so the run is in
the optimistic regime.)
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.delays import FixedDelay
from . import runner
from .common import make_icc_config, mean, print_table, run_icc

#: Paper's steady-state figures, in multiples of δ.
PAPER_NUMBERS = {
    "ICC0": (2.0, 3.0),
    "ICC1": (2.0, 3.0),  # plus gossip hops; measured with direct push below
    "ICC2": (3.0, 4.0),
}


@dataclass(frozen=True)
class ThroughputLatencyResult:
    protocol: str
    delta: float
    round_time: float
    latency: float

    @property
    def round_time_in_delta(self) -> float:
        return self.round_time / self.delta

    @property
    def latency_in_delta(self) -> float:
        return self.latency / self.delta


def run_one(
    protocol: str,
    delta: float,
    n: int = 7,
    rounds: int = 30,
    seed: int = 1,
) -> ThroughputLatencyResult:
    """Measure one (protocol, δ) point in the fault-free optimistic regime."""
    config = make_icc_config(
        protocol,
        n=n,
        t=(n - 1) // 3,
        delta_bound=delta * 4,
        epsilon=delta * 0.01,  # effectively zero; keeps ranks tie-broken
        delay_model=FixedDelay(delta),
        seed=seed,
        max_rounds=rounds,
        # ICC1: a complete overlay makes gossip single-hop so the protocol's
        # intrinsic latency is measured, not the overlay diameter's.
        gossip_degree=n - 1,
    )
    cluster = run_icc(config, duration=rounds * delta * 8 + 5.0)

    durations: list[float] = []
    for party in cluster.honest_parties:
        per_round = cluster.metrics.round_durations(party.index)
        # Skip round 1 (start-up transient: beacon bootstrap).
        durations.extend(v for k, v in per_round.items() if 2 <= k <= rounds - 1)
    latencies = cluster.metrics.commit_latencies()
    return ThroughputLatencyResult(
        protocol=protocol,
        delta=delta,
        round_time=mean(durations),
        latency=mean(latencies),
    )


def specs(
    deltas: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2),
    protocols: tuple[str, ...] = ("ICC0", "ICC1", "ICC2"),
    n: int = 7,
    rounds: int = 30,
) -> list[runner.RunSpec]:
    """One RunSpec per (protocol, δ) measurement point."""
    return [
        runner.spec(
            "throughput_latency",
            "throughput_latency.run_one",
            label=f"tl-{p}-d{int(d * 1000)}ms",
            protocol=p,
            delta=d,
            n=n,
            rounds=rounds,
        )
        for p in protocols
        for d in deltas
    ]


def run(
    deltas: tuple[float, ...] = (0.02, 0.05, 0.1, 0.2),
    protocols: tuple[str, ...] = ("ICC0", "ICC1", "ICC2"),
    n: int = 7,
    rounds: int = 30,
) -> list[ThroughputLatencyResult]:
    return [run_one(p, d, n=n, rounds=rounds) for p in protocols for d in deltas]


def tabulate(
    specs: list[runner.RunSpec], results: list[ThroughputLatencyResult]
) -> list[ThroughputLatencyResult]:
    rows = []
    for r in results:
        paper_tp, paper_lat = PAPER_NUMBERS[r.protocol]
        rows.append(
            (
                r.protocol,
                f"{r.delta * 1000:.0f} ms",
                f"{r.round_time_in_delta:.2f} δ",
                f"{paper_tp:.0f} δ",
                f"{r.latency_in_delta:.2f} δ",
                f"{paper_lat:.0f} δ",
            )
        )
    print_table(
        "E1/E2: reciprocal throughput and latency (honest leaders, synchronous)",
        ["protocol", "δ", "round time", "paper", "latency", "paper"],
        rows,
    )
    return results


def main(jobs: int = 1) -> list[ThroughputLatencyResult]:
    suite = specs()
    return tabulate(suite, runner.execute(suite, jobs=jobs))


if __name__ == "__main__":
    main()
