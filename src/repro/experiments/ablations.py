"""Ablation studies for the design choices DESIGN.md calls out.

Each ablation isolates one mechanism and sweeps it, quantifying why the
design is what it is:

* **A1 — the ε governor** (Section 3.5): ε trades block rate against
  nothing else *in synchrony* (it simply paces rounds once ε > δ), which
  is why the deployment can tune block time freely without hurting
  latency-per-round.
* **A2 — the Δprop proposer stagger**: without it ("Δprop ≡ 0"), every
  party proposes every round and the network carries n× the block
  traffic; with it, only the leader proposes in good rounds — the
  mechanism the paper credits for avoiding proposal floods.
* **A3 — gossip degree** (ICC1): leader egress grows with the degree while
  propagation latency shrinks with it; d ≈ 4 sits at the knee.
* **A4 — RBC fill delay** (ICC2): an eager fill duplicates fragments that
  in-flight echoes were already delivering; a short grace period removes
  the redundant traffic without affecting delivery latency.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cluster import build_cluster
from ..sim.delays import FixedDelay
from ..workloads import fixed_size_source
from . import runner
from .common import make_icc_config, mean, print_table


@dataclass(frozen=True)
class AblationRow:
    knob: str
    value: float
    metrics: dict


def epsilon_point(
    epsilon: float, delta: float = 0.05, n: int = 7, rounds: int = 15
) -> AblationRow:
    """A1, one swept point: ε paces rounds; per-round latency unaffected."""
    config = make_icc_config(
        "ICC0", n=n, t=(n - 1) // 3, delta_bound=0.5, epsilon=epsilon,
        delay_model=FixedDelay(delta), seed=21, max_rounds=rounds,
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(rounds - 2, timeout=600)
    cluster.check_safety()
    durations = cluster.metrics.round_durations(1)
    steady = [v for k, v in durations.items() if 2 <= k <= rounds - 2]
    return AblationRow(
        knob="epsilon",
        value=epsilon,
        metrics={
            "round_time": mean(steady),
            "predicted": max(epsilon, delta) + delta,
        },
    )


def ablate_epsilon(
    epsilons: tuple[float, ...] = (0.0, 0.05, 0.2, 0.5),
    delta: float = 0.05,
    n: int = 7,
    rounds: int = 15,
) -> list[AblationRow]:
    """A1: ε paces rounds; commit latency per round is unaffected."""
    return [epsilon_point(e, delta=delta, n=n, rounds=rounds) for e in epsilons]


def stagger_point(
    stagger: bool, delta: float = 0.05, n: int = 10, rounds: int = 12
) -> AblationRow:
    """A2, one variant: with or without the Δprop proposer stagger."""
    from ..core.params import StandardDelays

    class NoStagger(StandardDelays):
        def prop(self, rank: int) -> float:
            return 0.0

    label = "staggered (paper)" if stagger else "no stagger"
    delays_cls = StandardDelays if stagger else NoStagger
    config = make_icc_config(
        "ICC0", n=n, t=(n - 1) // 3, delta_bound=0.5, epsilon=0.01,
        delay_model=FixedDelay(delta), seed=22, max_rounds=rounds,
    )
    config.protocol_delays = delays_cls(delta_bound=0.5, epsilon=0.01)
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(rounds - 2, timeout=600)
    cluster.check_safety()
    effective_rounds = max(p.round for p in cluster.parties) - 1
    return AblationRow(
        knob=label,
        value=0.0,
        metrics={
            "proposals_per_round": cluster.metrics.counters["blocks-proposed"]
            / effective_rounds,
            "block_bytes_per_round": cluster.metrics.bytes_by_kind["block"]
            / effective_rounds,
        },
    )


def ablate_proposer_stagger(
    delta: float = 0.05, n: int = 10, rounds: int = 12
) -> list[AblationRow]:
    """A2: disabling Δprop floods the network with competing proposals."""
    return [
        stagger_point(True, delta=delta, n=n, rounds=rounds),
        stagger_point(False, delta=delta, n=n, rounds=rounds),
    ]


def gossip_degree_point(
    degree: int, n: int = 13, block_bytes: int = 200_000, rounds: int = 6
) -> AblationRow:
    """A3, one swept point: overlay degree `degree`."""
    config = make_icc_config(
        "ICC1", n=n, t=(n - 1) // 3, delta_bound=0.6, epsilon=0.02,
        delay_model=FixedDelay(0.05), seed=23, max_rounds=rounds,
        payload_source=fixed_size_source(block_bytes),
        gossip_degree=degree,
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(rounds - 1, timeout=600)
    cluster.check_safety()
    effective_rounds = max(p.round for p in cluster.parties) - 1
    durations = cluster.metrics.round_durations(1)
    steady = [v for k, v in durations.items() if k >= 2]
    return AblationRow(
        knob="degree",
        value=degree,
        metrics={
            "round_time": mean(steady),
            "max_node_egress_per_round_in_s": max(cluster.metrics.bytes_sent.values())
            / effective_rounds
            / block_bytes,
        },
    )


def ablate_gossip_degree(
    degrees: tuple[int, ...] = (2, 3, 4, 6, 8),
    n: int = 13,
    block_bytes: int = 200_000,
    rounds: int = 6,
) -> list[AblationRow]:
    """A3: leader egress vs propagation latency across overlay degrees."""
    return [
        gossip_degree_point(d, n=n, block_bytes=block_bytes, rounds=rounds)
        for d in degrees
    ]


def fill_delay_point(
    fill_delay: float, n: int = 10, block_bytes: int = 100_000, rounds: int = 6
) -> AblationRow:
    """A4, one swept point: RBC fill grace period `fill_delay`."""
    from ..core.icc2 import ICC2Party
    from ..sim.delays import UniformDelay

    class TunedICC2(ICC2Party):
        def __init__(self, **kwargs):
            super().__init__(**kwargs)
            self.rbc.fill_delay = fill_delay

    # Jittered delays: fast links reconstruct before slow echoes land,
    # which is when an eager fill duplicates in-flight fragments.
    config = make_icc_config(
        "ICC0",  # placeholder; party_class overridden below
        n=n, t=(n - 1) // 3, delta_bound=0.8, epsilon=0.02,
        delay_model=UniformDelay(0.02, 0.12), seed=24, max_rounds=rounds,
        payload_source=fixed_size_source(block_bytes),
    )
    config.party_class = TunedICC2
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(rounds - 1, timeout=600)
    cluster.check_safety()
    return AblationRow(
        knob="fill_delay",
        value=fill_delay,
        metrics={
            "fill_bytes": cluster.metrics.bytes_by_kind.get("rbc-fill", 0),
            "echo_bytes": cluster.metrics.bytes_by_kind.get("rbc-echo", 0),
            "rounds_done": cluster.min_committed_round(),
        },
    )


def ablate_rbc_fill_delay(
    fill_delays: tuple[float, ...] = (0.0, 0.05, 0.1, 0.25),
    n: int = 10,
    block_bytes: int = 100_000,
    rounds: int = 6,
) -> list[AblationRow]:
    """A4: eager fills duplicate traffic; a grace period removes it."""
    return [
        fill_delay_point(f, n=n, block_bytes=block_bytes, rounds=rounds)
        for f in fill_delays
    ]


def specs(
    epsilons: tuple[float, ...] = (0.0, 0.05, 0.2, 0.5),
    degrees: tuple[int, ...] = (2, 3, 4, 6, 8),
    fill_delays: tuple[float, ...] = (0.0, 0.05, 0.1, 0.25),
) -> list[runner.RunSpec]:
    """One RunSpec per ablation point, sweep order matching the tables."""
    out = [
        runner.spec("ablations", "ablations.epsilon_point", label=f"ablation-eps{e}", epsilon=e)
        for e in epsilons
    ]
    out += [
        runner.spec(
            "ablations",
            "ablations.stagger_point",
            label=f"ablation-stagger-{'on' if s else 'off'}",
            stagger=s,
        )
        for s in (True, False)
    ]
    out += [
        runner.spec(
            "ablations", "ablations.gossip_degree_point", label=f"ablation-degree{d}", degree=d
        )
        for d in degrees
    ]
    out += [
        runner.spec(
            "ablations", "ablations.fill_delay_point", label=f"ablation-fill{f}", fill_delay=f
        )
        for f in fill_delays
    ]
    return out


def tabulate(specs: list[runner.RunSpec], results: list[AblationRow]) -> dict:
    by_kind: dict[str, list[AblationRow]] = {}
    for spec, row in zip(specs, results):
        by_kind.setdefault(spec.kind, []).append(row)
    eps = by_kind.get("ablations.epsilon_point", [])
    print_table(
        "A1: the ε governor paces rounds exactly as max(ε, δ) + δ predicts",
        ["ε (s)", "round time (s)", "predicted (s)"],
        [
            (r.value, f"{r.metrics['round_time']:.3f}", f"{r.metrics['predicted']:.3f}")
            for r in eps
        ],
    )
    stagger = by_kind.get("ablations.stagger_point", [])
    print_table(
        "A2: Δprop stagger suppresses competing proposals",
        ["variant", "proposals/round", "block bytes/round"],
        [
            (
                r.knob,
                f"{r.metrics['proposals_per_round']:.2f}",
                f"{r.metrics['block_bytes_per_round']:.0f}",
            )
            for r in stagger
        ],
    )
    degree = by_kind.get("ablations.gossip_degree_point", [])
    print_table(
        "A3: gossip degree — leader egress vs round latency (S = 200 KB)",
        ["degree", "round time (s)", "max node egress (in S)"],
        [
            (
                int(r.value),
                f"{r.metrics['round_time']:.3f}",
                f"{r.metrics['max_node_egress_per_round_in_s']:.1f}",
            )
            for r in degree
        ],
    )
    fill = by_kind.get("ablations.fill_delay_point", [])
    print_table(
        "A4: RBC fill grace period — redundant fill traffic vs progress",
        ["fill delay (s)", "fill bytes", "echo bytes", "rounds committed"],
        [
            (
                r.value,
                r.metrics["fill_bytes"],
                r.metrics["echo_bytes"],
                r.metrics["rounds_done"],
            )
            for r in fill
        ],
    )
    return {"epsilon": eps, "stagger": stagger, "degree": degree, "fill": fill}


def main(jobs: int = 1) -> dict:
    suite = specs()
    return tabulate(suite, runner.execute(suite, jobs=jobs))


if __name__ == "__main__":
    main()
