"""Experiment E11 — the leader bottleneck as *latency* under finite uplinks.

[35] (Mir-BFT), which the paper leans on throughout Section 1.1, argues
that on wide-area networks the relevant cost measure is not total
communication but the *maximum number of bits transmitted by any one
party*: a leader pushing (n-1)·S through a finite uplink stalls everyone.
Experiment E7 shows the byte counts; this experiment closes the loop by
giving every node a finite uplink (NIC serialization in the simulator) and
measuring what the bottleneck does to **round time**:

* ICC0's proposer transmits (n-1)·S serially — round time grows linearly
  in n·S/uplink;
* ICC1 (gossip) and ICC2 (erasure-coded RBC) spread the same payload over
  all links and stay near the propagation-delay optimum.

This is the quantitative justification for ICC1/ICC2's existence.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cluster import build_cluster
from ..sim.delays import FixedDelay
from ..workloads import fixed_size_source
from .common import make_icc_config, mean, print_table


@dataclass(frozen=True)
class BandwidthResult:
    protocol: str
    n: int
    block_bytes: int
    uplink_mbps: float
    round_time: float

    @property
    def serialization_floor(self) -> float:
        """Time just to push one block copy through the uplink."""
        return self.block_bytes * 8.0 / (self.uplink_mbps * 1e6)


def run_one(
    protocol: str,
    block_bytes: int = 500_000,
    uplink_mbps: float = 50.0,
    n: int = 13,
    rounds: int = 6,
    delta: float = 0.02,
    seed: int = 41,
) -> BandwidthResult:
    config = make_icc_config(
        protocol,
        n=n,
        t=(n - 1) // 3,
        delta_bound=4.0,  # generous: bandwidth, not timeouts, should bind
        epsilon=0.01,
        delay_model=FixedDelay(delta),
        seed=seed,
        max_rounds=rounds,
        payload_source=fixed_size_source(block_bytes),
        gossip_degree=4,
    )
    cluster = build_cluster(config)
    cluster.network.uplink_bps = uplink_mbps * 1e6
    cluster.start()
    cluster.run_for(rounds * 60.0, max_events=30_000_000)
    cluster.check_safety()
    observer = cluster.honest_parties[0]
    durations = cluster.metrics.round_durations(observer.index)
    steady = [v for k, v in durations.items() if k >= 2]
    return BandwidthResult(
        protocol=protocol,
        n=n,
        block_bytes=block_bytes,
        uplink_mbps=uplink_mbps,
        round_time=mean(steady),
    )


def run(
    protocols: tuple[str, ...] = ("ICC0", "ICC1", "ICC2"),
    block_bytes: int = 500_000,
    uplink_mbps: float = 50.0,
    n: int = 13,
) -> list[BandwidthResult]:
    return [run_one(p, block_bytes=block_bytes, uplink_mbps=uplink_mbps, n=n) for p in protocols]


def main() -> list[BandwidthResult]:
    results = run()
    rows = []
    for r in results:
        rows.append(
            (
                r.protocol,
                f"{r.block_bytes // 1000} KB",
                f"{r.uplink_mbps:.0f} Mb/s",
                f"{r.round_time * 1000:.0f} ms",
                f"{r.round_time / r.serialization_floor:.1f}×",
            )
        )
    print_table(
        "E11: round time under finite uplinks (n=13; the [35] bottleneck "
        "as latency; last column = round time in units of one block's "
        "transmission time)",
        ["protocol", "block S", "uplink", "round time", "vs 1×S floor"],
        rows,
    )
    return results


if __name__ == "__main__":
    main()
