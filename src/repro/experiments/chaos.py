"""Chaos sweeps: generated fault scenarios + invariant checking (repro.faults).

The ROADMAP's north star is "handle as many scenarios as you can
imagine"; this experiment makes that a sweep.  Each run draws a scenario
from a seed (:func:`repro.faults.generate_scenario` — crashes,
partitions, lossy/duplicating/corrupting links, outages, clock skew and
Byzantine parties within the t budget), executes it against an ICC
cluster, and checks the safety and bounded-liveness invariants
(:mod:`repro.faults.invariants`).

Parties run with the catch-up subprotocol composed in
(:class:`repro.core.catchup.CatchupMixin`): under message loss a plain
party can wait forever for a beacon share that was dropped (beacon
shares are broadcast exactly once), whereas state sync restores bounded
liveness — which is exactly how the production system pairs consensus
with state sync.

Deterministic by construction: the scenario is derived from
``scenario_seed``, fault decisions from the scenario's RNG stream, the
simulation from ``seed`` — so results and trace files are bit-identical
across repeated runs and at any ``--jobs`` count
(``tests/faults/test_chaos.py`` pins this).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.catchup import CatchupMixin
from ..core.cluster import build_cluster
from ..core.icc0 import ICC0Party
from ..core.icc1 import ICC1Party
from ..core.icc2 import ICC2Party
from ..faults import (
    check_invariants,
    generate_scenario,
    install_scenario,
    scenario_corrupt,
)
from ..sim.delays import FixedDelay
from . import runner
from .common import make_icc_config, print_table


class ChaosICC0(CatchupMixin, ICC0Party):
    """ICC0 with state sync — the chaos-run configuration."""


class ChaosICC1(CatchupMixin, ICC1Party):
    """ICC1 (gossip) with state sync."""


class ChaosICC2(CatchupMixin, ICC2Party):
    """ICC2 (reliable broadcast) with state sync."""


PARTY_CLASSES = {"ICC0": ChaosICC0, "ICC1": ChaosICC1, "ICC2": ChaosICC2}


@dataclass(frozen=True)
class ChaosResult:
    """Picklable outcome of one chaos run (travels across the runner pool)."""

    protocol: str
    scenario: str
    scenario_seed: int
    events: str  # compact schedule summary, e.g. "2 crash, 1 partition"
    min_committed: int
    safety_ok: bool
    liveness_ok: bool
    liveness_checked: bool
    violations: tuple[str, ...]
    fault_counts: tuple[tuple[str, int], ...]

    @property
    def ok(self) -> bool:
        return self.safety_ok and self.liveness_ok

    @property
    def verdict(self) -> str:
        if not self.safety_ok:
            return "SAFETY VIOLATED"
        if not self.liveness_ok:
            return "LIVENESS VIOLATED"
        return "OK" if self.liveness_checked else "OK (liveness n/a)"


def run_scenario(
    protocol: str = "ICC0",
    n: int = 7,
    scenario_seed: int = 0,
    duration: float = 40.0,
    seed: int = 101,
    delta: float = 0.05,
    delta_bound: float = 0.5,
    liveness_rounds: int = 12,
    intensity: float = 1.0,
) -> ChaosResult:
    """Generate scenario ``scenario_seed``, run it, check the invariants."""
    protocol = protocol.upper()
    t = (n - 1) // 3
    scenario = generate_scenario(
        scenario_seed, n, t, duration, intensity=intensity
    )
    party_class = PARTY_CLASSES[protocol]
    config = make_icc_config(
        protocol,
        n=n,
        t=t,
        delta_bound=delta_bound,
        epsilon=0.01,
        delay_model=FixedDelay(delta),
        seed=seed,
        corrupt=scenario_corrupt(scenario, party_class),
    )
    config.party_class = party_class
    cluster = build_cluster(config)
    injector = install_scenario(cluster, scenario)
    cluster.start()
    cluster.run_for(duration)
    report = check_invariants(
        cluster, scenario, duration, liveness_rounds=liveness_rounds
    )
    live_honest = [
        p for p in cluster.honest_parties if not cluster.network.is_crashed(p.index)
    ]
    return ChaosResult(
        protocol=protocol,
        scenario=scenario.name,
        scenario_seed=scenario_seed,
        events=scenario.describe(),
        min_committed=min((p.k_max for p in live_honest), default=0),
        safety_ok=report.safety_ok,
        liveness_ok=report.liveness_ok,
        liveness_checked=report.liveness_checked,
        violations=tuple(f"{v.kind}: {v.detail}" for v in report.violations),
        fault_counts=tuple(sorted(injector.counters.items())),
    )


def specs(
    seeds=range(3),
    protocols=("ICC0", "ICC1", "ICC2"),
    n: int = 7,
    duration: float = 40.0,
    seed: int = 101,
    intensity: float = 1.0,
) -> list[runner.RunSpec]:
    """One RunSpec per (scenario seed × protocol)."""
    out = []
    for scenario_seed in seeds:
        for protocol in protocols:
            out.append(runner.spec(
                "chaos",
                "chaos.run_scenario",
                label=f"chaos-{protocol.lower()}-s{scenario_seed}",
                protocol=protocol,
                n=n,
                scenario_seed=scenario_seed,
                duration=duration,
                seed=seed,
                intensity=intensity,
            ))
    return out


def tabulate(
    specs: list[runner.RunSpec], results: list[ChaosResult]
) -> list[ChaosResult]:
    rows = []
    for result in results:
        fired = ", ".join(f"{k}×{v}" for k, v in result.fault_counts if v) or "-"
        rows.append((
            result.protocol,
            result.scenario_seed,
            result.events,
            fired,
            result.min_committed,
            result.verdict,
        ))
    print_table(
        "Chaos sweep: generated fault scenarios + invariant checking",
        ["protocol", "scenario", "schedule", "faults fired", "rounds", "verdict"],
        rows,
    )
    bad = [r for r in results if not r.ok]
    if bad:
        print()
        for result in bad:
            for violation in result.violations:
                print(f"!! {result.protocol} chaos-{result.scenario_seed}: {violation}")
    else:
        print(f"\nall {len(results)} runs satisfied safety + bounded liveness")
    return results


def run(seeds=range(3), protocols=("ICC0", "ICC1", "ICC2")) -> list[ChaosResult]:
    suite = specs(seeds=seeds, protocols=protocols)
    return [runner.run_spec(s) for s in suite]


def main(jobs: int = 1, **kwargs) -> list[ChaosResult]:
    suite = specs(**kwargs)
    return tabulate(suite, runner.execute(suite, jobs=jobs))


if __name__ == "__main__":
    main()
