"""Shared helpers for the experiment harness.

Each experiment module exposes ``run(...) -> dict`` returning structured
results plus a ``main()`` that prints the same rows the paper reports.
These helpers keep protocol construction uniform across experiments.
"""

from __future__ import annotations

import os
from typing import Sequence

from ..core.cluster import Cluster, ClusterConfig, build_cluster
from ..core.icc0 import ICC0Party
from ..core.icc1 import ICC1Party
from ..core.icc2 import ICC2Party
from ..gossip import GossipParams, build_overlay
from ..obs import Tracer, write_jsonl
from ..sim.delays import DelayModel

# ---------------------------------------------------------------------- tracing
# Opt-in structured tracing for the whole harness (the --trace flag).
# When enabled, every cluster built through make_icc_config gets a fresh
# Tracer and run_icc exports its events to a numbered JSONL file.
#
# Two naming modes share the one-file-per-run convention:
#
# * sequential (default): files are numbered by a global counter in
#   cluster-construction order — fine for a single in-process run.
# * spec mode (begin_spec_trace/end_spec_trace): the parallel runner
#   (repro.experiments.runner) assigns each run its deterministic index
#   from the RunSpec order *before* execution, so file names never
#   depend on worker scheduling and workers never share a file.

_TRACE_DIR: str | None = None
_TRACE_SEQ = 0
#: When not None, runner spec mode: (run index, clusters traced so far).
_SPEC: tuple[int, int] | None = None
#: Tracer attached to the most recent config; flushed by run_icc or by
#: the next enable/attach cycle so experiments that drive clusters
#: manually still get their export.
_PENDING: tuple[Tracer, str] | None = None


def enable_tracing(directory: str | None, start: int = 0) -> None:
    """Turn harness-wide tracing on (a directory path) or off (``None``).

    ``start`` seeds the sequential file counter — the suite driver uses
    it to number inline runs after the runner-managed ones.
    """
    global _TRACE_DIR, _TRACE_SEQ
    flush_pending_trace()
    _TRACE_DIR = directory
    _TRACE_SEQ = start
    if directory is not None:
        os.makedirs(directory, exist_ok=True)


def tracing_enabled() -> bool:
    return _TRACE_DIR is not None


def begin_spec_trace(index: int) -> None:
    """Route subsequent cluster traces to run-``index`` file names."""
    global _SPEC
    flush_pending_trace()
    _SPEC = (index, 0)


def end_spec_trace() -> None:
    """Leave spec naming mode (flushes any outstanding tracer)."""
    global _SPEC
    flush_pending_trace()
    _SPEC = None


def _next_trace_path(label: str) -> str:
    global _TRACE_SEQ, _SPEC
    if _SPEC is not None:
        index, sub = _SPEC
        _SPEC = (index, sub + 1)
        # One file per run: the first (normally only) cluster of a spec
        # gets the bare index; extra clusters get a `.k` suffix.
        stem = f"{index:04d}" if sub == 0 else f"{index:04d}.{sub}"
    else:
        stem = f"{_TRACE_SEQ:04d}"
        _TRACE_SEQ += 1
    return os.path.join(_TRACE_DIR, f"{stem}-{label}.jsonl")


def _attach_tracer(config: ClusterConfig, label: str) -> None:
    global _PENDING
    flush_pending_trace()
    tracer = Tracer()
    config.tracer = tracer
    _PENDING = (tracer, _next_trace_path(label))


def flush_pending_trace() -> str | None:
    """Export the most recent run's events, if a tracer is outstanding."""
    global _PENDING
    if _PENDING is None:
        return None
    tracer, path = _PENDING
    _PENDING = None
    # export_events() appends a trace.dropped summary event if the ring
    # buffer wrapped, so truncation is visible in the file itself.
    write_jsonl(tracer.export_events(), path)
    return path


def make_icc_config(
    protocol: str,
    n: int,
    t: int,
    delta_bound: float,
    delay_model: DelayModel,
    *,
    epsilon: float = 0.05,
    seed: int = 0,
    max_rounds: int | None = None,
    payload_source=None,
    corrupt: dict | None = None,
    gossip_degree: int = 4,
    gossip_params: GossipParams | None = None,
) -> ClusterConfig:
    """Build a ClusterConfig for any of the three ICC protocols."""
    protocol = protocol.upper()
    classes = {"ICC0": ICC0Party, "ICC1": ICC1Party, "ICC2": ICC2Party}
    if protocol not in classes:
        raise ValueError(f"unknown ICC protocol {protocol!r}")
    extra: dict = {}
    if protocol == "ICC1":
        extra["overlay"] = build_overlay(n, gossip_degree, seed=seed)
        extra["gossip_params"] = (
            gossip_params if gossip_params is not None else GossipParams(degree=gossip_degree)
        )
    kwargs = dict(
        n=n,
        t=t,
        delta_bound=delta_bound,
        epsilon=epsilon,
        seed=seed,
        max_rounds=max_rounds,
        delay_model=delay_model,
        party_class=classes[protocol],
        extra_party_kwargs=extra,
    )
    if payload_source is not None:
        kwargs["payload_source"] = payload_source
    if corrupt is not None:
        kwargs["corrupt"] = corrupt
    config = ClusterConfig(**kwargs)
    if tracing_enabled():
        _attach_tracer(config, f"{protocol.lower()}-n{n}-seed{seed}")
    return config


def run_icc(config: ClusterConfig, duration: float) -> Cluster:
    """Build, start and run a cluster for a fixed duration."""
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_for(duration)
    cluster.check_safety()
    if _PENDING is not None and _PENDING[0] is config.tracer:
        flush_pending_trace()
    return cluster


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Minimal fixed-width table printer for experiment output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    print()
    print(f"== {title} ==")
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else float("nan")


def percentile(values: Sequence[float], p: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    idx = min(len(ordered) - 1, int(p * len(ordered)))
    return ordered[idx]
