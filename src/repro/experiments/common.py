"""Shared helpers for the experiment harness.

Each experiment module exposes ``run(...) -> dict`` returning structured
results plus a ``main()`` that prints the same rows the paper reports.
These helpers keep protocol construction uniform across experiments.
"""

from __future__ import annotations

from typing import Sequence

from ..core.cluster import Cluster, ClusterConfig, build_cluster
from ..core.icc0 import ICC0Party
from ..core.icc1 import ICC1Party
from ..core.icc2 import ICC2Party
from ..gossip import GossipParams, build_overlay
from ..sim.delays import DelayModel


def make_icc_config(
    protocol: str,
    n: int,
    t: int,
    delta_bound: float,
    delay_model: DelayModel,
    *,
    epsilon: float = 0.05,
    seed: int = 0,
    max_rounds: int | None = None,
    payload_source=None,
    corrupt: dict | None = None,
    gossip_degree: int = 4,
    gossip_params: GossipParams | None = None,
) -> ClusterConfig:
    """Build a ClusterConfig for any of the three ICC protocols."""
    protocol = protocol.upper()
    classes = {"ICC0": ICC0Party, "ICC1": ICC1Party, "ICC2": ICC2Party}
    if protocol not in classes:
        raise ValueError(f"unknown ICC protocol {protocol!r}")
    extra: dict = {}
    if protocol == "ICC1":
        extra["overlay"] = build_overlay(n, gossip_degree, seed=seed)
        extra["gossip_params"] = (
            gossip_params if gossip_params is not None else GossipParams(degree=gossip_degree)
        )
    kwargs = dict(
        n=n,
        t=t,
        delta_bound=delta_bound,
        epsilon=epsilon,
        seed=seed,
        max_rounds=max_rounds,
        delay_model=delay_model,
        party_class=classes[protocol],
        extra_party_kwargs=extra,
    )
    if payload_source is not None:
        kwargs["payload_source"] = payload_source
    if corrupt is not None:
        kwargs["corrupt"] = corrupt
    return ClusterConfig(**kwargs)


def run_icc(config: ClusterConfig, duration: float) -> Cluster:
    """Build, start and run a cluster for a fixed duration."""
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_for(duration)
    cluster.check_safety()
    return cluster


def print_table(title: str, headers: Sequence[str], rows: Sequence[Sequence]) -> None:
    """Minimal fixed-width table printer for experiment output."""
    str_rows = [[str(c) for c in row] for row in rows]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in str_rows)) if str_rows else len(headers[i])
        for i in range(len(headers))
    ]
    print()
    print(f"== {title} ==")
    line = "  ".join(h.ljust(w) for h, w in zip(headers, widths))
    print(line)
    print("-" * len(line))
    for row in str_rows:
        print("  ".join(c.ljust(w) for c, w in zip(row, widths)))


def mean(values: Sequence[float]) -> float:
    values = list(values)
    return sum(values) / len(values) if values else float("nan")


def percentile(values: Sequence[float], p: float) -> float:
    ordered = sorted(values)
    if not ordered:
        return float("nan")
    idx = min(len(ordered) - 1, int(p * len(ordered)))
    return ordered[idx]
