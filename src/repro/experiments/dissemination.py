"""Experiment E7 — block dissemination cost and the leader bottleneck.

Paper claims (Sections 1 and 1.1):

* in ICC0 the proposer broadcasts the block body to everyone — for block
  size S its egress is (n-1)·S per round: the classic leader bottleneck
  that [35] identifies as *the* limiting factor on WANs;
* ICC1's gossip sub-layer caps the proposer's egress at degree·S (bodies
  are pulled at most once per overlay link);
* ICC2's erasure-coded reliable broadcast makes *every* party transmit
  O(S) bits per round once S = Ω(n·λ·log n) — the dealer sends n
  fragments of size S/(t+1) ≈ 3S, every other party echoes ≈ 3S — so no
  single node is a bottleneck and the maximum per-node egress is flat in n.

We sweep the block size S at fixed n and report, per protocol: the maximum
per-node egress per round (the bottleneck measure of [35]) and the mean
per-node egress per round, in multiples of S.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..sim.delays import FixedDelay
from ..workloads import fixed_size_source
from .common import make_icc_config, print_table, run_icc


@dataclass(frozen=True)
class DisseminationResult:
    protocol: str
    n: int
    block_bytes: int
    max_node_bytes_per_round: float
    mean_node_bytes_per_round: float

    @property
    def max_in_s(self) -> float:
        return self.max_node_bytes_per_round / self.block_bytes

    @property
    def mean_in_s(self) -> float:
        return self.mean_node_bytes_per_round / self.block_bytes


def run_one(
    protocol: str,
    block_bytes: int,
    n: int = 13,
    rounds: int = 8,
    seed: int = 13,
    gossip_degree: int = 4,
) -> DisseminationResult:
    delta = 0.05
    config = make_icc_config(
        protocol,
        n=n,
        t=(n - 1) // 3,
        delta_bound=delta * 6,
        epsilon=0.05,
        delay_model=FixedDelay(delta),
        seed=seed,
        max_rounds=rounds,
        payload_source=fixed_size_source(block_bytes),
        gossip_degree=gossip_degree,
    )
    cluster = run_icc(config, duration=rounds * 3.0 + 20)
    effective_rounds = max(1, max(p.round for p in cluster.honest_parties) - 1)
    per_node = [cluster.metrics.bytes_sent[i] / effective_rounds for i in range(1, n + 1)]
    return DisseminationResult(
        protocol=protocol,
        n=n,
        block_bytes=block_bytes,
        max_node_bytes_per_round=max(per_node),
        mean_node_bytes_per_round=sum(per_node) / n,
    )


def run(
    block_sizes: tuple[int, ...] = (10_000, 100_000, 1_000_000),
    protocols: tuple[str, ...] = ("ICC0", "ICC1", "ICC2"),
    n: int = 13,
) -> list[DisseminationResult]:
    return [run_one(p, s, n=n) for p in protocols for s in block_sizes]


def main() -> list[DisseminationResult]:
    results = run()
    rows = [
        (
            r.protocol,
            f"{r.block_bytes // 1000} KB",
            f"{r.max_in_s:.1f} S",
            f"{r.mean_in_s:.1f} S",
        )
        for r in results
    ]
    print_table(
        "E7: per-node egress per round (n=13; expect ICC0 max ≈ (n-1)·S, "
        "ICC1 max ≈ d·S, ICC2 max ≈ 3·S for large S)",
        ["protocol", "block size S", "max node egress", "mean node egress"],
        rows,
    )
    return results


if __name__ == "__main__":
    main()
