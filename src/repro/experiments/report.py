"""Markdown report generator: re-run the evaluation, emit one document.

``python -m repro.experiments.report [output.md] [--quick]`` executes the
experiment suite and writes a self-contained markdown report with every
measured table next to the paper's numbers — the regenerable counterpart
of the hand-annotated EXPERIMENTS.md.
"""

from __future__ import annotations

import sys
from io import StringIO

from . import (
    bandwidth,
    comparison,
    dissemination,
    intermittent,
    message_complexity,
    responsiveness,
    robustness,
    round_complexity,
    table1,
    throughput_latency,
)


def _md_table(headers: list[str], rows: list[tuple]) -> str:
    out = StringIO()
    out.write("| " + " | ".join(headers) + " |\n")
    out.write("|" + "|".join("---" for _ in headers) + "|\n")
    for row in rows:
        out.write("| " + " | ".join(str(c) for c in row) + " |\n")
    return out.getvalue()


def generate(duration: float = 60.0, quick: bool = True) -> str:
    """Run the suite and return the report as a markdown string."""
    sections: list[str] = ["# ICC reproduction — generated evaluation report\n"]

    cells = table1.run(duration=duration)
    sections.append("## T1 — Table 1 (block rate and sent traffic)\n")
    sections.append(
        _md_table(
            ["subnet", "scenario", "blocks/s", "paper", "Mb/s (consensus)", "paper (total)"],
            [
                (
                    c.subnet,
                    c.scenario,
                    f"{c.blocks_per_second:.2f}",
                    f"{c.paper_blocks_per_second:.2f}",
                    f"{c.node_egress_mbps:.2f}",
                    f"{c.paper_node_egress_mbps:.2f}",
                )
                for c in cells
            ],
        )
    )

    tl = throughput_latency.run(deltas=(0.02, 0.1) if quick else (0.02, 0.05, 0.1, 0.2))
    sections.append("## E1/E2 — reciprocal throughput and latency\n")
    sections.append(
        _md_table(
            ["protocol", "δ (ms)", "round time (δ)", "latency (δ)"],
            [
                (r.protocol, f"{r.delta * 1000:.0f}",
                 f"{r.round_time_in_delta:.2f}", f"{r.latency_in_delta:.2f}")
                for r in tl
            ],
        )
    )

    sync = message_complexity.run_synchronous(ns=(4, 13, 25) if quick else (4, 7, 13, 25, 40))
    worst = message_complexity.run_worst_case(ns=(4, 10) if quick else (4, 7, 10, 13))
    sections.append("## E3 — message complexity\n")
    sections.append(
        _md_table(
            ["regime", "n", "msgs/round", "msgs/n²", "msgs/n³"],
            [("synchronous", p.n, f"{p.messages_per_round:.0f}",
              f"{p.per_n2:.2f}", f"{p.per_n3:.3f}") for p in sync]
            + [("adversarial", p.n, f"{p.messages_per_round:.0f}",
                f"{p.per_n2:.2f}", f"{p.per_n3:.3f}") for p in worst],
        )
    )

    rc = round_complexity.run(ns=(7, 13) if quick else (7, 13, 25, 40),
                              rounds=60 if quick else 120)
    sections.append("## E4 — round complexity\n")
    sections.append(
        _md_table(
            ["n", "t", "mean commit gap", "n/(n-t)", "max gap", "all rounds committed"],
            [
                (r.n, r.t, f"{r.mean_gap:.2f}", f"{r.expected_mean_gap:.2f}",
                 r.max_gap, "yes" if r.all_rounds_eventually_committed else "NO")
                for r in rc
            ],
        )
    )

    rb = robustness.run(n=10, duration=60.0 if quick else 120.0)
    sections.append("## E5 — robustness (slow-leader attack)\n")
    sections.append(
        _md_table(
            ["protocol", "scenario", "blocks/s"],
            [(r.protocol, r.scenario, f"{r.blocks_per_second:.2f}") for r in rb],
        )
    )

    rp = responsiveness.run(deltas=(0.005, 0.05) if quick else (0.005, 0.02, 0.05, 0.1, 0.2))
    sections.append("## E6 — optimistic responsiveness\n")
    sections.append(
        _md_table(
            ["δ (ms)", "ICC0 block time (ms)", "Tendermint block time (ms)"],
            [
                (f"{r.delta * 1000:.0f}", f"{r.icc0_block_time * 1000:.0f}",
                 f"{r.tendermint_block_time * 1000:.0f}")
                for r in rp
            ],
        )
    )

    dm = dissemination.run(block_sizes=(100_000, 1_000_000) if quick else (10_000, 100_000, 1_000_000))
    sections.append("## E7 — dissemination (per-node egress per round, in S)\n")
    sections.append(
        _md_table(
            ["protocol", "S", "max", "mean"],
            [
                (r.protocol, f"{r.block_bytes // 1000} KB",
                 f"{r.max_in_s:.1f}", f"{r.mean_in_s:.1f}")
                for r in dm
            ],
        )
    )

    cp = comparison.run(blocks=20 if quick else 30)
    sections.append("## E9 — cross-protocol comparison\n")
    sections.append(
        _md_table(
            ["protocol", "block time (δ)", "latency (δ)"],
            [
                (r.protocol, f"{r.block_time_in_delta:.1f}", f"{r.latency_in_delta:.1f}")
                for r in cp
            ],
        )
    )

    im = intermittent.run(duration=80.0 if quick else 120.0)
    sections.append("## E10 — intermittent synchrony\n")
    sections.append(
        _md_table(
            ["window", "rounds committed"],
            [(w.window, w.commits_in_window) for w in im.windows],
        )
    )
    sections.append(
        f"tree growth {im.rounds_per_second:.2f} rounds/s; "
        f"commits {im.commits_per_second:.2f} rounds/s\n"
    )

    bw = bandwidth.run()
    sections.append("## E11 — finite-uplink bottleneck\n")
    sections.append(
        _md_table(
            ["protocol", "round time (ms)", "vs 1×S transmission floor"],
            [
                (r.protocol, f"{r.round_time * 1000:.0f}",
                 f"{r.round_time / r.serialization_floor:.1f}×")
                for r in bw
            ],
        )
    )

    return "\n".join(sections)


def main(argv: list[str] | None = None) -> None:
    args = argv if argv is not None else sys.argv[1:]
    quick = "--quick" in args
    paths = [a for a in args if not a.startswith("--")]
    output = paths[0] if paths else "EXPERIMENTS-generated.md"
    report = generate(duration=60.0 if quick else 300.0, quick=quick)
    with open(output, "w") as handle:
        handle.write(report)
    print(f"wrote {output} ({len(report)} bytes)")


if __name__ == "__main__":
    main()
