"""Per-run evaluation reports: ``python -m repro report``.

Runs a small suite of seeded ICC simulations through the parallel runner
(:mod:`repro.experiments.runner`) with tracing and metering on, then
renders one self-contained Markdown (or HTML) report combining:

* per-height **critical paths** (:mod:`repro.analysis.critical_path`)
  with the telescoping consistency check — stage durations must sum to
  the measured finalization latency for every height;
* **message complexity vs theory** — measured messages per round against
  the paper's ``8n^2`` synchronous-case and ``2n^3 + 4n^2`` worst-case
  bounds (:mod:`repro.analysis.theory`);
* the merged **metric snapshot** (:mod:`repro.obs.metrics`) aggregated
  across all runs — counters, gauges and histogram tables;
* **trace health** — events captured and ring-buffer drops per run.

The trace files and the merged ``metrics.json`` are left in
``--trace-dir`` (a temporary directory otherwise), and a previously
written directory can be re-rendered without simulating via ``--load``.
The legacy suite-wide report (EXPERIMENTS-generated.md) remains
available behind ``--suite``.
"""

from __future__ import annotations

import argparse
import json
import os
import tempfile

from ..analysis import theory
from ..analysis.critical_path import critical_paths, stage_means
from ..analysis.trace import message_counts, summarize
from ..obs import Meter, merge_meters, read_jsonl
from . import runner
from .common import mean

#: One simulated-time tick: the tolerance used by the stage-sum
#: consistency check (the acceptance bar is "±1 tick").
TICK = 1e-9

_QUICK = dict(protocol="icc1", n=4, t=1, delta=0.05, rounds=5)
_DEFAULT = dict(protocol="icc1", n=4, t=1, delta=0.05, rounds=8)


# ------------------------------------------------------------------ executor


def run_traced(
    protocol: str = "icc1",
    n: int = 4,
    t: int = 1,
    delta: float = 0.05,
    rounds: int = 8,
    seed: int = 0,
) -> dict:
    """Run one metered ICC simulation; returns a picklable result row.

    Registered in :data:`repro.experiments.runner.EXECUTORS` as
    ``report.run_traced`` so reports fan across cores and trace files get
    deterministic spec-index names.
    """
    from ..sim.delays import UniformDelay
    from .common import make_icc_config, run_icc

    meter = Meter()
    config = make_icc_config(
        protocol,
        n=n,
        t=t,
        delta_bound=delta * 6,
        delay_model=UniformDelay(delta * 0.4, delta),
        epsilon=delta / 5,
        seed=seed,
        max_rounds=rounds + 2,
    )
    config.meter = meter
    cluster = run_icc(config, duration=rounds * delta * 8)
    latencies = cluster.metrics.commit_latencies()
    return {
        "protocol": protocol,
        "n": n,
        "t": t,
        "delta": delta,
        "seed": seed,
        "rounds_committed": cluster.min_committed_round(),
        "commit_latency_mean": mean(latencies) if latencies else None,
        "messages_sent": sum(cluster.metrics.msgs_sent.values()),
        "meter": meter.to_dict(),
    }


def specs(protocol: str, n: int, t: int, delta: float, rounds: int, seeds) -> list:
    return [
        runner.spec(
            "report",
            "report.run_traced",
            protocol=protocol,
            n=n,
            t=t,
            delta=delta,
            rounds=rounds,
            seed=seed,
        )
        for seed in seeds
    ]


# ----------------------------------------------------------------- markdown


def _md_table(headers, rows) -> list[str]:
    lines = ["| " + " | ".join(headers) + " |"]
    lines.append("|" + "|".join(" --- " for _ in headers) + "|")
    for row in rows:
        lines.append("| " + " | ".join(str(cell) for cell in row) + " |")
    return lines


def _fmt(value, digits: int = 4) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.{digits}f}"
    return str(value)


def _critical_path_section(traces, quorum: int) -> list[str]:
    lines = ["## Critical paths", ""]
    all_paths = []
    for label, events in traces:
        paths = critical_paths(events, quorum=quorum)
        all_paths.append((label, paths))
    if not any(paths for _, paths in all_paths):
        lines.append("No finalized heights found in the traces.")
        return lines

    label, paths = next((lp for lp in all_paths if lp[1]), all_paths[0])
    stages = [span.stage for span in paths[0].spans]
    lines.append(f"Per-height breakdown for `{label}` (seconds):")
    lines.append("")
    rows = []
    worst_residual = 0.0
    for path in paths:
        measured = path.finalized - path.entered
        worst_residual = max(worst_residual, abs(path.total - measured))
        rows.append(
            [
                path.round,
                f"`{(path.block or '-')[:8]}`",
                *(_fmt(span.duration) for span in path.spans),
                _fmt(path.total),
                _fmt(measured),
            ]
        )
    lines += _md_table(
        ["height", "block", *stages, "stage sum", "measured"], rows
    )
    lines.append("")
    ok = worst_residual <= TICK
    lines.append(
        f"Consistency: stage sums match measured finalization latency "
        f"within {worst_residual:.2e}s "
        f"({'OK' if ok else 'VIOLATED'}, tolerance 1 tick = {TICK:.0e}s)."
    )

    lines += ["", "Mean per-height stage latency across all runs (seconds):", ""]
    per_run_means = [
        (label, stage_means(paths)) for label, paths in all_paths if paths
    ]
    rows = [
        [label, *(_fmt(means.get(stage)) for stage in stages)]
        for label, means in per_run_means
    ]
    lines += _md_table(["run", *stages], rows)
    return lines


def _theory_section(traces, n: int) -> list[str]:
    lines = ["## Message complexity vs theory", ""]
    sync_bound = theory.synchronous_messages_per_round(n)
    worst_bound = theory.worst_case_messages_per_round(n)
    lines.append(
        f"Paper bounds for n={n}: synchronous fault-free `8n^2` = "
        f"{sync_bound}, worst case `2n^3 + 4n^2` = {worst_bound} "
        "messages per round (Section 1)."
    )
    lines.append("")
    rows = []
    for label, events in traces:
        counts = message_counts(events)
        per_round = {
            rnd: count
            for rnd, count in counts.items()
            if rnd is not None and rnd > 0
        }
        source = "transport"
        if not per_round:
            # Gossip transports wrap artifacts, so net.* events carry no
            # round context (and overlay duplication inflates raw counts).
            # Per-artifact gossip.deliver events match the bounds' message
            # = delivery convention and do carry the round.
            source = "gossip deliveries"
            deliveries: dict[int, int] = {}
            for event in events:
                if event.kind == "gossip.deliver" and event.round:
                    deliveries[event.round] = deliveries.get(event.round, 0) + 1
            per_round = deliveries
        if not per_round:
            continue
        mean_msgs = mean(list(per_round.values()))
        peak = max(per_round.values())
        rows.append(
            [
                label,
                source,
                len(per_round),
                _fmt(mean_msgs, 1),
                peak,
                _fmt(mean_msgs / sync_bound, 2),
                "yes" if peak <= worst_bound else "**no**",
            ]
        )
    lines += _md_table(
        ["run", "counting", "rounds", "msgs/round", "peak", "vs 8n^2",
         "<= worst case"],
        rows,
    )
    return lines


def _metrics_section(meter: Meter | None) -> list[str]:
    lines = ["## Metrics", ""]
    if meter is None or not meter.names():
        lines.append("No metric snapshot available (trace-dir had no metrics.json).")
        return lines
    snapshot = meter.to_dict()
    counters = snapshot.get("counters", {})
    gauges = snapshot.get("gauges", {})
    histograms = snapshot.get("histograms", {})
    if counters:
        lines += ["Counters (summed across runs):", ""]
        lines += _md_table(
            ["metric", "value"],
            [[f"`{k}`", v] for k, v in sorted(counters.items())],
        )
        lines.append("")
    if gauges:
        lines += ["Gauges (max across runs):", ""]
        lines += _md_table(
            ["metric", "value"],
            [[f"`{k}`", _fmt(v)] for k, v in sorted(gauges.items())],
        )
        lines.append("")
    for name in sorted(histograms):
        hist = meter.histogram(name)
        if hist.count == 0:
            continue
        lines += [f"Histogram `{name}` (count={hist.count}, "
                  f"mean={_fmt(hist.mean)}, min={_fmt(hist.min)}, "
                  f"max={_fmt(hist.max)}):", ""]
        rows = []
        for i, bound in enumerate(hist.bounds):
            if hist.counts[i]:
                rows.append([f"<= {bound:g}", hist.counts[i]])
        if hist.counts[-1]:
            rows.append([f"> {hist.bounds[-1]:g}", hist.counts[-1]])
        lines += _md_table(["bucket", "count"], rows)
        lines.append("")
    return lines


def _health_section(traces) -> list[str]:
    lines = ["## Trace health", ""]
    rows = []
    for label, events in traces:
        summary = summarize(events)
        rows.append(
            [
                label,
                summary.events,
                summary.rounds_entered,
                summary.blocks_committed,
                summary.dropped if summary.dropped else 0,
            ]
        )
    lines += _md_table(
        ["run", "events", "rounds", "committed", "dropped"], rows
    )
    total_dropped = sum(row[4] for row in rows)
    lines.append("")
    if total_dropped:
        lines.append(
            f"**Warning:** {total_dropped} events were dropped by ring "
            "buffers; raise Tracer capacity for complete causal graphs."
        )
    else:
        lines.append("No ring-buffer drops: the causal graphs are complete.")
    return lines


def generate(traces, meter, params, results=None) -> str:
    """Render the full Markdown report from loaded traces and metrics."""
    n, t = params["n"], params["t"]
    lines = [
        "# Run report",
        "",
        "Generated by `python -m repro report` (Internet Computer "
        "Consensus reproduction).",
        "",
        "## Configuration",
        "",
    ]
    lines += _md_table(
        ["parameter", "value"],
        [[k, v] for k, v in params.items()],
    )
    if results:
        lines += ["", "## Runs", ""]
        lines += _md_table(
            ["seed", "rounds committed", "mean commit latency (s)", "messages"],
            [
                [
                    r["seed"],
                    r["rounds_committed"],
                    _fmt(r["commit_latency_mean"]),
                    r["messages_sent"],
                ]
                for r in results
            ],
        )
    lines.append("")
    lines += _critical_path_section(traces, quorum=n - t)
    lines.append("")
    lines += _theory_section(traces, n)
    lines.append("")
    lines += _metrics_section(meter)
    lines.append("")
    lines += _health_section(traces)
    lines.append("")
    return "\n".join(lines)


# --------------------------------------------------------------------- html


def to_html(markdown: str, title: str = "Run report") -> str:
    """Minimal, dependency-free Markdown -> self-contained HTML page."""
    import html as _html

    body: list[str] = []
    table: list[str] = []

    def flush_table() -> None:
        if not table:
            return
        rows = [
            [c.strip() for c in line.strip().strip("|").split("|")]
            for line in table
            if not set(line.replace("|", "").strip()) <= {"-", " "}
        ]
        body.append("<table>")
        for i, row in enumerate(rows):
            tag = "th" if i == 0 else "td"
            cells = "".join(
                f"<{tag}>{_inline(_html.escape(c))}</{tag}>" for c in row
            )
            body.append(f"<tr>{cells}</tr>")
        body.append("</table>")
        table.clear()

    def _inline(text: str) -> str:
        out, open_code, open_bold = [], False, False
        i = 0
        while i < len(text):
            if text[i] == "`":
                out.append("</code>" if open_code else "<code>")
                open_code = not open_code
                i += 1
            elif text.startswith("**", i):
                out.append("</b>" if open_bold else "<b>")
                open_bold = not open_bold
                i += 2
            else:
                out.append(text[i])
                i += 1
        return "".join(out)

    for line in markdown.splitlines():
        if line.startswith("|"):
            table.append(line)
            continue
        flush_table()
        if line.startswith("#"):
            level = len(line) - len(line.lstrip("#"))
            text = _inline(_html.escape(line[level:].strip()))
            body.append(f"<h{level}>{text}</h{level}>")
        elif line.strip():
            body.append(f"<p>{_inline(_html.escape(line))}</p>")
    flush_table()
    return (
        "<!DOCTYPE html><html><head><meta charset='utf-8'>"
        f"<title>{_html.escape(title)}</title>"
        "<style>body{font-family:sans-serif;max-width:60em;margin:2em auto;}"
        "table{border-collapse:collapse;}td,th{border:1px solid #999;"
        "padding:0.25em 0.6em;text-align:right;}th{background:#eee;}"
        "code{background:#f4f4f4;padding:0 0.2em;}</style></head><body>"
        + "\n".join(body)
        + "</body></html>"
    )


# ---------------------------------------------------------------------- main


def _load_traces(trace_dir: str) -> list[tuple[str, list]]:
    names = sorted(
        f
        for f in os.listdir(trace_dir)
        if f.endswith(".jsonl") and f != "runner.jsonl"
    )
    return [
        (name[: -len(".jsonl")], read_jsonl(os.path.join(trace_dir, name)))
        for name in names
    ]


def _load_meter(trace_dir: str) -> Meter | None:
    path = os.path.join(trace_dir, "metrics.json")
    if not os.path.exists(path):
        return None
    return Meter.read_json(path)


def build_live_report(args) -> str:
    """``--live``: render the latency breakdown of a collected live run.

    The run directory (``--trace-dir``) is one ``repro live --trace-dir``
    run; if ``repro collect`` has not been run on it yet, collection
    happens here (alignment + merge are idempotent).
    """
    import pathlib

    from ..analysis.live import _run_quorum, load_collected, render_live_report

    if args.trace_dir is None:
        raise SystemExit("--live requires --trace-dir (the live run directory)")
    collected = load_collected(args.trace_dir)
    quorum = _run_quorum(pathlib.Path(args.trace_dir))
    return render_live_report(collected, quorum=quorum)


def build_report(args) -> str:
    """Run (or load) the suite and return the rendered Markdown."""
    base = dict(_QUICK) if args.quick else dict(_DEFAULT)
    if args.protocol is not None:
        base["protocol"] = args.protocol
    if args.n is not None:
        base["n"] = args.n
        base["t"] = (args.n - 1) // 3
    if args.t is not None:
        base["t"] = args.t
    if args.delta is not None:
        base["delta"] = args.delta
    if args.rounds is not None:
        base["rounds"] = args.rounds
    runs = 1 if args.quick else args.runs

    if args.load:
        if args.trace_dir is None:
            raise SystemExit("--load requires --trace-dir")
        traces = _load_traces(args.trace_dir)
        if not traces:
            raise SystemExit(f"no trace files in {args.trace_dir}")
        meter = _load_meter(args.trace_dir)
        params = {**base, "runs": len(traces), "source": args.trace_dir}
        return generate(traces, meter, params)

    tmp = None
    trace_dir = args.trace_dir
    if trace_dir is None:
        tmp = tempfile.TemporaryDirectory(prefix="repro-report-")
        trace_dir = tmp.name
    try:
        suite = specs(
            base["protocol"],
            base["n"],
            base["t"],
            base["delta"],
            base["rounds"],
            seeds=range(args.seed, args.seed + runs),
        )
        results = runner.execute(suite, jobs=args.jobs, trace_dir=trace_dir)
        meter = merge_meters(Meter.from_dict(r["meter"]) for r in results)
        meter.write_json(os.path.join(trace_dir, "metrics.json"))
        with open(os.path.join(trace_dir, "results.json"), "w") as fh:
            json.dump(results, fh, indent=2, sort_keys=True)
        traces = _load_traces(trace_dir)
        params = {
            **base,
            "runs": runs,
            "base seed": args.seed,
            "jobs": args.jobs or runner.default_jobs(),
        }
        return generate(traces, meter, params, results=results)
    finally:
        if tmp is not None:
            tmp.cleanup()


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro report",
        description="per-run metrics / critical-path report",
    )
    parser.add_argument("output", nargs="?", default="REPORT.md")
    parser.add_argument("--quick", action="store_true",
                        help="tiny single-run ICC1 report (CI smoke)")
    parser.add_argument("--protocol", choices=["icc0", "icc1", "icc2"],
                        default=None)
    parser.add_argument("--n", type=int, default=None)
    parser.add_argument("--t", type=int, default=None)
    parser.add_argument("--delta", type=float, default=None)
    parser.add_argument("--rounds", type=int, default=None)
    parser.add_argument("--runs", type=int, default=3,
                        help="number of seeded runs to aggregate")
    parser.add_argument("--seed", type=int, default=0, help="base seed")
    parser.add_argument("--jobs", type=int, default=None,
                        help="runner worker processes")
    parser.add_argument("--trace-dir", default=None, metavar="DIR",
                        help="keep traces + metrics.json here")
    parser.add_argument("--load", action="store_true",
                        help="render from an existing --trace-dir, no runs")
    parser.add_argument("--html", action="store_true",
                        help="write a self-contained HTML page instead")
    parser.add_argument("--live", action="store_true",
                        help="render a collected live run (--trace-dir) "
                             "instead of simulating")
    args = parser.parse_args(argv)

    markdown = build_live_report(args) if args.live else build_report(args)
    content = to_html(markdown) if args.html else markdown
    with open(args.output, "w") as fh:
        fh.write(content)
    print(f"wrote {args.output}")
    return 0
