"""Parallel experiment runner: fan independent simulations across cores.

Every experiment in the suite is a collection of *independent, seeded*
simulation runs — the only sequential part is printing the tables.  This
module makes that structure explicit:

* :class:`RunSpec` describes one simulation run in plain, picklable data
  (an executor name plus keyword arguments), so a run can execute in the
  parent process or in a ``multiprocessing`` worker with identical
  results.
* :func:`execute` runs a list of specs either strictly in-process
  (``jobs=1`` — today's sequential path, unchanged) or across a worker
  pool (``jobs=N``), returning results **in spec order** regardless of
  completion order.  Determinism is per-run (each run carries its own
  seed), so serial and parallel execution produce bit-identical results;
  ``tests/experiments/test_runner.py`` pins this.

Tracing: when ``trace_dir`` is given, every run exports its structured
trace (see :mod:`repro.obs`) to ``{index:04d}-{label}.jsonl`` where
``index`` is the run's position in the spec list — assigned *before*
execution, so file names do not depend on worker arrival order.  The
runner additionally writes its own orchestration events
(``runner.run_start`` / ``runner.run_end``) to ``runner.jsonl`` in the
same directory; their ``time`` field is wall-clock seconds since
:func:`execute` started (not simulation time) and is therefore not
deterministic across machines.

Workers warm the deterministic setup cache
(:mod:`repro.crypto.setup_cache`) in their pool initializer, so key
material derived once — by any process — is shared through the on-disk
layer instead of being re-derived per worker.
"""

from __future__ import annotations

import importlib
import multiprocessing
import os
from dataclasses import dataclass, field, replace
from time import perf_counter
from typing import Any, Callable, Sequence

from ..crypto import setup_cache
from ..obs import Tracer, write_jsonl

#: Executor registry: RunSpec.kind -> (module, attribute).  Executors are
#: referenced by name, never by object, so specs stay picklable and
#: self-describing under both fork and spawn start methods.
EXECUTORS: dict[str, tuple[str, str]] = {
    "table1.run_cell": ("repro.experiments.table1", "run_cell"),
    "throughput_latency.run_one": ("repro.experiments.throughput_latency", "run_one"),
    "robustness.run_icc0": ("repro.experiments.robustness", "run_icc0"),
    "robustness.run_pbft": ("repro.experiments.robustness", "run_pbft"),
    "comparison.run_icc_row": ("repro.experiments.comparison", "run_icc_row"),
    "comparison.baseline_row": ("repro.experiments.comparison", "baseline_row"),
    "intermittent.run": ("repro.experiments.intermittent", "run"),
    "chaos.run_scenario": ("repro.experiments.chaos", "run_scenario"),
    "shard.run_deployment": ("repro.experiments.sharding", "run_deployment"),
    "load.run_point": ("repro.experiments.load", "run_point"),
    "report.run_traced": ("repro.experiments.run_report", "run_traced"),
    "ablations.epsilon_point": ("repro.experiments.ablations", "epsilon_point"),
    "ablations.stagger_point": ("repro.experiments.ablations", "stagger_point"),
    "ablations.gossip_degree_point": ("repro.experiments.ablations", "gossip_degree_point"),
    "ablations.fill_delay_point": ("repro.experiments.ablations", "fill_delay_point"),
}


@dataclass(frozen=True)
class RunSpec:
    """One self-describing simulation run.

    ``kind`` names an entry in :data:`EXECUTORS`; ``params`` are its
    keyword arguments as a sorted tuple of items (hashable, picklable,
    order-independent).  ``index`` is the run's position in the suite,
    assigned by :func:`execute`; ``label`` names trace files.
    """

    experiment: str
    kind: str
    params: tuple[tuple[str, Any], ...] = ()
    label: str = ""
    index: int = -1

    @property
    def kwargs(self) -> dict[str, Any]:
        return dict(self.params)

    def describe(self) -> str:
        args = ", ".join(f"{k}={v!r}" for k, v in self.params)
        return f"{self.kind}({args})"


def spec(experiment: str, kind: str, label: str | None = None, **params) -> RunSpec:
    """Build a :class:`RunSpec`; params are normalized to sorted items."""
    if kind not in EXECUTORS:
        raise ValueError(f"unknown run kind {kind!r} (not in runner.EXECUTORS)")
    if label is None:
        label = "-".join(
            [experiment] + [f"{k}{v}" for k, v in sorted(params.items())]
        )
    label = "".join(c if c.isalnum() or c in "-_." else "-" for c in label)
    return RunSpec(
        experiment=experiment, kind=kind, params=tuple(sorted(params.items())), label=label
    )


def resolve(kind: str) -> Callable[..., Any]:
    """The executor callable for a spec kind (lazy import, no cycles)."""
    try:
        module_name, attr = EXECUTORS[kind]
    except KeyError:
        raise ValueError(f"unknown run kind {kind!r} (not in runner.EXECUTORS)") from None
    return getattr(importlib.import_module(module_name), attr)


def run_spec(run: RunSpec) -> Any:
    """Execute one spec in the current process and return its result."""
    return resolve(run.kind)(**run.kwargs)


# ---------------------------------------------------------------------- pool


def default_jobs() -> int:
    return os.cpu_count() or 1


def _pool_context() -> multiprocessing.context.BaseContext:
    """Prefer fork (cheap, inherits warm caches); fall back to spawn."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else "spawn")


#: Per-worker state installed by :func:`_worker_init`.
_WORKER_TRACE_DIR: str | None = None


def _worker_init(trace_dir: str | None, cache_dir: str | None, cache_enabled: bool) -> None:
    global _WORKER_TRACE_DIR
    _WORKER_TRACE_DIR = trace_dir
    cache = setup_cache.configure(directory=cache_dir, enabled=cache_enabled)
    cache.warm()


def _run_traced(run: RunSpec, trace_dir: str | None) -> Any:
    """Run one spec with its trace routed to the index-named file."""
    from . import common  # local import: common imports nothing from runner

    if trace_dir is None:
        return run_spec(run)
    common.enable_tracing(trace_dir)
    common.begin_spec_trace(run.index)
    try:
        return run_spec(run)
    finally:
        common.end_spec_trace()
        common.enable_tracing(None)


def _worker_run(run: RunSpec) -> tuple[int, Any, float]:
    start = perf_counter()
    result = _run_traced(run, _WORKER_TRACE_DIR)
    return run.index, result, (perf_counter() - start) * 1000.0


# ------------------------------------------------------------------- execute


@dataclass
class _RunnerTrace:
    """Collects runner.run_start / runner.run_end orchestration events."""

    jobs: int
    tracer: Tracer = field(default_factory=Tracer)
    origin: float = field(default_factory=perf_counter)

    def _emit(self, kind: str, run: RunSpec, extra: dict | None = None) -> None:
        payload = {"run": run.index, "kind": run.kind, "label": run.label, "jobs": self.jobs}
        if extra:
            payload.update(extra)
        self.tracer.emit(
            time=perf_counter() - self.origin,
            party=0,
            protocol="runner",
            round=None,
            kind=kind,
            payload=payload,
        )

    def run_start(self, run: RunSpec) -> None:
        self._emit("runner.run_start", run)

    def run_end(self, run: RunSpec, wall_ms: float) -> None:
        self._emit("runner.run_end", run, {"wall_ms": round(wall_ms, 3)})

    def write(self, trace_dir: str) -> None:
        write_jsonl(self.tracer.events(), os.path.join(trace_dir, "runner.jsonl"))


def execute(
    specs: Sequence[RunSpec],
    jobs: int | None = None,
    trace_dir: str | None = None,
) -> list[Any]:
    """Run every spec and return results in spec order.

    ``jobs=1`` executes in-process, sequentially, in spec order — the
    exact code path the suite ran before this module existed.  ``jobs>1``
    fans specs across a ``multiprocessing`` pool; per-run seeding makes
    the results identical either way.  ``jobs=None`` uses
    :func:`default_jobs` (``os.cpu_count()``).
    """
    jobs = default_jobs() if jobs is None else jobs
    if jobs < 1:
        raise ValueError(f"jobs must be >= 1, got {jobs}")
    specs = [replace(s, index=i) for i, s in enumerate(specs)]
    if not specs:
        return []
    if trace_dir is not None:
        os.makedirs(trace_dir, exist_ok=True)
    jobs = min(jobs, len(specs))
    trace = _RunnerTrace(jobs=jobs) if trace_dir is not None else None

    results: list[Any] = [None] * len(specs)
    if jobs == 1:
        for run in specs:
            start = perf_counter()
            if trace is not None:
                trace.run_start(run)
            results[run.index] = _run_traced(run, trace_dir)
            if trace is not None:
                trace.run_end(run, (perf_counter() - start) * 1000.0)
    else:
        cache = setup_cache.default_cache()
        ctx = _pool_context()
        with ctx.Pool(
            processes=jobs,
            initializer=_worker_init,
            initargs=(trace_dir, cache.directory, cache.enabled),
        ) as pool:
            if trace is not None:
                for run in specs:
                    trace.run_start(run)
            for index, result, wall_ms in pool.imap_unordered(_worker_run, specs):
                results[index] = result
                if trace is not None:
                    trace.run_end(specs[index], wall_ms)
    if trace is not None:
        trace.write(trace_dir)
    return results
