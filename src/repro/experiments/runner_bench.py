"""Benchmark the experiment runner: serial vs parallel wall-clock.

Usage::

    python -m repro bench-runner [--quick] [--jobs N] [--json PATH] [--check]

Runs the same RunSpec suite twice — once with ``jobs=1`` (the in-process
serial path) and once with ``jobs=N`` (the multiprocessing pool) — and
reports wall-clock seconds, speedup, and setup-cache hit statistics.
``--check`` exits non-zero if the parallel pass is slower than serial
beyond a generous noise margin (pool setup costs real milliseconds, so
the margin matters on small suites and single-core machines).

``BENCH_runner.json`` at the repository root is a committed snapshot of
this benchmark's ``--json`` output; see ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import argparse
import json
import os
import time

from ..crypto import setup_cache
from . import runner

#: Parallel must finish within this factor of serial for --check to pass.
#: Generous on purpose: on a single-core machine (or a two-spec suite)
#: the pool cannot win — two workers time-slicing one core measured
#: ~0.8x — it must merely not lose badly.
CHECK_TOLERANCE = 1.5


def bench_suite(quick: bool) -> list[runner.RunSpec]:
    """The benchmark workload, as self-describing RunSpecs.

    The full workload is the runner-enumerable part of ``run_all --quick``.
    ``--quick`` here trims further (CI-sized: a few seconds of simulation).
    """
    from . import ablations, comparison, intermittent, robustness, table1, throughput_latency

    if quick:
        return (
            table1.specs(duration=20.0, subnets=(13,))
            + throughput_latency.specs(deltas=(0.05, 0.1), rounds=10)
            + robustness.specs(duration=30.0)
            + intermittent.specs(duration=60.0)
        )
    from .run_all import suite

    return [s for _, group in suite(quick=True) for s in group]


def bench_setup_cache() -> dict:
    """Time one real-backend key derivation cold vs disk-cached vs memory.

    The experiments default to the fast (hash) crypto backend, so the
    runner passes above exercise the cache machinery but never miss into
    a real derivation; this measures the case the cache exists for.
    """
    import shutil
    import tempfile

    from ..crypto.keyring import generate_keyrings

    directory = tempfile.mkdtemp(prefix="repro-setup-bench-")
    previous = setup_cache.default_cache()
    try:
        def build():
            return generate_keyrings(13, 4, seed=2024, backend="real", group_profile="test")

        setup_cache.configure(directory=directory)
        start = time.perf_counter()
        build()
        derive_ms = (time.perf_counter() - start) * 1000.0

        setup_cache.configure(directory=directory)  # cold memory, warm disk
        start = time.perf_counter()
        build()
        disk_hit_ms = (time.perf_counter() - start) * 1000.0

        start = time.perf_counter()
        build()
        memory_hit_ms = (time.perf_counter() - start) * 1000.0
        stats = setup_cache.default_cache().stats.as_dict()
    finally:
        setup_cache._DEFAULT = previous
        shutil.rmtree(directory, ignore_errors=True)
    return {
        "workload": "generate_keyrings(n=13, t=4, backend='real')",
        "derive_ms": round(derive_ms, 2),
        "disk_hit_ms": round(disk_hit_ms, 2),
        "memory_hit_ms": round(memory_hit_ms, 2),
        "speedup_disk": round(derive_ms / disk_hit_ms, 1) if disk_hit_ms else None,
        "stats": stats,
    }


def run_bench(jobs: int, quick: bool) -> dict:
    specs = bench_suite(quick)
    cores = os.cpu_count() or 1

    start = time.perf_counter()
    serial_results = runner.execute(specs, jobs=1)
    serial_s = time.perf_counter() - start

    report = {
        "benchmark": "experiment-runner",
        "cores": cores,
        "runs": len(specs),
        "quick": quick,
        "serial": {"jobs": 1, "wall_s": round(serial_s, 3)},
    }
    if cores < 2:
        # A pool cannot beat the serial path with one core: two workers
        # time-slicing it measure ~0.8x, which is scheduler noise, not a
        # runner property.  Record the skip instead of a nonsense number.
        report["parallel"] = {"jobs": jobs, "skipped": "single-core machine"}
        report["speedup"] = "skipped"
        report["results_identical"] = True
    else:
        start = time.perf_counter()
        parallel_results = runner.execute(specs, jobs=jobs)
        parallel_s = time.perf_counter() - start
        matches = sum(
            1 for a, b in zip(serial_results, parallel_results) if a == b
        )
        report["parallel"] = {"jobs": jobs, "wall_s": round(parallel_s, 3)}
        report["speedup"] = (
            round(serial_s / parallel_s, 3) if parallel_s else None
        )
        report["results_identical"] = matches == len(specs)
    report["setup_cache"] = bench_setup_cache()
    return report


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.runner_bench", description=__doc__.splitlines()[0]
    )
    parser.add_argument("--jobs", type=int, default=None, metavar="N")
    parser.add_argument("--quick", action="store_true")
    parser.add_argument("--json", metavar="PATH", default=None)
    parser.add_argument("--check", action="store_true")
    args = parser.parse_args(argv)

    jobs = args.jobs if args.jobs is not None else runner.default_jobs()
    report = run_bench(jobs=jobs, quick=args.quick)

    print(f"runner benchmark: {report['runs']} runs on {report['cores']} core(s)")
    print(f"  serial   (jobs=1): {report['serial']['wall_s']:8.2f} s")
    if "skipped" in report["parallel"]:
        print(f"  parallel (jobs={jobs}): skipped ({report['parallel']['skipped']})")
    else:
        print(f"  parallel (jobs={jobs}): {report['parallel']['wall_s']:8.2f} s")
        print(f"  speedup          : {report['speedup']:.2f}x")
        print(f"  results identical: {report['results_identical']}")
    print(f"  setup cache      : {report['setup_cache']}")

    if args.json:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
            handle.write("\n")
        print(f"wrote {args.json}")

    if not report["results_identical"]:
        print("FAIL: parallel results differ from serial")
        return 1
    if args.check:
        if "skipped" in report["parallel"]:
            print("check passed: parallel leg skipped (single core)")
            return 0
        serial_s = report["serial"]["wall_s"]
        parallel_s = report["parallel"]["wall_s"]
        if parallel_s > serial_s * CHECK_TOLERANCE:
            print(
                f"FAIL: parallel ({parallel_s:.2f} s) slower than serial "
                f"({serial_s:.2f} s) beyond tolerance x{CHECK_TOLERANCE}"
            )
            return 1
        print("check passed: parallel within tolerance of serial")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
