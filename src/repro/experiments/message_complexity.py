"""Experiment E3 — message complexity per round.

Paper claims (Section 1):

* in any round where the network is synchronous, the expected message
  complexity is **O(n²)** (with overwhelming probability over the beacon);
* the worst case — an adversarial scheduler — is **O(n³)**.

Message complexity counts a broadcast by one party as n messages.

The synchronous measurement sweeps n and fits messages/round against n²;
the worst-case measurement uses a content-aware adversarial scheduler that
(1) lets every party propose (it delays low-rank proposals so nobody sees
a better block in time) and (2) delivers candidate blocks to each party in
*decreasing* rank order, so each party's "best block so far" improves O(n)
times, and every improvement costs an echo plus a notarization share —
Θ(n) broadcasts per party, Θ(n³) messages in total.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cluster import build_cluster
from ..core.messages import Authenticator, Block
from ..sim.delays import FixedDelay, MessageAwareDelay
from .common import make_icc_config, mean, print_table, run_icc


@dataclass(frozen=True)
class ComplexityPoint:
    n: int
    messages_per_round: float
    per_n2: float  # messages / n^2
    per_n3: float  # messages / n^3


def run_synchronous(
    ns: tuple[int, ...] = (4, 7, 10, 13, 19, 25, 31, 40),
    rounds: int = 12,
    seed: int = 1,
) -> list[ComplexityPoint]:
    """Messages per round in fault-free synchronous rounds, n sweep."""
    points = []
    for n in ns:
        config = make_icc_config(
            "ICC0",
            n=n,
            t=(n - 1) // 3,
            delta_bound=0.2,
            epsilon=0.01,
            delay_model=FixedDelay(0.05),
            seed=seed,
            max_rounds=rounds,
        )
        cluster = run_icc(config, duration=rounds * 0.5 + 5)
        counted_rounds = range(2, rounds)  # skip boot and tail rounds
        per_round = [cluster.metrics.messages_in_round(k) for k in counted_rounds]
        m = mean(per_round)
        points.append(
            ComplexityPoint(n=n, messages_per_round=m, per_n2=m / n**2, per_n3=m / n**3)
        )
    return points


def run_worst_case(
    ns: tuple[int, ...] = (4, 7, 10, 13),
    rounds: int = 6,
    seed: int = 3,
) -> list[ComplexityPoint]:
    """Adversarially scheduled rounds: every party proposes, blocks arrive
    in decreasing-rank order.  Messages/round should scale ~ n³."""
    from ..core.beacon import permutation_from_beacon
    from ..core.messages import Notarization, NotarizationShare

    points = []
    for n in ns:
        # Adversary bookkeeping: ranks are derived from the blocks
        # themselves (the scheduler sees message contents, which the
        # paper's adversary does too).
        beacon_oracle: dict[int, dict[int, int]] = {}  # round -> proposer -> rank
        delta_bound = 0.05
        base_delay = 0.01
        gap = 0.1  # spacing between consecutive block deliveries
        # All blocks land after every Δntry gate has passed...
        block_floor = 2 * delta_bound * n + 0.1
        # ...and every notarization share floats until all echoes happened.
        share_floor = block_floor + (n + 2) * gap

        config = make_icc_config(
            "ICC0",
            n=n,
            t=(n - 1) // 3,
            delta_bound=delta_bound,
            epsilon=0.001,
            delay_model=FixedDelay(base_delay),  # placeholder, replaced below
            seed=seed,
            max_rounds=rounds,
        )
        cluster = build_cluster(config)

        def rank_of(block: Block) -> int:
            table = beacon_oracle.get(block.round)
            if table is None:
                # Derive the permutation the same way the parties do.
                value = cluster.parties[0].pool.beacon_value(block.round)
                if value is None:
                    return 0
                ranks = permutation_from_beacon(block.round, value, n)
                table = {party: ranks.rank_of(party) for party in range(1, n + 1)}
                beacon_oracle[block.round] = table
            return table.get(block.proposer, 0)

        def strategy(sender: int, receiver: int, now: float, message: object) -> float:
            if isinstance(message, Block):
                # The proposer of rank r sends at ~2·Δbnd·r into the round;
                # aim its arrival at block_floor + (n-1-r)·gap so processing
                # happens in strictly decreasing rank order: every arrival
                # is a new best block and costs each party an echo + share.
                rank = rank_of(message)
                target = block_floor + (n - 1 - rank) * gap - 2 * delta_bound * rank
                return max(base_delay, target)
            if isinstance(message, (NotarizationShare, Notarization)):
                # Float agreement messages so the round cannot finish until
                # every block has been echoed by everyone.
                return share_floor
            return base_delay

        cluster.network.delay_model = MessageAwareDelay(strategy=strategy, max_delay=120.0)
        cluster.start()
        cluster.run_for(rounds * (share_floor + 3) + 10, max_events=50_000_000)
        cluster.check_safety()
        counted_rounds = range(2, rounds)
        per_round = [cluster.metrics.messages_in_round(k) for k in counted_rounds]
        m = mean(per_round)
        points.append(
            ComplexityPoint(n=n, messages_per_round=m, per_n2=m / n**2, per_n3=m / n**3)
        )
    return points


def main() -> dict:
    sync = run_synchronous()
    worst = run_worst_case()
    print_table(
        "E3a: messages per round, synchronous rounds (expect ~ c·n², c stable)",
        ["n", "msgs/round", "msgs/n^2", "msgs/n^3"],
        [
            (p.n, f"{p.messages_per_round:.0f}", f"{p.per_n2:.2f}", f"{p.per_n3:.3f}")
            for p in sync
        ],
    )
    print_table(
        "E3b: messages per round, adversarial schedule (expect msgs/n^3 stable)",
        ["n", "msgs/round", "msgs/n^2", "msgs/n^3"],
        [
            (p.n, f"{p.messages_per_round:.0f}", f"{p.per_n2:.2f}", f"{p.per_n3:.3f}")
            for p in worst
        ],
    )
    return {"synchronous": sync, "worst_case": worst}


if __name__ == "__main__":
    main()
