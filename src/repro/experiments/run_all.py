"""Run the full evaluation suite and print every table.

Usage::

    python -m repro.experiments.run_all [--quick] [--trace DIR]

``--quick`` shrinks the Table 1 measurement window from the paper's 5
minutes to 60 seconds (everything else is already fast).  ``--trace DIR``
turns on structured tracing (:mod:`repro.obs`) for every ICC cluster the
experiments build, exporting one JSONL file per run into ``DIR`` — see
``docs/OBSERVABILITY.md``.
"""

from __future__ import annotations

import sys

from .common import enable_tracing, flush_pending_trace
from . import (
    ablations,
    bandwidth,
    comparison,
    dissemination,
    intermittent,
    message_complexity,
    properties,
    responsiveness,
    robustness,
    round_complexity,
    table1,
    throughput_latency,
)


def main(argv: list[str] | None = None) -> None:
    args = argv if argv is not None else sys.argv[1:]
    quick = "--quick" in args
    if "--trace" in args:
        enable_tracing(args[args.index("--trace") + 1])
    try:
        table1.main(duration=60.0 if quick else 300.0)
        throughput_latency.main()
        message_complexity.main()
        round_complexity.main()
        robustness.main()
        responsiveness.main()
        dissemination.main()
        comparison.main()
        properties.main()
        intermittent.main()
        bandwidth.main()
        ablations.main()
    finally:
        flush_pending_trace()


if __name__ == "__main__":
    main()
