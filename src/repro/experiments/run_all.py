"""Run the full evaluation suite and print every table.

Usage::

    python -m repro.experiments.run_all [--quick] [--trace DIR] [--jobs N]

``--quick`` shrinks the Table 1 measurement window from the paper's 5
minutes to 60 seconds (everything else is already fast).  ``--trace DIR``
turns on structured tracing (:mod:`repro.obs`) for every ICC cluster the
experiments build, exporting one JSONL file per run into ``DIR`` — see
``docs/OBSERVABILITY.md``.  ``--jobs N`` fans the enumerable simulations
across ``N`` worker processes (default: all cores); ``--jobs 1`` keeps
the fully in-process serial path.  Tables print in the same order, with
byte-identical content, at any job count.
"""

from __future__ import annotations

import argparse

from . import runner
from .common import enable_tracing, flush_pending_trace
from . import (
    ablations,
    bandwidth,
    comparison,
    dissemination,
    intermittent,
    message_complexity,
    properties,
    responsiveness,
    robustness,
    round_complexity,
    table1,
    throughput_latency,
)


def parse_args(argv: list[str] | None = None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(
        prog="repro.experiments.run_all",
        description="Run every experiment and print the paper's tables.",
    )
    parser.add_argument(
        "--quick",
        action="store_true",
        help="shrink Table 1's measurement window from 300 s to 60 s",
    )
    parser.add_argument(
        "--trace",
        metavar="DIR",
        default=None,
        help="export one JSONL trace file per simulation run into DIR",
    )
    parser.add_argument(
        "--jobs",
        type=int,
        default=None,
        metavar="N",
        help="worker processes for the simulation suite (default: all cores)",
    )
    return parser.parse_args(argv)


def suite(quick: bool) -> list[tuple[object, list[runner.RunSpec]]]:
    """The runner-enumerable portion of the suite, in table order."""
    return [
        (table1, table1.specs(duration=60.0 if quick else 300.0)),
        (throughput_latency, throughput_latency.specs()),
        (robustness, robustness.specs()),
        (comparison, comparison.specs()),
        (intermittent, intermittent.specs()),
        (ablations, ablations.specs()),
    ]


def main(argv: list[str] | None = None) -> None:
    args = parse_args(argv)
    jobs = args.jobs if args.jobs is not None else runner.default_jobs()

    groups = suite(args.quick)
    all_specs = [s for _, group in groups for s in group]
    results = runner.execute(all_specs, jobs=jobs, trace_dir=args.trace)

    # Slice flat results back into per-module lists, preserving order.
    sliced: dict[object, tuple[list[runner.RunSpec], list]] = {}
    offset = 0
    for module, group in groups:
        sliced[module] = (group, results[offset : offset + len(group)])
        offset += len(group)

    # Inline experiments (not yet RunSpec-enumerable) run in-process during
    # the print phase; their trace files are numbered after the runner's.
    if args.trace is not None:
        enable_tracing(args.trace, start=len(all_specs))
    try:
        table1.tabulate(*sliced[table1])
        throughput_latency.tabulate(*sliced[throughput_latency])
        message_complexity.main()
        round_complexity.main()
        robustness.tabulate(*sliced[robustness])
        responsiveness.main()
        dissemination.main()
        comparison.tabulate(*sliced[comparison])
        properties.main()
        intermittent.tabulate(*sliced[intermittent])
        bandwidth.main()
        ablations.tabulate(*sliced[ablations])
    finally:
        flush_pending_trace()


if __name__ == "__main__":
    main()
