"""Crypto fast-path benchmark: single vs RLC-batched verification.

Measures per-primitive verification throughput (ops/sec) two ways:

* **single** — the per-item reference path: the pure oracles
  :func:`repro.crypto.fastpath.verify_schnorr_single` /
  :func:`verify_dleq_single`, which use plain ``pow`` and no caches.
  This is the correctness oracle the batch path falls back to, i.e. what
  verification cost before the fast path existed.
* **batch** — :meth:`repro.crypto.api.Verifier.verify_batch` through the
  unified verifier API: one random-linear-combination check per batch,
  fixed-base tables for ``g`` and long-lived keys, memoized hash-to-group.

``python -m repro bench --json BENCH_crypto.json`` writes the JSON
baseline checked into the repository root; CI runs the same command with
``--profile test --quick --check`` as a smoke test that batching never
loses to the single path.  See ``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import json
import sys
import time
from random import Random

from ..crypto import fastpath, multisig, threshold, unique
from ..crypto.api import verifiers_for
from ..crypto.dleq import DleqStatement
from ..crypto.group import Group, group_for_profile
from ..crypto.unique import message_point

#: (primitive name, builder) — builders return (single_fn, batch_fn, count).
PRIMITIVES = ("schnorr", "dleq", "threshold-share", "multisig-share")


def _throughput(fn, items_per_call: int, min_seconds: float) -> float:
    """Call ``fn`` until ``min_seconds`` elapse; return items/second."""
    fn()  # warm-up: populate fixed-base tables / H2 memo outside the clock
    calls = 0
    start = time.perf_counter()
    deadline = start + min_seconds
    while True:
        fn()
        calls += 1
        now = time.perf_counter()
        if now >= deadline:
            return calls * items_per_call / (now - start)


def _schnorr_case(group: Group, suite, rng: Random, size: int):
    from ..crypto import schnorr

    items = []
    for i in range(size):
        pair = schnorr.keygen(group, rng)
        message = b"bench/schnorr/%d" % i
        items.append((pair.public, message, schnorr.sign(group, pair.secret, message, rng)))

    def single() -> None:
        for pk, message, sig in items:
            assert fastpath.verify_schnorr_single(group, pk, message, sig)

    def batch() -> None:
        assert all(suite.schnorr.verify_batch(items))

    return single, batch


def _dleq_case(group: Group, suite, rng: Random, size: int):
    items = []
    for i in range(size):
        secret = group.random_scalar(rng)
        public = group.power_g(secret)
        message = b"bench/dleq/%d" % i
        sig = unique.sign(group, secret, message, rng)
        statement = DleqStatement(group.g, public, message_point(group, message), sig.value)
        items.append((statement, b"", sig.proof))

    def single() -> None:
        for statement, _, proof in items:
            assert fastpath.verify_dleq_single(group, statement, proof)

    def batch() -> None:
        assert all(suite.dleq.verify_batch(items))

    return single, batch


def _threshold_case(group: Group, suite, rng: Random, size: int):
    # The beacon pattern: every party signs the *same* message, so the
    # batch path also benefits from the memoized hash-to-group point.
    pk, keys = threshold.keygen(group, size // 2 + 1, size, rng)
    message = b"bench/threshold"
    items = [(pk, message, threshold.sign_share(pk, key, message, rng)) for key in keys]

    def single() -> None:
        for _, msg, share in items:
            statement = DleqStatement(
                group.g, pk.share_public(share.index), message_point(group, msg), share.value
            )
            assert fastpath.verify_dleq_single(group, statement, share.proof)

    def batch() -> None:
        assert all(suite.threshold_share.verify_batch(items))

    return single, batch


def _multisig_case(group: Group, suite, rng: Random, size: int):
    pk, keys = multisig.keygen(group, size, size, rng)
    message = b"bench/multisig"
    items = [(pk, message, multisig.sign_share(pk, key, message, rng)) for key in keys]

    def single() -> None:
        for _, msg, share in items:
            assert fastpath.verify_schnorr_single(
                group, pk.public(share.index), msg, share.signature
            )

    def batch() -> None:
        assert all(suite.multisig_share.verify_batch(items))

    return single, batch


_CASES = {
    "schnorr": _schnorr_case,
    "dleq": _dleq_case,
    "threshold-share": _threshold_case,
    "multisig-share": _multisig_case,
}


def run_bench(
    profile: str = "default",
    batch_size: int = 32,
    min_seconds: float = 0.5,
    seed: int = 0,
) -> dict:
    """Run all primitive benchmarks; returns the JSON-ready result dict."""
    group = group_for_profile(profile)
    suite = verifiers_for(group)
    rng = Random(seed)
    results = []
    for name in PRIMITIVES:
        single, batch = _CASES[name](group, suite, rng, batch_size)
        single_ops = _throughput(single, batch_size, min_seconds)
        batch_ops = _throughput(batch, batch_size, min_seconds)
        results.append(
            {
                "primitive": name,
                "single_ops_per_sec": round(single_ops, 1),
                "batch_ops_per_sec": round(batch_ops, 1),
                "speedup": round(batch_ops / single_ops, 2),
            }
        )
    return {
        "benchmark": "crypto fast path: single (per-item oracle) vs batch (RLC) verification",
        "profile": profile,
        "group_bits": {"p": group.p.bit_length(), "q": group.q.bit_length()},
        "batch_size": batch_size,
        "seed": seed,
        "results": results,
    }


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro bench")
    parser.add_argument("--json", metavar="PATH", default=None, help="write results as JSON")
    parser.add_argument("--profile", choices=["test", "default", "strong"], default="default")
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick", action="store_true", help="short timing windows (CI smoke)"
    )
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless batch throughput >= single for every primitive",
    )
    args = parser.parse_args(argv)

    report = run_bench(
        profile=args.profile,
        batch_size=args.batch_size,
        min_seconds=0.05 if args.quick else 0.5,
        seed=args.seed,
    )
    print(f"profile={report['profile']} (|p|={report['group_bits']['p']} bits) "
          f"batch_size={report['batch_size']}")
    print(f"{'primitive':<16} {'single ops/s':>13} {'batch ops/s':>13} {'speedup':>8}")
    failed = []
    for row in report["results"]:
        print(
            f"{row['primitive']:<16} {row['single_ops_per_sec']:>13.1f} "
            f"{row['batch_ops_per_sec']:>13.1f} {row['speedup']:>7.2f}x"
        )
        if row["batch_ops_per_sec"] < row["single_ops_per_sec"]:
            failed.append(row["primitive"])
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.check and failed:
        print(f"FAIL: batch slower than single for {', '.join(failed)}", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
