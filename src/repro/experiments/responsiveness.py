"""Experiment E6 — optimistic responsiveness.

Paper claim (Section 1): "the ICC protocols enjoy the property known as
optimistic responsiveness [30], meaning that the protocol will run as fast
as the network will allow in those rounds where the leader is honest",
whereas Tendermint is *not* responsive: "to guarantee liveness, one
generally has to choose a network-delay upper bound Δbnd that may be
significantly larger than the actual network delay δ, and in Tendermint,
every round takes time O(Δbnd), even when the leader is honest."

Setup: fix a conservative bound Δbnd = 1 s, sweep the *actual* network
delay δ from 5 ms to 200 ms, and measure the per-block time of ICC0 and
Tendermint (whose `timeout_commit` must be set to the same conservative
bound).  ICC0 should track 2δ; Tendermint should stay pinned near Δbnd.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..baselines import BaselineClusterConfig, TendermintParty, build_baseline_cluster
from ..sim.delays import FixedDelay
from .common import make_icc_config, print_table, run_icc

DELTA_BOUND = 1.0  # the conservative bound both protocols must tolerate


@dataclass(frozen=True)
class ResponsivenessResult:
    delta: float
    icc0_block_time: float
    tendermint_block_time: float


def run_point(delta: float, n: int = 7, blocks: int = 20, seed: int = 11) -> ResponsivenessResult:
    t = (n - 1) // 3
    # ICC0 with Δbnd fixed at the conservative bound.
    config = make_icc_config(
        "ICC0",
        n=n,
        t=t,
        delta_bound=DELTA_BOUND,
        epsilon=0.001,
        delay_model=FixedDelay(delta),
        seed=seed,
        max_rounds=blocks + 2,
    )
    cluster = run_icc(config, duration=blocks * (2 * delta) * 4 + 30)
    observer = cluster.honest_parties[0]
    icc_time = cluster.sim.now
    # Average block time over committed rounds (excluding bootstrap).
    icc_rounds = observer.k_max
    durations = cluster.metrics.round_durations(observer.index)
    steady = [v for k, v in durations.items() if 2 <= k <= blocks]
    icc_block_time = sum(steady) / len(steady) if steady else float("nan")

    # Tendermint with timeout_commit at the same conservative bound.
    tm_config = BaselineClusterConfig(
        party_class=TendermintParty,
        n=n,
        t=t,
        seed=seed,
        delay_model=FixedDelay(delta),
        party_kwargs=dict(
            timeout_propose=DELTA_BOUND * 3,
            timeout_step=DELTA_BOUND * 3,
            timeout_commit=DELTA_BOUND,
            max_heights=blocks,
        ),
    )
    tm = build_baseline_cluster(tm_config)
    tm.start()
    tm.run_until_all_committed_height(blocks, timeout=blocks * (DELTA_BOUND + 4 * delta) * 3)
    tm.check_safety()
    tm_block_time = tm.sim.now / max(1, tm.min_committed_height())
    return ResponsivenessResult(
        delta=delta, icc0_block_time=icc_block_time, tendermint_block_time=tm_block_time
    )


def run(deltas: tuple[float, ...] = (0.005, 0.02, 0.05, 0.1, 0.2)) -> list[ResponsivenessResult]:
    return [run_point(d) for d in deltas]


def main() -> list[ResponsivenessResult]:
    results = run()
    rows = [
        (
            f"{r.delta * 1000:.0f} ms",
            f"{r.icc0_block_time * 1000:.0f} ms",
            f"{r.icc0_block_time / r.delta:.1f} δ",
            f"{r.tendermint_block_time * 1000:.0f} ms",
            f"{r.tendermint_block_time / DELTA_BOUND:.2f} Δbnd",
        )
        for r in results
    ]
    print_table(
        f"E6: block time vs actual delay δ (Δbnd fixed at {DELTA_BOUND:.0f} s)",
        ["δ", "ICC0 block time", "(in δ)", "Tendermint block time", "(in Δbnd)"],
        rows,
    )
    return results


if __name__ == "__main__":
    main()
