"""Experiment T1 — reproduce Table 1 of the paper.

Paper setup (Section 5): the Internet Computer, subnets of 13 and 40 nodes
across 33 data centers (ping RTT 6–110 ms, loss < 0.001), measured over a
5-minute window, three scenarios:

=================  =========================  =====================
scenario           13-node subnet             40-node subnet
=================  =========================  =====================
without load       1.09 blocks/s, 1.64 Mb/s   0.41 blocks/s, 4.63 Mb/s
with load          1.10 blocks/s, 4.72 Mb/s   0.41 blocks/s, 7.32 Mb/s
load + ⅓ failures  0.45 blocks/s, 4.39 Mb/s   0.16 blocks/s, 5.06 Mb/s
=================  =========================  =====================

Our reproduction runs ICC1 (the variant the IC deploys) over the WAN delay
model with the same request workload (100 req/s × 1 KB) and ⅓ silent nodes
in the failure scenario.  The protocol parametrization (Δbnd and the
notarization governor ε) is calibrated once to the production block rates
in the *no-load* scenario and then **held fixed** across scenarios, so the
load and failure columns are genuine predictions.

Traffic caveat (also in EXPERIMENTS.md): the paper's Mb/s numbers include
non-consensus traffic ("messages exchanged with the clients, the periodic
cryptographic key resharing scheme, logs, metrics etc."), which a consensus
simulation cannot reproduce; we report consensus-only egress and compare
*deltas* between scenarios, which are consensus-dominated.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..adversary import SilentMixin, corrupt_class
from ..core.icc1 import ICC1Party
from ..sim.delays import WanDelay
from ..workloads import MempoolWorkload, WorkloadSpec, management_only_source
from . import runner
from .common import make_icc_config, print_table

#: Paper's reported numbers, for side-by-side printing.
PAPER_TABLE1 = {
    (13, "without load"): (1.09, 1.64),
    (13, "with load"): (1.10, 4.72),
    (13, "load + failures"): (0.45, 4.39),
    (40, "without load"): (0.41, 4.63),
    (40, "with load"): (0.41, 7.32),
    (40, "load + failures"): (0.16, 5.06),
}

#: Production-calibrated protocol parameters per subnet size (see module
#: docstring): the IC runs larger subnets with a slower block cadence.
SUBNET_PARAMS = {
    13: dict(delta_bound=1.5, epsilon=0.86),
    40: dict(delta_bound=5.5, epsilon=2.20),
}


@dataclass(frozen=True)
class Table1Cell:
    subnet: int
    scenario: str
    blocks_per_second: float
    node_egress_mbps: float
    paper_blocks_per_second: float
    paper_node_egress_mbps: float


def run_cell(
    subnet: int,
    scenario: str,
    duration: float = 300.0,
    seed: int = 7,
) -> Table1Cell:
    """Run one cell of Table 1 and return measured vs paper numbers."""
    params = SUBNET_PARAMS[subnet]
    n = subnet
    t = (n - 1) // 3
    with_load = scenario in ("with load", "load + failures")
    with_failures = scenario == "load + failures"

    workload = None
    if with_load:
        workload = MempoolWorkload(
            WorkloadSpec(rate_per_second=100.0, payload_bytes=1024), seed=seed
        )
        payload_source = workload.payload_source
    else:
        payload_source = management_only_source(management_bytes=256)

    corrupt: dict[int, type] = {}
    if with_failures:
        silent_cls = corrupt_class(ICC1Party, SilentMixin)
        for index in range(1, t + 1):
            corrupt[index] = silent_cls

    config = make_icc_config(
        "ICC1",
        n=n,
        t=t,
        delta_bound=params["delta_bound"],
        epsilon=params["epsilon"],
        delay_model=WanDelay(),
        seed=seed,
        payload_source=payload_source,
        corrupt=corrupt,
    )
    from ..core.cluster import build_cluster  # local import to avoid cycles

    cluster = build_cluster(config)
    if workload is not None:
        workload.install(cluster, duration=duration, ingress_degree=4)
        workload.attach_commit_pruning(cluster)
    cluster.start()
    cluster.run_for(duration, max_events=50_000_000)
    cluster.check_safety()

    observer = cluster.honest_parties[0].index
    blocks = cluster.metrics.blocks_per_second(observer, duration)
    # Average egress over *participating* nodes (silent nodes send nothing,
    # matching how the paper reports per-node traffic of live nodes).
    live = [p.index for p in cluster.honest_parties]
    total_bytes = sum(cluster.metrics.bytes_sent[i] for i in live)
    egress_mbps = total_bytes * 8.0 / len(live) / duration / 1e6

    paper_bps, paper_mbps = PAPER_TABLE1[(subnet, scenario)]
    return Table1Cell(
        subnet=subnet,
        scenario=scenario,
        blocks_per_second=blocks,
        node_egress_mbps=egress_mbps,
        paper_blocks_per_second=paper_bps,
        paper_node_egress_mbps=paper_mbps,
    )


SCENARIOS = ("without load", "with load", "load + failures")


def specs(
    duration: float = 300.0, subnets: tuple[int, ...] = (13, 40), seed: int = 7
) -> list[runner.RunSpec]:
    """One RunSpec per Table 1 cell, in the paper's row order."""
    return [
        runner.spec(
            "table1",
            "table1.run_cell",
            label=f"table1-n{subnet}-{scenario}",
            subnet=subnet,
            scenario=scenario,
            duration=duration,
            seed=seed,
        )
        for subnet in subnets
        for scenario in SCENARIOS
    ]


def run(duration: float = 300.0, subnets: tuple[int, ...] = (13, 40), seed: int = 7) -> list[Table1Cell]:
    cells = []
    for subnet in subnets:
        for scenario in SCENARIOS:
            cells.append(run_cell(subnet, scenario, duration=duration, seed=seed))
    return cells


def tabulate(specs: list[runner.RunSpec], cells: list[Table1Cell]) -> list[Table1Cell]:
    """Print the table from already-computed cells (runner result phase)."""
    rows = [
        (
            f"{c.subnet} node subnet",
            c.scenario,
            f"{c.blocks_per_second:.2f}",
            f"{c.paper_blocks_per_second:.2f}",
            f"{c.node_egress_mbps:.2f}",
            f"{c.paper_node_egress_mbps:.2f}",
        )
        for c in cells
    ]
    print_table(
        "Table 1: average block rate and sent traffic (measured vs paper)",
        ["subnet", "scenario", "blocks/s", "paper blocks/s", "Mb/s (consensus)", "paper Mb/s (total)"],
        rows,
    )
    return cells


def main(duration: float = 300.0, jobs: int = 1) -> list[Table1Cell]:
    suite = specs(duration=duration)
    return tabulate(suite, runner.execute(suite, jobs=jobs))


if __name__ == "__main__":
    main()
