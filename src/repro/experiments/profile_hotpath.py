"""Hot-path profile harness: crypto backends, event queues, flushing.

The three hot paths attacked by the profile-guided optimisation pass, each
benchmarked against its reference implementation:

* **Crypto backends** — default-profile RLC batch verification through
  :func:`repro.crypto.api.verifiers_for` under every registered
  :mod:`repro.crypto.backend` (``pure`` is the plain-``pow`` baseline;
  unavailable backends such as ``gmpy2`` without the library are recorded
  as ``"skipped"``, never errors).
* **Event queue** — a seeded schedule/pop/cancel workload on the legacy
  :class:`repro.sim.events.HeapEventQueue` vs the calendar-queue default,
  with the pop orders compared entry by entry.
* **Cross-height flushing** — pool flush counts and mean batch sizes with
  :attr:`ClusterConfig.crypto_flush_across_heights` on vs off, plus
  whole-cluster bit-identity checks: the same seeded deployment must
  commit the identical chain under every backend, under both event
  queues, and with flushing on or off (``results_identical``).

``python -m repro profile --json BENCH_hotpath.json`` writes the snapshot
checked into the repository root; ``tools/bench_gate.py`` re-runs it in
``--quick`` mode and ratio-checks the speedups (``results_identical`` is
a correctness bit: False fails outright).  ``--cprofile`` prints the top
functions of a representative deployment under cProfile.  See
``docs/PERFORMANCE.md``.
"""

from __future__ import annotations

import json
import sys
import time
from random import Random

from ..crypto import schnorr
from ..crypto.api import verifiers_for
from ..crypto.backend import backend_available, backend_names, use_backend
from ..crypto.group import Group, group_for_profile
from ..sim.events import CalendarEventQueue, HeapEventQueue

#: The pure-Python baseline every other backend is compared against.
BASELINE_BACKEND = "pure"

#: Operations per event-queue workload run (55% schedule / 30% pop /
#: 15% cancel; see :func:`_queue_workload`).
_QUEUE_OPS = 20_000


def _throughput(fn, items_per_call: int, min_seconds: float) -> float:
    """Call ``fn`` until ``min_seconds`` elapse; return items/second."""
    fn()  # warm-up: build backend tables / populate caches off the clock
    calls = 0
    start = time.perf_counter()
    deadline = start + min_seconds
    while True:
        fn()
        calls += 1
        now = time.perf_counter()
        if now >= deadline:
            return calls * items_per_call / (now - start)


def _schnorr_items(group: Group, size: int, seed: int):
    rng = Random(seed)
    items = []
    for i in range(size):
        pair = schnorr.keygen(group, rng)
        message = b"profile/schnorr/%d" % i
        items.append(
            (pair.public, message, schnorr.sign(group, pair.secret, message, rng))
        )
    return items


def bench_backends(
    profile: str, batch_size: int, min_seconds: float, seed: int
) -> tuple[dict, bool]:
    """Per-backend batch-verification throughput on the ``profile`` group.

    Returns ``(table, identical)`` where ``table`` maps backend name to
    ``{ops_per_sec, speedup}`` (or the string ``"skipped"``) and
    ``identical`` is True iff every available backend returned the same
    verdict list for the same batch.
    """
    group = group_for_profile(profile)
    items = _schnorr_items(group, batch_size, seed)
    table: dict[str, object] = {}
    ops: dict[str, float] = {}
    verdicts: list[list[bool]] = []
    for name in backend_names():
        if not backend_available(name):
            table[name] = "skipped"
            continue
        with use_backend(name):
            suite = verifiers_for(group)
            verdicts.append(suite.schnorr.verify_batch(items))
            ops[name] = _throughput(
                lambda: suite.schnorr.verify_batch(items), batch_size, min_seconds
            )
    baseline = ops[BASELINE_BACKEND]
    for name, value in ops.items():
        table[name] = {
            "ops_per_sec": round(value, 1),
            "speedup": round(value / baseline, 2),
        }
    identical = all(v == verdicts[0] for v in verdicts) and all(verdicts[0])
    return table, identical


def _queue_workload(queue_cls, ops: int, seed: int) -> list[tuple[float, int]]:
    """Seeded mixed schedule/pop/cancel workload; returns the pop order.

    Deliberately includes same-instant bursts (quantised times) so the
    (time, seq) tie-break is exercised, and keeps a window of live handles
    to cancel from, mimicking the simulator's timeout churn.
    """
    rng = Random(seed)
    queue = queue_cls()
    handles: list = []
    now = 0.0
    popped: list[tuple[float, int]] = []

    def _noop() -> None:
        pass

    for _ in range(ops):
        roll = rng.random()
        if roll < 0.55 or not queue:
            # Quantise to force ties; occasionally schedule far future.
            delay = round(rng.random() * 2.0, 2)
            if roll < 0.05:
                delay += 50.0
            handles.append(queue.schedule(now + delay, _noop))
        elif roll < 0.85:
            event = queue.pop()
            if event is not None:
                now = event.time
                popped.append((event.time, event.seq))
        else:
            handles[rng.randrange(len(handles))].cancel()
        if len(handles) > 512:
            del handles[:256]
    while True:
        event = queue.pop()
        if event is None:
            break
        popped.append((event.time, event.seq))
    return popped


def bench_event_queue(min_seconds: float, seed: int) -> tuple[dict, bool]:
    """Heap vs calendar queue ops/sec on the identical seeded workload.

    Returns ``(table, identical)``: ``identical`` is True iff both queues
    popped the exact same (time, seq) sequence.  The two legs alternate
    and each reports its *best* round, so a stray GC pause or scheduler
    hiccup in one round cannot fake (or mask) a regression the way a
    single continuous timing window can.
    """
    heap_order = _queue_workload(HeapEventQueue, _QUEUE_OPS, seed)
    calendar_order = _queue_workload(CalendarEventQueue, _QUEUE_OPS, seed)
    identical = heap_order == calendar_order

    rounds = max(3, int(min_seconds * 20))
    best = {HeapEventQueue: float("inf"), CalendarEventQueue: float("inf")}
    for _ in range(rounds):
        for queue_cls in (HeapEventQueue, CalendarEventQueue):
            start = time.perf_counter()
            _queue_workload(queue_cls, _QUEUE_OPS, seed)
            best[queue_cls] = min(best[queue_cls], time.perf_counter() - start)
    heap_ops = _QUEUE_OPS / best[HeapEventQueue]
    calendar_ops = _QUEUE_OPS / best[CalendarEventQueue]
    table = {
        "heap_ops_per_sec": round(heap_ops, 1),
        "calendar_ops_per_sec": round(calendar_ops, 1),
        "speedup": round(calendar_ops / heap_ops, 2),
    }
    return table, identical


def _run_cluster(
    seed: int,
    *,
    backend: str | None = None,
    event_queue=None,
    flush_across: bool = True,
    meter=None,
):
    """One small seeded deployment on the real crypto backend.

    Returns a fingerprint the identity checks compare: the committed
    chain, the minimum committed round, and the final simulated clock.
    """
    from ..core import ClusterConfig, build_cluster
    from ..sim import FixedDelay, Simulation

    config = ClusterConfig(
        n=4, t=1, delta_bound=0.3, epsilon=0.01,
        delay_model=FixedDelay(0.05), max_rounds=6, seed=seed,
        crypto_backend="real", crypto_flush_across_heights=flush_across,
        meter=meter,
    )
    sim = Simulation(seed=config.seed, event_queue=event_queue) if event_queue else None

    def build_and_run():
        cluster = build_cluster(config, sim=sim) if sim is not None else build_cluster(config)
        cluster.start()
        cluster.run_until_all_committed_round(5, timeout=120)
        cluster.check_safety()
        return (
            cluster.party(1).committed_hashes,
            cluster.min_committed_round(),
            cluster.sim.now,
        )

    if backend is not None:
        with use_backend(backend):
            return build_and_run()
    return build_and_run()


def check_chains_identical(seed: int) -> tuple[dict, bool]:
    """Whole-run bit-identity across backends, queues and flush modes.

    Also returns the pool flush statistics (flush count and mean batch
    size) for the flushing-on and flushing-off runs, read from the
    ``crypto.batch.size`` histogram.
    """
    from ..obs.metrics import Meter

    reference = _run_cluster(seed, backend=BASELINE_BACKEND)
    identical = True
    for name in backend_names():
        if name == BASELINE_BACKEND or not backend_available(name):
            continue
        identical &= _run_cluster(seed, backend=name) == reference
    identical &= _run_cluster(seed, event_queue=HeapEventQueue()) == reference

    across_meter, within_meter = Meter(), Meter()
    identical &= _run_cluster(seed, flush_across=True, meter=across_meter) == reference
    identical &= _run_cluster(seed, flush_across=False, meter=within_meter) == reference

    pool: dict[str, dict] = {}
    for key, meter in (("across_heights", across_meter), ("within_height", within_meter)):
        hist = meter.histogram("crypto.batch.size")
        count = hist.count if hist is not None else 0
        total = int(hist.total) if hist is not None else 0
        mean = total / count if count else 0.0
        pool[key] = {
            "flushes": count,
            "shares_verified": total,
            "mean_batch": round(mean, 2),
        }
    return pool, identical


def profile_hotspots(seed: int, top: int = 12) -> list[str]:
    """Top functions (by cumulative time) of one deployment under cProfile."""
    import cProfile
    import io
    import pstats

    profiler = cProfile.Profile()
    profiler.enable()
    _run_cluster(seed)
    profiler.disable()
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.sort_stats("cumulative").print_stats(top)
    return buffer.getvalue().rstrip().splitlines()


def run_profile(
    profile: str = "default",
    batch_size: int = 32,
    min_seconds: float = 0.5,
    seed: int = 0,
) -> dict:
    """Run every hot-path benchmark; returns the JSON-ready result dict."""
    group = group_for_profile(profile)
    backends, backends_identical = bench_backends(
        profile, batch_size, min_seconds, seed
    )
    measured = {
        name: row for name, row in backends.items() if isinstance(row, dict)
    }
    best_backend = max(measured, key=lambda name: measured[name]["speedup"])
    event_queue, queue_identical = bench_event_queue(min_seconds, seed)
    pool, chains_identical = check_chains_identical(seed)
    return {
        "benchmark": (
            "hot-path profile: crypto backends, calendar event queue, "
            "cross-height batch flushing"
        ),
        "profile": profile,
        "group_bits": {"p": group.p.bit_length(), "q": group.q.bit_length()},
        "batch_size": batch_size,
        "seed": seed,
        "backends": backends,
        "best_backend": best_backend,
        "best_speedup": measured[best_backend]["speedup"],
        "event_queue": event_queue,
        "pool": pool,
        "results_identical": bool(
            backends_identical and queue_identical and chains_identical
        ),
    }


def _print_report(report: dict) -> None:
    print(
        f"profile={report['profile']} (|p|={report['group_bits']['p']} bits) "
        f"batch_size={report['batch_size']}"
    )
    print(f"{'backend':<10} {'batch ops/s':>13} {'vs pure':>8}")
    for name, row in report["backends"].items():
        if row == "skipped":
            print(f"{name:<10} {'skipped':>13} {'-':>8}")
        else:
            print(
                f"{name:<10} {row['ops_per_sec']:>13.1f} {row['speedup']:>7.2f}x"
            )
    queue = report["event_queue"]
    print(
        f"event queue: heap {queue['heap_ops_per_sec']:.0f} ops/s, "
        f"calendar {queue['calendar_ops_per_sec']:.0f} ops/s "
        f"({queue['speedup']:.2f}x)"
    )
    pool = report["pool"]
    print(
        f"pool: within-height {pool['within_height']['flushes']} flushes / "
        f"{pool['within_height']['shares_verified']} shares verified, "
        f"across-heights {pool['across_heights']['flushes']} flushes / "
        f"{pool['across_heights']['shares_verified']} shares verified"
    )
    print(f"results identical: {report['results_identical']}")


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro profile")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write results as JSON")
    parser.add_argument("--profile", choices=["test", "default", "strong"],
                        default="default")
    parser.add_argument("--batch-size", type=int, default=32)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--quick", action="store_true",
                        help="short timing windows (CI smoke)")
    parser.add_argument("--cprofile", action="store_true",
                        help="print cProfile hotspots of one deployment")
    parser.add_argument(
        "--check", action="store_true",
        help="exit non-zero unless results are bit-identical and the best "
             "backend beats pure",
    )
    args = parser.parse_args(argv)

    report = run_profile(
        profile=args.profile,
        batch_size=args.batch_size,
        min_seconds=0.05 if args.quick else 0.5,
        seed=args.seed,
    )
    _print_report(report)
    if args.cprofile:
        print()
        for line in profile_hotspots(args.seed):
            print(line)
    if args.json is not None:
        with open(args.json, "w", encoding="utf-8") as handle:
            json.dump(report, handle, indent=2)
            handle.write("\n")
        print(f"wrote {args.json}")
    if args.check:
        failures = []
        if report["results_identical"] is not True:
            failures.append("results differ across backends/queues/flush modes")
        if report["best_speedup"] < 1.0:
            failures.append(
                f"best backend {report['best_backend']} slower than pure "
                f"({report['best_speedup']:.3g}x)"
            )
        if report["event_queue"]["speedup"] < 1.0:
            failures.append(
                f"calendar queue slower than heap "
                f"({report['event_queue']['speedup']:.3g}x)"
            )
        if failures:
            print(f"FAIL: {'; '.join(failures)}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
