"""Experiment E10 — throughput under intermittent synchrony (Section 3.3).

Paper claim: "because of Property P1, even if the network remains
asynchronous for many rounds, as soon as it becomes synchronous for even a
short period of time, the commands from the payloads of all of the rounds
between synchronous intervals will be output by all honest parties.  Thus,
even if the network is only intermittently synchronous, the system will
maintain a constant throughput."

Setup: the network alternates between 5 s synchronous windows and 15 s
asynchronous stretches.  We record, per window index: how many rounds the
tree grew during the asynchronous stretch (P1 keeps the tree growing), and
how many rounds were *committed* inside each synchronous window (the
burst that flushes the backlog).  The average commit rate over the whole
run should match the average round rate — constant throughput despite 75 %
asynchrony.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..core.cluster import build_cluster
from ..faults import Scenario, install_scenario, outage_schedule
from ..sim.delays import FixedDelay
from . import runner
from .common import make_icc_config, print_table


@dataclass(frozen=True)
class WindowStats:
    window: int
    commits_in_window: int


@dataclass(frozen=True)
class IntermittentResult:
    period: float
    sync_len: float
    duration: float
    total_rounds_grown: int
    total_rounds_committed: int
    windows: list[WindowStats]

    @property
    def rounds_per_second(self) -> float:
        return self.total_rounds_grown / self.duration

    @property
    def commits_per_second(self) -> float:
        return self.total_rounds_committed / self.duration


def run(
    period: float = 20.0,
    sync_len: float = 5.0,
    duration: float = 120.0,
    n: int = 7,
    seed: int = 31,
) -> IntermittentResult:
    # The intermittent network is now expressed as a fault scenario: the
    # delay model stays plain FixedDelay and a schedule of OutageFault
    # windows (the complement of the synchronous windows) stretches
    # deliveries exactly like delays.IntermittentSynchrony did —
    # tests/faults/test_ports.py pins the bit-for-bit equivalence.
    scenario = Scenario(
        name=f"intermittent-p{period:g}-s{sync_len:g}",
        events=outage_schedule(period, sync_len, duration),
    )
    config = make_icc_config(
        "ICC0",
        n=n,
        t=(n - 1) // 3,
        delta_bound=0.3,
        epsilon=0.02,
        delay_model=FixedDelay(0.05),
        seed=seed,
    )
    cluster = build_cluster(config)
    install_scenario(cluster, scenario)
    cluster.start()
    cluster.run_for(duration, max_events=30_000_000)
    cluster.check_safety()

    observer = cluster.honest_parties[0]
    commits = cluster.metrics.commits_of(observer.index)
    windows: dict[int, int] = {}
    for record in commits:
        windows[int(record.time // period)] = windows.get(int(record.time // period), 0) + 1
    return IntermittentResult(
        period=period,
        sync_len=sync_len,
        duration=duration,
        total_rounds_grown=observer.round - 1,
        total_rounds_committed=observer.k_max,
        windows=[WindowStats(w, c) for w, c in sorted(windows.items())],
    )


def specs(
    period: float = 20.0,
    sync_len: float = 5.0,
    duration: float = 120.0,
    n: int = 7,
    seed: int = 31,
) -> list[runner.RunSpec]:
    """The single intermittent-synchrony run as a RunSpec."""
    return [
        runner.spec(
            "intermittent",
            "intermittent.run",
            label=f"intermittent-n{n}-seed{seed}",
            period=period,
            sync_len=sync_len,
            duration=duration,
            n=n,
            seed=seed,
        )
    ]


def tabulate(
    specs: list[runner.RunSpec], results: list[IntermittentResult]
) -> IntermittentResult:
    result = results[0]
    print_table(
        f"E10: intermittent synchrony ({result.sync_len:.0f}s sync / "
        f"{result.period - result.sync_len:.0f}s async; {result.duration:.0f}s total)",
        ["window", "rounds committed in window"],
        [(w.window, w.commits_in_window) for w in result.windows],
    )
    print(
        f"tree growth : {result.total_rounds_grown} rounds "
        f"({result.rounds_per_second:.2f}/s — P1 holds through asynchrony)"
    )
    print(
        f"commits     : {result.total_rounds_committed} rounds "
        f"({result.commits_per_second:.2f}/s — backlog flushed every sync window)"
    )
    return result


def main(jobs: int = 1) -> IntermittentResult:
    suite = specs()
    return tabulate(suite, runner.execute(suite, jobs=jobs))


if __name__ == "__main__":
    main()
