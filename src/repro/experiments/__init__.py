"""Experiment harness: one module per table/figure/claim (see DESIGN.md §3).

Every module exposes ``run(...) -> structured results`` and ``main()``
which prints the same rows the paper reports.  Run everything with::

    python -m repro.experiments.run_all
"""

from . import (
    ablations,
    bandwidth,
    comparison,
    dissemination,
    intermittent,
    message_complexity,
    properties,
    responsiveness,
    robustness,
    round_complexity,
    table1,
    throughput_latency,
)

__all__ = [
    "ablations",
    "bandwidth",
    "comparison",
    "dissemination",
    "intermittent",
    "message_complexity",
    "properties",
    "responsiveness",
    "robustness",
    "round_complexity",
    "table1",
    "throughput_latency",
]
