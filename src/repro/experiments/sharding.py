"""The sharding harness: aggregate throughput vs shard count over xnet.

``python -m repro shard`` sweeps the shard count K of a
:class:`~repro.smr.sharding.ShardedDeployment` — K embedded clusters in
one Simulation, coupled by certified xnet streams — and reports how
aggregate finalized-request throughput scales with K and what latency
penalty cross-shard requests pay for their extra consensus hop plus
stream transfer.

Two entry points share this module:

* the **sweep** (default CLI mode): one ``shard.run_deployment`` spec per
  K, fanned across the parallel runner's process pool — whole
  deployments are the unit of work, and results are bit-identical at any
  ``--jobs`` because every deployment is internally deterministic;
* the **bench** (``--bench``), which backs the committed
  ``BENCH_shard.json`` snapshot gated by ``tools/bench_gate.py``.  Every
  leg is *simulated and deterministic* (fixed delays, hash-MAC auth,
  seeded populations), so CI reproduces the committed numbers exactly:
  a scaling leg (goodput at K = 1/2/4, must be monotone), a cross-shard
  leg (latency penalty at K = 2, xfrac = 0.25), a stream-certification
  leg (a forged envelope must be dropped and counted), and a
  serial-vs-parallel identity check through the runner.
"""

from __future__ import annotations

import json
import sys

from ..smr.sharding import ShardResult, ShardSpec, ShardedDeployment
from . import runner
from .common import print_table

#: Default sweep shape: shard counts to compare at a fixed subnet size.
DEFAULT_KS = (1, 2, 4)
DEFAULT_N = 4


def run_deployment(
    shards: int = 2,
    n: int = DEFAULT_N,
    offered: float = 200.0,
    xfrac: float = 0.0,
    duration: float = 2.0,
    seed: int = 0,
    delta: float = 0.05,
    transfer_delay: float = 0.1,
    batch_max: int = 64,
    auth: str = "fast",
) -> ShardResult:
    """Run one sharded deployment (fully seeded, deterministic, picklable)."""
    spec = ShardSpec(
        shards=shards,
        n=n,
        t=(n - 1) // 3,
        offered=offered,
        xfrac=xfrac,
        duration=duration,
        seed=seed,
        delta=delta,
        delta_bound=delta * 6,
        epsilon=delta * 0.1,
        transfer_delay=transfer_delay,
        batch_max=batch_max,
        auth=auth,
    )
    return ShardedDeployment(spec).run()


def specs(
    ks: tuple[int, ...] = DEFAULT_KS,
    n: int = DEFAULT_N,
    offered: float = 200.0,
    xfrac: float = 0.0,
    duration: float = 2.0,
    seed: int = 0,
) -> list[runner.RunSpec]:
    """One RunSpec per shard count K."""
    return [
        runner.spec(
            "shard",
            "shard.run_deployment",
            label=f"shard-k{k}-n{n}-x{int(xfrac * 100)}",
            shards=k,
            n=n,
            offered=offered,
            xfrac=xfrac,
            duration=duration,
            seed=seed,
        )
        for k in ks
    ]


def tabulate(
    specs: list[runner.RunSpec], results: list[ShardResult]
) -> list[ShardResult]:
    rows = []
    for r in results:
        penalty = f"{r.latency_penalty:.2f}x" if r.latency_penalty else "-"
        cross_ms = (
            f"{r.mean_cross_latency * 1000:.0f} ms" if r.mean_cross_latency else "-"
        )
        rows.append(
            (
                r.shards,
                r.n,
                f"{r.offered * r.shards:.0f}/s",
                r.committed,
                f"{r.goodput:.0f}/s",
                f"{r.mean_local_latency * 1000:.0f} ms"
                if r.mean_local_latency
                else "-",
                cross_ms,
                penalty,
                r.transfers,
                r.rejected,
            )
        )
    print_table(
        "shard: aggregate throughput vs shard count over xnet "
        "(K clusters, one simulation, certified cross-shard streams)",
        ["K", "n", "offered", "committed", "goodput", "local lat",
         "cross lat", "penalty", "transfers", "rejected"],
        rows,
    )
    return results


# ---------------------------------------------------------------------- bench

#: Fixed config for the bench legs.  Deliberately tiny — and deliberately
#: *identical* in --quick and full runs: every leg measures simulation
#: time, which is bit-identical on every machine, so the CI quick pass
#: reproduces the committed numbers exactly.
_BENCH_LEG = dict(n=4, offered=200.0, duration=2.0, delta=0.05)


def bench(seed: int = 0, jobs: int = 2) -> dict:
    """Produce the ``BENCH_shard.json`` report (see module docstring)."""
    # Leg 1 (simulated, deterministic): aggregate goodput at K = 1/2/4
    # with purely local traffic — the headline scaling claim.
    ks = list(DEFAULT_KS)
    by_k = {
        k: run_deployment(shards=k, xfrac=0.0, seed=seed, **_BENCH_LEG) for k in ks
    }
    goodputs = [by_k[k].goodput for k in ks]
    scaling = {
        "ks": ks,
        "goodput_by_k": {str(k): by_k[k].goodput for k in ks},
        "scaling_gain": round(goodputs[-1] / goodputs[0], 2),
        "monotonic": all(a < b for a, b in zip(goodputs, goodputs[1:])),
    }

    # Leg 2 (simulated, deterministic): the cross-shard latency penalty —
    # origin finalization + certified transfer + destination finalization
    # vs a single local commit.
    cross = run_deployment(shards=2, xfrac=0.25, seed=seed, **_BENCH_LEG)
    cross_leg = {
        "xfrac": 0.25,
        "cross_committed": cross.committed_cross,
        "mean_local_latency": round(cross.mean_local_latency, 6),
        "mean_cross_latency": round(cross.mean_cross_latency, 6),
        "latency_penalty": round(cross.latency_penalty, 2),
        "transfers": cross.transfers,
        "rejected": cross.rejected,
    }

    # Leg 3 (deterministic): stream certification at ingress — a forged
    # cross-shard envelope must be dropped and counted, never delivered.
    from ..smr.xnet import XNET_STREAM_VERSION, StreamMessage

    probe = ShardedDeployment(ShardSpec(shards=2, n=4, seed=seed))
    forged = StreamMessage(
        version=XNET_STREAM_VERSION,
        source="shard0",
        destination="shard1",
        seq=0,
        cert=b"\x00" * 32,
        body=b"forged cross-shard command",
    )
    delivered = probe.xnet.ingress(forged)
    forged_rejected = (not delivered) and probe.xnet.rejected == 1

    # Leg 4 (deterministic): serial-vs-parallel identity through the
    # runner — the same K=2 deployment spec executed in this process and
    # across worker processes must produce byte-identical results.
    suite = specs(ks=(2,), xfrac=0.25, seed=seed)
    serial = [runner.run_spec(s) for s in suite]
    parallel = runner.execute(suite, jobs=jobs)
    results_identical = serial == parallel

    return {
        "benchmark": "multi-subnet sharding over xnet certified streams",
        "seed": seed,
        "scaling": scaling,
        "cross": cross_leg,
        "forged_rejected": forged_rejected,
        "results_identical": results_identical,
    }


# ------------------------------------------------------------------------ CLI


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro shard")
    parser.add_argument(
        "--ks", default=",".join(str(k) for k in DEFAULT_KS),
        help="comma-separated shard counts to sweep",
    )
    parser.add_argument("--n", type=int, default=DEFAULT_N,
                        help="parties per shard")
    parser.add_argument("--offered", type=float, default=200.0,
                        help="offered load per shard (requests/second)")
    parser.add_argument("--xfrac", type=float, default=0.0,
                        help="fraction of requests addressed cross-shard")
    parser.add_argument("--duration", type=float, default=2.0,
                        help="arrival window (simulated seconds)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (results identical at any N)")
    parser.add_argument("--bench", action="store_true",
                        help="run the BENCH_shard legs instead of the sweep")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the bench report as JSON (implies --bench)")
    parser.add_argument("--quick", action="store_true",
                        help="accepted for CLI symmetry; every leg is "
                             "simulated, so quick and full runs are identical")
    parser.add_argument(
        "--check", action="store_true",
        help="fail unless goodput scales monotonically with K, the "
             "cross-shard penalty is reported, forged streams are "
             "rejected, and serial == parallel (implies --bench)",
    )
    args = parser.parse_args(argv)

    if args.bench or args.check or args.json is not None:
        report = bench(seed=args.seed, jobs=max(2, args.jobs))
        scaling, cross = report["scaling"], report["cross"]
        by_k = ", ".join(
            f"K={k}: {g:.0f}/s" for k, g in scaling["goodput_by_k"].items()
        )
        print(
            f"scaling: {by_k} (gain {scaling['scaling_gain']:.2f}x, "
            f"monotonic={scaling['monotonic']})"
        )
        print(
            f"cross-shard penalty: {cross['latency_penalty']:.2f}x "
            f"({cross['mean_cross_latency'] * 1000:.0f} ms cross vs "
            f"{cross['mean_local_latency'] * 1000:.0f} ms local, "
            f"{cross['cross_committed']} cross commits, "
            f"{cross['rejected']} rejected)"
        )
        print(f"forged stream rejected: {report['forged_rejected']}")
        print(f"serial == parallel: {report['results_identical']}")
        if args.json is not None:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2)
                handle.write("\n")
            print(f"wrote {args.json}")
        if args.check:
            failures = []
            if not scaling["monotonic"]:
                failures.append("goodput does not scale monotonically with K")
            if not cross["latency_penalty"] or cross["latency_penalty"] < 1.0:
                failures.append("cross-shard latency penalty missing or < 1")
            if not report["forged_rejected"]:
                failures.append("forged stream message was not rejected")
            if not report["results_identical"]:
                failures.append("serial and parallel runner results differ")
            if failures:
                print("FAIL: " + "; ".join(failures), file=sys.stderr)
                return 1
        return 0

    ks = tuple(int(x) for x in args.ks.split(",") if x.strip())
    suite = specs(
        ks=ks,
        n=args.n,
        offered=args.offered,
        xfrac=args.xfrac,
        duration=args.duration,
        seed=args.seed,
    )
    tabulate(suite, runner.execute(suite, jobs=args.jobs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
