"""Experiment E4 — round complexity: rounds until a block is committed.

Paper claims (Section 1): for a static adversary, the number of rounds
until a block is committed is **O(1) in expectation and O(log n) with high
probability**; and regardless of the elapsed time, the recursive structure
guarantees that eventually one block is committed *for every round*.

Mechanism: a round commits when its leader is honest (probability
≥ 1 - t/n > 2/3 under the random beacon) and the network cooperates, so
the gap between commits is dominated by a geometric distribution with
success probability (n-t)/n.

Setup: t corrupt parties running the strongest anti-finalization behaviour
(equivocating proposals + finalization withholding + notarize-everything),
so every corrupt-leader round genuinely fails to finalize.  We measure the
distribution of gaps between consecutive committed rounds and compare its
mean with n/(n-t), and its tail with the geometric law.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..adversary import AggressiveByzantineMixin, WithholdFinalizationMixin, corrupt_class
from ..core.icc0 import ICC0Party
from ..sim.delays import FixedDelay
from .common import make_icc_config, mean, print_table, run_icc


@dataclass(frozen=True)
class RoundComplexityResult:
    n: int
    t: int
    rounds_observed: int
    committed_rounds: int
    mean_gap: float
    max_gap: int
    expected_mean_gap: float  # n / (n - t)
    all_rounds_eventually_committed: bool


def run_one(n: int, rounds: int = 120, seed: int = 5) -> RoundComplexityResult:
    t = (n - 1) // 3
    attacker = corrupt_class(
        ICC0Party, AggressiveByzantineMixin, WithholdFinalizationMixin
    )
    config = make_icc_config(
        "ICC0",
        n=n,
        t=t,
        delta_bound=0.2,
        epsilon=0.01,
        delay_model=FixedDelay(0.05),
        seed=seed,
        max_rounds=rounds,
        corrupt={i: attacker for i in range(1, t + 1)},
    )
    cluster = run_icc(config, duration=rounds * 2.0 + 20)

    observer = cluster.honest_parties[0]
    committed = sorted({b.round for b in observer.output_log})
    # Rounds with a corrupt leader do not finalize directly; their blocks
    # are swept in by the next finalized round (Figure 2 commits the last
    # k - k_max blocks at once).  The "rounds until a block is committed"
    # statistic is therefore the size of each commit batch: group this
    # observer's commit records by commit time.
    records = cluster.metrics.commits_of(observer.index)
    gaps: list[int] = []
    current_time = None
    current_size = 0
    for record in records:
        if record.time != current_time:
            if current_size:
                gaps.append(current_size)
            current_time = record.time
            current_size = 0
        current_size += 1
    if current_size:
        gaps.append(current_size)
    # P1 + "eventually one block committed for every round": the committed
    # chain contains exactly one block per round 1..k_max.
    contiguous = committed == list(range(1, len(committed) + 1))
    return RoundComplexityResult(
        n=n,
        t=t,
        rounds_observed=rounds,
        committed_rounds=len(committed),
        mean_gap=mean(gaps),
        max_gap=max(gaps) if gaps else 0,
        expected_mean_gap=n / (n - t),
        all_rounds_eventually_committed=contiguous,
    )


def run(ns: tuple[int, ...] = (7, 13, 25, 40), rounds: int = 120) -> list[RoundComplexityResult]:
    return [run_one(n, rounds=rounds) for n in ns]


def main() -> list[RoundComplexityResult]:
    results = run()
    rows = [
        (
            r.n,
            r.t,
            r.committed_rounds,
            f"{r.mean_gap:.2f}",
            f"{r.expected_mean_gap:.2f}",
            r.max_gap,
            "yes" if r.all_rounds_eventually_committed else "NO",
        )
        for r in results
    ]
    print_table(
        "E4: rounds between commits under an anti-finalization adversary",
        ["n", "t", "commits", "mean gap", "geometric mean n/(n-t)", "max gap (≲ log n tail)", "every round committed"],
        rows,
    )
    return results


if __name__ == "__main__":
    main()
