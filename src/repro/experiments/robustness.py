"""Experiment E5 — robust consensus: throughput under Byzantine behaviour.

Section 1.1 ("Robust consensus"): citing [15] (Aardvark), the paper argues
that much of the consensus literature optimises the fault-free path and
collapses under simple Byzantine behaviour — "the throughput of existing
implementations of PBFT drops to zero under certain types of (quite
simple) Byzantine behavior" — while ICC "degrades quite gracefully": a
corrupt-leader round still finishes, just in O(Δbnd) instead of O(δ).

The attack (from [15]): a *slow primary* that stays just under the view-
change timeout.  In PBFT the slow node is primary until a timeout fires —
which it never lets happen — so the whole system runs at the attacker's
pace.  In ICC the same slow party only leads a ~t/n fraction of rounds
(the beacon rotates leaders every round), and other parties' proposals
fill in after Δntry, so throughput degrades by a bounded factor.

We measure committed blocks/s for ICC0 and PBFT, fault-free vs under the
slow-leader attack, and report the throughput retention ratio.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..adversary import SlowProposerMixin
from ..baselines import BaselineClusterConfig, PBFTParty, build_baseline_cluster
from ..core.icc0 import ICC0Party
from ..faults import ByzantineFault, Scenario, register_behavior, scenario_corrupt
from ..sim.delays import FixedDelay
from . import runner
from .common import make_icc_config, print_table, run_icc

#: The attack's proposal lag — just under the PBFT view timeout below.
ATTACK_LAG = 3.0


class SlowPrimaryPBFT(SlowProposerMixin, PBFTParty):
    """PBFT primary that proposes just under the view-change timeout."""

    def _propose_next(self) -> None:  # noqa: D102
        delay = self.propose_lag
        self.sim.schedule(delay, lambda: PBFTParty._propose_next(self))


def _build_slow_primary(base: type, params: dict) -> type:
    """PBFT-specific behaviour: the slow node must *be* the primary class."""
    SlowPrimaryPBFT.propose_lag = params.get("propose_lag", ATTACK_LAG)
    return SlowPrimaryPBFT


register_behavior("slow-primary-pbft", _build_slow_primary)


def attack_scenario(protocol: str, t: int) -> Scenario:
    """The slow-leader attack of [15], as a declarative fault scenario.

    For ICC the adversary corrupts its full budget of t parties (the
    beacon rotates leaders, so one slow party only costs ~1/n of rounds);
    for PBFT a single slow node suffices — view 1's primary is party 1,
    and it never lets the view-change timeout fire.
    """
    if protocol == "PBFT":
        events = (ByzantineFault(
            party=1, behavior="slow-primary-pbft",
            params=(("propose_lag", ATTACK_LAG),),
        ),)
    else:
        events = tuple(
            ByzantineFault(
                party=i, behavior="slow-proposer",
                params=(("propose_lag", ATTACK_LAG),),
            )
            for i in range(1, t + 1)
        )
    return Scenario(name=f"slow-leader-{protocol.lower()}", events=events)


@dataclass(frozen=True)
class RobustnessResult:
    protocol: str
    scenario: str
    blocks_per_second: float


def run_icc0(n: int, t: int, attack: bool, duration: float, seed: int = 9) -> float:
    delta = 0.05
    corrupt = {}
    if attack:
        corrupt = scenario_corrupt(attack_scenario("ICC0", t), ICC0Party)
    config = make_icc_config(
        "ICC0",
        n=n,
        t=t,
        delta_bound=0.5,
        epsilon=0.01,
        delay_model=FixedDelay(delta),
        seed=seed,
        corrupt=corrupt,
    )
    cluster = run_icc(config, duration=duration)
    observer = cluster.honest_parties[-1].index
    return cluster.metrics.blocks_per_second(observer, duration)


def run_pbft(n: int, t: int, attack: bool, duration: float, seed: int = 9) -> float:
    delta = 0.05
    corrupt = {}
    if attack:
        corrupt = scenario_corrupt(attack_scenario("PBFT", t), PBFTParty)
    config = BaselineClusterConfig(
        party_class=PBFTParty,
        n=n,
        t=t,
        seed=seed,
        delay_model=FixedDelay(delta),
        corrupt=corrupt,
        party_kwargs=dict(view_timeout=4.0),
    )
    cluster = build_baseline_cluster(config)
    cluster.start()
    cluster.run_for(duration)
    cluster.check_safety()
    observer = cluster.honest_parties[-1].index
    return cluster.metrics.blocks_per_second(observer, duration)


def specs(n: int = 10, duration: float = 120.0, seed: int = 9) -> list[runner.RunSpec]:
    """One RunSpec per (protocol, attack?) scenario."""
    t = (n - 1) // 3
    out = []
    for protocol, kind in (("ICC0", "robustness.run_icc0"), ("PBFT", "robustness.run_pbft")):
        for attack in (False, True):
            out.append(
                runner.spec(
                    "robustness",
                    kind,
                    label=f"robustness-{protocol}-{'attack' if attack else 'clean'}",
                    n=n,
                    t=t,
                    attack=attack,
                    duration=duration,
                    seed=seed,
                )
            )
    return out


def _as_results(specs: list[runner.RunSpec], values: list[float]) -> list[RobustnessResult]:
    results = []
    for spec, bps in zip(specs, values):
        params = spec.kwargs
        results.append(
            RobustnessResult(
                protocol="ICC0" if spec.kind == "robustness.run_icc0" else "PBFT",
                scenario="slow-leader attack" if params["attack"] else "fault-free",
                blocks_per_second=bps,
            )
        )
    return results


def run(n: int = 10, duration: float = 120.0) -> list[RobustnessResult]:
    suite = specs(n=n, duration=duration)
    return _as_results(suite, [runner.run_spec(s) for s in suite])


def tabulate(specs: list[runner.RunSpec], values: list[float]) -> list[RobustnessResult]:
    results = _as_results(specs, values)
    by_protocol: dict[str, dict[str, float]] = {}
    for r in results:
        by_protocol.setdefault(r.protocol, {})[r.scenario] = r.blocks_per_second
    rows = []
    for protocol, data in by_protocol.items():
        clean = data["fault-free"]
        attacked = data["slow-leader attack"]
        retention = attacked / clean if clean else float("nan")
        rows.append(
            (protocol, f"{clean:.2f}", f"{attacked:.2f}", f"{retention * 100:.0f}%")
        )
    print_table(
        "E5: throughput under the slow-leader attack of [15]",
        ["protocol", "fault-free blocks/s", "attacked blocks/s", "retention"],
        rows,
    )
    return results


def main(jobs: int = 1) -> list[RobustnessResult]:
    suite = specs()
    return tabulate(suite, runner.execute(suite, jobs=jobs))


if __name__ == "__main__":
    main()
