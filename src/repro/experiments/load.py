"""The load harness: throughput-vs-latency saturation curves under batching.

``python -m repro load`` sweeps offered load through the batched ingress
pipeline (:mod:`repro.workloads.population` / :mod:`repro.workloads.batching`)
at n = 13/31/100 and reports the saturation curve: goodput tracks offered
load until block capacity (``batch_max`` requests every 2δ round), then
flattens while latency climbs and admission control starts shedding — the
scaling story docs/LOAD.md walks through.

Two entry points share this module:

* the **sweep** (default CLI mode, parallelized via
  :mod:`repro.experiments.runner` with one ``load.run_point`` spec per
  (n, offered) cell);
* the **bench** (``--bench``), which backs the committed
  ``BENCH_load.json`` snapshot gated by ``tools/bench_gate.py``:
  a *deterministic, simulated* batching-gain leg (goodput with batching
  vs a one-request-per-block baseline — simulation time, so the ratio is
  bit-identical on every machine), a wall-clock batch-authentication leg
  (RLC batch verify vs the per-item oracle, same shape as
  ``crypto_bench``), and a batched-vs-unbatched request-set equality
  check (order-insensitive digests must match).
"""

from __future__ import annotations

import json
import sys
import time
from dataclasses import dataclass

from ..core.cluster import ClusterConfig, build_cluster
from ..sim.delays import FixedDelay
from ..workloads.batching import BatchSpec, RequestBatcher
from ..workloads.population import ClientPopulation, PopulationSpec
from . import runner
from .common import mean, percentile, print_table

#: Default sweep shape: the paper's subnet sizes, offered loads chosen so
#: the curve crosses block capacity (batch_max requests per 2δ round).
DEFAULT_NS = (13, 31, 100)
DEFAULT_LOADS = (250.0, 1000.0, 2000.0, 4000.0)


@dataclass(frozen=True)
class LoadPoint:
    """One (n, offered load) measurement — plain data, picklable."""

    n: int
    offered: float  # requests/second the population generated
    duration: float  # arrival window (seconds, simulated)
    submitted: int  # admitted into the ingress queue
    rejected: int  # shed by admission control
    auth_invalid: int  # dropped by ingress batch authentication
    committed: int  # finalized by consensus
    goodput: float  # committed / duration (requests/second)
    mean_latency: float  # seconds, arrival -> finalization
    p99_latency: float
    rounds: int  # rounds committed by the slowest honest party
    auth_batches: int  # RLC batch-verification passes
    queue_final: int  # requests still queued when the run ended
    digest: str  # order-insensitive sha256 of the committed request set


def run_point(
    n: int = 13,
    offered: float = 1000.0,
    duration: float = 4.0,
    drain: float = 1.5,
    seed: int = 1,
    batch_max: int = 256,
    queue_cap: int = 100_000,
    auth: str = "fast",
    clients: int = 1000,
    poisson: bool = False,
    zipf_s: float = 1.1,
    key_space: int = 5000,
    payload_bytes: int = 96,
    delta: float = 0.05,
) -> LoadPoint:
    """Measure one saturation-curve point (fully seeded, deterministic).

    Arrivals run over ``[0, duration)``; the cluster then runs ``drain``
    extra seconds so in-flight requests can finalize.  Goodput is
    ``committed / duration`` — at saturation commits continue through the
    drain window, so the flat part of the curve reads slightly above raw
    block capacity; the *shape* (flatten + latency climb) is what the
    sweep is for.  See docs/LOAD.md.
    """
    batcher = RequestBatcher(
        BatchSpec(batch_max=batch_max, queue_cap=queue_cap, auth=auth), seed=seed
    )
    population = ClientPopulation(
        PopulationSpec(
            clients=clients,
            mode="open",
            rate_per_second=offered,
            poisson=poisson,
            zipf_s=zipf_s,
            key_space=key_space,
            payload_bytes=payload_bytes,
        ),
        batcher,
        seed=seed,
    )
    config = ClusterConfig(
        n=n,
        t=(n - 1) // 3,
        delta_bound=delta * 4,
        epsilon=delta * 0.01,
        seed=seed,
        delay_model=FixedDelay(delta),
        payload_source=batcher.payload_source,
        payload_verifier=batcher.verify_block,
    )
    cluster = build_cluster(config)
    batcher.bind(cluster)
    population.install(cluster, duration)
    cluster.start()
    cluster.run_for(duration + drain)
    cluster.check_safety()
    latencies = batcher.latencies
    return LoadPoint(
        n=n,
        offered=offered,
        duration=duration,
        submitted=batcher.submitted,
        rejected=batcher.rejected,
        auth_invalid=batcher.auth_invalid,
        committed=batcher.completed,
        goodput=round(batcher.completed / duration, 2),
        mean_latency=round(mean(latencies), 6) if latencies else float("nan"),
        p99_latency=round(percentile(latencies, 0.99), 6) if latencies else float("nan"),
        rounds=cluster.min_committed_round(),
        auth_batches=batcher.auth_batches,
        queue_final=batcher.queue_depth,
        digest=batcher.committed_digest(),
    )


def specs(
    ns: tuple[int, ...] = DEFAULT_NS,
    loads: tuple[float, ...] = DEFAULT_LOADS,
    duration: float = 4.0,
    seed: int = 1,
    batch_max: int = 256,
    auth: str = "fast",
) -> list[runner.RunSpec]:
    """One RunSpec per (n, offered) saturation-curve cell."""
    return [
        runner.spec(
            "load",
            "load.run_point",
            label=f"load-n{n}-r{int(offered)}",
            n=n,
            offered=offered,
            duration=duration,
            seed=seed,
            batch_max=batch_max,
            auth=auth,
        )
        for n in ns
        for offered in loads
    ]


def tabulate(specs: list[runner.RunSpec], results: list[LoadPoint]) -> list[LoadPoint]:
    rows = []
    for r in results:
        rows.append(
            (
                r.n,
                f"{r.offered:.0f}/s",
                r.submitted,
                r.committed,
                f"{r.goodput:.0f}/s",
                r.rejected,
                f"{r.mean_latency * 1000:.0f} ms",
                f"{r.p99_latency * 1000:.0f} ms",
                r.queue_final,
            )
        )
    print_table(
        "load: throughput vs latency under batched ingress "
        "(goodput flattens at block capacity while latency climbs)",
        ["n", "offered", "submitted", "committed", "goodput", "shed",
         "mean lat", "p99 lat", "queued"],
        rows,
    )
    return results


# ---------------------------------------------------------------------- bench


def _throughput(fn, items_per_call: int, min_seconds: float) -> float:
    """Call ``fn`` until ``min_seconds`` elapse; return items/second."""
    fn()  # warm-up: tables and memos populate outside the clock
    calls = 0
    start = time.perf_counter()
    deadline = start + min_seconds
    while True:
        fn()
        calls += 1
        now = time.perf_counter()
        if now >= deadline:
            return calls * items_per_call / (now - start)


#: Fixed config for the simulated bench legs.  Deliberately tiny — and
#: deliberately *identical* in --quick and full runs: the legs measure
#: simulation time, which is bit-identical on every machine, so the CI
#: quick pass reproduces the committed numbers exactly.
_SIM_LEG = dict(n=4, duration=2.0, drain=1.0, delta=0.05, payload_bytes=64)


def bench(seed: int = 0, min_seconds: float = 0.4) -> dict:
    """Produce the ``BENCH_load.json`` report (see module docstring)."""
    # Leg 1 (simulated, deterministic): goodput with batching vs the
    # one-request-per-block baseline at an offered load far above the
    # baseline's capacity (1 request per 2δ round = 10/s here).
    offered = 400.0
    batched = run_point(offered=offered, seed=seed, batch_max=64, **_SIM_LEG)
    unbatched = run_point(offered=offered, seed=seed, batch_max=1, **_SIM_LEG)
    sim_leg = {
        "offered_per_sec": offered,
        "batched_goodput": batched.goodput,
        "unbatched_goodput": unbatched.goodput,
        "batching_gain": round(batched.goodput / unbatched.goodput, 2),
    }

    # Leg 2 (simulated, deterministic): batched and unbatched runs at a
    # load both can finish must finalize the *same request set*.
    low = 8.0
    set_a = run_point(offered=low, seed=seed, batch_max=64, **_SIM_LEG)
    set_b = run_point(offered=low, seed=seed, batch_max=1, **_SIM_LEG)
    request_sets_match = (
        set_a.digest == set_b.digest and set_a.committed == set_a.submitted
    )

    # Leg 3 (wall clock): batch authentication amortization — RLC batch
    # verify of client Schnorr signatures vs the per-item oracle.
    from ..crypto import fastpath
    from ..crypto.api import verifiers_for
    from ..workloads.batching import RealClientAuth, signed_message

    auth = RealClientAuth(seed=seed, group_profile="test")
    batch_size = 32
    # Build the batch directly: one signed request per client.
    items = []
    for client in range(batch_size):
        body = b"bench/load/%d" % client
        sig = auth.sign(client, 0, client, body)
        items.append((auth.public(client), signed_message(client, 0, client, body), auth._decode(sig)))
    suite = verifiers_for(auth.group)
    auth.warm(batch_size)

    def single() -> None:
        for pk, message, sig in items:
            assert fastpath.verify_schnorr_single(auth.group, pk, message, sig)

    def batch_fn() -> None:
        assert all(suite.schnorr.verify_batch(items))

    single_ops = _throughput(single, batch_size, min_seconds)
    batch_ops = _throughput(batch_fn, batch_size, min_seconds)
    auth_leg = {
        "scheme": "schnorr (client request auth, profile=test)",
        "batch_size": batch_size,
        "single_ops_per_sec": round(single_ops, 1),
        "batch_ops_per_sec": round(batch_ops, 1),
        "speedup": round(batch_ops / single_ops, 2),
    }

    return {
        "benchmark": "load pipeline: batched ingress vs per-request baseline",
        "seed": seed,
        "sim": sim_leg,
        "auth": auth_leg,
        "request_sets_match": request_sets_match,
    }


# ------------------------------------------------------------------------ CLI


def main(argv: list[str] | None = None) -> int:
    import argparse

    parser = argparse.ArgumentParser(prog="python -m repro load")
    parser.add_argument(
        "--ns", default=",".join(str(n) for n in DEFAULT_NS),
        help="comma-separated subnet sizes to sweep",
    )
    parser.add_argument(
        "--loads", default=",".join(f"{r:.0f}" for r in DEFAULT_LOADS),
        help="comma-separated offered loads (requests/second)",
    )
    parser.add_argument("--duration", type=float, default=2.0,
                        help="arrival window per point (simulated seconds); "
                             "n=100 points cost minutes of wall clock per "
                             "simulated second on one core")
    parser.add_argument("--batch-max", type=int, default=256,
                        help="load requests packed per block")
    parser.add_argument("--auth", choices=["fast", "real"], default="fast",
                        help="client authenticator backend")
    parser.add_argument("--seed", type=int, default=1)
    parser.add_argument("--jobs", type=int, default=1, metavar="N",
                        help="worker processes (results identical at any N)")
    parser.add_argument("--bench", action="store_true",
                        help="run the BENCH_load legs instead of the sweep")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the bench report as JSON (implies --bench)")
    parser.add_argument("--quick", action="store_true",
                        help="short wall-clock timing windows (CI smoke)")
    parser.add_argument(
        "--check", action="store_true",
        help="with --bench: fail unless batching wins and request sets match",
    )
    args = parser.parse_args(argv)

    if args.bench or args.json is not None:
        report = bench(seed=args.seed, min_seconds=0.05 if args.quick else 0.4)
        sim, auth = report["sim"], report["auth"]
        print(
            f"simulated batching gain: {sim['batching_gain']:.2f}x "
            f"({sim['batched_goodput']:.0f}/s batched vs "
            f"{sim['unbatched_goodput']:.0f}/s unbatched at "
            f"{sim['offered_per_sec']:.0f}/s offered)"
        )
        print(
            f"batch auth speedup: {auth['speedup']:.2f}x "
            f"({auth['batch_ops_per_sec']:.1f} vs "
            f"{auth['single_ops_per_sec']:.1f} ops/s, "
            f"batch={auth['batch_size']})"
        )
        print(f"request sets match: {report['request_sets_match']}")
        if args.json is not None:
            with open(args.json, "w", encoding="utf-8") as handle:
                json.dump(report, handle, indent=2)
                handle.write("\n")
            print(f"wrote {args.json}")
        if args.check:
            failures = []
            if sim["batching_gain"] < 1.0:
                failures.append("batching loses to the per-request baseline")
            if auth["speedup"] < 1.0:
                failures.append("batch authentication slower than per-item")
            if not report["request_sets_match"]:
                failures.append("batched and unbatched request sets differ")
            if failures:
                print("FAIL: " + "; ".join(failures), file=sys.stderr)
                return 1
        return 0

    ns = tuple(int(x) for x in args.ns.split(",") if x.strip())
    loads = tuple(float(x) for x in args.loads.split(",") if x.strip())
    suite = specs(
        ns=ns,
        loads=loads,
        duration=args.duration,
        seed=args.seed,
        batch_max=args.batch_max,
        auth=args.auth,
    )
    tabulate(suite, runner.execute(suite, jobs=args.jobs))
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
