"""Experiment E8 — the protocol properties P1/P2/P3 of Section 3.3.

* **P1 (deadlock-freeness)**: at least one notarized block of depth k is
  added to the tree in every round — checked by confirming every honest
  party keeps finishing rounds under Byzantine attack and an adversarial
  network.
* **P2 (safety)**: if a depth-k block is finalized, no other depth-k
  block is notarized — checked directly on honest parties' pools, plus
  the output prefix property across parties.
* **P3 (liveness)**: if the network turns δ-synchronous while an honest
  leader's round is running, that leader's block is finalized — checked
  under *intermittent synchrony* (synchronous windows between asynchronous
  stretches), confirming commits resume in every synchronous window.

These properties also have dedicated unit/property tests; this experiment
runs the heavier randomized sweeps and prints a verdict table.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..adversary import (
    AggressiveByzantineMixin,
    EquivocatingProposerMixin,
    SilentMixin,
    WithholdFinalizationMixin,
    corrupt_class,
)
from ..core.cluster import build_cluster
from ..core.icc0 import ICC0Party
from ..sim.delays import FixedDelay, IntermittentSynchrony, UniformDelay
from .common import make_icc_config, print_table


@dataclass(frozen=True)
class PropertyVerdict:
    name: str
    trials: int
    passed: int

    @property
    def ok(self) -> bool:
        return self.passed == self.trials


def check_p2_on_cluster(cluster) -> None:
    """P2: finalized depth-k block => no other notarized depth-k block."""
    for party in cluster.honest_parties:
        pool = party.pool
        max_round = max((b.round for b in party.output_log), default=0)
        for k in range(1, max_round + 1):
            finalized = pool.finalized_blocks(k)
            if not finalized:
                continue
            notarized = pool.notarized_blocks(k)
            hashes = {b.hash for b in notarized}
            if len(hashes) > 1:
                raise AssertionError(
                    f"P2 violated at round {k}: finalized block coexists with "
                    f"{len(hashes)} notarized blocks"
                )


def run_safety_sweep(trials: int = 10, n: int = 10, rounds: int = 20) -> PropertyVerdict:
    """P1+P2 under randomized Byzantine mixes and jittery delays."""
    attackers = [
        corrupt_class(ICC0Party, AggressiveByzantineMixin),
        corrupt_class(ICC0Party, EquivocatingProposerMixin),
        corrupt_class(ICC0Party, SilentMixin),
        corrupt_class(ICC0Party, WithholdFinalizationMixin),
        None,  # crash
    ]
    t = (n - 1) // 3
    passed = 0
    for trial in range(trials):
        corrupt = {
            i + 1: attackers[(trial + i) % len(attackers)] for i in range(t)
        }
        config = make_icc_config(
            "ICC0",
            n=n,
            t=t,
            delta_bound=0.3,
            epsilon=0.02,
            delay_model=UniformDelay(0.01, 0.15),
            seed=100 + trial,
            max_rounds=rounds,
            corrupt=corrupt,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_for(rounds * 3.0 + 30)
        cluster.check_safety()
        check_p2_on_cluster(cluster)
        # P1: every honest party finished every round.
        if all(p.round >= rounds for p in cluster.honest_parties):
            passed += 1
    return PropertyVerdict(name="P1+P2 Byzantine sweep", trials=trials, passed=passed)


def run_liveness_intermittent(trials: int = 5, n: int = 7) -> PropertyVerdict:
    """P3 under intermittent synchrony: commits resume in sync windows."""
    t = (n - 1) // 3
    passed = 0
    for trial in range(trials):
        delay = IntermittentSynchrony(
            base=FixedDelay(0.05), period=20.0, sync_len=5.0
        )
        config = make_icc_config(
            "ICC0",
            n=n,
            t=t,
            delta_bound=0.2,
            epsilon=0.02,
            delay_model=delay,
            seed=200 + trial,
        )
        cluster = build_cluster(config)
        cluster.start()
        cluster.run_for(100.0, max_events=20_000_000)
        cluster.check_safety()
        # Commits must land in (at least) each of the later sync windows,
        # and every round in between must eventually commit (throughput
        # holds across asynchronous stretches, Section 3.3).
        observer = cluster.honest_parties[0]
        commit_times = sorted(
            c.time for c in cluster.metrics.commits_of(observer.index)
        )
        windows_hit = {int(ct // 20.0) for ct in commit_times if (ct % 20.0) <= 6.0}
        rounds_contiguous = [b.round for b in observer.output_log] == list(
            range(1, len(observer.output_log) + 1)
        )
        if len(windows_hit) >= 4 and rounds_contiguous and observer.k_max > 0:
            passed += 1
    return PropertyVerdict(name="P3 intermittent synchrony", trials=trials, passed=passed)


def run(trials: int = 10) -> list[PropertyVerdict]:
    return [
        run_safety_sweep(trials=trials),
        run_liveness_intermittent(trials=max(3, trials // 2)),
    ]


def main() -> list[PropertyVerdict]:
    verdicts = run()
    print_table(
        "E8: protocol properties P1/P2/P3 under adversarial conditions",
        ["property", "trials", "passed", "verdict"],
        [(v.name, v.trials, v.passed, "OK" if v.ok else "FAIL") for v in verdicts],
    )
    return verdicts


if __name__ == "__main__":
    main()
