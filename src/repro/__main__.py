"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``        — the quickstart scenario (a few ICC0 rounds + stats);
* ``table1``      — reproduce Table 1 (``--full`` for 300 s windows);
* ``experiments`` — the entire evaluation suite (``--quick``, ``--trace DIR``,
  ``--jobs N`` for the parallel runner);
* ``trace``       — run a traced simulation (or load a JSONL export) and
  print latency/message summaries — see ``docs/OBSERVABILITY.md``;
* ``chaos``       — seeded fault-scenario sweep with safety/liveness
  invariant checking across the ICC variants — see ``docs/FAULTS.md``;
* ``load``        — batched load harness: sweep offered load and chart the
  throughput-vs-latency saturation curve at n=13/31/100 (``--bench`` for
  the BENCH_load legs) — see ``docs/LOAD.md``;
* ``shard``       — multi-subnet sharding harness: K embedded clusters over
  certified xnet streams, aggregate-throughput-vs-K sweep (``--bench`` for
  the BENCH_shard legs) — see ``docs/SHARDING.md``;
* ``bench``       — crypto fast-path benchmark (single vs batch verification
  throughput per primitive) — see ``docs/PERFORMANCE.md``;
* ``profile``     — hot-path profile harness: per-crypto-backend batch
  verification, heap-vs-calendar event queue, cross-height flush stats,
  whole-run bit-identity checks (``--cprofile`` for function-level
  hotspots) — see ``docs/PERFORMANCE.md``;
* ``bench-runner`` — experiment-suite wall-clock benchmark (serial vs
  parallel runner, setup-cache hit rates) — see ``docs/PERFORMANCE.md``;
* ``serve``       — one live protocol party over real TCP (the per-process
  binary ``live`` spawns; config file names peers/ports/keys) — see
  ``docs/TRANSPORT.md``;
* ``live``        — orchestrate an n-party localhost TCP cluster, drive
  client load through the batching pipeline, record wall-clock
  finalization (``--bench`` for the BENCH_live leg, ``--check`` for the
  CI smoke leg, ``--trace-dir DIR`` to trace every process and collect
  the run) — see ``docs/TRANSPORT.md``;
* ``collect``     — merge a live run's per-process traces/meters: align
  the n monotonic clocks, pair send/recv wire spans, write the merged
  trace + meter + alignment (``--report`` for the latency-breakdown
  markdown, ``--check`` for CI) — see ``docs/OBSERVABILITY.md``;
* ``top``         — poll a running live cluster's STAT endpoints and
  render a per-party metrics table (height, pool depth, backlog,
  reconnects, request percentiles) — see ``docs/OBSERVABILITY.md``;
* ``versions``    — substrate self-check (group parameters, codec, sizes).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(args: argparse.Namespace) -> None:
    from repro.core import ClusterConfig, Payload, build_cluster
    from repro.sim import FixedDelay

    delta = args.delta
    config = ClusterConfig(
        n=args.n,
        t=(args.n - 1) // 3,
        delta_bound=delta * 6,
        epsilon=delta / 5,
        delay_model=FixedDelay(delta),
        max_rounds=args.rounds,
        payload_source=lambda p, r, c: Payload(commands=(b"demo-%d" % r,)),
        seed=args.seed,
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(args.rounds - 1, timeout=600)
    cluster.check_safety()
    observer = cluster.party(1)
    print(f"n={args.n} parties, δ={delta * 1000:.0f} ms, seed={args.seed}")
    print(f"committed {observer.k_max} rounds in {cluster.sim.now:.2f}s simulated")
    durations = cluster.metrics.round_durations(1)
    steady = [v for k, v in durations.items() if k >= 2]
    latencies = cluster.metrics.commit_latencies()
    print(f"round time  : {sum(steady) / len(steady) / delta:.2f} δ (paper: 2δ)")
    print(f"latency     : {sum(latencies) / len(latencies) / delta:.2f} δ (paper: 3δ)")
    leaders = [b.proposer for b in observer.output_log]
    print(f"leaders     : {leaders}")


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.experiments import table1

    table1.main(duration=300.0 if args.full else 60.0)


def _cmd_experiments(args: argparse.Namespace) -> None:
    from repro.experiments import run_all

    argv = ["--quick"] if args.quick else []
    if args.trace is not None:
        argv += ["--trace", args.trace]
    if args.jobs is not None:
        argv += ["--jobs", str(args.jobs)]
    run_all.main(argv)


def _cmd_trace(args: argparse.Namespace) -> None:
    from repro.analysis.trace import (
        format_summary,
        round_breakdown,
        summarize,
    )
    from repro.obs import Tracer, read_jsonl, write_jsonl

    if args.input is not None:
        events = read_jsonl(args.input)
        print(f"loaded {len(events)} events from {args.input}")
    else:
        from repro.experiments.common import make_icc_config, run_icc
        from repro.sim import FixedDelay

        tracer = Tracer()
        config = make_icc_config(
            args.protocol,
            n=args.n,
            t=(args.n - 1) // 3,
            delta_bound=args.delta * 6,
            delay_model=FixedDelay(args.delta),
            epsilon=args.delta / 5,
            seed=args.seed,
            max_rounds=args.rounds,
        )
        config.tracer = tracer
        cluster = run_icc(config, duration=args.rounds * args.delta * 8)
        events = tracer.export_events()
        print(
            f"{args.protocol.upper()} n={args.n} δ={args.delta * 1000:.0f} ms "
            f"seed={args.seed}: {cluster.min_committed_round()} rounds committed, "
            f"{len(events)} events traced"
        )
        if tracer.dropped:
            print(f"warning: ring buffer dropped {tracer.dropped} events")
    print()
    print(format_summary(summarize(events)))
    breakdown = round_breakdown(events)
    if breakdown:
        print()
        print("round  enter->propose  propose->notarize  notarize->finalize  msgs")
        for entry in breakdown.values():
            gaps = entry.phase_durations()

            def cell(key: str) -> str:
                value = gaps[key]
                return "-" if value is None else f"{value:.3f}s"

            print(
                f"{entry.round:5d}  {cell('enter->propose'):>14s}  "
                f"{cell('propose->notarize'):>17s}  "
                f"{cell('notarize->finalize'):>18s}  {entry.messages:4d}"
            )
    if args.export is not None:
        count = write_jsonl(events, args.export)
        print(f"\nwrote {count} events to {args.export}")


def _cmd_chaos(args: argparse.Namespace) -> None:
    from repro.experiments import chaos, runner

    seeds = range(args.seed, args.seed + args.count)
    protocols = tuple(p.strip().upper() for p in args.protocols.split(",") if p.strip())
    suite = chaos.specs(
        seeds=seeds,
        protocols=protocols,
        n=args.n,
        duration=args.duration,
        intensity=args.intensity,
    )
    results = chaos.tabulate(
        suite, runner.execute(suite, jobs=args.jobs, trace_dir=args.trace)
    )
    if any(not r.ok for r in results):
        sys.exit(1)


def _cmd_report(args: argparse.Namespace) -> None:
    if args.suite:
        from repro.experiments import report

        argv = [args.output or "EXPERIMENTS-generated.md"]
        if args.quick:
            argv.append("--quick")
        report.main(argv)
        return
    from repro.experiments import run_report

    argv = [args.output or "REPORT.md"]
    for flag, value in (
        ("--protocol", args.protocol),
        ("--n", args.n),
        ("--t", args.t),
        ("--delta", args.delta),
        ("--rounds", args.rounds),
        ("--seed", args.seed),
        ("--jobs", args.jobs),
        ("--trace-dir", args.trace_dir),
    ):
        if value is not None:
            argv += [flag, str(value)]
    if args.runs is not None:
        argv += ["--runs", str(args.runs)]
    for flag, on in (
        ("--quick", args.quick),
        ("--load", args.load),
        ("--html", args.html),
        ("--live", args.live),
    ):
        if on:
            argv.append(flag)
    status = run_report.main(argv)
    if status:
        sys.exit(status)


def _cmd_load(args: argparse.Namespace) -> None:
    from repro.experiments import load

    argv = ["--ns", args.ns, "--loads", args.loads,
            "--duration", str(args.duration), "--batch-max", str(args.batch_max),
            "--auth", args.auth, "--seed", str(args.seed),
            "--jobs", str(args.jobs)]
    if args.bench:
        argv.append("--bench")
    if args.json is not None:
        argv += ["--json", args.json]
    if args.quick:
        argv.append("--quick")
    if args.check:
        argv.append("--check")
    status = load.main(argv)
    if status:
        sys.exit(status)


def _cmd_shard(args: argparse.Namespace) -> None:
    from repro.experiments import sharding

    argv = ["--ks", args.ks, "--n", str(args.n),
            "--offered", str(args.offered), "--xfrac", str(args.xfrac),
            "--duration", str(args.duration), "--seed", str(args.seed),
            "--jobs", str(args.jobs)]
    if args.bench:
        argv.append("--bench")
    if args.json is not None:
        argv += ["--json", args.json]
    if args.quick:
        argv.append("--quick")
    if args.check:
        argv.append("--check")
    status = sharding.main(argv)
    if status:
        sys.exit(status)


def _cmd_bench(args: argparse.Namespace) -> None:
    from repro.experiments import crypto_bench

    argv = ["--profile", args.profile, "--batch-size", str(args.batch_size),
            "--seed", str(args.seed)]
    if args.json is not None:
        argv += ["--json", args.json]
    if args.quick:
        argv.append("--quick")
    if args.check:
        argv.append("--check")
    status = crypto_bench.main(argv)
    if status:
        sys.exit(status)


def _cmd_profile(args: argparse.Namespace) -> None:
    from repro.experiments import profile_hotpath

    argv = ["--profile", args.profile, "--batch-size", str(args.batch_size),
            "--seed", str(args.seed)]
    if args.json is not None:
        argv += ["--json", args.json]
    if args.quick:
        argv.append("--quick")
    if args.cprofile:
        argv.append("--cprofile")
    if args.check:
        argv.append("--check")
    status = profile_hotpath.main(argv)
    if status:
        sys.exit(status)


def _cmd_bench_runner(args: argparse.Namespace) -> None:
    from repro.experiments import runner_bench

    argv = ["--jobs", str(args.jobs)] if args.jobs is not None else []
    if args.json is not None:
        argv += ["--json", args.json]
    if args.quick:
        argv.append("--quick")
    if args.check:
        argv.append("--check")
    status = runner_bench.main(argv)
    if status:
        sys.exit(status)


def _cmd_versions(args: argparse.Namespace) -> None:
    import repro
    from repro.crypto.group import default_group, test_group
    from repro.erasure.reed_solomon import CodecParams, decode, encode

    print(f"repro {repro.__version__}")
    for name, group in (("test", test_group()), ("default", default_group())):
        print(f"group[{name}]: |p|={group.p.bit_length()} bits, "
              f"|q|={group.q.bit_length()} bits, g={hex(group.g)[:18]}…")
    data = bytes(range(64))
    shards = encode(data, CodecParams(3, 7))
    assert decode({0: shards[0], 5: shards[5], 6: shards[6]}, CodecParams(3, 7), 64) == data
    print("reed-solomon: self-check OK (3-of-7 over 64 bytes)")


def _cmd_serve(args: argparse.Namespace) -> None:
    from repro.net import live as live_mod

    sys.exit(live_mod.serve(args))


def _cmd_live(args: argparse.Namespace) -> None:
    from repro.net import live as live_mod

    sys.exit(live_mod.live(args))


def _cmd_collect(args: argparse.Namespace) -> None:
    from repro.analysis.live import collect_main

    sys.exit(collect_main(args))


def _cmd_top(args: argparse.Namespace) -> None:
    from repro.net.stat import top

    sys.exit(top(args))


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Internet Computer Consensus (PODC 2022) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a small ICC0 deployment")
    demo.add_argument("--n", type=int, default=7)
    demo.add_argument("--rounds", type=int, default=15)
    demo.add_argument("--delta", type=float, default=0.05)
    demo.add_argument("--seed", type=int, default=42)
    demo.set_defaults(func=_cmd_demo)

    table1 = sub.add_parser("table1", help="reproduce Table 1")
    table1.add_argument("--full", action="store_true", help="300 s windows")
    table1.set_defaults(func=_cmd_table1)

    experiments = sub.add_parser("experiments", help="run the full evaluation")
    experiments.add_argument("--quick", action="store_true")
    experiments.add_argument(
        "--trace", metavar="DIR", default=None,
        help="export one trace JSONL per ICC run into DIR",
    )
    experiments.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the simulation suite (default: all cores)",
    )
    experiments.set_defaults(func=_cmd_experiments)

    trace = sub.add_parser(
        "trace", help="trace a simulation and summarize the event stream"
    )
    trace.add_argument(
        "--protocol", choices=["icc0", "icc1", "icc2"], default="icc0"
    )
    trace.add_argument("--n", type=int, default=4)
    trace.add_argument("--rounds", type=int, default=8)
    trace.add_argument("--delta", type=float, default=0.05)
    trace.add_argument("--seed", type=int, default=42)
    trace.add_argument(
        "--export", metavar="PATH", default=None, help="write events as JSONL"
    )
    trace.add_argument(
        "--input", metavar="PATH", default=None,
        help="summarize an existing JSONL export instead of running",
    )
    trace.set_defaults(func=_cmd_trace)

    chaos = sub.add_parser(
        "chaos",
        help="seeded fault-scenario sweep with invariant checking",
    )
    chaos.add_argument(
        "--seed", type=int, default=0,
        help="first scenario seed (each seed fully determines its scenario)",
    )
    chaos.add_argument(
        "--count", type=int, default=1, metavar="K",
        help="number of consecutive scenario seeds to sweep",
    )
    chaos.add_argument(
        "--protocols", default="icc0,icc1,icc2",
        help="comma-separated ICC variants to run each scenario against",
    )
    chaos.add_argument("--n", type=int, default=7)
    chaos.add_argument("--duration", type=float, default=40.0)
    chaos.add_argument(
        "--intensity", type=float, default=1.0,
        help="scales how many faults each scenario draws",
    )
    chaos.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (results are identical at any job count)",
    )
    chaos.add_argument(
        "--trace", metavar="DIR", default=None,
        help="export one trace JSONL per run into DIR",
    )
    chaos.set_defaults(func=_cmd_chaos)

    report = sub.add_parser(
        "report",
        help="metrics + critical-path report for a seeded run suite",
    )
    report.add_argument(
        "output", nargs="?", default=None,
        help="output path (default REPORT.md; EXPERIMENTS-generated.md "
        "with --suite)",
    )
    report.add_argument(
        "--quick", action="store_true", help="tiny single-run report (CI smoke)"
    )
    report.add_argument(
        "--suite", action="store_true",
        help="legacy suite-wide evaluation report instead",
    )
    report.add_argument(
        "--protocol", choices=["icc0", "icc1", "icc2"], default=None
    )
    report.add_argument("--n", type=int, default=None)
    report.add_argument("--t", type=int, default=None)
    report.add_argument("--delta", type=float, default=None)
    report.add_argument("--rounds", type=int, default=None)
    report.add_argument(
        "--runs", type=int, default=None, help="seeded runs to aggregate"
    )
    report.add_argument("--seed", type=int, default=None, help="base seed")
    report.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="worker processes for the run suite",
    )
    report.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="keep traces and metrics.json here (temp dir otherwise)",
    )
    report.add_argument(
        "--load", action="store_true",
        help="render from an existing --trace-dir without simulating",
    )
    report.add_argument(
        "--html", action="store_true", help="write self-contained HTML"
    )
    report.add_argument(
        "--live", action="store_true",
        help="render the live-cluster latency breakdown from a collected "
             "run directory (--trace-dir) instead of simulating",
    )
    report.set_defaults(func=_cmd_report)

    load = sub.add_parser(
        "load",
        help="batched load harness: throughput-vs-latency saturation sweep",
    )
    load.add_argument(
        "--ns", default=",".join(str(n) for n in (13, 31, 100)),
        help="comma-separated subnet sizes to sweep",
    )
    load.add_argument(
        "--loads", default="250,1000,2000,4000",
        help="comma-separated offered loads (requests/second)",
    )
    load.add_argument("--duration", type=float, default=4.0,
                      help="arrival window per point (simulated seconds)")
    load.add_argument("--batch-max", type=int, default=256,
                      help="load requests packed per block")
    load.add_argument("--auth", choices=["fast", "real"], default="fast",
                      help="client authenticator backend")
    load.add_argument("--seed", type=int, default=1)
    load.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (results identical at any N)",
    )
    load.add_argument(
        "--bench", action="store_true",
        help="run the BENCH_load legs instead of the sweep",
    )
    load.add_argument("--json", metavar="PATH", default=None,
                      help="write the bench report as JSON (implies --bench)")
    load.add_argument("--quick", action="store_true",
                      help="short wall-clock timing windows (CI smoke)")
    load.add_argument(
        "--check", action="store_true",
        help="with --bench: fail unless batching wins and request sets match",
    )
    load.set_defaults(func=_cmd_load)

    shard = sub.add_parser(
        "shard",
        help="multi-subnet sharding harness: aggregate throughput vs K "
             "over certified xnet streams",
    )
    shard.add_argument(
        "--ks", default="1,2,4",
        help="comma-separated shard counts to sweep",
    )
    shard.add_argument("--n", type=int, default=4, help="parties per shard")
    shard.add_argument("--offered", type=float, default=200.0,
                       help="offered load per shard (requests/second)")
    shard.add_argument("--xfrac", type=float, default=0.0,
                       help="fraction of requests addressed cross-shard")
    shard.add_argument("--duration", type=float, default=2.0,
                       help="arrival window (simulated seconds)")
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument(
        "--jobs", type=int, default=1, metavar="N",
        help="worker processes (results identical at any N)",
    )
    shard.add_argument(
        "--bench", action="store_true",
        help="run the BENCH_shard legs instead of the sweep",
    )
    shard.add_argument("--json", metavar="PATH", default=None,
                       help="write the bench report as JSON (implies --bench)")
    shard.add_argument("--quick", action="store_true",
                       help="accepted for CI symmetry; all legs are simulated")
    shard.add_argument(
        "--check", action="store_true",
        help="fail unless goodput scales with K, the cross-shard penalty "
             "is reported, forged streams are rejected, and "
             "serial == parallel",
    )
    shard.set_defaults(func=_cmd_shard)

    bench = sub.add_parser(
        "bench", help="crypto fast-path benchmark (single vs batch verification)"
    )
    bench.add_argument("--json", metavar="PATH", default=None)
    bench.add_argument(
        "--profile", choices=["test", "default", "strong"], default="default"
    )
    bench.add_argument("--batch-size", type=int, default=32)
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument("--quick", action="store_true", help="short timing windows")
    bench.add_argument(
        "--check", action="store_true",
        help="fail unless batch >= single throughput for every primitive",
    )
    bench.set_defaults(func=_cmd_bench)

    profile = sub.add_parser(
        "profile",
        help="hot-path profile: crypto backends, event queues, flushing",
    )
    profile.add_argument("--json", metavar="PATH", default=None)
    profile.add_argument(
        "--profile", choices=["test", "default", "strong"], default="default"
    )
    profile.add_argument("--batch-size", type=int, default=32)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument("--quick", action="store_true", help="short timing windows")
    profile.add_argument(
        "--cprofile", action="store_true",
        help="print cProfile hotspots of one representative deployment",
    )
    profile.add_argument(
        "--check", action="store_true",
        help="fail unless results are bit-identical and the fast paths win",
    )
    profile.set_defaults(func=_cmd_profile)

    bench_runner = sub.add_parser(
        "bench-runner",
        help="experiment-suite benchmark (serial vs parallel runner)",
    )
    bench_runner.add_argument("--json", metavar="PATH", default=None)
    bench_runner.add_argument(
        "--jobs", type=int, default=None, metavar="N",
        help="parallel job count to benchmark (default: all cores)",
    )
    bench_runner.add_argument(
        "--quick", action="store_true", help="trimmed suite (seconds, not minutes)"
    )
    bench_runner.add_argument(
        "--check", action="store_true",
        help="fail if the parallel runner is slower than serial beyond noise",
    )
    bench_runner.set_defaults(func=_cmd_bench_runner)

    serve = sub.add_parser(
        "serve",
        help="run one live party over TCP (the per-process binary that "
             "`live` spawns) — see docs/TRANSPORT.md",
    )
    serve.add_argument(
        "--config", required=True, metavar="PATH",
        help="shared cluster config JSON (peers/ports/keys)",
    )
    serve.add_argument(
        "--index", required=True, type=int, metavar="I",
        help="which party of the config this process is (1-based)",
    )
    serve.add_argument(
        "--result", metavar="PATH", default=None,
        help="write the JSON result record here (default: stdout)",
    )
    serve.add_argument(
        "--trace", metavar="PATH", default=None,
        help="export this party's trace events as JSONL (self-identifying "
             "header: run_id + party index + schema version)",
    )
    serve.add_argument(
        "--meter", metavar="PATH", default=None,
        help="write this party's full meter snapshot as JSON",
    )
    serve.set_defaults(func=_cmd_serve)

    live = sub.add_parser(
        "live",
        help="orchestrate an n-party localhost TCP cluster (one serve "
             "process per party) — see docs/TRANSPORT.md",
    )
    live.add_argument("--n", type=int, default=4)
    live.add_argument(
        "--protocol", choices=["icc0", "icc1", "icc2"], default="icc0"
    )
    live.add_argument(
        "--heights", type=int, default=20, metavar="K",
        help="finalized height every party must reach",
    )
    live.add_argument("--epsilon", type=float, default=0.05,
                      help="protocol governor ε (round pacing on localhost)")
    live.add_argument("--timeout", type=float, default=60.0,
                      help="hard wall-clock budget (seconds)")
    live.add_argument("--seed", type=int, default=0)
    live.add_argument(
        "--load", type=int, default=160, metavar="R",
        help="deterministic client requests through the batching pipeline "
             "(0 = empty payloads)",
    )
    live.add_argument(
        "--inproc", action="store_true",
        help="co-host all parties on one event loop (still real TCP) "
             "instead of spawning serve processes",
    )
    live.add_argument(
        "--check", action="store_true",
        help="quick in-process 4-party smoke leg (CI): finalize 5 heights, "
             "verify liveness + the prefix property",
    )
    live.add_argument(
        "--bench", action="store_true",
        help="write the run's summary as the BENCH_live.json snapshot "
             "(traces the run to compute the latency breakdown)",
    )
    live.add_argument("--json", metavar="PATH", default=None,
                      help="write the summary JSON here as well")
    live.add_argument(
        "--trace-dir", metavar="DIR", default=None,
        help="trace every process into DIR and collect the run afterwards "
             "(clock alignment + merged trace + latency breakdown)",
    )
    live.set_defaults(func=_cmd_live)

    collect = sub.add_parser(
        "collect",
        help="merge one live run's per-process traces: clock alignment, "
             "causal wire spans, merged trace/meter — see "
             "docs/OBSERVABILITY.md",
    )
    collect.add_argument(
        "run_dir",
        help="directory holding trace-*.jsonl / meter-*.json / "
             "result-*.json from one `repro live --trace-dir` run",
    )
    collect.add_argument(
        "--quorum", type=int, default=None, metavar="Q",
        help="notarization quorum for the critical path (default: n−t "
             "from the run's cluster.json)",
    )
    collect.add_argument(
        "--report", metavar="PATH", default=None,
        help="also write the live latency-breakdown report (markdown)",
    )
    collect.add_argument(
        "--check", action="store_true",
        help="fail unless heights finalized and the per-height stage "
             "spans telescope to the measured latency",
    )
    collect.set_defaults(func=_cmd_collect)

    top = sub.add_parser(
        "top",
        help="poll a live cluster's STAT endpoints: per-party height, "
             "pool depth, backlog, reconnects, request percentiles",
    )
    top.add_argument(
        "--config", required=True, metavar="PATH",
        help="the cluster config JSON the parties were launched with",
    )
    top.add_argument("--interval", type=float, default=2.0,
                     help="seconds between polls")
    top.add_argument(
        "--iterations", type=int, default=0, metavar="K",
        help="stop after K polls (0 = until interrupted)",
    )
    top.add_argument("--timeout", type=float, default=2.0,
                     help="per-peer connect+reply budget (seconds)")
    top.add_argument("--json", action="store_true",
                     help="also print each poll as one JSON line")
    top.set_defaults(func=_cmd_top)

    versions = sub.add_parser("versions", help="substrate self-check")
    versions.set_defaults(func=_cmd_versions)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
