"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``        — the quickstart scenario (a few ICC0 rounds + stats);
* ``table1``      — reproduce Table 1 (``--full`` for 300 s windows);
* ``experiments`` — the entire evaluation suite (``--quick`` supported);
* ``versions``    — substrate self-check (group parameters, codec, sizes).
"""

from __future__ import annotations

import argparse
import sys


def _cmd_demo(args: argparse.Namespace) -> None:
    from repro.core import ClusterConfig, Payload, build_cluster
    from repro.sim import FixedDelay

    delta = args.delta
    config = ClusterConfig(
        n=args.n,
        t=(args.n - 1) // 3,
        delta_bound=delta * 6,
        epsilon=delta / 5,
        delay_model=FixedDelay(delta),
        max_rounds=args.rounds,
        payload_source=lambda p, r, c: Payload(commands=(b"demo-%d" % r,)),
        seed=args.seed,
    )
    cluster = build_cluster(config)
    cluster.start()
    cluster.run_until_all_committed_round(args.rounds - 1, timeout=600)
    cluster.check_safety()
    observer = cluster.party(1)
    print(f"n={args.n} parties, δ={delta * 1000:.0f} ms, seed={args.seed}")
    print(f"committed {observer.k_max} rounds in {cluster.sim.now:.2f}s simulated")
    durations = cluster.metrics.round_durations(1)
    steady = [v for k, v in durations.items() if k >= 2]
    latencies = cluster.metrics.commit_latencies()
    print(f"round time  : {sum(steady) / len(steady) / delta:.2f} δ (paper: 2δ)")
    print(f"latency     : {sum(latencies) / len(latencies) / delta:.2f} δ (paper: 3δ)")
    leaders = [b.proposer for b in observer.output_log]
    print(f"leaders     : {leaders}")


def _cmd_table1(args: argparse.Namespace) -> None:
    from repro.experiments import table1

    table1.main(duration=300.0 if args.full else 60.0)


def _cmd_experiments(args: argparse.Namespace) -> None:
    from repro.experiments import run_all

    run_all.main(["--quick"] if args.quick else [])


def _cmd_report(args: argparse.Namespace) -> None:
    from repro.experiments import report

    argv = [args.output]
    if args.quick:
        argv.append("--quick")
    report.main(argv)


def _cmd_versions(args: argparse.Namespace) -> None:
    import repro
    from repro.crypto.group import default_group, test_group
    from repro.erasure.reed_solomon import CodecParams, decode, encode

    print(f"repro {repro.__version__}")
    for name, group in (("test", test_group()), ("default", default_group())):
        print(f"group[{name}]: |p|={group.p.bit_length()} bits, "
              f"|q|={group.q.bit_length()} bits, g={hex(group.g)[:18]}…")
    data = bytes(range(64))
    shards = encode(data, CodecParams(3, 7))
    assert decode({0: shards[0], 5: shards[5], 6: shards[6]}, CodecParams(3, 7), 64) == data
    print("reed-solomon: self-check OK (3-of-7 over 64 bytes)")


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        prog="python -m repro",
        description="Internet Computer Consensus (PODC 2022) reproduction",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    demo = sub.add_parser("demo", help="run a small ICC0 deployment")
    demo.add_argument("--n", type=int, default=7)
    demo.add_argument("--rounds", type=int, default=15)
    demo.add_argument("--delta", type=float, default=0.05)
    demo.add_argument("--seed", type=int, default=42)
    demo.set_defaults(func=_cmd_demo)

    table1 = sub.add_parser("table1", help="reproduce Table 1")
    table1.add_argument("--full", action="store_true", help="300 s windows")
    table1.set_defaults(func=_cmd_table1)

    experiments = sub.add_parser("experiments", help="run the full evaluation")
    experiments.add_argument("--quick", action="store_true")
    experiments.set_defaults(func=_cmd_experiments)

    report = sub.add_parser("report", help="write a markdown evaluation report")
    report.add_argument("output", nargs="?", default="EXPERIMENTS-generated.md")
    report.add_argument("--quick", action="store_true")
    report.set_defaults(func=_cmd_report)

    versions = sub.add_parser("versions", help="substrate self-check")
    versions.set_defaults(func=_cmd_versions)

    args = parser.parse_args(argv)
    args.func(args)


if __name__ == "__main__":
    main()
