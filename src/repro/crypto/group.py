"""Schnorr groups: prime-order subgroups of Z_p*.

All discrete-log primitives (Schnorr signatures, DLEQ proofs, unique and
threshold signatures) operate in a cyclic group G of prime order q, realised
as the order-q subgroup of Z_p* for a prime p = c·q + 1 (classic DSA-style
parameters).  Parameters are generated *deterministically* from a
nothing-up-my-sleeve seed string, so every run of the simulator uses the same
group and results are reproducible.

Security note: the default profile uses a 512-bit p / 256-bit q, which is
plenty for a research simulation but NOT a production security level (the
paper's production system uses BLS12-381; see DESIGN.md §2 for the
substitution rationale).  A ``strong`` profile with a 2048-bit p is available
for users who want a classically-hard instance, and a tiny ``test`` profile
keeps the unit-test suite fast.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import cached_property, lru_cache

from .backend import active_backend
from .field import PrimeField, is_probable_prime
from .hashing import hash_to_int, int_to_bytes, tagged_hash

_SEED_TAG = "ICC-repro/group-gen/v1"


def _prime_from_stream(tag: str, bits: int, start_counter: int = 0) -> tuple[int, int]:
    """First probable prime of exactly ``bits`` bits from a hash stream.

    Returns ``(prime, next_counter)`` so callers can continue the stream.
    """
    counter = start_counter
    while True:
        material = b""
        need = (bits + 7) // 8
        block = 0
        while len(material) < need:
            material += tagged_hash(
                _SEED_TAG, tag.encode(), counter.to_bytes(8, "big"), block.to_bytes(4, "big")
            )
            block += 1
        candidate = int.from_bytes(material[:need], "big")
        candidate |= 1 << (bits - 1)  # force exact bit length
        candidate |= 1  # force odd
        candidate &= (1 << bits) - 1
        if is_probable_prime(candidate):
            return candidate, counter + 1
        counter += 1


@dataclass(frozen=True)
class Group:
    """A cyclic group of prime order ``q`` inside Z_p*.

    Elements are canonical integers in [1, p).  ``g`` generates the order-q
    subgroup.  ``cofactor`` is (p-1)/q.
    """

    p: int
    q: int
    g: int

    @property
    def cofactor(self) -> int:
        return (self.p - 1) // self.q

    @property
    def scalar_field(self) -> PrimeField:
        return PrimeField(self.q)

    @cached_property
    def element_width(self) -> int:
        """Byte width of a serialized group element (fixed per group).

        Cached on the instance: ``element_to_bytes``/``element_from_bytes``
        sit on the share-serialization hot path and previously recomputed
        ``p.bit_length()`` on every call.
        """
        return (self.p.bit_length() + 7) // 8

    @cached_property
    def scalar_width(self) -> int:
        """Byte width of a serialized scalar in Z_q (fixed per group)."""
        return (self.q.bit_length() + 7) // 8

    # -- group operations -------------------------------------------------

    def mul(self, a: int, b: int) -> int:
        """Group operation (multiplication mod p)."""
        return (a * b) % self.p

    def power(self, base: int, exponent: int) -> int:
        """base**exponent in the group (exponent taken mod q).

        INVARIANT: reducing the exponent mod q is only correct when ``base``
        lies in the order-q subgroup (base**q == 1).  For an arbitrary
        element of Z_p* the order may be any divisor of p-1 = cofactor·q,
        and ``base**(e mod q) != base**e`` in general.  Callers must only
        pass subgroup members — either values they computed from subgroup
        members themselves, or untrusted values admitted through
        :meth:`decode_element` / :meth:`is_element` at deserialization.
        Every verifier in this package enforces this before exponentiating.

        Exponentiation routes through the active crypto backend (see
        :mod:`repro.crypto.backend`); backends differ only in evaluation
        strategy, never in result.
        """
        return active_backend().powmod(base, exponent % self.q, self.p)

    def power_g(self, exponent: int) -> int:
        """g**exponent — the most common operation, kept explicit."""
        return active_backend().powmod(self.g, exponent % self.q, self.p)

    def inv(self, a: int) -> int:
        return active_backend().invmod(a, self.p)

    def is_element(self, a: int) -> bool:
        """Membership test for the order-q subgroup."""
        if not 1 <= a < self.p:
            return False
        return active_backend().powmod(a, self.q, self.p) == 1

    def decode_element(self, a: int) -> int:
        """Admit an untrusted integer as a subgroup element, or raise.

        This is the single choke point for group elements entering from
        outside (deserialized messages, adversary-supplied artifacts): it
        enforces the subgroup-membership invariant that :meth:`power`
        relies on when reducing exponents mod q.  Returns the canonical
        element on success; raises :class:`ValueError` otherwise.
        """
        if not self.is_element(a):
            raise ValueError(f"{a} is not an element of the order-q subgroup")
        return a

    def element_to_bytes(self, a: int) -> bytes:
        """Fixed-width big-endian encoding of a group element."""
        return a.to_bytes(self.element_width, "big")

    def element_from_bytes(self, data: bytes) -> int:
        """Decode a fixed-width element encoding, with the subgroup check.

        Inverse of :meth:`element_to_bytes`; message deserialization must
        use this (not a bare ``int.from_bytes``) so that every element that
        reaches :meth:`power` satisfies the subgroup invariant.
        """
        width = self.element_width
        if len(data) != width:
            raise ValueError(f"element encoding must be {width} bytes, got {len(data)}")
        return self.decode_element(int.from_bytes(data, "big"))

    def hash_to_group(self, tag: str, *parts: bytes) -> int:
        """Hash arbitrary data to a group element (the ``H2`` of DESIGN.md).

        We derive u from the hash and return u**cofactor mod p, which lands
        in the order-q subgroup; the (negligible-probability) identity result
        is rejected by re-hashing with a counter.
        """
        counter = 0
        powmod = active_backend().powmod
        while True:
            u = hash_to_int(tag, *parts, counter.to_bytes(4, "big")) % self.p
            if u > 1:
                h = powmod(u, self.cofactor, self.p)
                if h != 1:
                    return h
            counter += 1

    def hash_to_scalar(self, tag: str, *parts: bytes) -> int:
        """Hash arbitrary data to a scalar in Z_q (Fiat–Shamir challenges)."""
        return hash_to_int(tag, *parts) % self.q

    def random_scalar(self, rng) -> int:
        return rng.randrange(self.q)


def generate_group(p_bits: int, q_bits: int) -> Group:
    """Deterministically generate a Schnorr group with the given sizes.

    The subgroup order q is drawn from a hash stream; then p = c·q + 1 is
    scanned (c even, also hash-derived) until p is prime.  The generator is
    h**c for the first h ≥ 2 giving a non-identity element.
    """
    if q_bits >= p_bits:
        raise ValueError("q must be smaller than p")
    q, _ = _prime_from_stream(f"q/{p_bits}/{q_bits}", q_bits)
    c_bits = p_bits - q_bits
    counter = 0
    while True:
        seed = hash_to_int(
            _SEED_TAG, f"c/{p_bits}/{q_bits}".encode(), counter.to_bytes(8, "big")
        )
        c = (seed % (1 << c_bits)) | (1 << (c_bits - 1))
        c &= ~1  # even, so p = c*q + 1 is odd
        if c == 0:
            counter += 1
            continue
        p = c * q + 1
        if p.bit_length() == p_bits and is_probable_prime(p):
            break
        counter += 1
    for h in range(2, 1000):
        g = pow(h, (p - 1) // q, p)
        if g != 1:
            break
    else:  # pragma: no cover - unreachable for prime p
        raise RuntimeError("no generator found")
    return Group(p=p, q=q, g=g)


@lru_cache(maxsize=None)
def _cached_group(p_bits: int, q_bits: int) -> Group:
    return generate_group(p_bits, q_bits)


def test_group() -> Group:
    """Small, fast, INSECURE group for unit tests (p 128-bit, q 96-bit)."""
    return _cached_group(128, 96)


def default_group() -> Group:
    """Default simulation group (p 512-bit, q 256-bit)."""
    return _cached_group(512, 256)


def strong_group() -> Group:
    """Classically-hard instance (p 2048-bit, q 256-bit); slow to generate."""
    return _cached_group(2048, 256)


def group_for_profile(profile: str) -> Group:
    """Resolve a named security profile to a group instance."""
    profiles = {"test": test_group, "default": default_group, "strong": strong_group}
    try:
        return profiles[profile]()
    except KeyError:
        raise ValueError(f"unknown group profile {profile!r}") from None


__all__ = [
    "Group",
    "generate_group",
    "test_group",
    "default_group",
    "strong_group",
    "group_for_profile",
    "int_to_bytes",
]
