"""Schnorr digital signatures — the paper's ``S_auth`` scheme (Section 2.2).

Used by every party to authenticate the blocks it proposes (the block
*authenticator* of Section 3.4).  EUF-CMA secure under the discrete-log
assumption in the random-oracle model.
"""

from __future__ import annotations

from dataclasses import dataclass

from .group import Group


@dataclass(frozen=True)
class SchnorrSignature:
    """A Schnorr signature (R = g**k, s = k + c·sk)."""

    commitment: int  # R, a group element
    response: int  # s, a scalar

    def to_bytes(self, group: Group) -> bytes:
        return group.element_to_bytes(self.commitment) + self.response.to_bytes(
            group.scalar_width, "big"
        )


@dataclass(frozen=True)
class SchnorrKeyPair:
    """Secret/public key pair for one party."""

    secret: int
    public: int


def keygen(group: Group, rng) -> SchnorrKeyPair:
    """Generate a fresh key pair using the supplied RNG."""
    secret = group.random_scalar(rng)
    return SchnorrKeyPair(secret=secret, public=group.power_g(secret))


def _challenge(group: Group, public: int, commitment: int, message: bytes) -> int:
    return group.hash_to_scalar(
        "ICC/schnorr/challenge",
        group.element_to_bytes(public),
        group.element_to_bytes(commitment),
        message,
    )


def sign(group: Group, secret: int, message: bytes, rng) -> SchnorrSignature:
    """Sign ``message`` with the secret key.

    The nonce is drawn from ``rng``; for deterministic simulations callers
    pass a seeded RNG, which also makes test failures reproducible.
    """
    nonce = group.scalar_field.random_nonzero(rng)
    commitment = group.power_g(nonce)
    public = group.power_g(secret)
    c = _challenge(group, public, commitment, message)
    response = (nonce + c * secret) % group.q
    return SchnorrSignature(commitment=commitment, response=response)


def signature_from_bytes(group: Group, data: bytes) -> SchnorrSignature:
    """Decode a signature, admitting R via ``Group.element_from_bytes``.

    The subgroup check upholds the exponent-reduction invariant of
    :meth:`Group.power` for untrusted wire input.  Raises
    :class:`ValueError` on malformed or out-of-subgroup input.
    """
    p_width = group.element_width
    q_width = group.scalar_width
    if len(data) != p_width + q_width:
        raise ValueError(f"Schnorr signature encoding must be {p_width + q_width} bytes")
    commitment = group.element_from_bytes(data[:p_width])
    response = int.from_bytes(data[p_width:], "big")
    if not 0 <= response < group.q:
        raise ValueError("Schnorr response out of scalar range")
    return SchnorrSignature(commitment=commitment, response=response)
