"""Unified signer/verifier API over every signature scheme in the package.

Before this module, each scheme exposed its own free-function signature —
``schnorr.verify(group, public, msg, sig)`` vs ``threshold.verify(pk, msg,
sig)`` vs keyring methods — and callers had no batch entry point at all.
(Those free functions are gone now; this module is the only verification
surface.)  This module gives every scheme the same two-method verifier
surface:

    verify(pk, message, sig) -> bool
    verify_batch(items)      -> list[bool]      # items: (pk, message, sig)

plus ``verify_batch_report`` returning a :class:`BatchResult` with the
counters the ``crypto.batch_verify`` trace event wants.  All verifiers are
backed by the shared :class:`repro.crypto.fastpath.FastPath` context for
their group (fixed-base tables, membership/H2 caches, RLC batching), so
call sites never see the fast/slow split; the per-item oracles in
:mod:`repro.crypto.fastpath` remain the reference semantics.

The ``pk`` slot is whatever identifies the signer for that scheme: a bare
group element for Schnorr, a :class:`~repro.crypto.dleq.DleqStatement` for
raw DLEQ proofs (message is ignored — the statement is the message), and
the scheme public key (``ThresholdPublicKey`` / ``MultisigPublicKey``) for
shares and aggregates.

Obtain verifiers through :func:`verifiers_for` (one cached suite per
group).  The scheme modules keep keygen/sign/combine and their wire
formats; verification lives here, where batching can amortize it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Protocol, Sequence, runtime_checkable

from . import dleq, fastpath, multisig, schnorr, shamir, threshold, unique
from .backend import active_backend
from .dleq import DleqStatement
from .group import Group


# ---------------------------------------------------------------------------
# Batch reporting
# ---------------------------------------------------------------------------


@dataclass
class BatchStats:
    """Counters for one batch call, feeding ``crypto.batch_verify`` events.

    ``cache_hits``/``cache_misses`` are filled in by the keyring layer
    (its verification-result cache sits above the verifiers).
    """

    count: int = 0
    invalid: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    bisections: int = 0


@dataclass
class BatchResult:
    """Per-item verdicts plus the stats for the batch that produced them."""

    results: list[bool]
    stats: BatchStats

    def all_valid(self) -> bool:
        return all(self.results)


# ---------------------------------------------------------------------------
# Protocols
# ---------------------------------------------------------------------------


@runtime_checkable
class Signer(Protocol):
    """Uniform signing surface: one object per (scheme, key)."""

    def sign(self, message: bytes, rng) -> object: ...


@runtime_checkable
class Verifier(Protocol):
    """Uniform verification surface shared by every scheme."""

    def verify(self, pk, message: bytes, sig) -> bool: ...

    def verify_batch(self, items: Sequence[tuple]) -> list[bool]: ...


# ---------------------------------------------------------------------------
# Verifiers
# ---------------------------------------------------------------------------


class _BatchVerifier:
    """Shared plumbing: batch reports measured off the fastpath context."""

    def __init__(self, group: Group, ctx: fastpath.FastPath) -> None:
        self.group = group
        self.ctx = ctx

    def _verify_batch(self, items: list[tuple]) -> list[bool]:  # pragma: no cover
        raise NotImplementedError

    def verify_batch(self, items: Sequence[tuple]) -> list[bool]:
        return self._verify_batch(list(items))

    def verify_batch_report(self, items: Sequence[tuple]) -> BatchResult:
        items = list(items)
        before = self.ctx.stats.bisections
        results = self._verify_batch(items)
        stats = BatchStats(
            count=len(items),
            invalid=results.count(False),
            bisections=self.ctx.stats.bisections - before,
        )
        return BatchResult(results=results, stats=stats)


class SchnorrVerifier(_BatchVerifier):
    """``pk`` is the signer's public key (a group element)."""

    def verify(self, pk: int, message: bytes, sig: schnorr.SchnorrSignature) -> bool:
        group, ctx = self.group, self.ctx
        if not 0 <= sig.response < group.q:
            return False
        if not ctx.is_member(pk) or not ctx.is_member(sig.commitment):
            return False
        c = schnorr._challenge(group, pk, sig.commitment, message)
        return ctx.power_g(sig.response) == group.mul(sig.commitment, ctx.power_base(pk, c))

    def _verify_batch(self, items: list[tuple]) -> list[bool]:
        return fastpath.batch_verify_schnorr(self.ctx, items)


class DleqVerifier(_BatchVerifier):
    """``pk`` is the :class:`DleqStatement`; ``message`` is ignored."""

    def verify(self, pk: DleqStatement, message: bytes, sig: dleq.DleqProof) -> bool:
        group, ctx = self.group, self.ctx
        if not 0 <= sig.response < group.q:
            return False
        g1, a, g2, b = pk
        t1, t2 = sig.commitment1, sig.commitment2
        if not all(map(ctx.is_member, (g1, a, g2, b, t1, t2))):
            return False
        c = dleq._challenge(group, g1, a, g2, b, t1, t2)
        s = sig.response
        lhs1 = ctx.power_g(s) if g1 == group.g else group.power(g1, s)
        if lhs1 != group.mul(t1, ctx.power_base(a, c)):
            return False
        # Second equation g2**s == t2·B**c via Shamir's trick, rearranged to
        # g2**s · B**(-c) == t2 (B is a checked subgroup member, so the
        # negated exponent reduces mod q).
        return fastpath.simultaneous_power(group.p, g2, s, b, (-c) % group.q, ctx.backend) == t2

    def _verify_batch(self, items: list[tuple]) -> list[bool]:
        return fastpath.batch_verify_dleq(self.ctx, [(pk, sig) for pk, _, sig in items])


class UniqueVerifier(_BatchVerifier):
    """``pk`` is the signer's public key; H2(message) comes from the memo."""

    def __init__(self, group: Group, ctx: fastpath.FastPath, dleq_verifier: DleqVerifier) -> None:
        super().__init__(group, ctx)
        self._dleq = dleq_verifier

    def _statement(self, pk: int, message: bytes, sig: unique.UniqueSignature) -> DleqStatement:
        return DleqStatement(self.group.g, pk, self.ctx.message_point(message), sig.value)

    def verify(self, pk: int, message: bytes, sig: unique.UniqueSignature) -> bool:
        return self._dleq.verify(self._statement(pk, message, sig), b"", sig.proof)

    def _verify_batch(self, items: list[tuple]) -> list[bool]:
        ditems = [(self._statement(pk, m, sig), sig.proof) for pk, m, sig in items]
        return fastpath.batch_verify_dleq(self.ctx, ditems)


class ThresholdShareVerifier(_BatchVerifier):
    """``pk`` is the :class:`~repro.crypto.threshold.ThresholdPublicKey`."""

    def __init__(self, group: Group, ctx: fastpath.FastPath, dleq_verifier: DleqVerifier) -> None:
        super().__init__(group, ctx)
        self._dleq = dleq_verifier

    def _statement(self, pk, message: bytes, share) -> DleqStatement:
        return DleqStatement(
            self.group.g, pk.share_public(share.index), self.ctx.message_point(message), share.value
        )

    def verify(self, pk, message: bytes, share: threshold.SignatureShare) -> bool:
        if not 1 <= share.index <= pk.n:
            return False
        return self._dleq.verify(self._statement(pk, message, share), b"", share.proof)

    def _verify_batch(self, items: list[tuple]) -> list[bool]:
        results = [False] * len(items)
        live: list[int] = []
        ditems: list[tuple] = []
        for i, (pk, message, share) in enumerate(items):
            if not 1 <= share.index <= pk.n:
                continue
            ditems.append((self._statement(pk, message, share), share.proof))
            live.append(i)
        if ditems:
            for i, ok in zip(live, fastpath.batch_verify_dleq(self.ctx, ditems)):
                results[i] = ok
        return results


class ThresholdSignatureVerifier(_BatchVerifier):
    """Combined threshold signatures: batch-verifies the carried shares."""

    def __init__(
        self, group: Group, ctx: fastpath.FastPath, share_verifier: ThresholdShareVerifier
    ) -> None:
        super().__init__(group, ctx)
        self._shares = share_verifier

    def verify(self, pk, message: bytes, sig: threshold.ThresholdSignature) -> bool:
        return self._verify_batch([(pk, message, sig)])[0]

    def _verify_batch(self, items: list[tuple]) -> list[bool]:
        results = [False] * len(items)
        plan: list[tuple[int, object, list, int]] = []
        share_items: list[tuple] = []
        for i, (pk, message, sig) in enumerate(items):
            chosen = threshold._dedupe_by_index(list(sig.shares))
            if len(chosen) < pk.threshold:
                continue
            chosen = chosen[: pk.threshold]
            plan.append((i, pk, chosen, len(share_items)))
            share_items.extend((pk, message, s) for s in chosen)
        share_ok = self._shares._verify_batch(share_items) if share_items else []
        for i, pk, chosen, start in plan:
            if not all(share_ok[start : start + len(chosen)]):
                continue
            group = pk.group
            lams = shamir.lagrange_at_zero(group.scalar_field, [s.index for s in chosen])
            value = 1
            for lam, share in zip(lams, chosen):
                value = group.mul(value, group.power(share.value, lam))
            results[i] = value == items[i][2].value
        return results


class MultisigShareVerifier(_BatchVerifier):
    """``pk`` is the :class:`~repro.crypto.multisig.MultisigPublicKey`."""

    def __init__(
        self, group: Group, ctx: fastpath.FastPath, schnorr_verifier: SchnorrVerifier
    ) -> None:
        super().__init__(group, ctx)
        self._schnorr = schnorr_verifier

    def verify(self, pk, message: bytes, share: multisig.MultisigShare) -> bool:
        if not 1 <= share.index <= pk.n:
            return False
        return self._schnorr.verify(pk.public(share.index), message, share.signature)

    def _verify_batch(self, items: list[tuple]) -> list[bool]:
        results = [False] * len(items)
        live: list[int] = []
        sitems: list[tuple] = []
        for i, (pk, message, share) in enumerate(items):
            if not 1 <= share.index <= pk.n:
                continue
            sitems.append((pk.public(share.index), message, share.signature))
            live.append(i)
        if sitems:
            for i, ok in zip(live, fastpath.batch_verify_schnorr(self.ctx, sitems)):
                results[i] = ok
        return results


class MultisigVerifier(_BatchVerifier):
    """Aggregates: h distinct signatories and every carried share valid."""

    def __init__(
        self, group: Group, ctx: fastpath.FastPath, share_verifier: MultisigShareVerifier
    ) -> None:
        super().__init__(group, ctx)
        self._shares = share_verifier

    def verify(self, pk, message: bytes, sig: multisig.Multisignature) -> bool:
        return self._verify_batch([(pk, message, sig)])[0]

    def _verify_batch(self, items: list[tuple]) -> list[bool]:
        results = [False] * len(items)
        plan: list[tuple[int, int, int]] = []
        share_items: list[tuple] = []
        for i, (pk, message, sig) in enumerate(items):
            if len(set(sig.signatories)) < pk.threshold:
                continue
            plan.append((i, len(share_items), len(sig.shares)))
            share_items.extend((pk, message, s) for s in sig.shares)
        share_ok = self._shares._verify_batch(share_items) if share_items else []
        for i, start, count in plan:
            results[i] = all(share_ok[start : start + count])
        return results


# ---------------------------------------------------------------------------
# Signers
# ---------------------------------------------------------------------------
#
# Signers produce bit-identical outputs to the module-level sign functions
# (same RNG draws, same hash transcripts); they just reuse the fixed-base
# tables and precompute the public key instead of re-deriving it per call.


class SchnorrSigner:
    def __init__(self, group: Group, secret: int, ctx: fastpath.FastPath | None = None) -> None:
        self.group = group
        self.ctx = ctx or fastpath.for_group(group)
        self._secret = secret
        self.public = self.ctx.power_g(secret)

    def sign(self, message: bytes, rng) -> schnorr.SchnorrSignature:
        group = self.group
        nonce = group.scalar_field.random_nonzero(rng)
        commitment = self.ctx.power_g(nonce)
        c = schnorr._challenge(group, self.public, commitment, message)
        return schnorr.SchnorrSignature(
            commitment=commitment, response=(nonce + c * self._secret) % group.q
        )


class MultisigShareSigner:
    def __init__(self, pk: multisig.MultisigPublicKey, key: multisig.MultisigKeyShare,
                 ctx: fastpath.FastPath | None = None) -> None:
        self.index = key.index
        self._signer = SchnorrSigner(pk.group, key.secret, ctx)

    def sign(self, message: bytes, rng) -> multisig.MultisigShare:
        return multisig.MultisigShare(index=self.index, signature=self._signer.sign(message, rng))


class _DleqSigner:
    """Shared core for the two H2-based schemes (unique / threshold share)."""

    def __init__(self, group: Group, secret: int, ctx: fastpath.FastPath | None = None) -> None:
        self.group = group
        self.ctx = ctx or fastpath.for_group(group)
        self._secret = secret
        self.public = self.ctx.power_g(secret)

    def _sign_value(self, message: bytes, rng) -> tuple[int, dleq.DleqProof]:
        group, ctx = self.group, self.ctx
        h2 = ctx.message_point(message)
        value = group.power(h2, self._secret)
        nonce = group.scalar_field.random_nonzero(rng)
        t1 = ctx.power_g(nonce)
        t2 = group.power(h2, nonce)
        c = dleq._challenge(group, group.g, self.public, h2, value, t1, t2)
        s = (nonce + c * self._secret) % group.q
        return value, dleq.DleqProof(commitment1=t1, commitment2=t2, response=s)


class UniqueSigner(_DleqSigner):
    def sign(self, message: bytes, rng) -> unique.UniqueSignature:
        value, proof = self._sign_value(message, rng)
        return unique.UniqueSignature(value=value, proof=proof)


class ThresholdShareSigner(_DleqSigner):
    def __init__(self, pk: threshold.ThresholdPublicKey, key: threshold.ThresholdKeyShare,
                 ctx: fastpath.FastPath | None = None) -> None:
        super().__init__(pk.group, key.secret, ctx)
        self.index = key.index

    def sign(self, message: bytes, rng) -> threshold.SignatureShare:
        value, proof = self._sign_value(message, rng)
        return threshold.SignatureShare(index=self.index, value=value, proof=proof)


# ---------------------------------------------------------------------------
# Suite
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class VerifierSuite:
    """All verifiers for one group, sharing one fastpath context."""

    group: Group
    ctx: fastpath.FastPath
    schnorr: SchnorrVerifier
    dleq: DleqVerifier
    unique: UniqueVerifier
    threshold_share: ThresholdShareVerifier
    threshold: ThresholdSignatureVerifier
    multisig_share: MultisigShareVerifier
    multisig: MultisigVerifier


_SUITES: dict[tuple[int, int, int, str], VerifierSuite] = {}


def verifiers_for(group: Group) -> VerifierSuite:
    """The cached :class:`VerifierSuite` for ``group``.

    Keyed per (group, active crypto backend): under
    :func:`repro.crypto.backend.use_backend` each backend gets its own
    suite whose fastpath context was built by that backend, so per-backend
    benchmarks never share precomputations.
    """
    backend = active_backend()
    key = (group.p, group.q, group.g, backend.name)
    suite = _SUITES.get(key)
    if suite is None:
        ctx = fastpath.for_group(group, backend)
        schnorr_v = SchnorrVerifier(group, ctx)
        dleq_v = DleqVerifier(group, ctx)
        share_v = ThresholdShareVerifier(group, ctx, dleq_v)
        ms_share_v = MultisigShareVerifier(group, ctx, schnorr_v)
        suite = VerifierSuite(
            group=group,
            ctx=ctx,
            schnorr=schnorr_v,
            dleq=dleq_v,
            unique=UniqueVerifier(group, ctx, dleq_v),
            threshold_share=share_v,
            threshold=ThresholdSignatureVerifier(group, ctx, share_v),
            multisig_share=ms_share_v,
            multisig=MultisigVerifier(group, ctx, ms_share_v),
        )
        _SUITES[key] = suite
    return suite
