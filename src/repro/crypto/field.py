"""Prime-field arithmetic over Z_q.

Every discrete-log based primitive in this repository (Schnorr signatures,
DLEQ proofs, Shamir sharing, threshold signatures) works with scalars in the
field Z_q, where q is the (prime) order of the Schnorr group.  This module
provides the scalar type plus the primality machinery used to generate the
group parameters deterministically.
"""

from __future__ import annotations

from dataclasses import dataclass

# Deterministic Miller-Rabin bases.  For n < 3.3 * 10**24 the first 13 prime
# bases are a *proof* of primality; for larger n they give an error bound far
# below 2**-128 which is ample for deterministic parameter generation.
_MILLER_RABIN_BASES = (2, 3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41)

_SMALL_PRIMES = (
    3, 5, 7, 11, 13, 17, 19, 23, 29, 31, 37, 41, 43, 47, 53, 59, 61, 67, 71,
    73, 79, 83, 89, 97, 101, 103, 107, 109, 113, 127, 131, 137, 139, 149,
    151, 157, 163, 167, 173, 179, 181, 191, 193, 197, 199, 211, 223, 227,
    229, 233, 239, 241, 251,
)


def is_probable_prime(n: int) -> bool:
    """Miller-Rabin primality test with fixed bases (deterministic)."""
    if n < 2:
        return False
    for p in (2,) + _SMALL_PRIMES:
        if n == p:
            return True
        if n % p == 0:
            return False
    d = n - 1
    r = 0
    while d % 2 == 0:
        d //= 2
        r += 1
    for a in _MILLER_RABIN_BASES:
        x = pow(a, d, n)
        if x in (1, n - 1):
            continue
        for _ in range(r - 1):
            x = pow(x, 2, n)
            if x == n - 1:
                break
        else:
            return False
    return True


@dataclass(frozen=True)
class PrimeField:
    """The field Z_q for a prime modulus ``q``.

    Scalars are plain Python ints reduced modulo ``q``; the field object
    carries the modulus and provides the handful of operations the crypto
    layer needs.  Keeping scalars as ints (instead of wrapping each one in an
    object) keeps Lagrange interpolation and exponent arithmetic fast.
    """

    modulus: int

    def __post_init__(self) -> None:
        if not is_probable_prime(self.modulus):
            raise ValueError(f"field modulus {self.modulus} is not prime")

    def reduce(self, value: int) -> int:
        """Reduce an integer into canonical range [0, q)."""
        return value % self.modulus

    def add(self, a: int, b: int) -> int:
        return (a + b) % self.modulus

    def sub(self, a: int, b: int) -> int:
        return (a - b) % self.modulus

    def mul(self, a: int, b: int) -> int:
        return (a * b) % self.modulus

    def neg(self, a: int) -> int:
        return (-a) % self.modulus

    def inv(self, a: int) -> int:
        """Multiplicative inverse; raises ``ZeroDivisionError`` for 0."""
        a %= self.modulus
        if a == 0:
            raise ZeroDivisionError("0 has no inverse in a field")
        return pow(a, -1, self.modulus)

    def div(self, a: int, b: int) -> int:
        return self.mul(a, self.inv(b))

    def pow(self, a: int, e: int) -> int:
        return pow(a, e, self.modulus)

    def random(self, rng) -> int:
        """Uniform scalar in [0, q) from a ``random.Random``-like source."""
        return rng.randrange(self.modulus)

    def random_nonzero(self, rng) -> int:
        """Uniform scalar in [1, q)."""
        return rng.randrange(1, self.modulus)

    def eval_poly(self, coeffs: list[int], x: int) -> int:
        """Evaluate a polynomial (coefficients low-to-high) at ``x``."""
        acc = 0
        for c in reversed(coeffs):
            acc = (acc * x + c) % self.modulus
        return acc

    def lagrange_coefficients_at_zero(self, xs: list[int]) -> list[int]:
        """Lagrange basis coefficients λ_i with Σ λ_i·f(x_i) = f(0).

        ``xs`` must be distinct and non-zero modulo q.
        """
        q = self.modulus
        reduced = [x % q for x in xs]
        if len(set(reduced)) != len(reduced):
            raise ValueError("interpolation points must be distinct mod q")
        if any(x == 0 for x in reduced):
            raise ValueError("interpolation points must be non-zero mod q")
        coeffs = []
        for i, xi in enumerate(reduced):
            num = 1
            den = 1
            for j, xj in enumerate(reduced):
                if i == j:
                    continue
                num = (num * (-xj)) % q
                den = (den * (xi - xj)) % q
            coeffs.append((num * pow(den, -1, q)) % q)
        return coeffs
