"""Unique signatures: σ(m) = H2(m)**sk, verified with a DLEQ proof.

This is the pairing-free stand-in for BLS signatures (DESIGN.md §2).  The
*value* of a signature is fully determined by the message and the public key
— the property the random beacon needs (Section 2.3 of the paper: the scheme
"is required to provide unique signatures").  The accompanying DLEQ proof is
not unique, but it is carried alongside the value and never fed into the
beacon, so uniqueness of the beacon output is preserved.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import dleq
from .group import Group

_H2_TAG = "ICC/unique/h2"


@dataclass(frozen=True)
class UniqueSignature:
    """σ = H2(m)**sk plus the proof that it matches the public key."""

    value: int  # group element, the unique part
    proof: dleq.DleqProof


def message_point(group: Group, message: bytes) -> int:
    """H2(m): hash the message to a group element."""
    return group.hash_to_group(_H2_TAG, message)


def sign(group: Group, secret: int, message: bytes, rng) -> UniqueSignature:
    h2 = message_point(group, message)
    value = group.power(h2, secret)
    proof = dleq.prove(group, secret, group.g, h2, rng)
    return UniqueSignature(value=value, proof=proof)
