"""Content-addressed cache for deterministic crypto setup artifacts.

Building a cluster derives key material — Schnorr keygen for S_auth,
multisig keygen for S_notary/S_final, the trusted dealer or DKG for
S_beacon — entirely deterministically from ``(scheme, n, t, seed, group
parameters)``.  The experiment suite builds the *same* 13/40-node
clusters over and over; this module lets every build after the first
reuse one derivation instead of repeating it.

Two layers:

* **in-memory** — a plain dict per process; always consulted first.
* **on-disk** — one file per entry under a cache directory, shared
  between processes (the parallel runner's workers warm their in-memory
  layer from it in the pool initializer).  Entries are content-addressed:
  the file name is the SHA-256 of the canonical key encoding, and the
  file body is ``sha256(payload) || payload`` with ``payload`` a pickle
  of the derived object.  A corrupted, truncated or stale entry fails the
  hash (or unpickle) check and is **recomputed and rewritten, never
  trusted** — cache poisoning degrades to a cache miss.

Keys must be tuples of primitives (str/int/float/bool/None, nested
tuples) so their ``repr`` is canonical; :data:`FORMAT_VERSION` is mixed
into every digest, so a format bump invalidates all old entries at once.

Configuration:

* ``REPRO_NO_SETUP_CACHE=1`` disables the cache entirely (every ``get``
  derives from scratch) — the escape hatch when debugging suspected
  cache staleness.
* ``REPRO_SETUP_CACHE_DIR`` overrides the on-disk location (default
  ``$XDG_CACHE_HOME/repro/setup-cache`` or ``~/.cache/repro/setup-cache``).

See ``docs/PERFORMANCE.md`` for the operational story.
"""

from __future__ import annotations

import hashlib
import os
import pickle
from dataclasses import asdict, dataclass
from typing import Any, Callable

#: Bumping this invalidates every existing entry (new digests).
FORMAT_VERSION = 1

_PRIMITIVES = (str, int, float, bool, bytes, type(None))


@dataclass
class CacheStats:
    """Counters for one :class:`SetupCache` instance."""

    memory_hits: int = 0
    disk_hits: int = 0
    misses: int = 0
    disk_errors: int = 0
    warmed: int = 0

    def as_dict(self) -> dict:
        return asdict(self)


def _check_key(key: Any) -> None:
    if isinstance(key, tuple):
        for item in key:
            _check_key(item)
        return
    if not isinstance(key, _PRIMITIVES):
        raise TypeError(
            f"setup-cache keys must be tuples of primitives, got {type(key).__name__}"
        )


class SetupCache:
    """In-memory + optional on-disk cache for derived setup objects."""

    def __init__(self, directory: str | None = None, enabled: bool = True) -> None:
        self.directory = directory
        self.enabled = enabled
        self.stats = CacheStats()
        self._memory: dict[str, Any] = {}

    # -- keys --------------------------------------------------------------

    @staticmethod
    def digest(key: tuple) -> str:
        """Canonical content address for a key tuple."""
        _check_key(key)
        material = f"v{FORMAT_VERSION}|{key!r}".encode()
        return hashlib.sha256(material).hexdigest()

    # -- disk layer --------------------------------------------------------

    def _path(self, digest: str) -> str:
        assert self.directory is not None
        return os.path.join(self.directory, f"{digest}.setup")

    def _disk_load(self, digest: str) -> tuple[bool, Any]:
        """(found, value); hash/unpickle failures count as disk_errors."""
        if self.directory is None:
            return False, None
        path = self._path(digest)
        try:
            with open(path, "rb") as handle:
                blob = handle.read()
        except OSError:
            return False, None
        if len(blob) < 32 or hashlib.sha256(blob[32:]).digest() != blob[:32]:
            self.stats.disk_errors += 1
            return False, None
        try:
            return True, pickle.loads(blob[32:])
        except Exception:
            self.stats.disk_errors += 1
            return False, None

    def _disk_store(self, digest: str, value: Any) -> None:
        if self.directory is None:
            return
        try:
            os.makedirs(self.directory, exist_ok=True)
            payload = pickle.dumps(value, protocol=pickle.HIGHEST_PROTOCOL)
            path = self._path(digest)
            tmp = f"{path}.tmp.{os.getpid()}"
            with open(tmp, "wb") as handle:
                handle.write(hashlib.sha256(payload).digest() + payload)
            os.replace(tmp, path)  # atomic: concurrent workers race safely
        except (OSError, pickle.PicklingError):
            self.stats.disk_errors += 1

    # -- public API --------------------------------------------------------

    def get(self, key: tuple, derive: Callable[[], Any]) -> Any:
        """The cached object for ``key``, deriving (and storing) on miss."""
        if not self.enabled:
            self.stats.misses += 1
            return derive()
        digest = self.digest(key)
        if digest in self._memory:
            self.stats.memory_hits += 1
            return self._memory[digest]
        found, value = self._disk_load(digest)
        if found:
            self.stats.disk_hits += 1
            self._memory[digest] = value
            return value
        self.stats.misses += 1
        value = derive()
        self._memory[digest] = value
        self._disk_store(digest, value)
        return value

    def warm(self) -> int:
        """Preload every valid on-disk entry into memory; returns count."""
        if not self.enabled or self.directory is None:
            return 0
        try:
            names = sorted(os.listdir(self.directory))
        except OSError:
            return 0
        loaded = 0
        for name in names:
            if not name.endswith(".setup"):
                continue
            digest = name[: -len(".setup")]
            if digest in self._memory:
                continue
            found, value = self._disk_load(digest)
            if found:
                self._memory[digest] = value
                loaded += 1
        self.stats.warmed += loaded
        return loaded

    def clear_memory(self) -> None:
        self._memory.clear()

    def __len__(self) -> int:
        return len(self._memory)


# ------------------------------------------------------------ module default


def default_directory() -> str:
    """Resolve the on-disk location from the environment."""
    override = os.environ.get("REPRO_SETUP_CACHE_DIR")
    if override:
        return override
    base = os.environ.get("XDG_CACHE_HOME") or os.path.join(
        os.path.expanduser("~"), ".cache"
    )
    return os.path.join(base, "repro", "setup-cache")


_DEFAULT: SetupCache | None = None


def default_cache() -> SetupCache:
    """The process-wide cache, built lazily from the environment."""
    global _DEFAULT
    if _DEFAULT is None:
        disabled = os.environ.get("REPRO_NO_SETUP_CACHE", "") not in ("", "0")
        _DEFAULT = SetupCache(directory=default_directory(), enabled=not disabled)
    return _DEFAULT


def configure(directory: str | None, enabled: bool = True) -> SetupCache:
    """Replace the process-wide cache (pool initializers, tests)."""
    global _DEFAULT
    _DEFAULT = SetupCache(directory=directory, enabled=enabled)
    return _DEFAULT


def reset() -> None:
    """Drop the process-wide cache; the next use re-reads the environment."""
    global _DEFAULT
    _DEFAULT = None


def get_or_derive(key: tuple, derive: Callable[[], Any]) -> Any:
    """Convenience: :meth:`SetupCache.get` on the process-wide cache."""
    return default_cache().get(key, derive)
