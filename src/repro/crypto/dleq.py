"""Chaum–Pedersen DLEQ proofs (discrete-log equality).

A DLEQ proof convinces a verifier that two group elements share the same
discrete logarithm: given (g, A, h, B), the prover shows knowledge of x with
A = g**x and B = h**x, without revealing x.  Made non-interactive via
Fiat–Shamir.

These proofs are the verification mechanism for the *unique signature*
scheme in :mod:`repro.crypto.unique`: a signature share H2(m)**sk_i is
accompanied by a DLEQ proof against the share public key g**sk_i.  This is
the pairing-free substitute for BLS share verification (DESIGN.md §2).

Proofs are carried in *commitment form* (t1, t2, s) rather than the more
compact challenge form (c, s): with the commitments explicit, verification
is two group equations (g1**s == t1·A**c and g2**s == t2·B**c, with c
recomputed by hashing) that are linear in the exponent — exactly the shape
the random-linear-combination batch verifier in
:mod:`repro.crypto.fastpath` needs.  Challenge-form proofs would force the
verifier to reconstruct t1/t2 per proof, defeating batching.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import NamedTuple

from .group import Group


class DleqStatement(NamedTuple):
    """The statement (g1, A, g2, B): log_g1(A) == log_g2(B)."""

    g1: int
    a: int
    g2: int
    b: int


@dataclass(frozen=True)
class DleqProof:
    """Non-interactive proof that log_g1(A) == log_g2(B).

    ``commitment1``/``commitment2`` are the prover's nonce commitments
    t1 = g1**k, t2 = g2**k; ``response`` is s = k + c·x with the
    Fiat–Shamir challenge c = H(g1, A, g2, B, t1, t2).
    """

    commitment1: int  # t1, a group element
    commitment2: int  # t2, a group element
    response: int  # s, a scalar

    def to_bytes(self, group: Group) -> bytes:
        width = group.scalar_width
        return (
            group.element_to_bytes(self.commitment1)
            + group.element_to_bytes(self.commitment2)
            + self.response.to_bytes(width, "big")
        )


def proof_from_bytes(group: Group, data: bytes) -> DleqProof:
    """Decode a proof, admitting commitments via ``Group.decode_element``.

    The subgroup check here upholds the exponent-reduction invariant of
    :meth:`Group.power` for untrusted wire input (see DESIGN.md §2).
    Raises :class:`ValueError` on malformed or out-of-subgroup input.
    """
    p_width = group.element_width
    q_width = group.scalar_width
    if len(data) != 2 * p_width + q_width:
        raise ValueError(f"DLEQ proof encoding must be {2 * p_width + q_width} bytes")
    t1 = group.element_from_bytes(data[:p_width])
    t2 = group.element_from_bytes(data[p_width : 2 * p_width])
    s = int.from_bytes(data[2 * p_width :], "big")
    if not 0 <= s < group.q:
        raise ValueError("DLEQ response out of scalar range")
    return DleqProof(commitment1=t1, commitment2=t2, response=s)


def _challenge(group: Group, g1: int, a: int, g2: int, b: int, t1: int, t2: int) -> int:
    return group.hash_to_scalar(
        "ICC/dleq/challenge",
        *(group.element_to_bytes(x) for x in (g1, a, g2, b, t1, t2)),
    )


def prove(group: Group, secret: int, g1: int, g2: int, rng) -> DleqProof:
    """Prove that g1**secret and g2**secret share exponent ``secret``."""
    a = group.power(g1, secret)
    b = group.power(g2, secret)
    nonce = group.scalar_field.random_nonzero(rng)
    t1 = group.power(g1, nonce)
    t2 = group.power(g2, nonce)
    c = _challenge(group, g1, a, g2, b, t1, t2)
    s = (nonce + c * secret) % group.q
    return DleqProof(commitment1=t1, commitment2=t2, response=s)
