"""Chaum–Pedersen DLEQ proofs (discrete-log equality).

A DLEQ proof convinces a verifier that two group elements share the same
discrete logarithm: given (g, A, h, B), the prover shows knowledge of x with
A = g**x and B = h**x, without revealing x.  Made non-interactive via
Fiat–Shamir.

These proofs are the verification mechanism for the *unique signature*
scheme in :mod:`repro.crypto.unique`: a signature share H2(m)**sk_i is
accompanied by a DLEQ proof against the share public key g**sk_i.  This is
the pairing-free substitute for BLS share verification (DESIGN.md §2).
"""

from __future__ import annotations

from dataclasses import dataclass

from .group import Group


@dataclass(frozen=True)
class DleqProof:
    """Non-interactive proof that log_g(A) == log_h(B)."""

    challenge: int  # scalar c
    response: int  # scalar s

    def to_bytes(self, group: Group) -> bytes:
        width = (group.q.bit_length() + 7) // 8
        return self.challenge.to_bytes(width, "big") + self.response.to_bytes(width, "big")


def _challenge(group: Group, g1: int, a: int, g2: int, b: int, t1: int, t2: int) -> int:
    return group.hash_to_scalar(
        "ICC/dleq/challenge",
        *(group.element_to_bytes(x) for x in (g1, a, g2, b, t1, t2)),
    )


def prove(group: Group, secret: int, g1: int, g2: int, rng) -> DleqProof:
    """Prove that g1**secret and g2**secret share exponent ``secret``."""
    a = group.power(g1, secret)
    b = group.power(g2, secret)
    nonce = group.scalar_field.random_nonzero(rng)
    t1 = group.power(g1, nonce)
    t2 = group.power(g2, nonce)
    c = _challenge(group, g1, a, g2, b, t1, t2)
    s = (nonce + c * secret) % group.q
    return DleqProof(challenge=c, response=s)


def verify(group: Group, g1: int, a: int, g2: int, b: int, proof: DleqProof) -> bool:
    """Verify a DLEQ proof for the statement (g1, A=g1^x, g2, B=g2^x)."""
    for element in (g1, a, g2, b):
        if not group.is_element(element):
            return False
    if not (0 <= proof.challenge < group.q and 0 <= proof.response < group.q):
        return False
    # Recompute commitments: t1 = g1^s · A^-c, t2 = g2^s · B^-c.
    t1 = group.mul(group.power(g1, proof.response), group.power(a, -proof.challenge % group.q))
    t2 = group.mul(group.power(g2, proof.response), group.power(b, -proof.challenge % group.q))
    return _challenge(group, g1, a, g2, b, t1, t2) == proof.challenge
