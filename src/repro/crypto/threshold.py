"""(t, h, n)-threshold unique signatures — the paper's approach (iii).

A trusted dealer Shamir-shares a master secret key; each party can produce a
*signature share* on a message, and any ``h`` valid shares combine (via
Lagrange interpolation in the exponent) into the master signature
H2(m)**master_sk.  The combined value is **unique** — independent of which h
shares were used — which is exactly what the random beacon requires
(Section 2.3).

Share validity is proven with Chaum–Pedersen DLEQ proofs against the share
public keys, replacing the pairing check of BLS (DESIGN.md §2).  A combined
signature carries the contributing shares so that third parties can verify
it without pairings; the wire-size model elsewhere accounts for it as a
constant-size BLS signature, matching the production system.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field

from . import dleq, shamir
from .group import Group
from .unique import message_point


@dataclass(frozen=True)
class ThresholdPublicKey:
    """All public material for one scheme instance.

    ``threshold`` is h: the number of shares needed to combine.  ``n`` is
    the number of parties; share public keys are indexed 1..n (position i-1
    in the tuple).
    """

    group: Group
    threshold: int
    n: int
    master_public: int
    share_publics: tuple[int, ...]

    def share_public(self, index: int) -> int:
        """Public key for party ``index`` (1-based)."""
        return self.share_publics[index - 1]


@dataclass(frozen=True)
class ThresholdKeyShare:
    """One party's secret share (plus its index)."""

    index: int
    secret: int


@dataclass(frozen=True)
class SignatureShare:
    """A share H2(m)**sk_i with a DLEQ proof against g**sk_i."""

    index: int
    value: int
    proof: dleq.DleqProof


@dataclass(frozen=True)
class ThresholdSignature:
    """Combined signature: the unique value plus the shares that formed it.

    ``value`` is H2(m)**master_sk — identical no matter which h valid shares
    were combined.  ``shares`` lets a verifier check the signature without a
    pairing; equality of the recombination with ``value`` is the check.
    """

    value: int
    shares: tuple[SignatureShare, ...] = dc_field(default=())


def keygen(
    group: Group, threshold: int, n: int, rng
) -> tuple[ThresholdPublicKey, list[ThresholdKeyShare]]:
    """Trusted-dealer key generation.

    The paper notes approach (iii) requires "a trusted party or a secure
    distributed key generation protocol"; we implement the trusted dealer
    (the DKG is out of scope of the consensus protocol itself).
    """
    master_secret = group.random_scalar(rng)
    shares = shamir.deal(group.scalar_field, master_secret, threshold, n, rng)
    public = ThresholdPublicKey(
        group=group,
        threshold=threshold,
        n=n,
        master_public=group.power_g(master_secret),
        share_publics=tuple(group.power_g(s.value) for s in shares),
    )
    key_shares = [ThresholdKeyShare(index=s.index, secret=s.value) for s in shares]
    return public, key_shares


def sign_share(pk: ThresholdPublicKey, key: ThresholdKeyShare, message: bytes, rng) -> SignatureShare:
    """Produce party ``key.index``'s signature share on ``message``."""
    group = pk.group
    h2 = message_point(group, message)
    value = group.power(h2, key.secret)
    proof = dleq.prove(group, key.secret, group.g, h2, rng)
    return SignatureShare(index=key.index, value=value, proof=proof)


def combine(pk: ThresholdPublicKey, message: bytes, shares: list[SignatureShare]) -> ThresholdSignature:
    """Combine ``threshold`` valid shares into the master signature.

    Shares must be pre-verified (``verify_share``); invalid shares make the
    combination fail verification rather than raise here, matching how the
    protocol treats them (it only combines shares it has already validated).
    """
    chosen = _dedupe_by_index(shares)[: pk.threshold]
    if len(chosen) < pk.threshold:
        raise ValueError(
            f"need {pk.threshold} distinct shares to combine, got {len(chosen)}"
        )
    group = pk.group
    lams = shamir.lagrange_at_zero(group.scalar_field, [s.index for s in chosen])
    value = 1
    for lam, share in zip(lams, chosen):
        value = group.mul(value, group.power(share.value, lam))
    return ThresholdSignature(value=value, shares=tuple(chosen))


def signature_value_bytes(pk: ThresholdPublicKey, sig: ThresholdSignature) -> bytes:
    """Canonical byte encoding of the unique value (beacon input)."""
    return pk.group.element_to_bytes(sig.value)


def _dedupe_by_index(shares: list[SignatureShare]) -> list[SignatureShare]:
    seen: set[int] = set()
    out: list[SignatureShare] = []
    for share in shares:
        if share.index not in seen:
            seen.add(share.index)
            out.append(share)
    return out
