"""Crypto fast path: batch verification and fixed-base precomputation.

Every notarization/finalization/beacon share costs modular exponentiations,
and share verification dominates every experiment that runs the real
discrete-log backend.  This module is the amortization layer:

* **Random-linear-combination (RLC) batch verification** for Schnorr
  signatures and DLEQ proofs (and therefore for multisig and threshold
  signature shares, which are built from them).  n verification equations
  e_i are combined with small random coefficients r_i into a single check
  Π e_i^{r_i} == 1; a cheater passes with probability ≤ 2^-64 per
  coefficient draw.  A failing batch falls back to **bisection**: the batch
  is split in halves and re-checked recursively, isolating exactly the
  forged items at ~log₂(n) extra batch checks, so the batch path accepts
  precisely the items the per-item path accepts.
* **Fixed-base precomputation**: windowed (comb) tables for the generator
  ``g`` and long-lived public keys turn a full square-and-multiply
  exponentiation into ~⌈|q|/w⌉ table-lookup multiplications.
* **Shamir's trick** (:func:`simultaneous_power`) for the two-base products
  that appear in Schnorr/DLEQ equation checks.
* **Memoized hash-to-group** for the per-message H2 points that threshold
  share verification re-derives constantly, and a bounded
  subgroup-membership cache so long-lived elements (public keys) pay the
  p^q membership exponentiation once.

Soundness note: RLC batching is only sound over the prime-order subgroup —
an element with a component of small order outside the subgroup could slip
through a random combination with noticeable probability.  Every element is
therefore membership-checked (through the cache) before it enters a
combination; this is the same invariant :meth:`Group.power` documents, and
:meth:`Group.decode_element` enforces at deserialization.

Batch coefficients are derived by hashing the batch transcript
(Fiat–Shamir style) rather than drawn from an RNG: the simulator requires
bit-for-bit reproducible runs, and an adversary cannot anticipate the
coefficients without fixing its forgery first, which preserves the 2^-64
cheating bound.  The per-item functions (:func:`verify_schnorr_single`,
:func:`verify_dleq_single`) remain the correctness oracle: they use no
caches and no batching, and the property tests in
``tests/crypto/test_fastpath.py`` pin batch ⇔ per-item equivalence.

Call sites should not use this module directly — go through the unified
verifier API in :mod:`repro.crypto.api` (see docs/PERFORMANCE.md).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass
from typing import Callable, Sequence

from . import dleq, schnorr
from .backend import (
    DEFAULT_WINDOW,
    CryptoBackend,
    FixedBaseTable,  # noqa: F401 - re-exported; moved to repro.crypto.backend
    active_backend,
)
from .group import Group
from .hashing import tagged_hash
from .unique import message_point

_COEFF_TAG = "ICC/fastpath/batch-coeff"
_COEFF_BITS = 64


# ---------------------------------------------------------------------------
# Exponentiation primitives
# ---------------------------------------------------------------------------
#
# FixedBaseTable lives in repro.crypto.backend now (it is the substrate of
# the ``window`` backend); it is re-exported above for compatibility.


def multi_exp_small(
    p: int, pairs: list[tuple[int, int]], backend: CryptoBackend | None = None
) -> int:
    """Π base_i^{e_i} mod p via Straus interleaving (shared squarings).

    Designed for the *small* (64-bit) RLC coefficients: the squaring chain
    is walked once for the whole product, so per-item cost is just the
    multiplications for that item's set bits (~32 for a 64-bit exponent).
    Exponents must be non-negative.  The multiplication chain runs in the
    backend's native integer type (``mpz`` for gmpy2, ``int`` otherwise).
    """
    if not pairs:
        return 1
    if backend is None:
        backend = active_backend()
    wrap = backend.wrap
    pm = wrap(p)
    acc = wrap(1)
    pairs = [(wrap(base), e) for base, e in pairs]
    max_bits = max(e.bit_length() for _, e in pairs)
    for bit in range(max_bits - 1, -1, -1):
        acc = acc * acc % pm
        for base, e in pairs:
            if (e >> bit) & 1:
                acc = acc * base % pm
    return backend.unwrap(acc)


def simultaneous_power(
    p: int, b1: int, e1: int, b2: int, e2: int, backend: CryptoBackend | None = None
) -> int:
    """b1^e1 · b2^e2 mod p via Shamir's trick (one shared squaring chain).

    The two-base product at the heart of every Schnorr/DLEQ equation check;
    roughly halves the squarings of computing the two powers separately.
    """
    if backend is None:
        backend = active_backend()
    wrap = backend.wrap
    pm = wrap(p)
    b1 = wrap(b1)
    b2 = wrap(b2)
    b12 = b1 * b2 % pm
    acc = wrap(1)
    for bit in range(max(e1.bit_length(), e2.bit_length()) - 1, -1, -1):
        acc = acc * acc % pm
        pick = ((e1 >> bit) & 1) | (((e2 >> bit) & 1) << 1)
        if pick == 3:
            acc = acc * b12 % pm
        elif pick == 1:
            acc = acc * b1 % pm
        elif pick == 2:
            acc = acc * b2 % pm
    return backend.unwrap(acc)


# ---------------------------------------------------------------------------
# Per-group fast-path context
# ---------------------------------------------------------------------------


@dataclass
class FastPathStats:
    """Counters exposed for the ``crypto.batch_verify`` trace events."""

    batches: int = 0
    items: int = 0
    invalid: int = 0
    bisections: int = 0
    member_hits: int = 0
    member_misses: int = 0
    h2_hits: int = 0
    h2_misses: int = 0

    def snapshot(self) -> tuple[int, ...]:
        return (
            self.batches, self.items, self.invalid, self.bisections,
            self.member_hits, self.member_misses, self.h2_hits, self.h2_misses,
        )


class _BoundedCache(OrderedDict):
    """Tiny LRU: bounded ``OrderedDict`` evicting the least recently used."""

    def __init__(self, maxsize: int) -> None:
        super().__init__()
        self.maxsize = maxsize

    def touch(self, key) -> bool:
        if key in self:
            self.move_to_end(key)
            return True
        return False

    def put(self, key, value) -> None:
        self[key] = value
        self.move_to_end(key)
        if len(self) > self.maxsize:
            self.popitem(last=False)


class FastPath:
    """Per-group caches and precomputed tables for the verification fast path.

    One instance per :class:`Group` (see :func:`for_group`); it is shared by
    every verifier over that group, so public-key tables and membership
    results amortize across parties, rounds and schemes.
    """

    def __init__(
        self,
        group: Group,
        *,
        backend: CryptoBackend | None = None,
        window: int = DEFAULT_WINDOW,
        table_cache: int = 512,
        member_cache: int = 65536,
        h2_cache: int = 4096,
    ) -> None:
        self.group = group
        self.backend = backend if backend is not None else active_backend()
        self.stats = FastPathStats()
        self._window = window
        q_bits = group.q.bit_length()
        self._power_g = self.backend.fixed_power(group.g, group.p, q_bits, window)
        self._tables: _BoundedCache = _BoundedCache(table_cache)
        self._members: _BoundedCache = _BoundedCache(member_cache)
        self._members.put(group.g, None)
        self._members.put(1, None)
        self._h2: _BoundedCache = _BoundedCache(h2_cache)

    # -- membership (cached Group.is_element) ------------------------------

    def is_member(self, a: int) -> bool:
        """Subgroup membership with a bounded positive-result cache."""
        if self._members.touch(a):
            self.stats.member_hits += 1
            return True
        self.stats.member_misses += 1
        group = self.group
        if 1 <= a < group.p and self.backend.powmod(a, group.q, group.p) == 1:
            self._members.put(a, None)
            return True
        return False

    # -- fixed-base exponentiation ----------------------------------------

    def power_g(self, exponent: int) -> int:
        """g**exponent via the backend's precomputed fixed-base slot."""
        return self._power_g(exponent % self.group.q)

    def power_base(self, base: int, exponent: int) -> int:
        """base**exponent via a cached per-base fixed-power callable.

        Intended for long-lived bases (public keys, per-message H2 points);
        the first call builds the backend's precomputation (a comb table
        for ``window``, a bare closure for ``pure``), later calls amortize
        it.  The caller must guarantee ``base`` is a subgroup member
        (exponent is reduced mod q).
        """
        power = self._tables.get(base)
        if power is None:
            power = self.backend.fixed_power(
                base, self.group.p, self.group.q.bit_length(), self._window
            )
            self._tables.put(base, power)
        else:
            self._tables.touch(base)
        return power(exponent % self.group.q)

    def warm_bases(self, bases) -> int:
        """Pre-build fixed-base precomputations for long-lived bases.

        Batch-auth hook for the load pipeline: client public keys are
        known before traffic starts, so building their tables up front
        moves the one-time cost out of the first verification batch (and
        out of its latency measurement).  Bases beyond the table cache's
        LRU capacity are skipped rather than evicting hot entries.
        Returns the number of precomputations built.
        """
        built = 0
        for base in bases:
            if len(self._tables) >= self._tables.maxsize:
                break
            if self._tables.touch(base):
                continue
            self._tables.put(
                base,
                self.backend.fixed_power(
                    base, self.group.p, self.group.q.bit_length(), self._window
                ),
            )
            built += 1
        return built

    # -- memoized hash-to-group -------------------------------------------

    def message_point(self, message: bytes) -> int:
        """Memoized H2(m) (see :func:`repro.crypto.unique.message_point`)."""
        point = self._h2.get(message)
        if point is not None:
            self._h2.touch(message)
            self.stats.h2_hits += 1
            return point
        self.stats.h2_misses += 1
        point = message_point(self.group, message)
        self._h2.put(message, point)
        self._members.put(point, None)  # cofactor construction => member
        return point


_CONTEXTS: dict[tuple[int, int, int, str], FastPath] = {}


def for_group(group: Group, backend: CryptoBackend | None = None) -> FastPath:
    """The shared :class:`FastPath` context for ``group`` under a backend.

    One context per (group, backend) pair: switching backends with
    :func:`repro.crypto.backend.use_backend` transparently switches to a
    context whose precomputations were built by that backend, so cached
    tables never leak across strategies being benchmarked against each
    other.
    """
    if backend is None:
        backend = active_backend()
    key = (group.p, group.q, group.g, backend.name)
    ctx = _CONTEXTS.get(key)
    if ctx is None:
        ctx = _CONTEXTS[key] = FastPath(group, backend=backend)
    return ctx


# ---------------------------------------------------------------------------
# Per-item correctness oracles
# ---------------------------------------------------------------------------
#
# These are the reference semantics for the batch path: no caches, no
# precomputation, no shared state.  batch_verify_* must accept exactly the
# items these accept (pinned by tests/crypto/test_fastpath.py).


def verify_schnorr_single(
    group: Group, public: int, message: bytes, signature: schnorr.SchnorrSignature
) -> bool:
    """Exact per-item Schnorr check: g**s == R · pk**c."""
    if not 0 <= signature.response < group.q:
        return False
    if not group.is_element(public) or not group.is_element(signature.commitment):
        return False
    c = schnorr._challenge(group, public, signature.commitment, message)
    lhs = group.power_g(signature.response)
    rhs = group.mul(signature.commitment, group.power(public, c))
    return lhs == rhs


def verify_dleq_single(
    group: Group, statement: dleq.DleqStatement, proof: dleq.DleqProof
) -> bool:
    """Exact per-item DLEQ check: g1**s == t1·A**c and g2**s == t2·B**c."""
    if not 0 <= proof.response < group.q:
        return False
    g1, a, g2, b = statement
    t1, t2 = proof.commitment1, proof.commitment2
    for x in (g1, a, g2, b, t1, t2):
        if not group.is_element(x):
            return False
    c = dleq._challenge(group, g1, a, g2, b, t1, t2)
    s = proof.response
    if group.power(g1, s) != group.mul(t1, group.power(a, c)):
        return False
    return group.power(g2, s) == group.mul(t2, group.power(b, c))


# ---------------------------------------------------------------------------
# Batch verification (RLC + bisection fallback)
# ---------------------------------------------------------------------------


def _coefficients(digest: bytes, indices: Sequence[int], depth: int) -> list[int]:
    """Nonzero 64-bit RLC coefficients for one (sub)batch.

    Derived by hashing the batch transcript digest together with the subset
    being checked and the bisection depth, so every bisection subset gets
    fresh, independent coefficients (a forged pair that cancelled once does
    not cancel again) while runs stay bit-for-bit reproducible.
    """
    subset = b"".join(i.to_bytes(4, "big") for i in indices)
    out: list[int] = []
    counter = 0
    while len(out) < 2 * len(indices):  # enough for two equations per item
        block = tagged_hash(
            _COEFF_TAG, digest, depth.to_bytes(4, "big"), counter.to_bytes(4, "big"), subset
        )
        for off in range(0, len(block) - 7, 8):
            r = int.from_bytes(block[off : off + 8], "big")
            out.append(r or 1)
        counter += 1
    return out


def _resolve(
    indices: list[int],
    depth: int,
    results: list[bool],
    combined: Callable[[list[int], int], bool],
    single: Callable[[int], bool],
    stats: FastPathStats,
) -> None:
    """Bisection driver: accept whole subsets, isolate failures exactly.

    A passing combined check accepts every index in the subset; a failing
    one splits in half (fresh coefficients on each side).  Size-1 subsets
    are decided by the exact per-item oracle, so the final ``results`` match
    the per-item path bit for bit.
    """
    if len(indices) == 1:
        results[indices[0]] = single(indices[0])
        return
    if combined(indices, depth):
        for i in indices:
            results[i] = True
        return
    stats.bisections += 1
    mid = len(indices) // 2
    _resolve(indices[:mid], depth + 1, results, combined, single, stats)
    _resolve(indices[mid:], depth + 1, results, combined, single, stats)


def batch_verify_schnorr(
    ctx: FastPath, items: Sequence[tuple[int, bytes, schnorr.SchnorrSignature]]
) -> list[bool]:
    """Batch-verify (public, message, signature) triples.

    Combines the n equations g**s_i == R_i · pk_i**c_i with random 64-bit
    coefficients r_i into one check

        g**(Σ r_i·s_i)  ==  Π R_i**r_i · Π pk_i**(r_i·c_i)

    using the generator's fixed-base table for the left side, Straus
    multi-exponentiation for the small-exponent R_i terms, and per-key
    fixed-base tables (exponents aggregated per distinct key) on the right.
    """
    group = ctx.group
    p, q = group.p, group.q
    n = len(items)
    results = [False] * n
    ctx.stats.batches += 1
    ctx.stats.items += n

    data: dict[int, tuple[int, int, int, int]] = {}  # index -> (pk, R, s, c)
    parts: list[bytes] = []
    for i, (pk, message, sig) in enumerate(items):
        if not 0 <= sig.response < q:
            continue
        if not ctx.is_member(pk) or not ctx.is_member(sig.commitment):
            continue
        c = schnorr._challenge(group, pk, sig.commitment, message)
        data[i] = (pk, sig.commitment, sig.response, c)
        parts.append(group.element_to_bytes(pk) + sig.to_bytes(group) + message)
    live = sorted(data)
    if live:
        digest = tagged_hash(_COEFF_TAG, b"schnorr", *parts)

        def combined(indices: list[int], depth: int) -> bool:
            coeffs = _coefficients(digest, indices, depth)
            s_acc = 0
            small: list[tuple[int, int]] = []
            per_key: dict[int, int] = {}
            for r, i in zip(coeffs, indices):
                pk, commitment, s, c = data[i]
                s_acc = (s_acc + r * s) % q
                small.append((commitment, r))
                per_key[pk] = (per_key.get(pk, 0) + r * c) % q
            rhs = multi_exp_small(p, small, ctx.backend)
            for pk, e in per_key.items():
                rhs = rhs * ctx.power_base(pk, e) % p
            return ctx.power_g(s_acc) == rhs

        def single(i: int) -> bool:
            pk, _, _, _ = data[i]
            return verify_schnorr_single(group, pk, items[i][1], items[i][2])

        _resolve(live, 0, results, combined, single, ctx.stats)
    ctx.stats.invalid += results.count(False)
    return results


def batch_verify_dleq(
    ctx: FastPath, items: Sequence[tuple[dleq.DleqStatement, dleq.DleqProof]]
) -> list[bool]:
    """Batch-verify (statement, proof) pairs.

    Each proof contributes two equations (one per base), each weighted by
    its own random coefficient.  Statement bases g1/A are treated as
    long-lived (g1 is almost always the generator; A is a public key) and
    exponentiated through fixed-base tables with exponents aggregated per
    distinct base; g2/B aggregate into plain ``pow`` calls (g2 — the H2
    point — is shared by every share on the same message, so it costs one
    exponentiation per message, and B is ephemeral); the commitments t1/t2
    keep their small 64-bit coefficients and go through Straus.
    """
    group = ctx.group
    p, q, g = group.p, group.q, group.g
    n = len(items)
    results = [False] * n
    ctx.stats.batches += 1
    ctx.stats.items += n

    data: dict[int, tuple[dleq.DleqStatement, dleq.DleqProof, int]] = {}
    parts: list[bytes] = []
    tabled: set[int] = set()  # bases worth a fixed-base table
    for i, (statement, proof) in enumerate(items):
        if not 0 <= proof.response < q:
            continue
        g1, a, g2, b = statement
        if not all(map(ctx.is_member, (g1, a, g2, b, proof.commitment1, proof.commitment2))):
            continue
        c = dleq._challenge(group, g1, a, g2, b, proof.commitment1, proof.commitment2)
        data[i] = (statement, proof, c)
        tabled.add(g1)
        tabled.add(a)
        parts.append(
            b"".join(group.element_to_bytes(x) for x in statement) + proof.to_bytes(group)
        )
    live = sorted(data)
    if live:
        digest = tagged_hash(_COEFF_TAG, b"dleq", *parts)

        def combined(indices: list[int], depth: int) -> bool:
            coeffs = _coefficients(digest, indices, depth)
            small: list[tuple[int, int]] = []
            lhs_exp: dict[int, int] = {}  # base -> Σ coeff·s
            rhs_exp: dict[int, int] = {}  # base -> Σ coeff·c
            for k, i in enumerate(indices):
                (g1, a, g2, b), proof, c = data[i]
                u, v = coeffs[2 * k], coeffs[2 * k + 1]
                s = proof.response
                lhs_exp[g1] = (lhs_exp.get(g1, 0) + u * s) % q
                lhs_exp[g2] = (lhs_exp.get(g2, 0) + v * s) % q
                rhs_exp[a] = (rhs_exp.get(a, 0) + u * c) % q
                rhs_exp[b] = (rhs_exp.get(b, 0) + v * c) % q
                small.append((proof.commitment1, u))
                small.append((proof.commitment2, v))

            def powered(base: int, e: int) -> int:
                if base == g:
                    return ctx.power_g(e)
                if base in tabled:
                    return ctx.power_base(base, e)
                return ctx.backend.powmod(base, e, p)

            lhs = 1
            for base, e in lhs_exp.items():
                lhs = lhs * powered(base, e) % p
            rhs = multi_exp_small(p, small, ctx.backend)
            for base, e in rhs_exp.items():
                rhs = rhs * powered(base, e) % p
            return lhs == rhs

        def single(i: int) -> bool:
            statement, proof, _ = data[i]
            return verify_dleq_single(group, statement, proof)

        _resolve(live, 0, results, combined, single, ctx.stats)
    ctx.stats.invalid += results.count(False)
    return results
