"""Collision-resistant hashing (Section 2.1 of the paper).

The ICC protocols use a collision-resistant hash function ``H`` for chaining
blocks (each block carries ``H(parent)``) and inside every signature scheme.
We use SHA-256 with explicit domain separation: every use site supplies a
short ASCII *tag* so that hashes computed for one purpose can never collide
with hashes computed for another (e.g. a block hash can never be reused as a
beacon input).
"""

from __future__ import annotations

import hashlib
from typing import Iterable

#: Size of a hash output in bytes (used by the wire-size model as well).
DIGEST_SIZE = 32


def hash_bytes(data: bytes) -> bytes:
    """Plain SHA-256 of ``data``."""
    return hashlib.sha256(data).digest()


def tagged_hash(tag: str, *parts: bytes) -> bytes:
    """Domain-separated hash of ``parts``.

    The encoding is unambiguous: each part is prefixed with its 8-byte
    big-endian length, and the tag itself is hashed first (the BIP-340
    construction), so distinct ``(tag, parts)`` tuples can only collide if
    SHA-256 itself is broken.
    """
    tag_digest = hashlib.sha256(tag.encode("ascii")).digest()
    h = hashlib.sha256()
    h.update(tag_digest)
    h.update(tag_digest)
    for part in parts:
        h.update(len(part).to_bytes(8, "big"))
        h.update(part)
    return h.digest()


def hash_to_int(tag: str, *parts: bytes) -> int:
    """Hash ``parts`` into a non-negative integer < 2**256."""
    return int.from_bytes(tagged_hash(tag, *parts), "big")


def hash_many(tag: str, items: Iterable[bytes]) -> bytes:
    """Hash an iterable of byte strings with the same unambiguous encoding."""
    return tagged_hash(tag, *items)


def int_to_bytes(value: int) -> bytes:
    """Minimal-length big-endian encoding of a non-negative integer."""
    if value < 0:
        raise ValueError("only non-negative integers can be encoded")
    length = max(1, (value.bit_length() + 7) // 8)
    return value.to_bytes(length, "big")
