"""Multi-signatures — the paper's approach (ii), used for S_notary and S_final.

The paper instantiates notarizations and finalizations with BLS
multi-signatures (h = n - t): each party's signature share is an ordinary
signature, and shares aggregate into one object that *identifies the
signatories*.  We realise the same interface with Schnorr signatures: a
share is a Schnorr signature, and the aggregate is the set of shares plus
the signatory descriptor.  The wire-size model (repro.core.messages) charges
the aggregate as a constant-size BLS multi-signature plus an n-bit bitmap,
matching the production system's traffic.

No trusted setup is required (a property the paper highlights for
approaches (i)/(ii)): each party simply has an independent key pair.
"""

from __future__ import annotations

from dataclasses import dataclass

from . import schnorr
from .group import Group


@dataclass(frozen=True)
class MultisigPublicKey:
    """Public keys of all n parties plus the aggregation threshold h."""

    group: Group
    threshold: int  # h: number of distinct signatories needed
    n: int
    publics: tuple[int, ...]

    def public(self, index: int) -> int:
        """Public key of party ``index`` (1-based)."""
        return self.publics[index - 1]


@dataclass(frozen=True)
class MultisigKeyShare:
    index: int
    secret: int


@dataclass(frozen=True)
class MultisigShare:
    """One party's signature share on a message."""

    index: int
    signature: schnorr.SchnorrSignature


@dataclass(frozen=True)
class Multisignature:
    """Aggregate of >= h shares; ``signatories`` is the descriptor."""

    shares: tuple[MultisigShare, ...]

    @property
    def signatories(self) -> tuple[int, ...]:
        return tuple(s.index for s in self.shares)


def keygen(group: Group, threshold: int, n: int, rng) -> tuple[MultisigPublicKey, list[MultisigKeyShare]]:
    """Independent per-party key generation (no trusted dealer needed)."""
    pairs = [schnorr.keygen(group, rng) for _ in range(n)]
    pk = MultisigPublicKey(
        group=group,
        threshold=threshold,
        n=n,
        publics=tuple(p.public for p in pairs),
    )
    keys = [MultisigKeyShare(index=i + 1, secret=p.secret) for i, p in enumerate(pairs)]
    return pk, keys


def sign_share(pk: MultisigPublicKey, key: MultisigKeyShare, message: bytes, rng) -> MultisigShare:
    return MultisigShare(index=key.index, signature=schnorr.sign(pk.group, key.secret, message, rng))


def combine(pk: MultisigPublicKey, message: bytes, shares: list[MultisigShare]) -> Multisignature:
    """Aggregate h distinct valid shares into a multi-signature."""
    seen: set[int] = set()
    chosen: list[MultisigShare] = []
    for share in shares:
        if share.index not in seen:
            seen.add(share.index)
            chosen.append(share)
        if len(chosen) == pk.threshold:
            break
    if len(chosen) < pk.threshold:
        raise ValueError(f"need {pk.threshold} distinct shares, got {len(chosen)}")
    return Multisignature(shares=tuple(chosen))
