"""Cryptographic substrate for the ICC reproduction.

Implements every primitive from Section 2 of the paper: collision-resistant
hashing, digital signatures (Schnorr), (t, h, n)-threshold signatures in both
the multi-signature flavour (approach ii) and the unique Shamir-shared
flavour (approach iii), and the random-beacon machinery built on the latter.
See DESIGN.md §2 for the BLS → DLEQ substitution rationale.
"""

from . import api, backend, fastpath
from .backend import available_backends, use_backend
from .dkg import DkgResult, run_dkg
from .group import Group, default_group, generate_group, strong_group, test_group
from .hashing import DIGEST_SIZE, hash_bytes, tagged_hash
from .keyring import FastKeyring, Keyring, RealKeyring, generate_keyrings
from .resharing import ResharingError, reshare

__all__ = [
    "api",
    "backend",
    "fastpath",
    "available_backends",
    "use_backend",
    "DkgResult",
    "run_dkg",
    "ResharingError",
    "reshare",
    "Group",
    "default_group",
    "generate_group",
    "strong_group",
    "test_group",
    "DIGEST_SIZE",
    "hash_bytes",
    "tagged_hash",
    "Keyring",
    "FastKeyring",
    "RealKeyring",
    "generate_keyrings",
]
