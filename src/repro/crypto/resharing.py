"""Proactive resharing of the threshold (beacon) key.

Section 5 lists "the periodic cryptographic key resharing scheme" among
the Internet Computer's standing traffic.  Resharing refreshes every
party's share of the S_beacon key *without changing the public key*:
after a resharing epoch, old shares are useless to an attacker (who must
now corrupt t+1 parties within one epoch — the point of proactive secret
sharing, Herzberg et al.), yet signatures remain verifiable against the
same master public key and the beacon chain continues seamlessly.

Protocol (the classic Feldman-committed share-of-shares construction):

1. each party j in a chosen set Q of h = t+1 *contributors* deals a fresh
   degree-(h-1) sharing of its own share x_j — commitments A_{j,k} with
   A_{j,0} = g^{x_j}, which everyone can check against the share public
   key on record (a contributor cannot lie about its share);
2. shares from dealers whose commitments don't match the record, or whose
   private shares fail Feldman verification, are discarded (and the
   dealer with them — with |Q| > t a qualified subset always survives...
   here we surface the failure to the caller, who re-runs with a
   different contributor set, mirroring how the IC retries resharing);
3. party k's new share is x'_k = Σ_{j∈Q} λ_j · s_{j→k}, where λ_j are the
   Lagrange coefficients of Q at 0 — a valid sharing of
   Σ λ_j·x_j = x, the unchanged master secret;
4. all new share public keys are computable from the commitments, so the
   new :class:`~repro.crypto.threshold.ThresholdPublicKey` needs no
   further interaction.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .dkg import _commitment_eval, _eval_poly
from .group import Group
from .shamir import lagrange_at_zero
from .threshold import ThresholdKeyShare, ThresholdPublicKey


@dataclass(frozen=True)
class ReshareDeal:
    """Contributor j's re-sharing of its own share x_j."""

    dealer: int
    commitments: tuple[int, ...]  # A_k = g^{a_k}; A_0 must equal g^{x_j}
    shares: tuple[int, ...]  # s_{j -> k} for k = 1..n


#: Test hook mirroring dkg.DealTamper.
ReshareTamper = Callable[[ReshareDeal], ReshareDeal]


class ResharingError(RuntimeError):
    """Raised when a contributor misbehaves; re-run with honest contributors."""


def make_reshare_deal(
    group: Group, key: ThresholdKeyShare, h: int, n: int, rng
) -> ReshareDeal:
    """Honest contributor: deal a fresh sharing of our own share."""
    coefficients = [key.secret] + [group.random_scalar(rng) for _ in range(h - 1)]
    commitments = tuple(group.power_g(a) for a in coefficients)
    shares = tuple(_eval_poly(group, coefficients, k) for k in range(1, n + 1))
    return ReshareDeal(dealer=key.index, commitments=commitments, shares=shares)


def verify_reshare_deal(
    group: Group, public: ThresholdPublicKey, deal: ReshareDeal
) -> bool:
    """Check a contributor's deal against the on-record share public key."""
    if len(deal.commitments) != public.threshold or len(deal.shares) != public.n:
        return False
    if not 1 <= deal.dealer <= public.n:
        return False
    # The constant term must commit to the dealer's registered share.
    if deal.commitments[0] != public.share_public(deal.dealer):
        return False
    return all(
        group.power_g(deal.shares[k - 1])
        == _commitment_eval(group, deal.commitments, k)
        for k in range(1, public.n + 1)
    )


def reshare(
    group: Group,
    public: ThresholdPublicKey,
    contributor_keys: list[ThresholdKeyShare],
    rng,
    tamper: dict[int, ReshareTamper] | None = None,
) -> tuple[ThresholdPublicKey, list[ThresholdKeyShare]]:
    """Run one resharing epoch with the given h contributors.

    Returns the refreshed public key (same ``master_public``) and every
    party's new key share.  Raises :class:`ResharingError` if any
    contributor's deal fails verification — proactive resharing restarts
    with a different contributor set in that case (there are C(n-t, h)
    all-honest sets to choose from).
    """
    h, n = public.threshold, public.n
    if len({k.index for k in contributor_keys}) != h:
        raise ValueError(f"need exactly {h} distinct contributors")
    tamper = tamper or {}

    deals = []
    for key in contributor_keys:
        deal = make_reshare_deal(group, key, h, n, rng)
        mutate = tamper.get(key.index)
        if mutate is not None:
            deal = mutate(deal)
        if not verify_reshare_deal(group, public, deal):
            raise ResharingError(f"contributor {key.index} produced a bad deal")
        deals.append(deal)

    indices = [d.dealer for d in deals]
    lams = lagrange_at_zero(group.scalar_field, indices)

    new_keys = []
    for k in range(1, n + 1):
        secret = 0
        for lam, deal in zip(lams, deals):
            secret = (secret + lam * deal.shares[k - 1]) % group.q
        new_keys.append(ThresholdKeyShare(index=k, secret=secret))

    new_share_publics = []
    for k in range(1, n + 1):
        acc = 1
        for lam, deal in zip(lams, deals):
            acc = group.mul(acc, group.power(_commitment_eval(group, deal.commitments, k), lam))
        new_share_publics.append(acc)

    new_public = ThresholdPublicKey(
        group=group,
        threshold=h,
        n=n,
        master_public=public.master_public,  # unchanged, by construction
        share_publics=tuple(new_share_publics),
    )
    return new_public, new_keys


def resharing_traffic_bytes(n: int, share_size: int = 48, commitment_size: int = 48) -> int:
    """Wire bytes one resharing epoch costs (the Table 1 overhead term):
    each of t+1 contributors broadcasts h commitments and sends n private
    shares."""
    h = (n - 1) // 3 + 1
    return h * (h * commitment_size + n * share_size)
