"""Shamir secret sharing over Z_q (Section 2.3, approach (iii)).

A dealer splits a secret s into n shares such that any t+1 shares
reconstruct s while t shares reveal nothing.  Party indices are 1..n (the
evaluation points); index 0 is the secret itself.

The threshold-signature scheme in :mod:`repro.crypto.threshold` shares the
signing key with this module and combines signature *shares* via the same
Lagrange coefficients, evaluated "in the exponent".
"""

from __future__ import annotations

from dataclasses import dataclass

from .field import PrimeField


@dataclass(frozen=True)
class Share:
    """One party's share: the evaluation f(index) of the dealer polynomial."""

    index: int  # 1-based party index (the x-coordinate)
    value: int  # f(index) in Z_q


def deal(field: PrimeField, secret: int, threshold: int, n: int, rng) -> list[Share]:
    """Split ``secret`` into ``n`` shares with reconstruction threshold ``threshold``.

    ``threshold`` is the number of shares *required* to reconstruct (i.e.
    the polynomial degree is threshold-1).  Any fewer shares are
    information-theoretically independent of the secret.
    """
    if not 1 <= threshold <= n:
        raise ValueError("need 1 <= threshold <= n")
    if n >= field.modulus:
        raise ValueError("field too small for this many shares")
    coeffs = [secret % field.modulus]
    coeffs.extend(field.random(rng) for _ in range(threshold - 1))
    return [Share(index=i, value=field.eval_poly(coeffs, i)) for i in range(1, n + 1)]


def reconstruct(field: PrimeField, shares: list[Share]) -> int:
    """Recover the secret f(0) from a list of shares.

    The caller is responsible for passing at least ``threshold`` *distinct*
    shares; with fewer shares the result is garbage (by design — Shamir
    sharing cannot detect that).
    """
    if not shares:
        raise ValueError("cannot reconstruct from zero shares")
    xs = [s.index for s in shares]
    lams = field.lagrange_coefficients_at_zero(xs)
    acc = 0
    for lam, share in zip(lams, shares):
        acc = (acc + lam * share.value) % field.modulus
    return acc


def lagrange_at_zero(field: PrimeField, indices: list[int]) -> list[int]:
    """Expose the Lagrange coefficients for combination in the exponent."""
    return field.lagrange_coefficients_at_zero(indices)
