"""Pluggable modular-exponentiation backends for the discrete-log substrate.

Profiling (see ``python -m repro profile`` and docs/PERFORMANCE.md) shows
that at realistic group sizes nearly all crypto wall-clock time is modular
exponentiation.  This module makes the modexp primitive a *selectable
backend* so optimizations land as alternatives that can be benchmarked
against each other on the same inputs, instead of one-way rewrites:

* ``pure``   — the reference implementation: Python's built-in ``pow``
  for every exponentiation, no precomputation, no caches.  This is the
  baseline every other backend is benchmarked against.
* ``window`` — fixed-window (comb) precomputation for long-lived bases.
  Repeated exponentiations of the same base (the generator ``g``, public
  keys, H2 points) are served from a :class:`FixedBaseTable` built after
  the base has been seen a few times; one-shot bases still use ``pow``.
  This generalizes the comb tables :mod:`repro.crypto.fastpath` has
  always kept for the generator and public keys to *every* ``Group``
  exponentiation, and is the default backend.
* ``gmpy2``  — GMP-accelerated big integers, auto-detected: registered
  only when the optional ``gmpy2`` package imports.  When absent the
  backend reports itself unavailable and every consumer skips it (the
  container used for CI does not ship it; nothing may ``pip install``).

Every backend computes **bit-identical results** — these are alternative
evaluation strategies for the same mathematical function, and
``tests/crypto/test_backend.py`` pins equality on every group operation
and on whole batch-verification transcripts.  Selection is per run:
:func:`use_backend` scopes a backend to a ``with`` block, or export
``REPRO_CRYPTO_BACKEND`` to pick the process default.

The backend surface is deliberately small:

* ``powmod(base, exp, mod)``  — one-shot exponentiation;
* ``invmod(a, mod)``          — modular inverse;
* ``fixed_power(base, mod, max_bits)`` — a callable ``exp -> int`` for a
  base the caller promises to reuse (the fast path's table slot);
* ``wrap``/``unwrap``         — convert operands into the backend's
  native integer type for multiplication chains (Straus/Shamir walks),
  identity for the pure-Python backends, ``mpz`` for gmpy2.
"""

from __future__ import annotations

import os
from contextlib import contextmanager
from typing import Callable

#: Fixed-base window width (bits per comb table row).
DEFAULT_WINDOW = 5


class FixedBaseTable:
    """Windowed (comb) precomputation for repeated powers of one base.

    Stores base^(d·2^(w·i)) for every window index i and digit d, so
    ``power(e)`` is one table multiplication per w-bit window of ``e`` —
    no squarings at exponentiation time.  Build cost is
    ⌈max_bits/w⌉·(2^w - 1) multiplications, which pays for itself after a
    handful of exponentiations; callers cache tables per long-lived base
    (see :class:`WindowBackend` and :class:`repro.crypto.fastpath.FastPath`).
    """

    __slots__ = ("p", "window", "max_bits", "_mask", "_rows")

    def __init__(self, p: int, base: int, max_bits: int, window: int = DEFAULT_WINDOW) -> None:
        self.p = p
        self.window = window
        self.max_bits = max_bits
        self._mask = (1 << window) - 1
        rows: list[list[int]] = []
        b = base % p
        for _ in range((max_bits + window - 1) // window):
            row = [1] * (self._mask + 1)
            for d in range(1, self._mask + 1):
                row[d] = row[d - 1] * b % p
            rows.append(row)
            for _ in range(window):
                b = b * b % p
        self._rows = rows

    def power(self, exponent: int) -> int:
        """base**exponent mod p for 0 <= exponent < 2^max_bits."""
        if exponent >> self.max_bits:
            raise ValueError("exponent exceeds table range")
        acc = 1
        p = self.p
        i = 0
        while exponent:
            d = exponent & self._mask
            if d:
                acc = acc * self._rows[i][d] % p
            exponent >>= self.window
            i += 1
        return acc


class CryptoBackend:
    """Base class: the ``pure`` strategy, and the interface contract."""

    name = "pure"

    @staticmethod
    def powmod(base: int, exponent: int, modulus: int) -> int:
        return pow(base, exponent, modulus)

    @staticmethod
    def invmod(a: int, modulus: int) -> int:
        return pow(a, -1, modulus)

    def fixed_power(self, base: int, modulus: int, max_bits: int,
                    window: int = DEFAULT_WINDOW) -> Callable[[int], int]:
        """A fresh ``exp -> base**exp mod modulus`` for a long-lived base.

        The pure backend deliberately returns a bare ``pow`` closure — no
        tables anywhere — so benchmarks against it measure the full win
        of precomputation, not just the generic-call-site share.
        """
        return lambda exponent: pow(base, exponent, modulus)

    #: Operand conversion for multiplication chains; identity here.
    wrap = staticmethod(lambda x: x)
    unwrap = staticmethod(lambda x: x)

    def __repr__(self) -> str:  # pragma: no cover - debugging nicety
        return f"<{type(self).__name__} {self.name!r}>"


class PureBackend(CryptoBackend):
    """Alias of the base class, registered under ``pure``."""


class WindowBackend(CryptoBackend):
    """Fixed-window precomputation for bases that keep coming back.

    ``powmod`` counts (base, modulus) pairs and promotes a pair to a comb
    table once it has been seen ``promote_after`` times; until then (and
    for one-shot bases forever) it is plain ``pow``.  The table cache is
    bounded so adversarial base churn cannot grow memory without bound.
    ``fixed_power`` skips the bookkeeping: the caller has already promised
    the base is long-lived, so it gets a table immediately.
    """

    name = "window"

    def __init__(self, *, window: int = DEFAULT_WINDOW, table_cache: int = 64,
                 promote_after: int = 3, count_cache: int = 4096) -> None:
        self._window = window
        self._table_cache = table_cache
        self._promote_after = promote_after
        self._count_cache = count_cache
        self._tables: dict[tuple[int, int], FixedBaseTable] = {}
        self._counts: dict[tuple[int, int], int] = {}

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        if exponent < 0:
            return pow(base, exponent, modulus)
        key = (base, modulus)
        table = self._tables.get(key)
        if table is None:
            seen = self._counts.get(key, 0) + 1
            if seen >= self._promote_after and len(self._tables) < self._table_cache:
                self._counts.pop(key, None)
                table = FixedBaseTable(modulus, base, modulus.bit_length(), self._window)
                self._tables[key] = table
            else:
                if len(self._counts) >= self._count_cache:
                    self._counts.clear()  # churn guard; affects speed only
                self._counts[key] = seen
                return pow(base, exponent, modulus)
        if exponent.bit_length() > table.max_bits:  # pragma: no cover - defensive
            return pow(base, exponent, modulus)
        return table.power(exponent)

    def fixed_power(self, base: int, modulus: int, max_bits: int,
                    window: int = DEFAULT_WINDOW) -> Callable[[int], int]:
        return FixedBaseTable(modulus, base, max_bits, window).power


class Gmpy2Backend(CryptoBackend):
    """GMP-backed modexp via the optional ``gmpy2`` package."""

    name = "gmpy2"

    def __init__(self) -> None:
        import gmpy2  # noqa: F401 - availability gate ran already

        self._gmpy2 = gmpy2
        self._mpz = gmpy2.mpz

    def powmod(self, base: int, exponent: int, modulus: int) -> int:
        return int(self._gmpy2.powmod(base, exponent, modulus))

    def invmod(self, a: int, modulus: int) -> int:
        return int(self._gmpy2.invert(a, modulus))

    def fixed_power(self, base: int, modulus: int, max_bits: int,
                    window: int = DEFAULT_WINDOW) -> Callable[[int], int]:
        powmod, b, m = self._gmpy2.powmod, self._mpz(base), self._mpz(modulus)
        return lambda exponent: int(powmod(b, exponent, m))

    @property
    def wrap(self):
        return self._mpz

    @property
    def unwrap(self):
        return int


def _gmpy2_available() -> bool:
    import importlib.util

    return importlib.util.find_spec("gmpy2") is not None


# ---------------------------------------------------------------------------
# Registry and per-run selection
# ---------------------------------------------------------------------------

#: name -> (factory, availability probe).  Ordered: ``pure`` first so the
#: comparison baseline is always listed first in tables.
_REGISTRY: dict[str, tuple[Callable[[], CryptoBackend], Callable[[], bool]]] = {}
_INSTANCES: dict[str, CryptoBackend] = {}


def register_backend(
    name: str,
    factory: Callable[[], CryptoBackend],
    available: Callable[[], bool] = lambda: True,
) -> None:
    """Register a backend under ``name`` (last registration wins)."""
    _REGISTRY[name] = (factory, available)
    _INSTANCES.pop(name, None)


register_backend("pure", PureBackend)
register_backend("window", WindowBackend)
register_backend("gmpy2", Gmpy2Backend, _gmpy2_available)

#: The process default; ``window`` preserves the pre-backend behaviour
#: (comb tables for long-lived bases) and is safe everywhere.
DEFAULT_BACKEND = "window"


def backend_names() -> list[str]:
    """All registered backend names, available or not (registration order)."""
    return list(_REGISTRY)


def backend_available(name: str) -> bool:
    """Whether ``name`` is registered and its availability probe passes."""
    entry = _REGISTRY.get(name)
    return entry is not None and entry[1]()


def available_backends() -> list[str]:
    """Registered backend names whose availability probe passes."""
    return [name for name in _REGISTRY if backend_available(name)]


def get_backend(name: str) -> CryptoBackend:
    """The shared instance for ``name``; raises for unknown/unavailable."""
    instance = _INSTANCES.get(name)
    if instance is not None:
        return instance
    entry = _REGISTRY.get(name)
    if entry is None:
        raise ValueError(
            f"unknown crypto backend {name!r} (registered: {', '.join(_REGISTRY)})"
        )
    factory, available = entry
    if not available():
        raise ValueError(f"crypto backend {name!r} is not available on this machine")
    instance = _INSTANCES[name] = factory()
    return instance


def _initial_backend() -> CryptoBackend:
    name = os.environ.get("REPRO_CRYPTO_BACKEND", DEFAULT_BACKEND)
    try:
        return get_backend(name)
    except ValueError:  # pragma: no cover - mis-set env var
        return get_backend(DEFAULT_BACKEND)


_ACTIVE: CryptoBackend = _initial_backend()


def active_backend() -> CryptoBackend:
    """The backend every Group/fastpath exponentiation currently routes to."""
    return _ACTIVE


def set_backend(backend: str | CryptoBackend) -> CryptoBackend:
    """Install ``backend`` as active; returns the previous one (for restore)."""
    global _ACTIVE
    previous = _ACTIVE
    _ACTIVE = get_backend(backend) if isinstance(backend, str) else backend
    return previous


@contextmanager
def use_backend(backend: str | CryptoBackend):
    """Scope a backend to a ``with`` block (the per-run selection hook)."""
    previous = set_backend(backend)
    try:
        yield _ACTIVE
    finally:
        set_backend(previous)


__all__ = [
    "DEFAULT_WINDOW",
    "DEFAULT_BACKEND",
    "FixedBaseTable",
    "CryptoBackend",
    "PureBackend",
    "WindowBackend",
    "Gmpy2Backend",
    "register_backend",
    "backend_names",
    "backend_available",
    "available_backends",
    "get_backend",
    "active_backend",
    "set_backend",
    "use_backend",
]
