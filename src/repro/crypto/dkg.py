"""Distributed key generation for the threshold schemes.

Section 3.1: "the secret keys of the parties are correlated with one
another, and must either be set up by a trusted party or a secure
distributed key generation protocol."  :mod:`repro.crypto.threshold`
implements the trusted dealer; this module implements the DKG, so the
repository covers both setup paths.

The protocol is the classic Pedersen/Feldman joint-VSS DKG:

1. every party i deals a random degree-(h-1) polynomial f_i: it broadcasts
   Feldman commitments A_{i,k} = g^{a_{i,k}} and privately sends party j
   the share s_{i,j} = f_i(j);
2. party j verifies each received share against the dealer's commitments
   (g^{s_{i,j}} == Π_k A_{i,k}^{j^k}) and *complains* about dealers whose
   share fails;
3. dealers with a complaint from any honest party are disqualified; the
   qualified set QUAL defines the key: master secret x = Σ_{i∈QUAL} f_i(0)
   (never materialised anywhere), party j's share x_j = Σ_{i∈QUAL} s_{i,j},
   and all public keys are computed from the commitments alone.

Security caveat, stated for honesty: plain Feldman-based DKG lets a
rushing adversary bias the distribution of the public key (Gennaro et al.,
EUROCRYPT '99).  Bias does not affect any property the ICC protocols rely
on (unforgeability and uniqueness of threshold signatures are preserved),
and the unbiased fix (Pedersen commitments in a preliminary round) is
orthogonal to consensus; we implement the Feldman variant the IC's
literature builds from.

The DKG here runs "in the clear" as a round-structured computation over a
reliable broadcast + private channels abstraction (the standard setting in
which DKGs are stated); it is exercised both directly and as a drop-in
replacement for the trusted dealer in :func:`repro.crypto.keyring.generate_keyrings`.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable

from .group import Group
from .threshold import ThresholdKeyShare, ThresholdPublicKey


@dataclass(frozen=True)
class Deal:
    """One dealer's contribution: commitments + one private share per party."""

    dealer: int
    commitments: tuple[int, ...]  # A_k = g^{a_k}, k = 0..h-1
    shares: tuple[int, ...]  # s_j = f(j) for j = 1..n (index j-1)


@dataclass
class DkgResult:
    """Everything the DKG outputs."""

    public: ThresholdPublicKey
    key_shares: list[ThresholdKeyShare]
    qualified: set[int]
    complaints: dict[int, set[int]]  # dealer -> complaining parties


#: Hook for Byzantine dealers in tests: maps dealer index to a function
#: that may tamper with its honestly-generated Deal before publication.
DealTamper = Callable[[Deal], Deal]


def _commitment_eval(group: Group, commitments: tuple[int, ...], j: int) -> int:
    """Π_k A_k^{j^k} — the public image of f(j)."""
    acc = 1
    power = 1
    for a_k in commitments:
        acc = group.mul(acc, group.power(a_k, power))
        power = (power * j) % group.q
    return acc


def make_deal(group: Group, dealer: int, h: int, n: int, rng) -> Deal:
    """Honest dealing: random degree-(h-1) polynomial, commitments, shares."""
    coefficients = [group.random_scalar(rng) for _ in range(h)]
    commitments = tuple(group.power_g(a) for a in coefficients)
    shares = tuple(
        _eval_poly(group, coefficients, j) for j in range(1, n + 1)
    )
    return Deal(dealer=dealer, commitments=commitments, shares=shares)


def _eval_poly(group: Group, coefficients: list[int], x: int) -> int:
    acc = 0
    for c in reversed(coefficients):
        acc = (acc * x + c) % group.q
    return acc


def verify_share(group: Group, deal: Deal, j: int) -> bool:
    """Party j's check of dealer ``deal.dealer``'s share."""
    share = deal.shares[j - 1]
    return group.power_g(share) == _commitment_eval(group, deal.commitments, j)


def run_dkg(
    group: Group,
    h: int,
    n: int,
    rng,
    tamper: dict[int, DealTamper] | None = None,
) -> DkgResult:
    """Execute the DKG among n parties with reconstruction threshold h.

    ``tamper`` lets tests corrupt specific dealers' deals (e.g. hand one
    party a share inconsistent with the commitments); such dealers are
    disqualified by the complaint round, matching step 3 above.
    Raises if fewer than h dealers qualify (cannot define a key) — with at
    most t < n/3 corrupt dealers and h <= n - t this cannot happen.
    """
    if not 1 <= h <= n:
        raise ValueError("need 1 <= h <= n")
    tamper = tamper or {}

    deals: list[Deal] = []
    for dealer in range(1, n + 1):
        deal = make_deal(group, dealer, h, n, rng)
        mutate = tamper.get(dealer)
        if mutate is not None:
            deal = mutate(deal)
        deals.append(deal)

    # Complaint round: every party checks every dealer's share.
    complaints: dict[int, set[int]] = {}
    for deal in deals:
        if len(deal.commitments) != h or len(deal.shares) != n:
            complaints.setdefault(deal.dealer, set()).update(range(1, n + 1))
            continue
        for j in range(1, n + 1):
            if not verify_share(group, deal, j):
                complaints.setdefault(deal.dealer, set()).add(j)

    qualified = {deal.dealer for deal in deals if deal.dealer not in complaints}
    if len(qualified) < h:
        raise RuntimeError(
            f"DKG failed: only {len(qualified)} qualified dealers, need {h}"
        )
    qualified_deals = [d for d in deals if d.dealer in qualified]

    # Aggregate shares and public material over QUAL.
    key_shares = []
    for j in range(1, n + 1):
        x_j = 0
        for deal in qualified_deals:
            x_j = (x_j + deal.shares[j - 1]) % group.q
        key_shares.append(ThresholdKeyShare(index=j, secret=x_j))

    master_public = 1
    for deal in qualified_deals:
        master_public = group.mul(master_public, deal.commitments[0])

    share_publics = []
    for j in range(1, n + 1):
        acc = 1
        for deal in qualified_deals:
            acc = group.mul(acc, _commitment_eval(group, deal.commitments, j))
        share_publics.append(acc)

    public = ThresholdPublicKey(
        group=group,
        threshold=h,
        n=n,
        master_public=master_public,
        share_publics=tuple(share_publics),
    )
    return DkgResult(
        public=public,
        key_shares=key_shares,
        qualified=qualified,
        complaints=complaints,
    )
