"""Per-party key material bundles for the ICC protocols.

Section 3.2 of the paper lists the components each party is provisioned
with:

* ``S_auth``   — an ordinary signature scheme (block authenticators),
* ``S_notary`` — a (t, n-t, n)-threshold scheme (notarizations),
* ``S_final``  — a (t, n-t, n)-threshold scheme (finalizations),
* ``S_beacon`` — a (t, t+1, n)-threshold scheme with *unique* signatures
  (the random beacon).

This module bundles all four into a single :class:`Keyring` object per
party, behind a small interface the protocol layer talks to.  Two backends
implement the interface:

* :class:`RealKeyring` — the actual discrete-log constructions from this
  package (Schnorr, Schnorr-multisig, threshold-unique signatures).
* :class:`FastKeyring` — a hash-based *simulation* backend for large-scale
  experiments.  It preserves every property the protocol logic observes
  (share/aggregate interfaces, thresholds, uniqueness and unpredictability
  of the beacon value to the *simulated* adversary) but is not
  cryptographically unforgeable.  The paper's analysis assumes secure
  signatures as a black box; the simulated adversaries in
  :mod:`repro.adversary` mount protocol-level attacks only, never forgeries,
  so the backends are interchangeable for every experiment.  Crypto
  correctness itself is validated against the real backend in the tests.
"""

from __future__ import annotations

from dataclasses import dataclass
from random import Random
from typing import Protocol, Sequence

from . import api, multisig, schnorr, setup_cache, threshold
from .fastpath import _BoundedCache
from .group import Group, group_for_profile
from .hashing import tagged_hash

#: Batch items are (message, share) pairs; auth batches are
#: (signer, message, sig) triples.  Both return :class:`api.BatchResult`.
_MISS = object()


class Keyring(Protocol):
    """What the protocol layer needs from a party's key material."""

    index: int
    n: int
    t: int

    # S_auth ---------------------------------------------------------------
    def sign_auth(self, message: bytes) -> object: ...
    def verify_auth(self, signer: int, message: bytes, sig: object) -> bool: ...
    def verify_auth_batch(
        self, items: Sequence[tuple[int, bytes, object]]
    ) -> api.BatchResult: ...

    # S_notary / S_final ----------------------------------------------------
    def sign_notary_share(self, message: bytes) -> object: ...
    def verify_notary_share(self, message: bytes, share: object) -> bool: ...
    def verify_notary_share_batch(
        self, items: Sequence[tuple[bytes, object]]
    ) -> api.BatchResult: ...
    def combine_notary(self, message: bytes, shares: Sequence[object]) -> object: ...
    def verify_notary(self, message: bytes, agg: object) -> bool: ...

    def sign_final_share(self, message: bytes) -> object: ...
    def verify_final_share(self, message: bytes, share: object) -> bool: ...
    def verify_final_share_batch(
        self, items: Sequence[tuple[bytes, object]]
    ) -> api.BatchResult: ...
    def combine_final(self, message: bytes, shares: Sequence[object]) -> object: ...
    def verify_final(self, message: bytes, agg: object) -> bool: ...

    # S_beacon ---------------------------------------------------------------
    def sign_beacon_share(self, message: bytes) -> object: ...
    def verify_beacon_share(self, message: bytes, share: object) -> bool: ...
    def verify_beacon_share_batch(
        self, items: Sequence[tuple[bytes, object]]
    ) -> api.BatchResult: ...
    def combine_beacon(self, message: bytes, shares: Sequence[object]) -> object: ...
    def verify_beacon(self, message: bytes, sig: object) -> bool: ...
    def beacon_value(self, sig: object) -> bytes: ...

    def share_index(self, share: object) -> int: ...


# ---------------------------------------------------------------------------
# Real (discrete-log) backend
# ---------------------------------------------------------------------------


@dataclass
class _SharedPublic:
    """Public material common to all parties (one per simulation)."""

    group: Group
    auth_publics: tuple[int, ...]
    notary_pk: multisig.MultisigPublicKey
    final_pk: multisig.MultisigPublicKey
    beacon_pk: threshold.ThresholdPublicKey


class RealKeyring:
    """Discrete-log instantiation of the :class:`Keyring` interface.

    All signing and verification goes through :mod:`repro.crypto.api`.
    Verification results are memoized in a bounded LRU keyed by
    ``(kind, signer, message, sig)`` — the message slot doubles as the
    message-hash of the ISSUE wording because protocol messages are already
    fixed-width digests.  Signatures are frozen dataclasses and therefore
    hashable; verification is deterministic, so both verdicts are cacheable.
    """

    #: Bound on the per-party verification-result cache.
    RESULT_CACHE_SIZE = 8192

    def __init__(
        self,
        index: int,
        n: int,
        t: int,
        shared: _SharedPublic,
        auth_secret: int,
        notary_key: multisig.MultisigKeyShare,
        final_key: multisig.MultisigKeyShare,
        beacon_key: threshold.ThresholdKeyShare,
        rng: Random,
    ) -> None:
        self.index = index
        self.n = n
        self.t = t
        self._shared = shared
        self._auth_secret = auth_secret
        self._notary_key = notary_key
        self._final_key = final_key
        self._beacon_key = beacon_key
        self._rng = rng
        suite = api.verifiers_for(shared.group)
        self._suite = suite
        self._auth_signer = api.SchnorrSigner(shared.group, auth_secret, suite.ctx)
        self._notary_signer = api.MultisigShareSigner(shared.notary_pk, notary_key, suite.ctx)
        self._final_signer = api.MultisigShareSigner(shared.final_pk, final_key, suite.ctx)
        self._beacon_signer = api.ThresholdShareSigner(shared.beacon_pk, beacon_key, suite.ctx)
        self._results = _BoundedCache(self.RESULT_CACHE_SIZE)
        self.cache_hits = 0
        self.cache_misses = 0

    # -- result cache ------------------------------------------------------

    def _cached(self, kind: str, signer: int, message: bytes, sig, check) -> bool:
        key = (kind, signer, message, sig)
        verdict = self._results.get(key, _MISS)
        if verdict is not _MISS:
            self._results.touch(key)
            self.cache_hits += 1
            return verdict
        self.cache_misses += 1
        verdict = check()
        self._results.put(key, verdict)
        return verdict

    def _batch_cached(self, kind: str, verifier, pk, items) -> api.BatchResult:
        """Batch verify (message, share) pairs through the result cache."""
        results: list = [None] * len(items)
        hits = misses = 0
        keys: list = []
        todo_idx: list[int] = []
        todo: list[tuple] = []
        for i, (message, share) in enumerate(items):
            key = (kind, share.index, message, share)
            keys.append(key)
            verdict = self._results.get(key, _MISS)
            if verdict is not _MISS:
                self._results.touch(key)
                hits += 1
                results[i] = verdict
            else:
                misses += 1
                todo_idx.append(i)
                todo.append((pk, message, share))
        bisections = 0
        if len(todo) == 1:
            # A singleton batch gains nothing from the RLC combination;
            # the single-item verifier is strictly cheaper.
            i = todo_idx[0]
            ok = verifier.verify(*todo[0])
            results[i] = ok
            self._results.put(keys[i], ok)
        elif todo:
            report = verifier.verify_batch_report(todo)
            bisections = report.stats.bisections
            for i, ok in zip(todo_idx, report.results):
                results[i] = ok
                self._results.put(keys[i], ok)
        self.cache_hits += hits
        self.cache_misses += misses
        stats = api.BatchStats(
            count=len(items),
            invalid=results.count(False),
            cache_hits=hits,
            cache_misses=misses,
            bisections=bisections,
        )
        return api.BatchResult(results=results, stats=stats)

    # S_auth
    def sign_auth(self, message: bytes):
        return self._auth_signer.sign(message, self._rng)

    def verify_auth(self, signer: int, message: bytes, sig) -> bool:
        if not 1 <= signer <= self.n:
            return False
        public = self._shared.auth_publics[signer - 1]
        return self._cached(
            "auth", signer, message, sig,
            lambda: self._suite.schnorr.verify(public, message, sig),
        )

    def verify_auth_batch(self, items: Sequence[tuple[int, bytes, object]]) -> api.BatchResult:
        results: list = [None] * len(items)
        hits = misses = 0
        keys: list = []
        todo_idx: list[int] = []
        todo: list[tuple] = []
        for i, (signer, message, sig) in enumerate(items):
            if not 1 <= signer <= self.n:
                results[i] = False
                keys.append(None)
                continue
            key = ("auth", signer, message, sig)
            keys.append(key)
            verdict = self._results.get(key, _MISS)
            if verdict is not _MISS:
                self._results.touch(key)
                hits += 1
                results[i] = verdict
            else:
                misses += 1
                todo_idx.append(i)
                todo.append((self._shared.auth_publics[signer - 1], message, sig))
        bisections = 0
        if len(todo) == 1:
            i = todo_idx[0]
            ok = self._suite.schnorr.verify(*todo[0])
            results[i] = ok
            self._results.put(keys[i], ok)
            todo = []
        if todo:
            report = self._suite.schnorr.verify_batch_report(todo)
            bisections = report.stats.bisections
            for i, ok in zip(todo_idx, report.results):
                results[i] = ok
                self._results.put(keys[i], ok)
        self.cache_hits += hits
        self.cache_misses += misses
        stats = api.BatchStats(
            count=len(items),
            invalid=results.count(False),
            cache_hits=hits,
            cache_misses=misses,
            bisections=bisections,
        )
        return api.BatchResult(results=results, stats=stats)

    # S_notary
    def sign_notary_share(self, message: bytes):
        return self._notary_signer.sign(message, self._rng)

    def verify_notary_share(self, message: bytes, share) -> bool:
        return self._cached(
            "notary-share", share.index, message, share,
            lambda: self._suite.multisig_share.verify(self._shared.notary_pk, message, share),
        )

    def verify_notary_share_batch(self, items: Sequence[tuple[bytes, object]]) -> api.BatchResult:
        return self._batch_cached(
            "notary-share", self._suite.multisig_share, self._shared.notary_pk, list(items)
        )

    def combine_notary(self, message: bytes, shares):
        return multisig.combine(self._shared.notary_pk, message, list(shares))

    def verify_notary(self, message: bytes, agg) -> bool:
        return self._cached(
            "notary-agg", 0, message, agg,
            lambda: self._suite.multisig.verify(self._shared.notary_pk, message, agg),
        )

    # S_final
    def sign_final_share(self, message: bytes):
        return self._final_signer.sign(message, self._rng)

    def verify_final_share(self, message: bytes, share) -> bool:
        return self._cached(
            "final-share", share.index, message, share,
            lambda: self._suite.multisig_share.verify(self._shared.final_pk, message, share),
        )

    def verify_final_share_batch(self, items: Sequence[tuple[bytes, object]]) -> api.BatchResult:
        return self._batch_cached(
            "final-share", self._suite.multisig_share, self._shared.final_pk, list(items)
        )

    def combine_final(self, message: bytes, shares):
        return multisig.combine(self._shared.final_pk, message, list(shares))

    def verify_final(self, message: bytes, agg) -> bool:
        return self._cached(
            "final-agg", 0, message, agg,
            lambda: self._suite.multisig.verify(self._shared.final_pk, message, agg),
        )

    # S_beacon
    def sign_beacon_share(self, message: bytes):
        return self._beacon_signer.sign(message, self._rng)

    def verify_beacon_share(self, message: bytes, share) -> bool:
        return self._cached(
            "beacon-share", share.index, message, share,
            lambda: self._suite.threshold_share.verify(self._shared.beacon_pk, message, share),
        )

    def verify_beacon_share_batch(self, items: Sequence[tuple[bytes, object]]) -> api.BatchResult:
        return self._batch_cached(
            "beacon-share", self._suite.threshold_share, self._shared.beacon_pk, list(items)
        )

    def combine_beacon(self, message: bytes, shares):
        return threshold.combine(self._shared.beacon_pk, message, list(shares))

    def verify_beacon(self, message: bytes, sig) -> bool:
        return self._cached(
            "beacon-agg", 0, message, sig,
            lambda: self._suite.threshold.verify(self._shared.beacon_pk, message, sig),
        )

    def beacon_value(self, sig) -> bytes:
        return tagged_hash(
            "ICC/beacon/value",
            threshold.signature_value_bytes(self._shared.beacon_pk, sig),
        )

    def share_index(self, share) -> int:
        return share.index


# ---------------------------------------------------------------------------
# Fast (hash-simulation) backend
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FastShare:
    """Simulated signature share: a MAC under a scheme-wide key."""

    scheme: str
    index: int
    digest: bytes


@dataclass(frozen=True)
class FastAggregate:
    """Simulated aggregate signature with signatory descriptor."""

    scheme: str
    digest: bytes
    signatories: tuple[int, ...]


class FastKeyring:
    """Hash-based simulation backend (see module docstring for caveats)."""

    def __init__(self, index: int, n: int, t: int, master: bytes) -> None:
        self.index = index
        self.n = n
        self.t = t
        self._master = master

    def _share(self, scheme: str, index: int, message: bytes) -> FastShare:
        digest = tagged_hash(
            "ICC/fast/share", self._master, scheme.encode(), index.to_bytes(4, "big"), message
        )
        return FastShare(scheme=scheme, index=index, digest=digest)

    def _verify_share(self, scheme: str, message: bytes, share: FastShare) -> bool:
        if not isinstance(share, FastShare) or share.scheme != scheme:
            return False
        if not 1 <= share.index <= self.n:
            return False
        return share == self._share(scheme, share.index, message)

    def _combine(self, scheme: str, h: int, message: bytes, shares) -> FastAggregate:
        indices: list[int] = []
        seen: set[int] = set()
        for share in shares:
            if share.index not in seen:
                seen.add(share.index)
                indices.append(share.index)
            if len(indices) == h:
                break
        if len(indices) < h:
            raise ValueError(f"need {h} distinct shares, got {len(indices)}")
        digest = tagged_hash("ICC/fast/agg", self._master, scheme.encode(), message)
        return FastAggregate(scheme=scheme, digest=digest, signatories=tuple(indices))

    def _loop_batch(self, results: list[bool]) -> api.BatchResult:
        """The hash backend has no RLC structure; batches are plain loops."""
        return api.BatchResult(
            results=results,
            stats=api.BatchStats(count=len(results), invalid=results.count(False)),
        )

    def _verify_agg(self, scheme: str, h: int, message: bytes, agg: FastAggregate) -> bool:
        if not isinstance(agg, FastAggregate) or agg.scheme != scheme:
            return False
        if len(set(agg.signatories)) < h:
            return False
        expected = tagged_hash("ICC/fast/agg", self._master, scheme.encode(), message)
        return agg.digest == expected

    # S_auth: a per-signer MAC
    def sign_auth(self, message: bytes):
        return self._share("auth", self.index, message)

    def verify_auth(self, signer: int, message: bytes, sig) -> bool:
        return (
            isinstance(sig, FastShare)
            and sig.index == signer
            and self._verify_share("auth", message, sig)
        )

    def verify_auth_batch(self, items: Sequence[tuple[int, bytes, object]]) -> api.BatchResult:
        return self._loop_batch([self.verify_auth(s, m, sig) for s, m, sig in items])

    # S_notary
    def sign_notary_share(self, message: bytes):
        return self._share("notary", self.index, message)

    def verify_notary_share(self, message: bytes, share) -> bool:
        return self._verify_share("notary", message, share)

    def verify_notary_share_batch(self, items: Sequence[tuple[bytes, object]]) -> api.BatchResult:
        return self._loop_batch([self.verify_notary_share(m, s) for m, s in items])

    def combine_notary(self, message: bytes, shares):
        return self._combine("notary", self.n - self.t, message, shares)

    def verify_notary(self, message: bytes, agg) -> bool:
        return self._verify_agg("notary", self.n - self.t, message, agg)

    # S_final
    def sign_final_share(self, message: bytes):
        return self._share("final", self.index, message)

    def verify_final_share(self, message: bytes, share) -> bool:
        return self._verify_share("final", message, share)

    def verify_final_share_batch(self, items: Sequence[tuple[bytes, object]]) -> api.BatchResult:
        return self._loop_batch([self.verify_final_share(m, s) for m, s in items])

    def combine_final(self, message: bytes, shares):
        return self._combine("final", self.n - self.t, message, shares)

    def verify_final(self, message: bytes, agg) -> bool:
        return self._verify_agg("final", self.n - self.t, message, agg)

    # S_beacon — the aggregate digest doubles as the unique signature value.
    def sign_beacon_share(self, message: bytes):
        return self._share("beacon", self.index, message)

    def verify_beacon_share(self, message: bytes, share) -> bool:
        return self._verify_share("beacon", message, share)

    def verify_beacon_share_batch(self, items: Sequence[tuple[bytes, object]]) -> api.BatchResult:
        return self._loop_batch([self.verify_beacon_share(m, s) for m, s in items])

    def combine_beacon(self, message: bytes, shares):
        return self._combine("beacon", self.t + 1, message, shares)

    def verify_beacon(self, message: bytes, sig) -> bool:
        return self._verify_agg("beacon", self.t + 1, message, sig)

    def beacon_value(self, sig) -> bytes:
        return tagged_hash("ICC/fast/beacon-value", sig.digest)

    def share_index(self, share) -> int:
        return share.index


# ---------------------------------------------------------------------------
# Factory
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _RealSetup:
    """The deterministic derivation products of one real-backend setup.

    Everything here is a function of ``(group_profile, setup, n, t,
    seed)`` alone — no RNG state, no per-party mutable caches — which is
    what makes it safe to share between cluster builds and to persist in
    :mod:`repro.crypto.setup_cache`.  Keyrings built from a cached bundle
    are bit-identical to keyrings built from a fresh derivation.
    """

    group: Group
    auth_secrets: tuple[int, ...]
    auth_publics: tuple[int, ...]
    notary_pk: multisig.MultisigPublicKey
    notary_keys: tuple[multisig.MultisigKeyShare, ...]
    final_pk: multisig.MultisigPublicKey
    final_keys: tuple[multisig.MultisigKeyShare, ...]
    beacon_pk: threshold.ThresholdPublicKey
    beacon_keys: tuple[threshold.ThresholdKeyShare, ...]


def _derive_real_setup(
    group_profile: str, setup: str, n: int, t: int, seed: int
) -> _RealSetup:
    """Run the actual keygen/dealer/DKG derivation (the cache's miss path)."""
    group = group_for_profile(group_profile)
    rng = Random(seed)
    auth_pairs = [schnorr.keygen(group, rng) for _ in range(n)]
    notary_pk, notary_keys = multisig.keygen(group, n - t, n, rng)
    final_pk, final_keys = multisig.keygen(group, n - t, n, rng)
    if setup == "dealer":
        beacon_pk, beacon_keys = threshold.keygen(group, t + 1, n, rng)
    elif setup == "dkg":
        from .dkg import run_dkg

        result = run_dkg(group, t + 1, n, rng)
        beacon_pk, beacon_keys = result.public, result.key_shares
    else:
        raise ValueError(f"unknown key setup {setup!r}")
    return _RealSetup(
        group=group,
        auth_secrets=tuple(p.secret for p in auth_pairs),
        auth_publics=tuple(p.public for p in auth_pairs),
        notary_pk=notary_pk,
        notary_keys=tuple(notary_keys),
        final_pk=final_pk,
        final_keys=tuple(final_keys),
        beacon_pk=beacon_pk,
        beacon_keys=tuple(beacon_keys),
    )


def real_setup_cache_key(
    group_profile: str, setup: str, n: int, t: int, seed: int
) -> tuple:
    """The setup-cache key for one real-backend derivation bundle."""
    return ("keyring-real-setup", group_profile, setup, n, t, seed)


def generate_keyrings(
    n: int,
    t: int,
    seed: int = 0,
    backend: str = "fast",
    group_profile: str = "test",
    setup: str = "dealer",
) -> list[Keyring]:
    """Provision all n parties with correlated key material.

    ``backend`` selects ``"real"`` (discrete-log crypto) or ``"fast"``
    (hash simulation).  Thresholds follow Section 3.2: S_notary and S_final
    are (t, n-t, n) schemes, S_beacon is (t, t+1, n).

    ``setup`` chooses how the correlated S_beacon keys come to exist
    (Section 3.1: "a trusted party or a secure distributed key generation
    protocol"): ``"dealer"`` uses the trusted dealer of
    :mod:`repro.crypto.threshold`; ``"dkg"`` runs the Pedersen/Feldman DKG
    of :mod:`repro.crypto.dkg` (real backend only).

    Real-backend derivations are served through
    :mod:`repro.crypto.setup_cache`: the bundle of key material is a pure
    function of ``(group_profile, setup, n, t, seed)``, so repeated
    builds of the same cluster shape reuse one keygen/dealer/DKG
    computation (set ``REPRO_NO_SETUP_CACHE=1`` to derive every time).
    Per-keyring RNG state is *not* cached — every call returns fresh
    :class:`RealKeyring` objects with fresh signing RNGs, so cached and
    uncached paths behave identically.
    """
    if n < 1:
        raise ValueError("need at least one party")
    if t < 0 or (t > 0 and 3 * t >= n):
        # The protocol tolerates t < n/3; permit t == 0 for degenerate tests.
        raise ValueError(f"require t < n/3 (got n={n}, t={t})")
    if backend == "fast":
        master = tagged_hash("ICC/fast/master", seed.to_bytes(8, "big"), n.to_bytes(4, "big"))
        return [FastKeyring(index=i, n=n, t=t, master=master) for i in range(1, n + 1)]
    if backend != "real":
        raise ValueError(f"unknown crypto backend {backend!r}")
    if setup not in ("dealer", "dkg"):
        raise ValueError(f"unknown key setup {setup!r}")

    material: _RealSetup = setup_cache.get_or_derive(
        real_setup_cache_key(group_profile, setup, n, t, seed),
        lambda: _derive_real_setup(group_profile, setup, n, t, seed),
    )
    shared = _SharedPublic(
        group=material.group,
        auth_publics=material.auth_publics,
        notary_pk=material.notary_pk,
        final_pk=material.final_pk,
        beacon_pk=material.beacon_pk,
    )
    return [
        RealKeyring(
            index=i + 1,
            n=n,
            t=t,
            shared=shared,
            auth_secret=material.auth_secrets[i],
            notary_key=material.notary_keys[i],
            final_key=material.final_keys[i],
            beacon_key=material.beacon_keys[i],
            rng=Random(seed * 1_000_003 + i + 1),
        )
        for i in range(n)
    ]
